//! Whole-CPU taint state: shadow registers, shadow temporaries and shadow
//! memory under one policy, with fault provenance carried in parallel.

use crate::{ProvMem, ProvSet, ShadowMem, TaintMask, TaintPolicy};
use chaser_isa::{FReg, Reg, NUM_FREGS, NUM_REGS};
use chaser_tcg::{Global, Temp};

/// Shadow state for one guest process plus the node's physical memory.
///
/// The execution engine in `chaser-vm` drives this in lock-step with the
/// value computation: for every IR op it reads operand masks, calls
/// [`TaintPolicy::propagate`], and writes the result mask back.
///
/// Alongside each mask the state carries a [`ProvSet`] naming the injected
/// fault(s) the taint derives from. Provenance follows the masks (a clean
/// result always has empty provenance) and is gated behind a `prov_any`
/// flag so runs that never inject pay one branch per shadow write.
#[derive(Debug, Clone)]
pub struct TaintState {
    policy: TaintPolicy,
    regs: [TaintMask; NUM_REGS],
    fregs: [TaintMask; NUM_FREGS],
    locals: Vec<TaintMask>,
    mem: ShadowMem,
    prov_regs: [ProvSet; NUM_REGS],
    prov_fregs: [ProvSet; NUM_FREGS],
    prov_locals: Vec<ProvSet>,
    prov_mem: ProvMem,
    /// True once any non-empty provenance has been written; while false,
    /// every provenance shadow is known-empty and reads/writes short-circuit.
    prov_any: bool,
    /// Number of tainted global shadows (regs + fregs), maintained at every
    /// mask write so [`TaintState::fully_idle`] is O(1).
    tainted_globals: u32,
    /// Number of tainted local-temp shadows.
    tainted_locals: u32,
}

/// Updates a population counter for a mask overwrite.
#[inline]
fn repop(count: &mut u32, old: TaintMask, new: TaintMask) {
    *count = *count - old.is_tainted() as u32 + new.is_tainted() as u32;
}

impl TaintState {
    /// A fully clean state under `policy`.
    pub fn new(policy: TaintPolicy) -> TaintState {
        TaintState {
            policy,
            regs: [TaintMask::CLEAN; NUM_REGS],
            fregs: [TaintMask::CLEAN; NUM_FREGS],
            locals: Vec::new(),
            mem: ShadowMem::new(),
            prov_regs: [ProvSet::EMPTY; NUM_REGS],
            prov_fregs: [ProvSet::EMPTY; NUM_FREGS],
            prov_locals: Vec::new(),
            prov_mem: ProvMem::new(),
            prov_any: false,
            tainted_globals: 0,
            tainted_locals: 0,
        }
    }

    /// The active propagation policy.
    pub fn policy(&self) -> TaintPolicy {
        self.policy
    }

    /// True when the taint machinery is active at all.
    pub fn is_enabled(&self) -> bool {
        self.policy != TaintPolicy::Disabled
    }

    /// Prepares the local-temp shadow for a translation block with
    /// `n_locals` temporaries (all clean: temps never outlive a block).
    pub fn begin_block(&mut self, n_locals: u16) {
        self.locals.clear();
        self.locals.resize(n_locals as usize, TaintMask::CLEAN);
        self.tainted_locals = 0;
        if self.prov_any {
            self.prov_locals.clear();
            self.prov_locals.resize(n_locals as usize, ProvSet::EMPTY);
        }
    }

    /// Reads the mask of an IR operand.
    pub fn temp(&self, t: Temp) -> TaintMask {
        match t {
            Temp::Global(Global::Reg(r)) => self.regs[r.index()],
            Temp::Global(Global::FReg(r)) => self.fregs[r.index()],
            Temp::Local(i) => self.locals.get(i as usize).copied().unwrap_or_default(),
        }
    }

    /// Writes the mask of an IR operand. Provenance at the destination is
    /// cleared: a caller with provenance to record uses
    /// [`TaintState::set_temp_with_prov`] or a propagation helper.
    pub fn set_temp(&mut self, t: Temp, m: TaintMask) {
        self.write_temp_mask(t, m);
        if self.prov_any {
            self.write_temp_prov(t, ProvSet::EMPTY);
        }
    }

    /// Writes mask and provenance of an IR operand together.
    pub fn set_temp_with_prov(&mut self, t: Temp, m: TaintMask, p: ProvSet) {
        self.write_temp_mask(t, m);
        if !p.is_empty() {
            self.prov_any = true;
        }
        if self.prov_any {
            self.write_temp_prov(t, if m.is_tainted() { p } else { ProvSet::EMPTY });
        }
    }

    /// Writes the result of a binary propagation: mask `m` at `d`, with the
    /// provenance union of operands `a` and `b` when the result is tainted.
    /// Reads operand provenance before touching `d`, so `d` may alias `a`
    /// or `b`.
    pub fn set_temp2(&mut self, d: Temp, m: TaintMask, a: Temp, b: Temp) {
        if self.prov_any {
            let p = if m.is_tainted() {
                self.temp_prov(a).union(self.temp_prov(b))
            } else {
                ProvSet::EMPTY
            };
            self.write_temp_mask(d, m);
            self.write_temp_prov(d, p);
        } else {
            self.write_temp_mask(d, m);
        }
    }

    /// Writes the result of a unary propagation (or a copy): mask `m` at
    /// `d`, inheriting `a`'s provenance when the result is tainted.
    pub fn set_temp1(&mut self, d: Temp, m: TaintMask, a: Temp) {
        if self.prov_any {
            let p = if m.is_tainted() {
                self.temp_prov(a)
            } else {
                ProvSet::EMPTY
            };
            self.write_temp_mask(d, m);
            self.write_temp_prov(d, p);
        } else {
            self.write_temp_mask(d, m);
        }
    }

    fn write_temp_mask(&mut self, t: Temp, m: TaintMask) {
        match t {
            Temp::Global(Global::Reg(r)) => {
                repop(&mut self.tainted_globals, self.regs[r.index()], m);
                self.regs[r.index()] = m;
            }
            Temp::Global(Global::FReg(r)) => {
                repop(&mut self.tainted_globals, self.fregs[r.index()], m);
                self.fregs[r.index()] = m;
            }
            Temp::Local(i) => {
                let i = i as usize;
                if i >= self.locals.len() {
                    self.locals.resize(i + 1, TaintMask::CLEAN);
                }
                repop(&mut self.tainted_locals, self.locals[i], m);
                self.locals[i] = m;
            }
        }
    }

    fn write_temp_prov(&mut self, t: Temp, p: ProvSet) {
        match t {
            Temp::Global(Global::Reg(r)) => self.prov_regs[r.index()] = p,
            Temp::Global(Global::FReg(r)) => self.prov_fregs[r.index()] = p,
            Temp::Local(i) => {
                let i = i as usize;
                if i >= self.prov_locals.len() {
                    if p.is_empty() {
                        return;
                    }
                    self.prov_locals.resize(i + 1, ProvSet::EMPTY);
                }
                self.prov_locals[i] = p;
            }
        }
    }

    /// Reads the provenance of an IR operand.
    pub fn temp_prov(&self, t: Temp) -> ProvSet {
        if !self.prov_any {
            return ProvSet::EMPTY;
        }
        match t {
            Temp::Global(Global::Reg(r)) => self.prov_regs[r.index()],
            Temp::Global(Global::FReg(r)) => self.prov_fregs[r.index()],
            Temp::Local(i) => self
                .prov_locals
                .get(i as usize)
                .copied()
                .unwrap_or_default(),
        }
    }

    /// Reads a general-purpose register's mask.
    pub fn reg(&self, r: Reg) -> TaintMask {
        self.regs[r.index()]
    }

    /// Taints (or cleans) a general-purpose register — an injection source.
    pub fn set_reg(&mut self, r: Reg, m: TaintMask) {
        repop(&mut self.tainted_globals, self.regs[r.index()], m);
        self.regs[r.index()] = m;
        if self.prov_any {
            self.prov_regs[r.index()] = ProvSet::EMPTY;
        }
    }

    /// Reads an FP register's mask.
    pub fn freg(&self, r: FReg) -> TaintMask {
        self.fregs[r.index()]
    }

    /// Taints (or cleans) an FP register — an injection source.
    pub fn set_freg(&mut self, r: FReg, m: TaintMask) {
        repop(&mut self.tainted_globals, self.fregs[r.index()], m);
        self.fregs[r.index()] = m;
        if self.prov_any {
            self.prov_fregs[r.index()] = ProvSet::EMPTY;
        }
    }

    /// Taints a general-purpose register as fault `p`'s injection site.
    pub fn set_reg_with_prov(&mut self, r: Reg, m: TaintMask, p: ProvSet) {
        repop(&mut self.tainted_globals, self.regs[r.index()], m);
        self.regs[r.index()] = m;
        if !p.is_empty() {
            self.prov_any = true;
        }
        if self.prov_any {
            self.prov_regs[r.index()] = if m.is_tainted() { p } else { ProvSet::EMPTY };
        }
    }

    /// Taints an FP register as fault `p`'s injection site.
    pub fn set_freg_with_prov(&mut self, r: FReg, m: TaintMask, p: ProvSet) {
        repop(&mut self.tainted_globals, self.fregs[r.index()], m);
        self.fregs[r.index()] = m;
        if !p.is_empty() {
            self.prov_any = true;
        }
        if self.prov_any {
            self.prov_fregs[r.index()] = if m.is_tainted() { p } else { ProvSet::EMPTY };
        }
    }

    /// A general-purpose register's provenance.
    pub fn reg_prov(&self, r: Reg) -> ProvSet {
        self.prov_regs[r.index()]
    }

    /// An FP register's provenance.
    pub fn freg_prov(&self, r: FReg) -> ProvSet {
        self.prov_fregs[r.index()]
    }

    /// Shadow memory (physical-address keyed).
    pub fn mem(&self) -> &ShadowMem {
        &self.mem
    }

    /// Mutable shadow memory. Direct mask writes bypass provenance; pair
    /// them with [`TaintState::set_prov_byte`] when provenance matters.
    pub fn mem_mut(&mut self) -> &mut ShadowMem {
        &mut self.mem
    }

    /// Provenance shadow memory.
    pub fn prov_mem(&self) -> &ProvMem {
        &self.prov_mem
    }

    /// The provenance of one physical byte.
    pub fn prov_byte(&self, paddr: u64) -> ProvSet {
        if !self.prov_any {
            return ProvSet::EMPTY;
        }
        self.prov_mem.byte(paddr)
    }

    /// Sets (or clears) the provenance of one physical byte.
    pub fn set_prov_byte(&mut self, paddr: u64, p: ProvSet) {
        if !p.is_empty() {
            self.prov_any = true;
        }
        if self.prov_any {
            self.prov_mem.set_byte(paddr, p);
        }
    }

    /// Union provenance of the 8 bytes at `paddr` (the provenance of an
    /// 8-byte guest load).
    pub fn prov_load8(&self, paddr: u64) -> ProvSet {
        if !self.prov_any {
            return ProvSet::EMPTY;
        }
        self.prov_mem.load8(paddr)
    }

    /// Stores provenance `p` over the 8 bytes at `paddr`, byte-gated by
    /// `mask`: bytes whose taint byte is clean get empty provenance.
    pub fn prov_store8(&mut self, paddr: u64, mask: TaintMask, p: ProvSet) {
        if !p.is_empty() {
            self.prov_any = true;
        }
        if !self.prov_any {
            return;
        }
        for i in 0..8u64 {
            let bp = if mask.byte(i as usize) != 0 {
                p
            } else {
                ProvSet::EMPTY
            };
            self.prov_mem.set_byte(paddr + i, bp);
        }
    }

    /// True once any non-empty provenance has been recorded.
    pub fn prov_any(&self) -> bool {
        self.prov_any
    }

    /// Total tainted register bits across both files (diagnostics).
    pub fn tainted_reg_bits(&self) -> u32 {
        self.regs.iter().map(|m| m.count()).sum::<u32>()
            + self.fregs.iter().map(|m| m.count()).sum::<u32>()
    }

    /// True when *memory* carries no taint and no provenance: the engine's
    /// taint-idle fast-path gate for guest loads and clean stores. Two
    /// counter reads, no hashing.
    ///
    /// Registers/temps may still be tainted while this holds — that is
    /// fine: a load from idle memory produces a clean mask regardless, and
    /// a store of a tainted temp is excluded from the fast path by its own
    /// mask check.
    pub fn mem_idle(&self) -> bool {
        self.mem.is_idle() && (!self.prov_any || self.prov_mem.provenanced_bytes() == 0)
    }

    /// True when *nothing* carries taint or provenance — no register, no
    /// temp, no memory byte. Four counter reads, no scanning. While this
    /// holds, every propagation is clean-in ⇒ clean-out (see
    /// [`TaintPolicy::propagate`]) and the engine may skip per-op shadow
    /// bookkeeping entirely; only an injector can break the regime.
    pub fn fully_idle(&self) -> bool {
        self.tainted_globals == 0 && self.tainted_locals == 0 && self.mem_idle()
    }

    /// True when no register, temp or memory byte carries taint.
    pub fn is_fully_clean(&self) -> bool {
        self.tainted_reg_bits() == 0
            && self.locals.iter().all(|m| m.is_clean())
            && self.mem.tainted_bytes() == 0
    }

    /// Removes all taint and provenance (registers, temps and memory).
    pub fn clear(&mut self) {
        self.regs = [TaintMask::CLEAN; NUM_REGS];
        self.fregs = [TaintMask::CLEAN; NUM_FREGS];
        self.locals.clear();
        self.mem.clear();
        self.prov_regs = [ProvSet::EMPTY; NUM_REGS];
        self.prov_fregs = [ProvSet::EMPTY; NUM_FREGS];
        self.prov_locals.clear();
        self.prov_mem.clear();
        self.prov_any = false;
        self.tainted_globals = 0;
        self.tainted_locals = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temps_are_clean_at_block_start() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.set_temp(Temp::Local(3), TaintMask::ALL);
        s.begin_block(8);
        assert!(s.temp(Temp::Local(3)).is_clean());
    }

    #[test]
    fn globals_survive_blocks() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.set_reg(Reg::R4, TaintMask::bit(7));
        s.begin_block(2);
        assert_eq!(s.temp(Temp::reg(Reg::R4)), TaintMask::bit(7));
        assert_eq!(s.reg(Reg::R4), TaintMask::bit(7));
    }

    #[test]
    fn freg_and_reg_files_are_distinct() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.set_freg(FReg::F2, TaintMask::ALL);
        assert!(s.reg(Reg::R2).is_clean());
        assert_eq!(s.freg(FReg::F2), TaintMask::ALL);
    }

    #[test]
    fn fully_clean_accounting() {
        let mut s = TaintState::new(TaintPolicy::Conservative);
        assert!(s.is_fully_clean());
        s.mem_mut().set_byte(100, 1);
        assert!(!s.is_fully_clean());
        s.clear();
        assert!(s.is_fully_clean());
    }

    #[test]
    fn out_of_range_local_write_grows() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.begin_block(1);
        s.set_temp(Temp::Local(5), TaintMask::bit(1));
        assert_eq!(s.temp(Temp::Local(5)), TaintMask::bit(1));
    }

    #[test]
    fn provenance_follows_propagation() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        let p = ProvSet::single(0);
        s.set_reg_with_prov(Reg::R1, TaintMask::bit(3), p);
        assert!(s.prov_any());
        assert_eq!(s.reg_prov(Reg::R1), p);
        // Binary result inherits the operand union.
        s.set_temp2(
            Temp::reg(Reg::R2),
            TaintMask::bit(3),
            Temp::reg(Reg::R1),
            Temp::reg(Reg::R0),
        );
        assert_eq!(s.reg_prov(Reg::R2), p);
        // Clean result drops provenance.
        s.set_temp2(
            Temp::reg(Reg::R2),
            TaintMask::CLEAN,
            Temp::reg(Reg::R1),
            Temp::reg(Reg::R0),
        );
        assert_eq!(s.reg_prov(Reg::R2), ProvSet::EMPTY);
    }

    #[test]
    fn set_temp_clears_provenance_at_destination() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.set_reg_with_prov(Reg::R1, TaintMask::ALL, ProvSet::single(2));
        s.set_temp(Temp::reg(Reg::R1), TaintMask::bit(0));
        assert_eq!(s.reg_prov(Reg::R1), ProvSet::EMPTY);
    }

    #[test]
    fn destination_aliasing_operand_keeps_provenance() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        let p = ProvSet::single(1);
        s.set_reg_with_prov(Reg::R3, TaintMask::ALL, p);
        // d aliases a: provenance must be read before the write.
        s.set_temp2(
            Temp::reg(Reg::R3),
            TaintMask::ALL,
            Temp::reg(Reg::R3),
            Temp::reg(Reg::R0),
        );
        assert_eq!(s.reg_prov(Reg::R3), p);
    }

    #[test]
    fn prov_store8_is_mask_gated() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        let p = ProvSet::single(0);
        // Only byte 1 of the mask is tainted.
        s.prov_store8(0x100, TaintMask(0xff00), p);
        assert_eq!(s.prov_byte(0x100), ProvSet::EMPTY);
        assert_eq!(s.prov_byte(0x101), p);
        assert_eq!(s.prov_load8(0x100), p);
    }

    #[test]
    fn clear_resets_prov_gate() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.set_prov_byte(7, ProvSet::single(4));
        assert!(s.prov_any());
        s.clear();
        assert!(!s.prov_any());
        assert_eq!(s.prov_mem().provenanced_bytes(), 0);
    }
}

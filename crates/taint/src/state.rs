//! Whole-CPU taint state: shadow registers, shadow temporaries and shadow
//! memory under one policy.

use crate::{ShadowMem, TaintMask, TaintPolicy};
use chaser_isa::{FReg, Reg, NUM_FREGS, NUM_REGS};
use chaser_tcg::{Global, Temp};

/// Shadow state for one guest process plus the node's physical memory.
///
/// The execution engine in `chaser-vm` drives this in lock-step with the
/// value computation: for every IR op it reads operand masks, calls
/// [`TaintPolicy::propagate`], and writes the result mask back.
#[derive(Debug, Clone)]
pub struct TaintState {
    policy: TaintPolicy,
    regs: [TaintMask; NUM_REGS],
    fregs: [TaintMask; NUM_FREGS],
    locals: Vec<TaintMask>,
    mem: ShadowMem,
}

impl TaintState {
    /// A fully clean state under `policy`.
    pub fn new(policy: TaintPolicy) -> TaintState {
        TaintState {
            policy,
            regs: [TaintMask::CLEAN; NUM_REGS],
            fregs: [TaintMask::CLEAN; NUM_FREGS],
            locals: Vec::new(),
            mem: ShadowMem::new(),
        }
    }

    /// The active propagation policy.
    pub fn policy(&self) -> TaintPolicy {
        self.policy
    }

    /// True when the taint machinery is active at all.
    pub fn is_enabled(&self) -> bool {
        self.policy != TaintPolicy::Disabled
    }

    /// Prepares the local-temp shadow for a translation block with
    /// `n_locals` temporaries (all clean: temps never outlive a block).
    pub fn begin_block(&mut self, n_locals: u16) {
        self.locals.clear();
        self.locals.resize(n_locals as usize, TaintMask::CLEAN);
    }

    /// Reads the mask of an IR operand.
    pub fn temp(&self, t: Temp) -> TaintMask {
        match t {
            Temp::Global(Global::Reg(r)) => self.regs[r.index()],
            Temp::Global(Global::FReg(r)) => self.fregs[r.index()],
            Temp::Local(i) => self.locals.get(i as usize).copied().unwrap_or_default(),
        }
    }

    /// Writes the mask of an IR operand.
    pub fn set_temp(&mut self, t: Temp, m: TaintMask) {
        match t {
            Temp::Global(Global::Reg(r)) => self.regs[r.index()] = m,
            Temp::Global(Global::FReg(r)) => self.fregs[r.index()] = m,
            Temp::Local(i) => {
                let i = i as usize;
                if i >= self.locals.len() {
                    self.locals.resize(i + 1, TaintMask::CLEAN);
                }
                self.locals[i] = m;
            }
        }
    }

    /// Reads a general-purpose register's mask.
    pub fn reg(&self, r: Reg) -> TaintMask {
        self.regs[r.index()]
    }

    /// Taints (or cleans) a general-purpose register — an injection source.
    pub fn set_reg(&mut self, r: Reg, m: TaintMask) {
        self.regs[r.index()] = m;
    }

    /// Reads an FP register's mask.
    pub fn freg(&self, r: FReg) -> TaintMask {
        self.fregs[r.index()]
    }

    /// Taints (or cleans) an FP register — an injection source.
    pub fn set_freg(&mut self, r: FReg, m: TaintMask) {
        self.fregs[r.index()] = m;
    }

    /// Shadow memory (physical-address keyed).
    pub fn mem(&self) -> &ShadowMem {
        &self.mem
    }

    /// Mutable shadow memory.
    pub fn mem_mut(&mut self) -> &mut ShadowMem {
        &mut self.mem
    }

    /// Total tainted register bits across both files (diagnostics).
    pub fn tainted_reg_bits(&self) -> u32 {
        self.regs.iter().map(|m| m.count()).sum::<u32>()
            + self.fregs.iter().map(|m| m.count()).sum::<u32>()
    }

    /// True when no register, temp or memory byte carries taint.
    pub fn is_fully_clean(&self) -> bool {
        self.tainted_reg_bits() == 0
            && self.locals.iter().all(|m| m.is_clean())
            && self.mem.tainted_bytes() == 0
    }

    /// Removes all taint (registers, temps and memory).
    pub fn clear(&mut self) {
        self.regs = [TaintMask::CLEAN; NUM_REGS];
        self.fregs = [TaintMask::CLEAN; NUM_FREGS];
        self.locals.clear();
        self.mem.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temps_are_clean_at_block_start() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.set_temp(Temp::Local(3), TaintMask::ALL);
        s.begin_block(8);
        assert!(s.temp(Temp::Local(3)).is_clean());
    }

    #[test]
    fn globals_survive_blocks() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.set_reg(Reg::R4, TaintMask::bit(7));
        s.begin_block(2);
        assert_eq!(s.temp(Temp::reg(Reg::R4)), TaintMask::bit(7));
        assert_eq!(s.reg(Reg::R4), TaintMask::bit(7));
    }

    #[test]
    fn freg_and_reg_files_are_distinct() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.set_freg(FReg::F2, TaintMask::ALL);
        assert!(s.reg(Reg::R2).is_clean());
        assert_eq!(s.freg(FReg::F2), TaintMask::ALL);
    }

    #[test]
    fn fully_clean_accounting() {
        let mut s = TaintState::new(TaintPolicy::Conservative);
        assert!(s.is_fully_clean());
        s.mem_mut().set_byte(100, 1);
        assert!(!s.is_fully_clean());
        s.clear();
        assert!(s.is_fully_clean());
    }

    #[test]
    fn out_of_range_local_write_grows() {
        let mut s = TaintState::new(TaintPolicy::Precise);
        s.begin_block(1);
        s.set_temp(Temp::Local(5), TaintMask::bit(1));
        assert_eq!(s.temp(Temp::Local(5)), TaintMask::bit(1));
    }
}

//! Per-value bit-level taint masks.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// The taint of one 64-bit value: bit `i` set means bit `i` of the value is
/// tainted (derived from an injected fault).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TaintMask(pub u64);

impl TaintMask {
    /// No bits tainted.
    pub const CLEAN: TaintMask = TaintMask(0);
    /// All 64 bits tainted.
    pub const ALL: TaintMask = TaintMask(u64::MAX);

    /// A mask with a single bit set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn bit(bit: u32) -> TaintMask {
        assert!(bit < 64, "bit index {bit} out of range");
        TaintMask(1u64 << bit)
    }

    /// True when at least one bit is tainted.
    pub fn is_tainted(self) -> bool {
        self.0 != 0
    }

    /// True when no bit is tainted.
    pub fn is_clean(self) -> bool {
        self.0 == 0
    }

    /// Number of tainted bits.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// The taint of byte `i` (0 = least significant) of the value.
    pub fn byte(self, i: usize) -> u8 {
        debug_assert!(i < 8);
        (self.0 >> (8 * i)) as u8
    }

    /// Assembles a value mask from 8 per-byte masks (little-endian).
    pub fn from_bytes(bytes: [u8; 8]) -> TaintMask {
        TaintMask(u64::from_le_bytes(bytes))
    }

    /// Spreads taint upward from the lowest tainted bit — the carry-chain
    /// approximation used for additive arithmetic.
    pub fn spread_up(self) -> TaintMask {
        if self.0 == 0 {
            TaintMask::CLEAN
        } else {
            TaintMask(u64::MAX << self.0.trailing_zeros())
        }
    }

    /// `ALL` when any bit is tainted, else `CLEAN`.
    pub fn saturate(self) -> TaintMask {
        if self.0 == 0 {
            TaintMask::CLEAN
        } else {
            TaintMask::ALL
        }
    }
}

impl BitOr for TaintMask {
    type Output = TaintMask;
    fn bitor(self, rhs: TaintMask) -> TaintMask {
        TaintMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for TaintMask {
    fn bitor_assign(&mut self, rhs: TaintMask) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for TaintMask {
    type Output = TaintMask;
    fn bitand(self, rhs: TaintMask) -> TaintMask {
        TaintMask(self.0 & rhs.0)
    }
}

impl fmt::Display for TaintMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for TaintMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for TaintMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_extraction_round_trips() {
        let m = TaintMask(0x0102_0304_0506_0708);
        let bytes: [u8; 8] = std::array::from_fn(|i| m.byte(i));
        assert_eq!(TaintMask::from_bytes(bytes), m);
        assert_eq!(m.byte(0), 0x08);
        assert_eq!(m.byte(7), 0x01);
    }

    #[test]
    fn spread_up_covers_carry_chain() {
        assert_eq!(TaintMask::bit(0).spread_up(), TaintMask::ALL);
        assert_eq!(TaintMask::bit(63).spread_up(), TaintMask(1 << 63));
        assert_eq!(TaintMask(0b1100).spread_up(), TaintMask(u64::MAX << 2));
        assert_eq!(TaintMask::CLEAN.spread_up(), TaintMask::CLEAN);
    }

    #[test]
    fn saturate_is_all_or_nothing() {
        assert_eq!(TaintMask::CLEAN.saturate(), TaintMask::CLEAN);
        assert_eq!(TaintMask::bit(17).saturate(), TaintMask::ALL);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = TaintMask::bit(64);
    }
}

//! Taint propagation policies.

use crate::TaintMask;
use serde::{Deserialize, Serialize};

/// The operation kind being propagated through, with the value context the
/// precise policy needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropKind {
    /// Plain copy (`mov`, loads into registers keep the memory mask as-is).
    Mov,
    /// Bitwise and; carries both operand *values*.
    And {
        /// Left operand value.
        a: u64,
        /// Right operand value.
        b: u64,
    },
    /// Bitwise or; carries both operand values.
    Or {
        /// Left operand value.
        a: u64,
        /// Right operand value.
        b: u64,
    },
    /// Bitwise xor.
    Xor,
    /// Addition / subtraction (carry chain spreads taint upward).
    AddSub,
    /// Multiplication.
    Mul,
    /// Division / remainder (mixes bits downward: saturating).
    Div,
    /// Left shift; `amount` is `Some` when the shift count is untainted.
    Shl {
        /// Effective shift amount when statically clean.
        amount: Option<u32>,
    },
    /// Logical right shift.
    Shr {
        /// Effective shift amount when statically clean.
        amount: Option<u32>,
    },
    /// Arithmetic right shift.
    Sar {
        /// Effective shift amount when statically clean.
        amount: Option<u32>,
    },
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Floating-point helper (unary or binary) — Chaser's FP extension.
    Fp,
    /// Int↔float conversion helpers.
    Cvt,
}

/// How aggressively taint propagates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaintPolicy {
    /// DECAF-style value-aware bitwise propagation.
    Precise,
    /// Whole-value propagation: any tainted input bit taints every output
    /// bit. Never under-taints relative to `Precise`.
    Conservative,
    /// No propagation at all — the whole taint machinery is off, like
    /// running DECAF++ with elastic tainting disabled. This is the paper's
    /// "fault propagation tracing disabled" configuration (its Fig. 10
    /// baseline for the tracing-overhead comparison).
    Disabled,
}

impl TaintPolicy {
    /// Computes the output mask for a (possibly unary) operation.
    ///
    /// For unary operations pass [`TaintMask::CLEAN`] as `tb`. Both policies
    /// guarantee *clean-in ⇒ clean-out*: if every input mask is clean the
    /// result is clean (taint is only ever created by an injector).
    pub fn propagate(self, kind: PropKind, ta: TaintMask, tb: TaintMask) -> TaintMask {
        let union = ta | tb;
        if union.is_clean() || self == TaintPolicy::Disabled {
            return TaintMask::CLEAN;
        }
        match self {
            TaintPolicy::Disabled => TaintMask::CLEAN,
            TaintPolicy::Conservative => union.saturate(),
            TaintPolicy::Precise => match kind {
                PropKind::Mov => ta,
                PropKind::Xor | PropKind::Not => union,
                PropKind::And { a, b } => {
                    // A bit of the result is tainted if that bit is tainted
                    // in one operand and not masked off by a clean 0 in the
                    // other (a clean 0 forces the output bit to 0).
                    TaintMask((ta.0 & tb.0) | (ta.0 & b) | (tb.0 & a))
                }
                PropKind::Or { a, b } => {
                    // Dual rule: a clean 1 forces the output bit to 1.
                    TaintMask((ta.0 & tb.0) | (ta.0 & !b) | (tb.0 & !a))
                }
                PropKind::AddSub | PropKind::Neg | PropKind::Mul => union.spread_up(),
                PropKind::Div => union.saturate(),
                PropKind::Shl { amount } => match amount {
                    Some(c) => TaintMask(ta.0 << (c & 63)),
                    None => union.saturate(),
                },
                PropKind::Shr { amount } => match amount {
                    Some(c) => TaintMask(ta.0 >> (c & 63)),
                    None => union.saturate(),
                },
                PropKind::Sar { amount } => match amount {
                    Some(c) => {
                        let c = c & 63;
                        let mut m = ta.0 >> c;
                        // A tainted sign bit replicates into the vacated
                        // high bits.
                        if ta.0 & (1 << 63) != 0 && c > 0 {
                            m |= !0u64 << (64 - c);
                        }
                        TaintMask(m)
                    }
                    None => union.saturate(),
                },
                PropKind::Fp | PropKind::Cvt => union.saturate(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: TaintPolicy = TaintPolicy::Precise;
    const C: TaintPolicy = TaintPolicy::Conservative;

    #[test]
    fn clean_in_clean_out_for_every_kind() {
        let kinds = [
            PropKind::Mov,
            PropKind::And { a: !0, b: !0 },
            PropKind::Or { a: 0, b: 0 },
            PropKind::Xor,
            PropKind::AddSub,
            PropKind::Mul,
            PropKind::Div,
            PropKind::Shl { amount: Some(3) },
            PropKind::Shr { amount: None },
            PropKind::Sar { amount: Some(1) },
            PropKind::Neg,
            PropKind::Not,
            PropKind::Fp,
            PropKind::Cvt,
        ];
        for policy in [P, C] {
            for kind in kinds {
                assert_eq!(
                    policy.propagate(kind, TaintMask::CLEAN, TaintMask::CLEAN),
                    TaintMask::CLEAN,
                    "{policy:?}/{kind:?}"
                );
            }
        }
    }

    #[test]
    fn precise_and_clears_taint_under_clean_zero() {
        // b is a clean constant 0 in the tainted bit's position: output bit
        // is forced to 0 so the taint dies.
        let ta = TaintMask::bit(4);
        let out = P.propagate(PropKind::And { a: 0x10, b: 0x00 }, ta, TaintMask::CLEAN);
        assert!(out.is_clean());
        // b has a 1 in that position: taint survives.
        let out = P.propagate(PropKind::And { a: 0x10, b: 0x10 }, ta, TaintMask::CLEAN);
        assert_eq!(out, ta);
    }

    #[test]
    fn precise_or_clears_taint_under_clean_one() {
        let ta = TaintMask::bit(4);
        let out = P.propagate(PropKind::Or { a: 0x10, b: 0x10 }, ta, TaintMask::CLEAN);
        assert!(out.is_clean());
        let out = P.propagate(PropKind::Or { a: 0x10, b: 0x00 }, ta, TaintMask::CLEAN);
        assert_eq!(out, ta);
    }

    #[test]
    fn addition_spreads_upward_only() {
        let out = P.propagate(PropKind::AddSub, TaintMask::bit(8), TaintMask::CLEAN);
        assert_eq!(out, TaintMask(u64::MAX << 8));
    }

    #[test]
    fn constant_shifts_move_the_mask() {
        let ta = TaintMask::bit(8);
        assert_eq!(
            P.propagate(PropKind::Shl { amount: Some(4) }, ta, TaintMask::CLEAN),
            TaintMask::bit(12)
        );
        assert_eq!(
            P.propagate(PropKind::Shr { amount: Some(4) }, ta, TaintMask::CLEAN),
            TaintMask::bit(4)
        );
    }

    #[test]
    fn sar_replicates_tainted_sign() {
        let ta = TaintMask::bit(63);
        let out = P.propagate(PropKind::Sar { amount: Some(4) }, ta, TaintMask::CLEAN);
        assert_eq!(out.0, 0xF800_0000_0000_0000);
    }

    #[test]
    fn tainted_shift_amount_saturates() {
        let out = P.propagate(
            PropKind::Shl { amount: None },
            TaintMask::CLEAN,
            TaintMask::bit(0),
        );
        assert_eq!(out, TaintMask::ALL);
    }

    #[test]
    fn fp_taints_whole_result() {
        let out = P.propagate(PropKind::Fp, TaintMask::bit(51), TaintMask::CLEAN);
        assert_eq!(out, TaintMask::ALL);
    }

    #[test]
    fn conservative_never_under_taints_precise() {
        // For a sample of kinds and masks, conservative ⊇ precise.
        let masks = [
            TaintMask::CLEAN,
            TaintMask::bit(0),
            TaintMask::bit(63),
            TaintMask(0xff00),
        ];
        let kinds = [
            PropKind::Mov,
            PropKind::Xor,
            PropKind::AddSub,
            PropKind::Mul,
            PropKind::Fp,
            PropKind::And {
                a: 0xffff,
                b: 0xffff,
            },
            PropKind::Shl { amount: Some(7) },
        ];
        for ta in masks {
            for tb in masks {
                for kind in kinds {
                    let p = P.propagate(kind, ta, tb);
                    let c = C.propagate(kind, ta, tb);
                    assert_eq!(p.0 & !c.0, 0, "precise ⊆ conservative: {kind:?}");
                }
            }
        }
    }
}

//! # chaser-taint
//!
//! A bitwise dynamic taint engine modelled on DECAF's, extended — as the
//! Chaser paper describes — with propagation rules for floating-point
//! helper calls.
//!
//! Taint is tracked at *bit* granularity through CPU registers, IR
//! temporaries and (physical) guest memory. Chaser marks injected faults as
//! taint sources: the bits the injector flipped become the initial
//! [`TaintMask`], and the engine's per-IR-op rules carry those bits through
//! the program. The VM's execution engine consults [`TaintState`] on every
//! op; tainted memory loads and stores are reported back to Chaser's tracer
//! (the paper's `DECAF_READ_TAINTMEM_CB` / `DECAF_WRITE_TAINTMEM_CB`).
//!
//! Two propagation policies are provided (an ablation the paper's design
//! discussion motivates):
//!
//! * [`TaintPolicy::Precise`] — value-aware bitwise rules (DECAF-style):
//!   logical ops use controlling-value rules, arithmetic spreads upward from
//!   the lowest tainted bit (carry propagation), constant shifts shift the
//!   mask.
//! * [`TaintPolicy::Conservative`] — any tainted input bit taints all 64
//!   output bits.
//!
//! Floating-point helpers always taint the whole result when any operand
//! bit is tainted: an exponent or mantissa bit influences every bit of an
//! IEEE-754 result in general.
//!
//! # Example
//!
//! ```
//! use chaser_taint::{TaintMask, TaintPolicy, TaintState};
//!
//! let mut taint = TaintState::new(TaintPolicy::Precise);
//! // Mark one bit of physical address 0x1000 as a fault site.
//! taint.mem_mut().store8(0x1000, TaintMask::bit(5));
//! assert_eq!(taint.mem().tainted_bytes(), 1);
//! assert!(taint.mem().load8(0x1000).is_tainted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mask;
mod policy;
mod prov;
mod shadow;
mod state;

pub use mask::TaintMask;
pub use policy::{PropKind, TaintPolicy};
pub use prov::{ProvMem, ProvSet};
pub use shadow::ShadowMem;
pub use state::TaintState;

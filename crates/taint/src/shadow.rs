//! Shadow memory: per-byte taint over guest *physical* memory.

use crate::TaintMask;
use std::collections::HashMap;

const SHADOW_PAGE: usize = 4096;

/// Byte-granular shadow memory, keyed by physical address.
///
/// DECAF shadows physical memory so taint survives context switches and is
/// shared by every mapping of a page; Chaser logs both virtual and physical
/// addresses of tainted accesses. Pages are allocated lazily — a fault
/// campaign touches a tiny fraction of guest RAM.
///
/// The structure maintains a running count of tainted bytes, which is what
/// the paper's Fig. 7 samples every 100K instructions.
#[derive(Debug, Default, Clone)]
pub struct ShadowMem {
    pages: HashMap<u64, Box<[u8; SHADOW_PAGE]>>,
    tainted_bytes: usize,
}

impl ShadowMem {
    /// An empty shadow.
    pub fn new() -> ShadowMem {
        ShadowMem::default()
    }

    /// The taint bits of the byte at physical address `paddr`.
    pub fn byte(&self, paddr: u64) -> u8 {
        let (page, off) = split(paddr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Sets the taint bits of the byte at `paddr`.
    pub fn set_byte(&mut self, paddr: u64, mask: u8) {
        let (page, off) = split(paddr);
        if mask == 0 {
            // Avoid allocating a page just to store zero.
            if let Some(p) = self.pages.get_mut(&page) {
                if p[off] != 0 {
                    self.tainted_bytes -= 1;
                    p[off] = 0;
                }
            }
            return;
        }
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; SHADOW_PAGE]));
        if p[off] == 0 {
            self.tainted_bytes += 1;
        }
        p[off] = mask;
    }

    /// Loads the taint of the 8 bytes at `paddr` as a value mask
    /// (little-endian, matching guest loads).
    pub fn load8(&self, paddr: u64) -> TaintMask {
        let bytes: [u8; 8] = std::array::from_fn(|i| self.byte(paddr + i as u64));
        TaintMask::from_bytes(bytes)
    }

    /// Stores a value mask over the 8 bytes at `paddr`.
    pub fn store8(&mut self, paddr: u64, mask: TaintMask) {
        for i in 0..8 {
            self.set_byte(paddr + i as u64, mask.byte(i));
        }
    }

    /// Current number of tainted bytes (the Fig. 7 series).
    pub fn tainted_bytes(&self) -> usize {
        self.tainted_bytes
    }

    /// Clears all taint.
    pub fn clear(&mut self) {
        self.pages.clear();
        self.tainted_bytes = 0;
    }

    /// Visits every shadow page holding at least one tainted byte, in
    /// ascending physical-page order, as `(page_base_paddr, masks)`.
    ///
    /// Allocated-but-fully-clean pages (taint written then cleared) are
    /// skipped, so the visit sequence is a pure function of the tainted
    /// set — two executions with identical taint contents visit identical
    /// sequences regardless of allocation history. This is what state
    /// digests hash.
    pub fn for_each_tainted_page(&self, mut f: impl FnMut(u64, &[u8])) {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        for page in keys {
            let bytes = &self.pages[&page][..];
            if bytes.iter().any(|&b| b != 0) {
                f(page * SHADOW_PAGE as u64, bytes);
            }
        }
    }
}

fn split(paddr: u64) -> (u64, usize) {
    (
        paddr / SHADOW_PAGE as u64,
        (paddr % SHADOW_PAGE as u64) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_memory_reads_clean() {
        let s = ShadowMem::new();
        assert_eq!(s.byte(0), 0);
        assert!(s.load8(0x1234).is_clean());
        assert_eq!(s.tainted_bytes(), 0);
    }

    #[test]
    fn store_load_round_trip_across_page_boundary() {
        let mut s = ShadowMem::new();
        let paddr = SHADOW_PAGE as u64 - 4; // straddles two pages
        let mask = TaintMask(0x1122_3344_5566_7788);
        s.store8(paddr, mask);
        assert_eq!(s.load8(paddr), mask);
        assert_eq!(s.tainted_bytes(), 8);
    }

    #[test]
    fn overwriting_with_clean_data_untaints() {
        let mut s = ShadowMem::new();
        s.store8(64, TaintMask::ALL);
        assert_eq!(s.tainted_bytes(), 8);
        s.store8(64, TaintMask::CLEAN);
        assert_eq!(s.tainted_bytes(), 0);
        assert!(s.load8(64).is_clean());
    }

    #[test]
    fn tainted_byte_count_tracks_distinct_bytes() {
        let mut s = ShadowMem::new();
        s.set_byte(10, 0b1);
        s.set_byte(10, 0b10); // same byte, still one
        s.set_byte(11, 0b1);
        assert_eq!(s.tainted_bytes(), 2);
        s.set_byte(10, 0);
        assert_eq!(s.tainted_bytes(), 1);
    }

    #[test]
    fn partial_store_keeps_other_bytes() {
        let mut s = ShadowMem::new();
        s.store8(0, TaintMask(0x0000_0000_0000_00ff)); // byte 0 tainted
        s.set_byte(3, 0xf0);
        let m = s.load8(0);
        assert_eq!(m.byte(0), 0xff);
        assert_eq!(m.byte(3), 0xf0);
        assert_eq!(m.byte(7), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = ShadowMem::new();
        s.store8(0, TaintMask::ALL);
        s.clear();
        assert_eq!(s.tainted_bytes(), 0);
        assert!(s.load8(0).is_clean());
    }
}

//! Shadow memory: per-byte taint over guest *physical* memory.

use crate::TaintMask;
use std::collections::HashMap;

const SHADOW_PAGE: usize = 4096;

/// Byte-granular shadow memory, keyed by physical address.
///
/// DECAF shadows physical memory so taint survives context switches and is
/// shared by every mapping of a page; Chaser logs both virtual and physical
/// addresses of tainted accesses. Pages are allocated lazily — a fault
/// campaign touches a tiny fraction of guest RAM.
///
/// The structure maintains a running count of tainted bytes, which is what
/// the paper's Fig. 7 samples every 100K instructions, and a per-page
/// tainted-byte count, which is what the engine's taint-idle fast path
/// consults to skip shadow work entirely while no taint is live.
#[derive(Debug, Default, Clone)]
pub struct ShadowMem {
    pages: HashMap<u64, ShadowPage>,
    tainted_bytes: usize,
}

/// One lazily-allocated shadow page plus a summary count of its tainted
/// bytes, so page-level "any taint here?" queries cost one map lookup.
#[derive(Debug, Clone)]
struct ShadowPage {
    masks: Box<[u8; SHADOW_PAGE]>,
    tainted: u32,
}

impl ShadowPage {
    fn new() -> ShadowPage {
        ShadowPage {
            masks: Box::new([0u8; SHADOW_PAGE]),
            tainted: 0,
        }
    }
}

impl ShadowMem {
    /// An empty shadow.
    pub fn new() -> ShadowMem {
        ShadowMem::default()
    }

    /// The taint bits of the byte at physical address `paddr`.
    pub fn byte(&self, paddr: u64) -> u8 {
        let (page, off) = split(paddr);
        self.pages.get(&page).map_or(0, |p| p.masks[off])
    }

    /// Sets the taint bits of the byte at `paddr`.
    pub fn set_byte(&mut self, paddr: u64, mask: u8) {
        let (page, off) = split(paddr);
        if mask == 0 {
            // Avoid allocating a page just to store zero.
            if let Some(p) = self.pages.get_mut(&page) {
                if p.masks[off] != 0 {
                    self.tainted_bytes -= 1;
                    p.tainted -= 1;
                    p.masks[off] = 0;
                }
            }
            return;
        }
        let p = self.pages.entry(page).or_insert_with(ShadowPage::new);
        if p.masks[off] == 0 {
            self.tainted_bytes += 1;
            p.tainted += 1;
        }
        p.masks[off] = mask;
    }

    /// Loads the taint of the 8 bytes at `paddr` as a value mask
    /// (little-endian, matching guest loads). One page lookup when the
    /// access stays inside a shadow page.
    pub fn load8(&self, paddr: u64) -> TaintMask {
        let (page, off) = split(paddr);
        if off <= SHADOW_PAGE - 8 {
            match self.pages.get(&page) {
                None => TaintMask::CLEAN,
                Some(p) if p.tainted == 0 => TaintMask::CLEAN,
                Some(p) => TaintMask::from_bytes(
                    p.masks[off..off + 8].try_into().expect("8 in-page bytes"),
                ),
            }
        } else {
            let bytes: [u8; 8] = std::array::from_fn(|i| self.byte(paddr + i as u64));
            TaintMask::from_bytes(bytes)
        }
    }

    /// Stores a value mask over the 8 bytes at `paddr`. One page lookup
    /// when the access stays inside a shadow page.
    pub fn store8(&mut self, paddr: u64, mask: TaintMask) {
        let (page, off) = split(paddr);
        if off > SHADOW_PAGE - 8 {
            for i in 0..8 {
                self.set_byte(paddr + i as u64, mask.byte(i));
            }
            return;
        }
        if mask.is_clean() {
            // Clearing: only touch a page that exists and carries taint.
            if let Some(p) = self.pages.get_mut(&page) {
                if p.tainted == 0 {
                    return;
                }
                for i in 0..8 {
                    if p.masks[off + i] != 0 {
                        self.tainted_bytes -= 1;
                        p.tainted -= 1;
                        p.masks[off + i] = 0;
                    }
                }
            }
            return;
        }
        let p = self.pages.entry(page).or_insert_with(ShadowPage::new);
        for i in 0..8 {
            let m = mask.byte(i);
            let old = p.masks[off + i];
            match (old == 0, m == 0) {
                (true, false) => {
                    self.tainted_bytes += 1;
                    p.tainted += 1;
                }
                (false, true) => {
                    self.tainted_bytes -= 1;
                    p.tainted -= 1;
                }
                _ => {}
            }
            p.masks[off + i] = m;
        }
    }

    /// Current number of tainted bytes (the Fig. 7 series).
    pub fn tainted_bytes(&self) -> usize {
        self.tainted_bytes
    }

    /// True when no byte anywhere carries taint — the engine's taint-idle
    /// fast-path gate. Invariant: `tainted_bytes == 0` ⇔ every allocated
    /// page's summary count is zero ⇔ every mask byte is zero.
    pub fn is_idle(&self) -> bool {
        self.tainted_bytes == 0
    }

    /// Number of tainted bytes in the shadow page containing `paddr` (the
    /// per-page taint summary).
    pub fn page_tainted_bytes(&self, paddr: u64) -> u32 {
        let (page, _) = split(paddr);
        self.pages.get(&page).map_or(0, |p| p.tainted)
    }

    /// Clears all taint.
    pub fn clear(&mut self) {
        self.pages.clear();
        self.tainted_bytes = 0;
    }

    /// Visits every shadow page holding at least one tainted byte, in
    /// ascending physical-page order, as `(page_base_paddr, masks)`.
    ///
    /// Allocated-but-fully-clean pages (taint written then cleared) are
    /// skipped, so the visit sequence is a pure function of the tainted
    /// set — two executions with identical taint contents visit identical
    /// sequences regardless of allocation history. This is what state
    /// digests hash.
    pub fn for_each_tainted_page(&self, mut f: impl FnMut(u64, &[u8])) {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        for page in keys {
            let p = &self.pages[&page];
            if p.tainted > 0 {
                f(page * SHADOW_PAGE as u64, &p.masks[..]);
            }
        }
    }
}

fn split(paddr: u64) -> (u64, usize) {
    (
        paddr / SHADOW_PAGE as u64,
        (paddr % SHADOW_PAGE as u64) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_memory_reads_clean() {
        let s = ShadowMem::new();
        assert_eq!(s.byte(0), 0);
        assert!(s.load8(0x1234).is_clean());
        assert_eq!(s.tainted_bytes(), 0);
    }

    #[test]
    fn store_load_round_trip_across_page_boundary() {
        let mut s = ShadowMem::new();
        let paddr = SHADOW_PAGE as u64 - 4; // straddles two pages
        let mask = TaintMask(0x1122_3344_5566_7788);
        s.store8(paddr, mask);
        assert_eq!(s.load8(paddr), mask);
        assert_eq!(s.tainted_bytes(), 8);
    }

    #[test]
    fn overwriting_with_clean_data_untaints() {
        let mut s = ShadowMem::new();
        s.store8(64, TaintMask::ALL);
        assert_eq!(s.tainted_bytes(), 8);
        s.store8(64, TaintMask::CLEAN);
        assert_eq!(s.tainted_bytes(), 0);
        assert!(s.load8(64).is_clean());
    }

    #[test]
    fn tainted_byte_count_tracks_distinct_bytes() {
        let mut s = ShadowMem::new();
        s.set_byte(10, 0b1);
        s.set_byte(10, 0b10); // same byte, still one
        s.set_byte(11, 0b1);
        assert_eq!(s.tainted_bytes(), 2);
        s.set_byte(10, 0);
        assert_eq!(s.tainted_bytes(), 1);
    }

    #[test]
    fn partial_store_keeps_other_bytes() {
        let mut s = ShadowMem::new();
        s.store8(0, TaintMask(0x0000_0000_0000_00ff)); // byte 0 tainted
        s.set_byte(3, 0xf0);
        let m = s.load8(0);
        assert_eq!(m.byte(0), 0xff);
        assert_eq!(m.byte(3), 0xf0);
        assert_eq!(m.byte(7), 0);
    }

    #[test]
    fn page_summaries_track_per_page_counts() {
        let mut s = ShadowMem::new();
        assert!(s.is_idle());
        s.store8(0, TaintMask::ALL);
        s.set_byte(SHADOW_PAGE as u64 + 5, 0x1);
        assert!(!s.is_idle());
        assert_eq!(s.page_tainted_bytes(100), 8);
        assert_eq!(s.page_tainted_bytes(SHADOW_PAGE as u64), 1);
        assert_eq!(s.page_tainted_bytes(2 * SHADOW_PAGE as u64), 0);
        s.store8(0, TaintMask::CLEAN);
        s.set_byte(SHADOW_PAGE as u64 + 5, 0);
        assert!(s.is_idle());
        assert_eq!(s.page_tainted_bytes(0), 0);
    }

    #[test]
    fn straddling_store_updates_both_page_summaries() {
        let mut s = ShadowMem::new();
        let paddr = SHADOW_PAGE as u64 - 4;
        s.store8(paddr, TaintMask::ALL);
        assert_eq!(s.page_tainted_bytes(0), 4);
        assert_eq!(s.page_tainted_bytes(SHADOW_PAGE as u64), 4);
        s.store8(paddr, TaintMask::CLEAN);
        assert!(s.is_idle());
    }

    #[test]
    fn partial_overwrite_keeps_counts_consistent() {
        let mut s = ShadowMem::new();
        s.store8(16, TaintMask(0x0000_0000_ffff_ffff)); // bytes 0..4 tainted
        assert_eq!(s.tainted_bytes(), 4);
        // Overwrite with the complementary half: bytes 4..8 tainted.
        s.store8(16, TaintMask(0xffff_ffff_0000_0000));
        assert_eq!(s.tainted_bytes(), 4);
        assert_eq!(s.page_tainted_bytes(16), 4);
        assert_eq!(s.byte(16), 0);
        assert_eq!(s.byte(20), 0xff);
    }

    #[test]
    fn cleared_pages_are_skipped_by_page_visit() {
        let mut s = ShadowMem::new();
        s.store8(0, TaintMask::ALL);
        s.store8(SHADOW_PAGE as u64, TaintMask::ALL);
        s.store8(0, TaintMask::CLEAN); // page 0 allocated but clean
        let mut seen = Vec::new();
        s.for_each_tainted_page(|base, _| seen.push(base));
        assert_eq!(seen, vec![SHADOW_PAGE as u64]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = ShadowMem::new();
        s.store8(0, TaintMask::ALL);
        s.clear();
        assert_eq!(s.tainted_bytes(), 0);
        assert!(s.load8(0).is_clean());
    }
}

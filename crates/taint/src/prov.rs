//! Fault provenance: *which* injected fault(s) a tainted location derives
//! from, carried in parallel with the taint masks.
//!
//! Taint masks answer "is this bit corrupted"; provenance answers "by which
//! injection". Chaser runs are single-fault, but merged taint (reductions,
//! re-injection campaigns, warm-started runs replaying multiple faults)
//! can mix sources, so provenance is a *set* of fault ids. The set is a
//! fixed 32-bit bitmask: fault ids 0..=30 get their own bit and everything
//! above shares bit 31, so membership stays `Copy` and costs one `or` per
//! propagation step.

use std::collections::HashMap;

/// A set of fault (injection) ids, as a 32-bit bitmask.
///
/// Ids `0..=30` map to their own bit; ids `>= 31` saturate into bit 31, so
/// a pathological campaign step with dozens of live faults still tracks
/// "some late fault" without growing the representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ProvSet(u32);

impl ProvSet {
    /// The empty set: no fault contributed to this location.
    pub const EMPTY: ProvSet = ProvSet(0);

    /// The set containing exactly fault `id` (saturating at bit 31).
    pub fn single(id: u32) -> ProvSet {
        ProvSet(1u32 << id.min(31))
    }

    /// Set union.
    pub fn union(self, other: ProvSet) -> ProvSet {
        ProvSet(self.0 | other.0)
    }

    /// True when no fault id is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when fault `id` (saturated like [`ProvSet::single`]) is present.
    pub fn contains(self, id: u32) -> bool {
        self.0 & ProvSet::single(id).0 != 0
    }

    /// The raw bitmask (for serialization).
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Rebuilds a set from [`ProvSet::bits`].
    pub fn from_bits(bits: u32) -> ProvSet {
        ProvSet(bits)
    }

    /// The member ids in ascending order (bit 31 reported as id 31, the
    /// saturation bucket).
    pub fn ids(self) -> Vec<u32> {
        (0..32).filter(|&i| self.0 & (1 << i) != 0).collect()
    }
}

/// Per-byte provenance over guest *physical* memory, the provenance twin of
/// [`crate::ShadowMem`].
///
/// Keyed sparsely by byte address: provenance only ever exists where taint
/// exists, and a fault campaign taints a tiny fraction of guest RAM, so a
/// flat map beats page-granular shadowing here. The map holds an entry iff
/// the set is non-empty, which makes iteration order (and therefore state
/// digests) a pure function of contents.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProvMem {
    bytes: HashMap<u64, ProvSet>,
}

impl ProvMem {
    /// An empty provenance shadow.
    pub fn new() -> ProvMem {
        ProvMem::default()
    }

    /// The provenance of the byte at physical address `paddr`.
    pub fn byte(&self, paddr: u64) -> ProvSet {
        self.bytes.get(&paddr).copied().unwrap_or(ProvSet::EMPTY)
    }

    /// Sets (or, for the empty set, clears) the byte at `paddr`.
    pub fn set_byte(&mut self, paddr: u64, p: ProvSet) {
        if p.is_empty() {
            self.bytes.remove(&paddr);
        } else {
            self.bytes.insert(paddr, p);
        }
    }

    /// Union of the provenance of the 8 bytes at `paddr`.
    pub fn load8(&self, paddr: u64) -> ProvSet {
        (0..8u64).fold(ProvSet::EMPTY, |acc, i| acc.union(self.byte(paddr + i)))
    }

    /// Number of bytes carrying provenance.
    pub fn provenanced_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Removes all provenance.
    pub fn clear(&mut self) {
        self.bytes.clear();
    }

    /// Visits every provenanced byte as `(paddr, set)` in ascending address
    /// order — the deterministic sequence state digests hash.
    pub fn for_each(&self, mut f: impl FnMut(u64, ProvSet)) {
        let mut keys: Vec<u64> = self.bytes.keys().copied().collect();
        keys.sort_unstable();
        for paddr in keys {
            f(paddr, self.bytes[&paddr]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_union_track_membership() {
        let p = ProvSet::single(0).union(ProvSet::single(3));
        assert!(p.contains(0));
        assert!(p.contains(3));
        assert!(!p.contains(1));
        assert_eq!(p.ids(), vec![0, 3]);
    }

    #[test]
    fn large_ids_saturate_into_bit_31() {
        let p = ProvSet::single(31).union(ProvSet::single(1000));
        assert_eq!(p.ids(), vec![31]);
        assert!(p.contains(31));
        assert!(p.contains(1000)); // indistinguishable from 31 by design
    }

    #[test]
    fn empty_set_is_empty() {
        assert!(ProvSet::EMPTY.is_empty());
        assert!(!ProvSet::single(5).is_empty());
        assert_eq!(
            ProvSet::from_bits(ProvSet::single(5).bits()),
            ProvSet::single(5)
        );
    }

    #[test]
    fn mem_holds_entries_iff_nonempty() {
        let mut m = ProvMem::new();
        m.set_byte(100, ProvSet::single(2));
        assert_eq!(m.provenanced_bytes(), 1);
        assert_eq!(m.byte(100), ProvSet::single(2));
        m.set_byte(100, ProvSet::EMPTY);
        assert_eq!(m.provenanced_bytes(), 0);
        assert_eq!(m.byte(100), ProvSet::EMPTY);
    }

    #[test]
    fn load8_unions_bytes() {
        let mut m = ProvMem::new();
        m.set_byte(8, ProvSet::single(0));
        m.set_byte(15, ProvSet::single(4));
        assert_eq!(m.load8(8), ProvSet::single(0).union(ProvSet::single(4)));
        assert_eq!(m.load8(16), ProvSet::EMPTY);
    }

    #[test]
    fn for_each_is_sorted_and_content_pure() {
        let mut m = ProvMem::new();
        m.set_byte(30, ProvSet::single(1));
        m.set_byte(10, ProvSet::single(0));
        m.set_byte(20, ProvSet::single(2));
        m.set_byte(20, ProvSet::EMPTY); // cleared entries never visited
        let mut seen = Vec::new();
        m.for_each(|paddr, p| seen.push((paddr, p)));
        assert_eq!(
            seen,
            vec![(10, ProvSet::single(0)), (30, ProvSet::single(1))]
        );
    }
}

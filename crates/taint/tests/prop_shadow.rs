//! Property tests: shadow memory agrees with a naive model map, and the
//! tainted-byte counter is always exact.

use chaser_taint::{ShadowMem, TaintMask};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    SetByte(u64, u8),
    Store8(u64, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Confine addresses to a few pages so operations actually collide.
    let addr = 0u64..3 * 4096;
    prop_oneof![
        (addr.clone(), any::<u8>()).prop_map(|(a, m)| Op::SetByte(a, m)),
        (addr, any::<u64>()).prop_map(|(a, m)| Op::Store8(a, m)),
    ]
}

proptest! {
    #[test]
    fn shadow_matches_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut shadow = ShadowMem::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            match *op {
                Op::SetByte(addr, mask) => {
                    shadow.set_byte(addr, mask);
                    if mask == 0 {
                        model.remove(&addr);
                    } else {
                        model.insert(addr, mask);
                    }
                }
                Op::Store8(addr, mask) => {
                    shadow.store8(addr, TaintMask(mask));
                    for i in 0..8u64 {
                        let byte = (mask >> (8 * i)) as u8;
                        if byte == 0 {
                            model.remove(&(addr + i));
                        } else {
                            model.insert(addr + i, byte);
                        }
                    }
                }
            }
        }
        // Counter is exact.
        prop_assert_eq!(shadow.tainted_bytes(), model.len());
        // Every model byte reads back; spot-check some clean bytes too.
        for (&addr, &mask) in &model {
            prop_assert_eq!(shadow.byte(addr), mask);
        }
        for addr in (0..3 * 4096).step_by(97) {
            prop_assert_eq!(shadow.byte(addr), model.get(&addr).copied().unwrap_or(0));
        }
    }

    #[test]
    fn load8_equals_byte_assembly(stores in proptest::collection::vec((0u64..4096, any::<u64>()), 1..50), probe in 0u64..4096) {
        let mut shadow = ShadowMem::new();
        for (addr, mask) in &stores {
            shadow.store8(*addr, TaintMask(*mask));
        }
        let assembled: [u8; 8] = std::array::from_fn(|i| shadow.byte(probe + i as u64));
        prop_assert_eq!(shadow.load8(probe), TaintMask::from_bytes(assembled));
    }
}

//! # chaser-workloads
//!
//! Guest-ISA implementations of the workloads the Chaser paper evaluates:
//!
//! * [`matvec`] — the MPI matrix-vector product (`b = A·x`) the paper uses
//!   to demonstrate MPI fault injection (4 ranks, faults on the master);
//! * [`clamr`] — `clamr_sim`, a domain-decomposed 1-D shallow-water solver
//!   with halo exchange and a mass-conservation checker, standing in for
//!   the DOE CLAMR mini-app (see DESIGN.md for the substitution argument);
//! * [`bfs`], [`kmeans`], [`lud`] — the three Rodinia-style single-process
//!   benchmarks (compare-heavy BFS, FP-heavy k-means, FP+compare LU
//!   decomposition).
//!
//! Every workload provides:
//!
//! * `program(&cfg)` — the assembled guest [`Program`];
//! * `reference_output(&cfg)` — a host-side reference computation of the
//!   bytes the golden run writes to its result file. Guest FP instructions
//!   evaluate with the same IEEE-754 `f64` semantics in the same order, so
//!   golden guest output matches the reference *bitwise*.
//!
//! The [`rtlib`] module supplies the guest-side MPI wrapper functions
//! (`mpi_send`, `mpi_recv`, …) whose entry addresses Chaser hooks, plus
//! small I/O helpers.
//!
//! [`Program`]: chaser_isa::Program

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod clamr;
pub mod kmeans;
pub mod lud;
pub mod matvec;
pub mod rtlib;

//! k-means: Lloyd's algorithm — the FP-distance-kernel Rodinia benchmark
//! the paper targets with floating-point faults.

use crate::rtlib;
use chaser_isa::{Asm, Cond, FReg, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// k-means problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansConfig {
    /// Point count.
    pub npoints: usize,
    /// Dimensions per point.
    pub dim: usize,
    /// Cluster count.
    pub k: usize,
    /// Lloyd iterations.
    pub iters: usize,
    /// Seed for the generated points.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> KmeansConfig {
        KmeansConfig {
            npoints: 64,
            dim: 2,
            k: 4,
            iters: 8,
            seed: 13,
        }
    }
}

/// Deterministically generates the input points (clustered blobs so the
/// algorithm has real structure to find).
pub fn points(cfg: &KmeansConfig) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut pts = Vec::with_capacity(cfg.npoints * cfg.dim);
    for i in 0..cfg.npoints {
        let blob = (i % cfg.k) as f64 * 10.0;
        for _ in 0..cfg.dim {
            pts.push(blob + rng.gen_range(-1.0..1.0));
        }
    }
    pts
}

/// Host-side k-means mirroring the guest's arithmetic order; returns the
/// final centroids.
pub fn reference_centroids(cfg: &KmeansConfig) -> Vec<f64> {
    let pts = points(cfg);
    let (n, d, k) = (cfg.npoints, cfg.dim, cfg.k);
    let mut cent: Vec<f64> = pts[..k * d].to_vec();
    for _ in 0..cfg.iters {
        let mut sum = vec![0.0f64; k * d];
        let mut cnt = vec![0i64; k];
        for p in 0..n {
            let mut best = 0usize;
            let mut bestd = f64::INFINITY;
            for c in 0..k {
                let mut dist = 0.0f64;
                for j in 0..d {
                    let diff = pts[p * d + j] - cent[c * d + j];
                    dist += diff * diff;
                }
                if dist < bestd {
                    bestd = dist;
                    best = c;
                }
            }
            cnt[best] += 1;
            for j in 0..d {
                sum[best * d + j] += pts[p * d + j];
            }
        }
        for c in 0..k {
            if cnt[c] > 0 {
                for j in 0..d {
                    cent[c * d + j] = sum[c * d + j] / (cnt[c] as f64);
                }
            }
        }
    }
    cent
}

/// The bytes the golden run writes: the centroid matrix.
pub fn reference_output(cfg: &KmeansConfig) -> Vec<u8> {
    reference_centroids(cfg)
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

/// Assembles the guest program.
pub fn program(cfg: &KmeansConfig) -> Program {
    let (n, d, k) = (cfg.npoints as i64, cfg.dim as i64, cfg.k as i64);
    let pts = points(cfg);
    let cent0: Vec<f64> = pts[..(k * d) as usize].to_vec();

    let mut a = Asm::new("kmeans");
    rtlib::emit(&mut a);
    a.set_entry("main");

    a.data_f64("pts", &pts);
    a.data_f64("cent", &cent0);
    a.bss("sum", (k * d * 8) as u64);
    a.bss("cnt", (k * 8) as u64);

    a.label("main");
    a.movi(Reg::R7, 0); // iteration
    a.label("iter_loop");
    a.cmpi(Reg::R7, cfg.iters as i64);
    a.jcc(Cond::Ge, "iters_done");

    // Zero the accumulators.
    a.movi(Reg::R9, 0);
    a.fmovi(FReg::F0, 0.0);
    a.label("zero_sum");
    a.cmpi(Reg::R9, k * d);
    a.jcc(Cond::Ge, "zero_cnt_init");
    a.lea(Reg::R12, "sum");
    a.fstx(FReg::F0, Reg::R12, Reg::R9);
    a.addi(Reg::R9, 1);
    a.jmp("zero_sum");
    a.label("zero_cnt_init");
    a.movi(Reg::R9, 0);
    a.movi(Reg::R13, 0);
    a.label("zero_cnt");
    a.cmpi(Reg::R9, k);
    a.jcc(Cond::Ge, "assign_init");
    a.lea(Reg::R12, "cnt");
    a.stx(Reg::R13, Reg::R12, Reg::R9);
    a.addi(Reg::R9, 1);
    a.jmp("zero_cnt");

    // Assignment phase.
    a.label("assign_init");
    a.movi(Reg::R8, 0); // p
    a.label("point_loop");
    a.cmpi(Reg::R8, n);
    a.jcc(Cond::Ge, "update_init");
    a.movi(Reg::R11, 0); // best
    a.fmovi(FReg::F1, f64::INFINITY); // bestd
    a.movi(Reg::R9, 0); // c
    a.label("cent_loop");
    a.cmpi(Reg::R9, k);
    a.jcc(Cond::Ge, "cent_done");
    a.fmovi(FReg::F2, 0.0); // dist
    a.movi(Reg::R10, 0); // j
    a.label("dim_loop");
    a.cmpi(Reg::R10, d);
    a.jcc(Cond::Ge, "dim_done");
    // diff = pts[p*d + j] - cent[c*d + j]
    a.mov(Reg::R12, Reg::R8);
    a.muli(Reg::R12, d);
    a.add(Reg::R12, Reg::R10);
    a.lea(Reg::R13, "pts");
    a.fldx(FReg::F3, Reg::R13, Reg::R12);
    a.mov(Reg::R12, Reg::R9);
    a.muli(Reg::R12, d);
    a.add(Reg::R12, Reg::R10);
    a.lea(Reg::R13, "cent");
    a.fldx(FReg::F4, Reg::R13, Reg::R12);
    a.fsub(FReg::F3, FReg::F4);
    a.fmul(FReg::F3, FReg::F3);
    a.fadd(FReg::F2, FReg::F3);
    a.addi(Reg::R10, 1);
    a.jmp("dim_loop");
    a.label("dim_done");
    a.fcmp(FReg::F2, FReg::F1);
    a.jcc(Cond::Ge, "not_better");
    a.fmov(FReg::F1, FReg::F2);
    a.mov(Reg::R11, Reg::R9);
    a.label("not_better");
    a.addi(Reg::R9, 1);
    a.jmp("cent_loop");
    a.label("cent_done");
    // cnt[best] += 1
    a.lea(Reg::R13, "cnt");
    a.ldx(Reg::R12, Reg::R13, Reg::R11);
    a.addi(Reg::R12, 1);
    a.stx(Reg::R12, Reg::R13, Reg::R11);
    // sum[best*d + j] += pts[p*d + j]
    a.movi(Reg::R10, 0);
    a.label("acc_loop");
    a.cmpi(Reg::R10, d);
    a.jcc(Cond::Ge, "acc_done");
    a.mov(Reg::R12, Reg::R8);
    a.muli(Reg::R12, d);
    a.add(Reg::R12, Reg::R10);
    a.lea(Reg::R13, "pts");
    a.fldx(FReg::F3, Reg::R13, Reg::R12);
    a.mov(Reg::R12, Reg::R11);
    a.muli(Reg::R12, d);
    a.add(Reg::R12, Reg::R10);
    a.lea(Reg::R13, "sum");
    a.fldx(FReg::F4, Reg::R13, Reg::R12);
    a.fadd(FReg::F4, FReg::F3);
    a.fstx(FReg::F4, Reg::R13, Reg::R12);
    a.addi(Reg::R10, 1);
    a.jmp("acc_loop");
    a.label("acc_done");
    a.addi(Reg::R8, 1);
    a.jmp("point_loop");

    // Update phase.
    a.label("update_init");
    a.movi(Reg::R9, 0); // c
    a.label("upd_loop");
    a.cmpi(Reg::R9, k);
    a.jcc(Cond::Ge, "upd_done");
    a.lea(Reg::R13, "cnt");
    a.ldx(Reg::R12, Reg::R13, Reg::R9);
    a.cmpi(Reg::R12, 0);
    a.jcc(Cond::Eq, "upd_next"); // empty cluster keeps its centroid
    a.cvtif(FReg::F5, Reg::R12); // (f64)count
    a.movi(Reg::R10, 0);
    a.label("upd_dim");
    a.cmpi(Reg::R10, d);
    a.jcc(Cond::Ge, "upd_next");
    a.mov(Reg::R12, Reg::R9);
    a.muli(Reg::R12, d);
    a.add(Reg::R12, Reg::R10);
    a.lea(Reg::R13, "sum");
    a.fldx(FReg::F3, Reg::R13, Reg::R12);
    a.fdiv(FReg::F3, FReg::F5);
    a.lea(Reg::R13, "cent");
    a.fstx(FReg::F3, Reg::R13, Reg::R12);
    a.addi(Reg::R10, 1);
    a.jmp("upd_dim");
    a.label("upd_next");
    a.addi(Reg::R9, 1);
    a.jmp("upd_loop");
    a.label("upd_done");

    a.addi(Reg::R7, 1);
    a.jmp("iter_loop");
    a.label("iters_done");

    a.lea(Reg::R1, "cent");
    a.movi(Reg::R2, k * d * 8);
    a.call("write_out");
    a.exit(0);

    a.assemble().expect("kmeans assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_finds_blob_centres() {
        let cfg = KmeansConfig::default();
        let cent = reference_centroids(&cfg);
        // Blobs sit near 0, 10, 20, 30 per coordinate; each centroid must
        // be near one of them.
        for c in 0..cfg.k {
            let v = cent[c * cfg.dim];
            let near = [0.0, 10.0, 20.0, 30.0].iter().any(|b| (v - b).abs() < 2.0);
            assert!(near, "centroid {c} at {v} is not near any blob");
        }
    }

    #[test]
    fn program_assembles() {
        let p = program(&KmeansConfig::default());
        assert_eq!(p.name(), "kmeans");
        assert!(p.insn_count() > 80);
    }

    #[test]
    fn reference_output_is_centroid_matrix() {
        let cfg = KmeansConfig::default();
        assert_eq!(reference_output(&cfg).len(), cfg.k * cfg.dim * 8);
    }
}

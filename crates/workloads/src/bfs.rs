//! BFS: breadth-first search over a CSR graph — the compare-heavy Rodinia
//! benchmark the paper targets with `cmp` faults.

use crate::rtlib;
use chaser_isa::{Asm, Cond, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// BFS problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsConfig {
    /// Node count.
    pub nodes: usize,
    /// Extra random out-edges per node (a ring edge is always added, so
    /// the graph is connected).
    pub extra_edges: usize,
    /// Seed for the generated graph.
    pub seed: u64,
}

impl Default for BfsConfig {
    fn default() -> BfsConfig {
        BfsConfig {
            nodes: 128,
            extra_edges: 3,
            seed: 11,
        }
    }
}

/// Deterministically generates the CSR graph `(offsets, adjacency)`.
pub fn graph(cfg: &BfsConfig) -> (Vec<u64>, Vec<u64>) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut adj = Vec::new();
    for u in 0..n {
        offsets.push(adj.len() as u64);
        // Ring edge keeps the graph connected.
        adj.push(((u + 1) % n) as u64);
        for _ in 0..cfg.extra_edges {
            adj.push(rng.gen_range(0..n) as u64);
        }
    }
    offsets.push(adj.len() as u64);
    (offsets, adj)
}

/// Host-side BFS mirroring the guest's queue order; returns per-node
/// levels (`-1` = unreachable, impossible here thanks to the ring).
pub fn reference_levels(cfg: &BfsConfig) -> Vec<i64> {
    let (off, adj) = graph(cfg);
    let mut level = vec![-1i64; cfg.nodes];
    level[0] = 0;
    let mut queue = vec![0usize];
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let lvl = level[u] + 1;
        for &edge in &adj[off[u] as usize..off[u + 1] as usize] {
            let v = edge as usize;
            if level[v] == -1 {
                level[v] = lvl;
                queue.push(v);
            }
        }
    }
    level
}

/// The bytes the golden run writes: the level array, little-endian i64s.
pub fn reference_output(cfg: &BfsConfig) -> Vec<u8> {
    reference_levels(cfg)
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect()
}

/// Assembles the guest program.
pub fn program(cfg: &BfsConfig) -> Program {
    let n = cfg.nodes as i64;
    let (off, adj) = graph(cfg);
    let mut level0 = vec![-1i64; cfg.nodes];
    level0[0] = 0;

    let mut a = Asm::new("bfs");
    rtlib::emit(&mut a);
    a.set_entry("main");

    a.data_u64("off", &off);
    a.data_u64("adj", &adj);
    a.data_i64("level", &level0);
    a.bss("queue", (cfg.nodes * 8) as u64);

    a.label("main");
    a.lea(Reg::R7, "queue");
    a.movi(Reg::R8, 0); // head
    a.movi(Reg::R9, 0); // tail
                        // push source 0
    a.movi(Reg::R10, 0);
    a.stx(Reg::R10, Reg::R7, Reg::R9);
    a.addi(Reg::R9, 1);

    a.label("bfs_loop");
    a.cmp(Reg::R8, Reg::R9);
    a.jcc(Cond::Ge, "bfs_done");
    a.ldx(Reg::R10, Reg::R7, Reg::R8); // u
    a.addi(Reg::R8, 1);
    a.lea(Reg::R11, "level");
    a.ldx(Reg::R12, Reg::R11, Reg::R10);
    a.addi(Reg::R12, 1); // lvl = level[u] + 1
    a.lea(Reg::R13, "off");
    a.ldx(Reg::R14, Reg::R13, Reg::R10); // e = off[u]
    a.mov(Reg::R4, Reg::R10);
    a.addi(Reg::R4, 1);
    a.ldx(Reg::R4, Reg::R13, Reg::R4); // end = off[u+1]

    a.label("edge_loop");
    a.cmp(Reg::R14, Reg::R4);
    a.jcc(Cond::Ge, "bfs_loop");
    a.lea(Reg::R5, "adj");
    a.ldx(Reg::R5, Reg::R5, Reg::R14); // v
    a.lea(Reg::R6, "level");
    a.ldx(Reg::R3, Reg::R6, Reg::R5); // level[v]
    a.cmpi(Reg::R3, -1);
    a.jcc(Cond::Ne, "edge_next");
    a.stx(Reg::R12, Reg::R6, Reg::R5); // level[v] = lvl
    a.stx(Reg::R5, Reg::R7, Reg::R9); // queue[tail++] = v
    a.addi(Reg::R9, 1);
    a.label("edge_next");
    a.addi(Reg::R14, 1);
    a.jmp("edge_loop");

    a.label("bfs_done");
    a.lea(Reg::R1, "level");
    a.movi(Reg::R2, n * 8);
    a.call("write_out");
    a.exit(0);

    a.assemble().expect("bfs assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_connected_by_construction() {
        let cfg = BfsConfig::default();
        let levels = reference_levels(&cfg);
        assert!(levels.iter().all(|&l| l >= 0), "ring keeps all reachable");
        assert_eq!(levels[0], 0);
    }

    #[test]
    fn program_assembles() {
        let p = program(&BfsConfig::default());
        assert_eq!(p.name(), "bfs");
        assert!(p.insn_count() > 30);
    }

    #[test]
    fn reference_output_is_n_levels() {
        let cfg = BfsConfig::default();
        assert_eq!(reference_output(&cfg).len(), cfg.nodes * 8);
    }
}

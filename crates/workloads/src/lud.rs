//! LUD: in-place LU decomposition (Doolittle, no pivoting) — the Rodinia
//! benchmark the paper targets with combined FP and `cmp` faults.

use crate::rtlib;
use chaser_isa::{Asm, Cond, FReg, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// LUD problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LudConfig {
    /// Matrix dimension (n×n).
    pub n: usize,
    /// Seed for the generated matrix.
    pub seed: u64,
}

impl Default for LudConfig {
    fn default() -> LudConfig {
        LudConfig { n: 16, seed: 17 }
    }
}

/// Deterministically generates a diagonally dominant input matrix (so the
/// factorization needs no pivoting).
pub fn matrix(cfg: &LudConfig) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let mut m: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for i in 0..n {
        m[i * n + i] += n as f64;
    }
    m
}

/// Host-side LU mirroring the guest's loop order; returns the packed LU
/// factors in place.
pub fn reference_lu(cfg: &LudConfig) -> Vec<f64> {
    let n = cfg.n;
    let mut m = matrix(cfg);
    for k in 0..n {
        let pivot = m[k * n + k];
        for i in k + 1..n {
            m[i * n + k] /= pivot;
            let factor = m[i * n + k];
            for j in k + 1..n {
                m[i * n + j] -= factor * m[k * n + j];
            }
        }
    }
    m
}

/// The bytes the golden run writes: the packed LU matrix.
pub fn reference_output(cfg: &LudConfig) -> Vec<u8> {
    reference_lu(cfg)
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

/// Assembles the guest program.
pub fn program(cfg: &LudConfig) -> Program {
    let n = cfg.n as i64;
    let m = matrix(cfg);

    let mut a = Asm::new("lud");
    rtlib::emit(&mut a);
    a.set_entry("main");

    a.data_f64("A", &m);

    a.label("main");
    a.movi(Reg::R7, 0); // k
    a.label("k_loop");
    a.cmpi(Reg::R7, n);
    a.jcc(Cond::Ge, "k_done");
    // pivot = A[k][k]
    a.mov(Reg::R12, Reg::R7);
    a.muli(Reg::R12, n);
    a.add(Reg::R12, Reg::R7);
    a.lea(Reg::R13, "A");
    a.fldx(FReg::F0, Reg::R13, Reg::R12); // pivot
    a.mov(Reg::R8, Reg::R7);
    a.addi(Reg::R8, 1); // i = k+1
    a.label("i_loop");
    a.cmpi(Reg::R8, n);
    a.jcc(Cond::Ge, "i_done");
    // A[i][k] /= pivot; factor = A[i][k]
    a.mov(Reg::R12, Reg::R8);
    a.muli(Reg::R12, n);
    a.add(Reg::R12, Reg::R7);
    a.fldx(FReg::F1, Reg::R13, Reg::R12);
    a.fdiv(FReg::F1, FReg::F0);
    a.fstx(FReg::F1, Reg::R13, Reg::R12);
    // trailing update
    a.mov(Reg::R9, Reg::R7);
    a.addi(Reg::R9, 1); // j = k+1
    a.label("j_loop");
    a.cmpi(Reg::R9, n);
    a.jcc(Cond::Ge, "j_done");
    // A[i][j] -= factor * A[k][j]
    a.mov(Reg::R12, Reg::R7);
    a.muli(Reg::R12, n);
    a.add(Reg::R12, Reg::R9);
    a.fldx(FReg::F2, Reg::R13, Reg::R12); // A[k][j]
    a.fmul(FReg::F2, FReg::F1);
    a.mov(Reg::R12, Reg::R8);
    a.muli(Reg::R12, n);
    a.add(Reg::R12, Reg::R9);
    a.fldx(FReg::F3, Reg::R13, Reg::R12);
    a.fsub(FReg::F3, FReg::F2);
    a.fstx(FReg::F3, Reg::R13, Reg::R12);
    a.addi(Reg::R9, 1);
    a.jmp("j_loop");
    a.label("j_done");
    a.addi(Reg::R8, 1);
    a.jmp("i_loop");
    a.label("i_done");
    a.addi(Reg::R7, 1);
    a.jmp("k_loop");
    a.label("k_done");

    a.lea(Reg::R1, "A");
    a.movi(Reg::R2, n * n * 8);
    a.call("write_out");
    a.exit(0);

    a.assemble().expect("lud assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_factors_reconstruct_the_matrix() {
        let cfg = LudConfig { n: 8, seed: 3 };
        let n = cfg.n;
        let orig = matrix(&cfg);
        let lu = reference_lu(&cfg);
        // (L·U)[i][j] must match the original (within fp error).
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..=i.min(j) {
                    let l = if p == i { 1.0 } else { lu[i * n + p] };
                    let u = lu[p * n + j];
                    if p <= j && p <= i {
                        acc += l * u;
                    }
                }
                assert!(
                    (acc - orig[i * n + j]).abs() < 1e-9,
                    "LU reconstruction mismatch at ({i},{j}): {acc} vs {}",
                    orig[i * n + j]
                );
            }
        }
    }

    #[test]
    fn program_assembles() {
        let p = program(&LudConfig::default());
        assert_eq!(p.name(), "lud");
        assert!(p.insn_count() > 40);
    }
}

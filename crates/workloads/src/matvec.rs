//! Matvec: the MPI matrix-vector product (`b = A·x`) of the paper's case
//! study (Burkardt's `matvec_mpi`).
//!
//! Master-worker structure, like the original: rank 0 (the master)
//! broadcasts `x` and then *sends each row of `A`* to a worker
//! (`dest = 1 + row mod (size-1)`); workers compute the dot product and
//! send the row result back; the master assembles and writes `b`. The
//! master never computes — it coordinates, which is why the paper injects
//! faults into the master's `mov` instructions: they corrupt row data in
//! flight (propagating to the workers), buffer pointers (OS exceptions
//! inside the MPI library), or message arguments (MPI-detected errors) —
//! the three rows of the paper's Table III.

use crate::rtlib;
use chaser_isa::{Asm, Cond, FReg, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tag space for row payloads sent master → worker.
pub const TAG_BASE: i64 = 100;
/// Tag space for row-index headers sent master → worker.
pub const TAG_INDEX: i64 = 5_000;
/// Tag space for row results sent worker → master.
pub const TAG_RESULT: i64 = 10_000;

/// Matvec problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatvecConfig {
    /// Matrix dimension (n×n).
    pub n: usize,
    /// Number of MPI ranks: one master plus `ranks - 1` workers (the paper
    /// uses 4). Must be at least 2.
    pub ranks: u32,
    /// Seed for the generated `A` and `x`.
    pub seed: u64,
}

impl Default for MatvecConfig {
    fn default() -> MatvecConfig {
        MatvecConfig {
            n: 16,
            ranks: 4,
            seed: 7,
        }
    }
}

/// Deterministically generates the inputs for `cfg`.
pub fn inputs(cfg: &MatvecConfig) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let a: Vec<f64> = (0..cfg.n * cfg.n)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let x: Vec<f64> = (0..cfg.n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    (a, x)
}

/// The bytes the golden run's master writes to its result file: `b = A·x`
/// evaluated in guest order (ascending `j`, multiply-then-accumulate).
pub fn reference_output(cfg: &MatvecConfig) -> Vec<u8> {
    let (a, x) = inputs(cfg);
    let mut out = Vec::with_capacity(cfg.n * 8);
    for i in 0..cfg.n {
        let mut acc = 0.0f64;
        for j in 0..cfg.n {
            acc += a[i * cfg.n + j] * x[j];
        }
        out.extend_from_slice(&acc.to_bits().to_le_bytes());
    }
    out
}

/// Assembles the guest program (identical binary on every rank).
///
/// # Panics
///
/// Panics when `cfg.ranks < 2` — the master needs at least one worker.
pub fn program(cfg: &MatvecConfig) -> Program {
    assert!(cfg.ranks >= 2, "matvec needs a master and >= 1 worker");
    let n = cfg.n as i64;
    let (a_data, x_data) = inputs(cfg);

    let mut a = Asm::new("matvec");
    rtlib::emit(&mut a);
    a.set_entry("main");

    a.data_f64("A", &a_data);
    a.data_f64("x", &x_data);
    a.bss("b", (cfg.n * 8) as u64);
    a.bss("rowbuf", (cfg.n * 8) as u64);
    a.bss("sendbuf", 8);
    a.bss("recvbuf", 8);
    // The master's loop counters live in memory, as a compiler would spill
    // them: the resulting ld/st traffic through pointer registers is what
    // makes mov-class faults on the master land on addresses (the paper's
    // dominant OS-exception outcome).
    a.bss("i_var", 8);
    a.bss("j_var", 8);
    // Send staging: the master copies each row (and its index) into a
    // staging buffer before handing it to MPI, as real codes memcpy into
    // message buffers. Corrupting the copy corrupts the payload in
    // flight — the cross-rank propagation path of the paper's Table III.
    a.bss("stagebuf", (cfg.n * 8) as u64);
    a.bss("idxbuf", 8);
    // Worker-side results, indexed by the *received* row index (Burkardt's
    // workers return (index, value) pairs): a corrupted index crashes the
    // worker — the paper's "Slave Node failed" outcome.
    a.bss("res", (cfg.n * 8) as u64);

    a.label("main");
    a.call("mpi_init");
    a.call("mpi_comm_rank");
    a.mov(Reg::R7, Reg::R0); // rank
    a.call("mpi_comm_size");
    a.mov(Reg::R8, Reg::R0); // size

    // Broadcast x from the master.
    a.lea(Reg::R1, "x");
    a.movi(Reg::R2, n);
    a.movi(Reg::R3, 2); // F64
    a.movi(Reg::R4, 0); // root
    a.call("mpi_bcast");

    a.cmpi(Reg::R7, 0);
    a.jcc(Cond::Ne, "worker");

    // ---- master: ship every row to its worker ----
    a.movi(Reg::R9, 0);
    a.lea(Reg::R12, "i_var");
    a.st(Reg::R9, Reg::R12, 0);
    a.label("send_rows");
    a.lea(Reg::R12, "i_var");
    a.ld(Reg::R9, Reg::R12, 0); // i
    a.cmpi(Reg::R9, n);
    a.jcc(Cond::Ge, "rows_sent");
    // dest = 1 + i % (size - 1)
    a.mov(Reg::R10, Reg::R9);
    a.mov(Reg::R11, Reg::R8);
    a.subi(Reg::R11, 1);
    a.rem(Reg::R10, Reg::R11);
    a.addi(Reg::R10, 1);
    // Stage and send the row-index header.
    a.lea(Reg::R1, "idxbuf");
    a.lea(Reg::R12, "i_var");
    a.ld(Reg::R13, Reg::R12, 0);
    a.st(Reg::R13, Reg::R1, 0);
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1); // I64
    a.mov(Reg::R4, Reg::R10);
    a.mov(Reg::R5, Reg::R9);
    a.addi(Reg::R5, TAG_INDEX);
    a.call("mpi_send");
    // Stage the row: copy A[i] into stagebuf word by word.
    a.lea(Reg::R14, "A");
    a.mov(Reg::R13, Reg::R9);
    a.muli(Reg::R13, n * 8);
    a.add(Reg::R14, Reg::R13);
    a.lea(Reg::R11, "stagebuf");
    a.movi(Reg::R12, 0);
    a.label("stage_loop");
    a.ldx(Reg::R13, Reg::R14, Reg::R12);
    a.stx(Reg::R13, Reg::R11, Reg::R12);
    a.addi(Reg::R12, 1);
    a.cmpi(Reg::R12, n);
    a.jcc(Cond::Lt, "stage_loop");
    // Send the staged row.
    a.lea(Reg::R1, "stagebuf");
    a.movi(Reg::R2, n);
    a.movi(Reg::R3, 2); // F64
    a.mov(Reg::R4, Reg::R10);
    a.lea(Reg::R12, "i_var");
    a.ld(Reg::R5, Reg::R12, 0);
    a.addi(Reg::R5, TAG_BASE);
    a.call("mpi_send");
    // i++ through memory
    a.lea(Reg::R12, "i_var");
    a.ld(Reg::R9, Reg::R12, 0);
    a.addi(Reg::R9, 1);
    a.st(Reg::R9, Reg::R12, 0);
    a.jmp("send_rows");
    a.label("rows_sent");

    // ---- master: collect the row results ----
    a.movi(Reg::R9, 0);
    a.lea(Reg::R12, "j_var");
    a.st(Reg::R9, Reg::R12, 0);
    a.label("recv_loop");
    a.lea(Reg::R12, "j_var");
    a.ld(Reg::R9, Reg::R12, 0);
    a.cmpi(Reg::R9, n);
    a.jcc(Cond::Ge, "recv_done");
    a.mov(Reg::R10, Reg::R9);
    a.mov(Reg::R11, Reg::R8);
    a.subi(Reg::R11, 1);
    a.rem(Reg::R10, Reg::R11);
    a.addi(Reg::R10, 1); // owner worker
    a.lea(Reg::R1, "recvbuf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 2);
    a.mov(Reg::R4, Reg::R10);
    a.mov(Reg::R5, Reg::R9);
    a.addi(Reg::R5, TAG_RESULT);
    a.call("mpi_recv");
    a.lea(Reg::R12, "recvbuf");
    a.fld(FReg::F0, Reg::R12, 0);
    a.lea(Reg::R12, "b");
    a.lea(Reg::R13, "j_var");
    a.ld(Reg::R9, Reg::R13, 0);
    a.fstx(FReg::F0, Reg::R12, Reg::R9);
    a.addi(Reg::R9, 1);
    a.st(Reg::R9, Reg::R13, 0);
    a.jmp("recv_loop");
    a.label("recv_done");

    // Write the result vector.
    a.lea(Reg::R1, "b");
    a.movi(Reg::R2, n * 8);
    a.call("write_out");
    a.call("mpi_finalize");
    a.exit(0);

    // ---- worker: receive my rows, return dot products ----
    a.label("worker");
    a.mov(Reg::R9, Reg::R7);
    a.subi(Reg::R9, 1); // first row = worker index
    a.label("worker_loop");
    a.cmpi(Reg::R9, n);
    a.jcc(Cond::Ge, "worker_done");
    // Receive the row-index header.
    a.lea(Reg::R1, "idxbuf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1); // I64
    a.movi(Reg::R4, 0);
    a.mov(Reg::R5, Reg::R9);
    a.addi(Reg::R5, TAG_INDEX);
    a.call("mpi_recv");
    // Receive row i into rowbuf.
    a.lea(Reg::R1, "rowbuf");
    a.movi(Reg::R2, n);
    a.movi(Reg::R3, 2);
    a.movi(Reg::R4, 0);
    a.mov(Reg::R5, Reg::R9);
    a.addi(Reg::R5, TAG_BASE);
    a.call("mpi_recv");
    // dot = rowbuf · x
    a.lea(Reg::R10, "rowbuf");
    a.lea(Reg::R11, "x");
    a.movi(Reg::R12, 0);
    a.fmovi(FReg::F0, 0.0);
    a.label("dot_loop");
    a.fldx(FReg::F1, Reg::R10, Reg::R12);
    a.fldx(FReg::F2, Reg::R11, Reg::R12);
    a.fmul(FReg::F1, FReg::F2);
    a.fadd(FReg::F0, FReg::F1);
    a.addi(Reg::R12, 1);
    a.cmpi(Reg::R12, n);
    a.jcc(Cond::Lt, "dot_loop");
    // File the result under the *received* index — a corrupted index from
    // the master is a wild store that kills this worker (SIGSEGV on a
    // slave node).
    a.lea(Reg::R13, "idxbuf");
    a.ld(Reg::R13, Reg::R13, 0);
    a.lea(Reg::R14, "res");
    a.fstx(FReg::F0, Reg::R14, Reg::R13);
    // Return the row result.
    a.lea(Reg::R1, "sendbuf");
    a.fst(FReg::F0, Reg::R1, 0);
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 2);
    a.movi(Reg::R4, 0);
    a.mov(Reg::R5, Reg::R9);
    a.addi(Reg::R5, TAG_RESULT);
    a.call("mpi_send");
    // Next of my rows.
    a.mov(Reg::R11, Reg::R8);
    a.subi(Reg::R11, 1);
    a.add(Reg::R9, Reg::R11);
    a.jmp("worker_loop");
    a.label("worker_done");
    a.call("mpi_finalize");
    a.exit(0);

    a.assemble().expect("matvec assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_assembles_with_symbols() {
        let cfg = MatvecConfig::default();
        let p = program(&cfg);
        assert_eq!(p.name(), "matvec");
        assert!(p.symbol("main").is_some());
        assert!(p.symbol("A").is_some());
        assert!(p.symbol("mpi_send").is_some());
        assert!(p.insn_count() > 50);
    }

    #[test]
    fn reference_output_is_deterministic_and_sized() {
        let cfg = MatvecConfig::default();
        assert_eq!(reference_output(&cfg), reference_output(&cfg));
        assert_eq!(reference_output(&cfg).len(), cfg.n * 8);
        let other = MatvecConfig {
            seed: 8,
            ..MatvecConfig::default()
        };
        assert_ne!(reference_output(&cfg), reference_output(&other));
    }

    #[test]
    #[should_panic(expected = "master and >= 1 worker")]
    fn single_rank_is_rejected() {
        let cfg = MatvecConfig {
            ranks: 1,
            ..MatvecConfig::default()
        };
        let _ = program(&cfg);
    }
}

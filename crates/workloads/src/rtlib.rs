//! The guest runtime library: MPI wrapper functions and I/O helpers.
//!
//! MPI wrappers follow the guest calling convention (arguments already in
//! `R1..=R6`, result in `R0`) and simply trap into the runtime. They exist
//! as *named functions* — rather than inlined hypercalls — because Chaser
//! hooks MPI by function entry address, exactly as the paper hooks
//! `MPI_Send`/`MPI_Recv` inside the guest to read `(buf, count, datatype,
//! tag, dest)` out of registers and stack.

use chaser_isa::{abi, Asm, Reg};

/// Emits the full runtime library. Call once per program; the entry label
/// must be selected with [`Asm::set_entry`] since the library occupies the
/// start of the text section.
pub fn emit(a: &mut Asm) {
    // ---- MPI wrappers ----
    a.label("mpi_init");
    a.hypercall(abi::MPI_INIT);
    a.ret();

    a.label("mpi_comm_rank");
    a.hypercall(abi::MPI_COMM_RANK);
    a.ret();

    a.label("mpi_comm_size");
    a.hypercall(abi::MPI_COMM_SIZE);
    a.ret();

    a.label(abi::symbols::MPI_SEND);
    a.hypercall(abi::MPI_SEND);
    a.ret();

    a.label(abi::symbols::MPI_RECV);
    a.hypercall(abi::MPI_RECV);
    a.ret();

    a.label("mpi_barrier");
    a.hypercall(abi::MPI_BARRIER);
    a.ret();

    a.label(abi::symbols::MPI_BCAST);
    a.hypercall(abi::MPI_BCAST);
    a.ret();

    a.label(abi::symbols::MPI_REDUCE);
    a.hypercall(abi::MPI_REDUCE);
    a.ret();

    a.label("mpi_allreduce");
    a.hypercall(abi::MPI_ALLREDUCE);
    a.ret();

    a.label("mpi_scatter");
    a.hypercall(abi::MPI_SCATTER);
    a.ret();

    a.label("mpi_gather");
    a.hypercall(abi::MPI_GATHER);
    a.ret();

    a.label("mpi_finalize");
    a.hypercall(abi::MPI_FINALIZE);
    a.ret();

    a.label("mpi_isend");
    a.hypercall(abi::MPI_ISEND);
    a.ret();

    a.label("mpi_irecv");
    a.hypercall(abi::MPI_IRECV);
    a.ret();

    a.label("mpi_wait");
    a.hypercall(abi::MPI_WAIT);
    a.ret();

    a.label("mpi_wtime");
    a.hypercall(abi::MPI_WTIME);
    a.ret();

    // ---- I/O helpers ----

    // write_out(ptr = R1, len = R2): write bytes to the result file (fd 3).
    a.label("write_out");
    a.mov(Reg::R3, Reg::R2);
    a.mov(Reg::R2, Reg::R1);
    a.movi(Reg::R1, abi::FD_OUTPUT as i64);
    a.hypercall(abi::SYS_WRITE);
    a.ret();

    // print_i64(value = R1): decimal + newline on stdout.
    a.label("print_i64");
    a.mov(Reg::R2, Reg::R1);
    a.movi(Reg::R1, abi::FD_STDOUT as i64);
    a.hypercall(abi::SYS_WRITE_I64);
    a.ret();

    // assert_fail(code = R1): abort via the application checker path.
    a.label("assert_fail");
    a.hypercall(abi::SYS_ASSERT_FAIL);
    a.ret(); // unreachable

    // exit(code = R1).
    a.label("exit");
    a.hypercall(abi::SYS_EXIT);
    a.ret(); // unreachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_isa::abi::symbols;

    #[test]
    fn rtlib_exports_the_hooked_symbols() {
        let mut a = Asm::new("t");
        emit(&mut a);
        a.label("main");
        a.exit(0);
        a.set_entry("main");
        let p = a.assemble().expect("assemble");
        for sym in [
            symbols::MPI_SEND,
            symbols::MPI_RECV,
            symbols::MPI_BCAST,
            symbols::MPI_REDUCE,
            "mpi_init",
            "mpi_finalize",
            "mpi_isend",
            "mpi_irecv",
            "mpi_wait",
            "mpi_wtime",
            "write_out",
            "assert_fail",
        ] {
            assert!(p.symbol(sym).is_some(), "missing rtlib symbol {sym}");
        }
    }
}

//! `clamr_sim`: a domain-decomposed 1-D shallow-water solver with a mass
//! conservation checker, standing in for the DOE CLAMR mini-app.
//!
//! Like CLAMR, it simulates the long-range propagation of a wave with the
//! shallow-water equations, checks a conservation law (total mass) during
//! the run, and writes the final field for result comparison. The solver
//! is a Lax–Friedrichs finite-volume scheme over a periodic 1-D domain
//! decomposed across MPI ranks, with per-step halo exchange via
//! send/recv — the communication pattern that lets injected faults
//! propagate between ranks. See DESIGN.md for the substitution argument
//! (full 2-D AMR is physics fidelity, not fault-path fidelity).
//!
//! Detection path: every `check_interval` steps the ranks all-reduce their
//! local mass; every rank compares against the initial mass and calls the
//! `assert_fail` checker when conservation is violated (or the mass became
//! NaN) — the paper's "CLAMR detected the injected fault" outcome.

use crate::rtlib;
use chaser_isa::{Asm, Cond, FReg, Program, Reg};

/// Halo-exchange tags.
const TAG_TO_LEFT: i64 = 1;
const TAG_TO_RIGHT: i64 = 2;

/// Gravitational constant of the shallow-water system.
pub const GRAVITY: f64 = 9.8;

/// clamr_sim problem configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClamrConfig {
    /// Global cell count (must be divisible by `ranks`).
    pub ncells: usize,
    /// MPI ranks.
    pub ranks: u32,
    /// Simulation steps.
    pub steps: usize,
    /// Conservation-check period in steps.
    pub check_interval: usize,
    /// Checkpoint period in steps: every `checkpoint_interval` steps the
    /// field is gathered to rank 0 and appended to the result file (CLAMR's
    /// `-i` argument; the paper runs `-i 10`). `0` disables periodic
    /// checkpoints (final field only).
    pub checkpoint_interval: usize,
    /// Allowed |mass - mass0| drift before the checker aborts.
    pub tolerance: f64,
    /// Time step over (2 × cell width): the Lax–Friedrichs λ.
    pub lambda: f64,
}

impl Default for ClamrConfig {
    fn default() -> ClamrConfig {
        ClamrConfig {
            ncells: 64,
            ranks: 4,
            steps: 40,
            check_interval: 5,
            checkpoint_interval: 10,
            // Golden-run FP drift of the conservation sums is ~1e-13
            // (per-step rounding random-walks); 1e-11 leaves a ~100×
            // margin while catching injected perturbations down to the
            // mid-mantissa — CLAMR's checker is similarly aggressive
            // (the paper detects 83.71% of register faults).
            tolerance: 1e-11,
            lambda: 0.025, // dt = 0.05, dx = 1.0
        }
    }
}

impl ClamrConfig {
    /// Cells per rank.
    pub fn local_n(&self) -> usize {
        assert_eq!(
            self.ncells % self.ranks as usize,
            0,
            "ncells must divide evenly across ranks"
        );
        self.ncells / self.ranks as usize
    }
}

/// The deterministic initial condition: a smooth bump on a unit-depth lake
/// at rest.
pub fn initial_height(cfg: &ClamrConfig) -> Vec<f64> {
    let n = cfg.ncells as f64;
    (0..cfg.ncells)
        .map(|i| {
            let x = (i as f64 - n / 2.0) / (n / 8.0);
            1.0 + 0.4 * (-x * x).exp()
        })
        .collect()
}

/// Host-side reference simulation mirroring the guest's arithmetic order
/// exactly; returns the final height field.
pub fn simulate(cfg: &ClamrConfig) -> Vec<f64> {
    let mut sink = Vec::new();
    simulate_with_checkpoints(cfg, &mut sink)
}

/// Reference simulation that also appends every checkpointed field to
/// `checkpoints` (the guest writes the same bytes to its result file).
pub fn simulate_with_checkpoints(cfg: &ClamrConfig, checkpoints: &mut Vec<f64>) -> Vec<f64> {
    let n = cfg.ncells;
    let c2 = 0.5 * GRAVITY;
    let lam = cfg.lambda;
    let mut h = initial_height(cfg);
    let mut hu = vec![0.0f64; n];
    let mut hn = vec![0.0f64; n];
    let mut hun = vec![0.0f64; n];
    for s in 1..=cfg.steps {
        for i in 0..n {
            let im = (i + n - 1) % n;
            let ip = (i + 1) % n;
            let (h_m, h_p) = (h[im], h[ip]);
            let (hu_m, hu_p) = (hu[im], hu[ip]);
            let f2p = ((hu_p * hu_p) / h_p) + ((h_p * h_p) * c2);
            let f2m = ((hu_m * hu_m) / h_m) + ((h_m * h_m) * c2);
            hn[i] = ((h_m + h_p) * 0.5) - ((hu_p - hu_m) * lam);
            hun[i] = ((hu_m + hu_p) * 0.5) - ((f2p - f2m) * lam);
        }
        std::mem::swap(&mut h, &mut hn);
        std::mem::swap(&mut hu, &mut hun);
        if cfg.checkpoint_interval != 0 && s % cfg.checkpoint_interval == 0 {
            checkpoints.extend_from_slice(&h);
        }
    }
    h
}

/// The bytes the golden run's rank 0 writes to its result file: every
/// periodic checkpoint followed by the final field.
pub fn reference_output(cfg: &ClamrConfig) -> Vec<u8> {
    let mut fields = Vec::new();
    let final_h = simulate_with_checkpoints(cfg, &mut fields);
    fields.extend_from_slice(&final_h);
    fields
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

/// Emits `F0 = global mass, F1 = global momentum` as a callable guest
/// function — CLAMR checks all its conservation laws, and momentum
/// corruptions are invisible to the mass sum (the hu flux telescopes out
/// of ∑h exactly under periodic boundaries). Clobbers `R1..R6`, `R9`,
/// `R12`, `F0..F2`.
fn emit_mass_fn(a: &mut Asm, local_n: i64) {
    a.label("mass_global");
    a.fmovi(FReg::F0, 0.0); // Σh
    a.fmovi(FReg::F1, 0.0); // Σhu
    a.movi(Reg::R9, 1);
    a.label("mass_loop");
    a.cmpi(Reg::R9, local_n);
    a.jcc(Cond::Gt, "mass_sum_done");
    a.lea(Reg::R12, "h");
    a.fldx(FReg::F2, Reg::R12, Reg::R9);
    a.fadd(FReg::F0, FReg::F2);
    a.lea(Reg::R12, "hu");
    a.fldx(FReg::F2, Reg::R12, Reg::R9);
    a.fadd(FReg::F1, FReg::F2);
    a.addi(Reg::R9, 1);
    a.jmp("mass_loop");
    a.label("mass_sum_done");
    a.lea(Reg::R12, "mlocal");
    a.fst(FReg::F0, Reg::R12, 0);
    a.fst(FReg::F1, Reg::R12, 8);
    a.lea(Reg::R1, "mlocal");
    a.lea(Reg::R2, "mglobal");
    a.movi(Reg::R3, 2); // both conserved quantities
    a.movi(Reg::R4, 2); // F64
    a.movi(Reg::R5, 1); // Sum
    a.call("mpi_allreduce");
    a.lea(Reg::R12, "mglobal");
    a.fld(FReg::F0, Reg::R12, 0);
    a.fld(FReg::F1, Reg::R12, 8);
    a.ret();
}

/// Emits the checkpoint routine as a callable guest function: gather the
/// interior field to rank 0, which appends it to the result file. Clobbers
/// `R1..R6`.
fn emit_checkpoint_fn(a: &mut Asm, local_n: i64, ncells: usize) {
    a.label("checkpoint_fn");
    a.lea(Reg::R1, "h");
    a.addi(Reg::R1, 8); // interior start
    a.lea(Reg::R2, "gbuf");
    a.movi(Reg::R3, local_n);
    a.movi(Reg::R4, 2); // F64
    a.movi(Reg::R5, 0); // root
    a.call("mpi_gather");
    a.cmpi(Reg::R7, 0);
    a.jcc(Cond::Ne, "ckpt_done");
    a.lea(Reg::R1, "gbuf");
    a.movi(Reg::R2, (ncells * 8) as i64);
    a.call("write_out");
    a.label("ckpt_done");
    a.ret();
}

/// Emits the halo exchange for one step, in the canonical deadlock-free
/// nonblocking pattern: post both `Irecv`s, then the `Isend`s, then `Wait`
/// for the receives. Uses `R1..R6`, `R9`, `R10`, `F0`.
fn emit_halo_exchange(a: &mut Asm, local_n: i64) {
    let pack = |a: &mut Asm, src: &str, idx: i32, dst: &str, off: i32| {
        a.lea(Reg::R6, src);
        a.fld(FReg::F0, Reg::R6, idx * 8);
        a.lea(Reg::R6, dst);
        a.fst(FReg::F0, Reg::R6, off);
    };
    // Left neighbour: (rank + size - 1) % size; right: (rank + 1) % size.
    let left = |a: &mut Asm| {
        a.mov(Reg::R4, Reg::R7);
        a.add(Reg::R4, Reg::R8);
        a.subi(Reg::R4, 1);
        a.rem(Reg::R4, Reg::R8);
    };
    let right = |a: &mut Asm| {
        a.mov(Reg::R4, Reg::R7);
        a.addi(Reg::R4, 1);
        a.rem(Reg::R4, Reg::R8);
    };

    // Post the receives first.
    // Right halo arrives from the right neighbour (their "to-left").
    a.lea(Reg::R1, "rbufr");
    a.movi(Reg::R2, 2);
    a.movi(Reg::R3, 2); // F64
    right(a);
    a.movi(Reg::R5, TAG_TO_LEFT);
    a.call("mpi_irecv");
    a.mov(Reg::R9, Reg::R0);
    // Left halo arrives from the left neighbour (their "to-right").
    a.lea(Reg::R1, "rbufl");
    a.movi(Reg::R2, 2);
    a.movi(Reg::R3, 2);
    left(a);
    a.movi(Reg::R5, TAG_TO_RIGHT);
    a.call("mpi_irecv");
    a.mov(Reg::R10, Reg::R0);

    // Ship my edges.
    pack(a, "h", 1, "sbufl", 0);
    pack(a, "hu", 1, "sbufl", 8);
    a.lea(Reg::R1, "sbufl");
    a.movi(Reg::R2, 2);
    a.movi(Reg::R3, 2);
    left(a);
    a.movi(Reg::R5, TAG_TO_LEFT);
    a.call("mpi_isend");
    pack(a, "h", local_n as i32, "sbufr", 0);
    pack(a, "hu", local_n as i32, "sbufr", 8);
    a.lea(Reg::R1, "sbufr");
    a.movi(Reg::R2, 2);
    a.movi(Reg::R3, 2);
    right(a);
    a.movi(Reg::R5, TAG_TO_RIGHT);
    a.call("mpi_isend");

    // Complete the receives.
    a.mov(Reg::R1, Reg::R9);
    a.call("mpi_wait");
    a.mov(Reg::R1, Reg::R10);
    a.call("mpi_wait");
    // Halos are unpacked by the caller.
}

/// Assembles the guest program (identical binary on every rank).
pub fn program(cfg: &ClamrConfig) -> Program {
    let local_n = cfg.local_n() as i64;
    let h0 = initial_height(cfg);

    let mut a = Asm::new("clamr_sim");
    rtlib::emit(&mut a);
    emit_mass_fn(&mut a, local_n);
    emit_checkpoint_fn(&mut a, local_n, cfg.ncells);
    a.set_entry("main");

    // Per-rank initial stripes are selected at runtime from the global
    // field by rank, so one binary serves all ranks.
    a.data_f64("h0_global", &h0);
    a.bss("h", ((local_n + 2) * 8) as u64);
    a.bss("hu", ((local_n + 2) * 8) as u64);
    a.bss("hn", ((local_n + 2) * 8) as u64);
    a.bss("hun", ((local_n + 2) * 8) as u64);
    a.bss("sbufl", 16);
    a.bss("sbufr", 16);
    a.bss("rbufl", 16);
    a.bss("rbufr", 16);
    a.bss("mlocal", 16);
    a.bss("mglobal", 16);
    a.bss("mass0", 16);
    a.bss("gbuf", (cfg.ncells * 8) as u64);

    a.label("main");
    a.call("mpi_init");
    a.call("mpi_comm_rank");
    a.mov(Reg::R7, Reg::R0);
    a.call("mpi_comm_size");
    a.mov(Reg::R8, Reg::R0);

    // Load my stripe: h[i] = h0_global[rank*local_n + i - 1], hu = 0.
    a.movi(Reg::R9, 1);
    a.label("init_loop");
    a.cmpi(Reg::R9, local_n);
    a.jcc(Cond::Gt, "init_done");
    a.mov(Reg::R10, Reg::R7);
    a.muli(Reg::R10, local_n);
    a.add(Reg::R10, Reg::R9);
    a.subi(Reg::R10, 1);
    a.lea(Reg::R12, "h0_global");
    a.fldx(FReg::F0, Reg::R12, Reg::R10);
    a.lea(Reg::R12, "h");
    a.fstx(FReg::F0, Reg::R12, Reg::R9);
    a.fmovi(FReg::F1, 0.0);
    a.lea(Reg::R12, "hu");
    a.fstx(FReg::F1, Reg::R12, Reg::R9);
    a.addi(Reg::R9, 1);
    a.jmp("init_loop");
    a.label("init_done");

    // Solver constants live in high FP registers for the whole run.
    a.fmovi(FReg::F10, cfg.lambda); // λ
    a.fmovi(FReg::F11, 0.5);
    a.fmovi(FReg::F12, 0.5 * GRAVITY); // c2
    a.fmovi(FReg::F13, cfg.tolerance);

    // Initial conserved quantities, via the checker path itself.
    a.call("mass_global");
    a.lea(Reg::R12, "mass0");
    a.fst(FReg::F0, Reg::R12, 0);
    a.fst(FReg::F1, Reg::R12, 8);

    // ---- time stepping ----
    a.movi(Reg::R14, 1); // step s
    a.label("step_loop");
    a.cmpi(Reg::R14, cfg.steps as i64);
    a.jcc(Cond::Gt, "steps_done");

    emit_halo_exchange(&mut a, local_n);
    // Unpack halos: h[0],hu[0] ← rbufl; h[n+1],hu[n+1] ← rbufr.
    a.lea(Reg::R6, "rbufl");
    a.fld(FReg::F0, Reg::R6, 0);
    a.fld(FReg::F1, Reg::R6, 8);
    a.lea(Reg::R6, "h");
    a.fst(FReg::F0, Reg::R6, 0);
    a.lea(Reg::R6, "hu");
    a.fst(FReg::F1, Reg::R6, 0);
    a.lea(Reg::R6, "rbufr");
    a.fld(FReg::F0, Reg::R6, 0);
    a.fld(FReg::F1, Reg::R6, 8);
    a.lea(Reg::R6, "h");
    a.fst(FReg::F0, Reg::R6, ((local_n + 1) * 8) as i32);
    a.lea(Reg::R6, "hu");
    a.fst(FReg::F1, Reg::R6, ((local_n + 1) * 8) as i32);

    // Lax–Friedrichs update of the interior.
    a.movi(Reg::R9, 1);
    a.label("comp_loop");
    a.cmpi(Reg::R9, local_n);
    a.jcc(Cond::Gt, "comp_done");
    a.mov(Reg::R10, Reg::R9);
    a.subi(Reg::R10, 1); // i-1
    a.mov(Reg::R11, Reg::R9);
    a.addi(Reg::R11, 1); // i+1
    a.lea(Reg::R12, "h");
    a.fldx(FReg::F0, Reg::R12, Reg::R10); // h_m
    a.fldx(FReg::F1, Reg::R12, Reg::R11); // h_p
    a.lea(Reg::R12, "hu");
    a.fldx(FReg::F2, Reg::R12, Reg::R10); // hu_m
    a.fldx(FReg::F3, Reg::R12, Reg::R11); // hu_p
                                          // f2p = hu_p²/h_p + h_p²·c2
    a.fmov(FReg::F4, FReg::F3);
    a.fmul(FReg::F4, FReg::F3);
    a.fdiv(FReg::F4, FReg::F1);
    a.fmov(FReg::F5, FReg::F1);
    a.fmul(FReg::F5, FReg::F1);
    a.fmul(FReg::F5, FReg::F12);
    a.fadd(FReg::F4, FReg::F5);
    // f2m = hu_m²/h_m + h_m²·c2
    a.fmov(FReg::F5, FReg::F2);
    a.fmul(FReg::F5, FReg::F2);
    a.fdiv(FReg::F5, FReg::F0);
    a.fmov(FReg::F6, FReg::F0);
    a.fmul(FReg::F6, FReg::F0);
    a.fmul(FReg::F6, FReg::F12);
    a.fadd(FReg::F5, FReg::F6);
    // hn[i] = (h_m+h_p)·½ − (hu_p−hu_m)·λ
    a.fmov(FReg::F6, FReg::F0);
    a.fadd(FReg::F6, FReg::F1);
    a.fmul(FReg::F6, FReg::F11);
    a.fmov(FReg::F7, FReg::F3);
    a.fsub(FReg::F7, FReg::F2);
    a.fmul(FReg::F7, FReg::F10);
    a.fsub(FReg::F6, FReg::F7);
    a.lea(Reg::R12, "hn");
    a.fstx(FReg::F6, Reg::R12, Reg::R9);
    // hun[i] = (hu_m+hu_p)·½ − (f2p−f2m)·λ
    a.fmov(FReg::F7, FReg::F2);
    a.fadd(FReg::F7, FReg::F3);
    a.fmul(FReg::F7, FReg::F11);
    a.fsub(FReg::F4, FReg::F5);
    a.fmul(FReg::F4, FReg::F10);
    a.fsub(FReg::F7, FReg::F4);
    a.lea(Reg::R12, "hun");
    a.fstx(FReg::F7, Reg::R12, Reg::R9);
    a.addi(Reg::R9, 1);
    a.jmp("comp_loop");
    a.label("comp_done");

    // Copy back the interior.
    a.movi(Reg::R9, 1);
    a.label("copy_loop");
    a.cmpi(Reg::R9, local_n);
    a.jcc(Cond::Gt, "copy_done");
    a.lea(Reg::R12, "hn");
    a.fldx(FReg::F0, Reg::R12, Reg::R9);
    a.lea(Reg::R12, "h");
    a.fstx(FReg::F0, Reg::R12, Reg::R9);
    a.lea(Reg::R12, "hun");
    a.fldx(FReg::F0, Reg::R12, Reg::R9);
    a.lea(Reg::R12, "hu");
    a.fstx(FReg::F0, Reg::R12, Reg::R9);
    a.addi(Reg::R9, 1);
    a.jmp("copy_loop");
    a.label("copy_done");

    // Conservation check every `check_interval` steps.
    a.mov(Reg::R10, Reg::R14);
    a.movi(Reg::R11, cfg.check_interval as i64);
    a.rem(Reg::R10, Reg::R11);
    a.cmpi(Reg::R10, 0);
    a.jcc(Cond::Ne, "no_check");
    a.call("mass_global"); // F0 = global mass, F1 = global momentum
    a.lea(Reg::R12, "mass0");
    a.fld(FReg::F2, Reg::R12, 0);
    a.fsub(FReg::F0, FReg::F2);
    a.fabs(FReg::F0);
    a.fcmp(FReg::F0, FReg::F13);
    a.jcc(Cond::Gt, "conservation_violated");
    a.lea(Reg::R12, "mass0");
    a.fld(FReg::F2, Reg::R12, 8);
    a.fsub(FReg::F1, FReg::F2);
    a.fabs(FReg::F1);
    a.fcmp(FReg::F1, FReg::F13);
    a.jcc(Cond::Le, "no_check");
    a.label("conservation_violated");
    // A conservation law is violated (or the sum is NaN): detected!
    a.mov(Reg::R1, Reg::R14);
    a.call("assert_fail");
    a.label("no_check");

    // Periodic checkpoint (CLAMR's `-i`).
    if cfg.checkpoint_interval != 0 {
        a.mov(Reg::R10, Reg::R14);
        a.movi(Reg::R11, cfg.checkpoint_interval as i64);
        a.rem(Reg::R10, Reg::R11);
        a.cmpi(Reg::R10, 0);
        a.jcc(Cond::Ne, "no_ckpt");
        a.call("checkpoint_fn");
        a.label("no_ckpt");
    }

    a.addi(Reg::R14, 1);
    a.jmp("step_loop");
    a.label("steps_done");

    // Final field.
    a.call("checkpoint_fn");
    a.call("mpi_finalize");
    a.exit(0);

    a.assemble().expect("clamr_sim assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_assembles() {
        let p = program(&ClamrConfig::default());
        assert_eq!(p.name(), "clamr_sim");
        assert!(p.insn_count() > 150);
        assert!(p.symbol("mass_global").is_some());
    }

    #[test]
    fn reference_conserves_mass() {
        let cfg = ClamrConfig::default();
        let h0 = initial_height(&cfg);
        let h = simulate(&cfg);
        let m0: f64 = h0.iter().sum();
        let m: f64 = h.iter().sum();
        assert!(
            (m - m0).abs() < 1e-9,
            "Lax–Friedrichs with periodic BC conserves mass: {m0} vs {m}"
        );
        // The wave must actually have moved.
        assert!(h0.iter().zip(&h).any(|(a, b)| (a - b).abs() > 1e-3));
    }

    #[test]
    fn reference_output_sized_and_deterministic() {
        let cfg = ClamrConfig::default();
        // steps/checkpoint_interval periodic checkpoints plus the final
        // field.
        let fields = cfg.steps / cfg.checkpoint_interval + 1;
        assert_eq!(reference_output(&cfg).len(), fields * cfg.ncells * 8);
        assert_eq!(reference_output(&cfg), reference_output(&cfg));

        let no_ckpt = ClamrConfig {
            checkpoint_interval: 0,
            ..cfg
        };
        assert_eq!(reference_output(&no_ckpt).len(), cfg.ncells * 8);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_cells_panic() {
        let cfg = ClamrConfig {
            ncells: 65,
            ..ClamrConfig::default()
        };
        let _ = cfg.local_n();
    }
}

//! Property tests for the propagation provenance subsystem: the graph a
//! run records is a pure function of the injection spec and seed —
//! replaying the run, restoring it from a warm-start checkpoint, or
//! resuming a journaled campaign after an interruption must all reproduce
//! the canonical DOT/JSON exports (and hence the digest) byte for byte.

use chaser::{
    prepare_app, run_app, run_warm, warm_start_for, AppSpec, Campaign, CampaignConfig, Corruption,
    InjectionSpec, OperandSel, RankPool, RunOptions, Trigger, WarmStartOptions,
};
use chaser_isa::InsnClass;
use chaser_mpi::RunBudget;
use chaser_workloads::matvec;
use proptest::prelude::*;

fn app(quantum: u64) -> AppSpec {
    let mv = matvec::MatvecConfig::default();
    let mut app = AppSpec::replicated(matvec::program(&mv), mv.ranks as usize, 4);
    app.cluster.quantum = quantum;
    app
}

/// A deterministic worker fault drawn from the property inputs. Identity
/// corruption keeps control flow on the golden path (the taint still
/// propagates), so every case terminates quickly; bit-flip corruption is
/// exercised too since divergent paths must replay just as exactly.
fn spec(rank: u32, class: InsnClass, n: u64, flip: Option<u32>) -> InjectionSpec {
    InjectionSpec {
        target_program: "matvec".into(),
        target_rank: rank,
        class,
        trigger: Trigger::AfterN(n),
        corruption: match flip {
            Some(bit) => Corruption::FlipBits(vec![bit]),
            None => Corruption::Identity,
        },
        operand: OperandSel::Dst,
        max_injections: 1,
        seed: 0,
    }
}

fn class_strategy() -> impl Strategy<Value = InsnClass> {
    prop_oneof![Just(InsnClass::Fadd), Just(InsnClass::Fmul)]
}

fn flip_strategy() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), (0u32..52).prop_map(Some).boxed()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same spec, same app ⇒ byte-identical exports on independent runs.
    #[test]
    fn replay_reproduces_exports(
        rank in 1u32..4,
        class in class_strategy(),
        n in 1u64..4,
        flip in flip_strategy(),
        quantum in prop_oneof![Just(200u64), Just(500), Just(1000)],
    ) {
        let s = spec(rank, class, n, flip);
        let a = run_app(&app(quantum), &RunOptions::inject_traced(s.clone()));
        let b = run_app(&app(quantum), &RunOptions::inject_traced(s));
        let (ga, gb) = (a.provenance.unwrap(), b.provenance.unwrap());
        prop_assert_eq!(ga.to_json(), gb.to_json());
        prop_assert_eq!(ga.to_dot(), gb.to_dot());
        prop_assert_eq!(ga.digest(), gb.digest());
    }

    /// A run restored from the warm-start checkpoint records the same
    /// graph as the cold run of the same spec — round attribution
    /// included, since the restored cluster resumes its round counter.
    #[test]
    fn warm_restore_preserves_exports(
        rank in 1u32..4,
        class in class_strategy(),
        n in 1u64..4,
        flip in flip_strategy(),
    ) {
        let s = spec(rank, class, n, flip);
        let application = app(200);
        let cold = run_app(&application, &RunOptions::inject_traced(s.clone()));

        let mut prepared = prepare_app(&application, std::slice::from_ref(&class));
        prepared.warm = warm_start_for(&prepared, &WarmStartOptions {
            classes: vec![class],
            ranks: vec![rank],
            tracing: true,
            provenance: true,
            budget: RunBudget::unlimited(),
        });
        prop_assume!(prepared.warm.is_some());
        let warm = run_warm(&prepared, &RunOptions::inject_traced(s), false);

        let (gc, gw) = (cold.provenance.unwrap(), warm.provenance.unwrap());
        prop_assert_eq!(gc.to_json(), gw.to_json());
        prop_assert_eq!(gc.to_dot(), gw.to_dot());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A journaled provenance campaign cut off after a random number of
    /// rows resumes to the same per-run digests (and full CSV) as the
    /// uninterrupted campaign: journaled rows replay, the rest re-execute.
    #[test]
    fn journal_resume_preserves_digests(
        seed in any::<u64>(),
        keep_rows in 0usize..8,
        warm_start in any::<bool>(),
    ) {
        let config = CampaignConfig {
            runs: 8,
            seed,
            parallelism: 2,
            classes: vec![InsnClass::FpArith],
            rank_pool: RankPool::Random,
            provenance: true,
            warm_start,
            ..CampaignConfig::default()
        };
        let straight = Campaign::new(app(200), config.clone()).run();

        let dir = std::env::temp_dir()
            .join(format!("chaser-prov-prop-{}-{seed:x}-{keep_rows}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.jsonl");
        Campaign::new(app(200), config.clone())
            .run_journaled(&path)
            .expect("journaled run");
        let full = std::fs::read_to_string(&path).expect("read journal");
        let keep: Vec<&str> = full.lines().take(1 + keep_rows).collect();
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).expect("truncate journal");
        let resumed = Campaign::new(app(200), config).resume(&path).expect("resume");
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(straight.to_csv(), resumed.to_csv());
        let a: Vec<u64> = straight.outcomes.iter().map(|r| r.prov_digest).collect();
        let b: Vec<u64> = resumed.outcomes.iter().map(|r| r.prov_digest).collect();
        prop_assert_eq!(a, b);
    }
}

//! Property tests for the hot-path execution knobs: `tb_chaining`,
//! `superblocks` and `taint_fast_path` are pure performance ablations.
//! Every observable
//! artifact — rank outputs, outcome CSVs, provenance digests and exports,
//! and the final cluster state digest — must be byte-identical with the
//! knobs on and off, whether the campaign runs cold, warm-started, or
//! resumed from a truncated journal.

use chaser::{
    run_app, AppSpec, Campaign, CampaignConfig, Corruption, InjectionSpec, OperandSel, RankPool,
    RunOptions, Trigger,
};
use chaser_isa::{InsnClass, Program};
use chaser_mpi::{Cluster, ClusterConfig};
use chaser_vm::ExecTuning;
use chaser_workloads::matvec;
use proptest::prelude::*;

fn app(quantum: u64) -> AppSpec {
    let mv = matvec::MatvecConfig::default();
    let mut app = AppSpec::replicated(matvec::program(&mv), mv.ranks as usize, 4);
    app.cluster.quantum = quantum;
    app
}

fn spec(rank: u32, class: InsnClass, n: u64, flip: Option<u32>) -> InjectionSpec {
    InjectionSpec {
        target_program: "matvec".into(),
        target_rank: rank,
        class,
        trigger: Trigger::AfterN(n),
        corruption: match flip {
            Some(bit) => Corruption::FlipBits(vec![bit]),
            None => Corruption::Identity,
        },
        operand: OperandSel::Dst,
        max_injections: 1,
        seed: 0,
    }
}

fn class_strategy() -> impl Strategy<Value = InsnClass> {
    prop_oneof![Just(InsnClass::Fadd), Just(InsnClass::Fmul)]
}

fn flip_strategy() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), (0u32..52).prop_map(Some).boxed()]
}

/// Any partially-ablated tuning: everything but the fully-optimized
/// default, so each case proves one knob subset inert against it.
fn tuning_strategy() -> impl Strategy<Value = ExecTuning> {
    prop_oneof![
        Just(ExecTuning {
            tb_chaining: false,
            superblocks: false,
            taint_fast_path: false,
        }),
        Just(ExecTuning {
            tb_chaining: true,
            superblocks: false,
            taint_fast_path: false,
        }),
        Just(ExecTuning {
            tb_chaining: true,
            superblocks: true,
            taint_fast_path: false,
        }),
        Just(ExecTuning {
            tb_chaining: false,
            superblocks: false,
            taint_fast_path: true,
        }),
        Just(ExecTuning {
            tb_chaining: true,
            superblocks: false,
            taint_fast_path: true,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// An injected, traced run is byte-identical under the optimized and
    /// any ablated tuning: same rank outputs/exits, same provenance
    /// exports and digest.
    #[test]
    fn knobs_are_inert_on_injected_runs(
        rank in 1u32..4,
        class in class_strategy(),
        n in 1u64..4,
        flip in flip_strategy(),
        ablated in tuning_strategy(),
        quantum in prop_oneof![Just(200u64), Just(1000)],
    ) {
        let s = spec(rank, class, n, flip);
        let run = |tuning: ExecTuning| {
            let opts = RunOptions {
                exec_tuning: tuning,
                ..RunOptions::inject_traced(s.clone())
            };
            run_app(&app(quantum), &opts)
        };
        let on = run(ExecTuning::default());
        let off = run(ablated);
        prop_assert_eq!(&on.outputs, &off.outputs);
        prop_assert_eq!(&on.stdouts, &off.stdouts);
        prop_assert_eq!(&on.cluster.rank_exits, &off.cluster.rank_exits);
        prop_assert_eq!(on.cluster.total_insns, off.cluster.total_insns);
        let (ga, gb) = (on.provenance.unwrap(), off.provenance.unwrap());
        prop_assert_eq!(ga.to_json(), gb.to_json());
        prop_assert_eq!(ga.to_dot(), gb.to_dot());
        prop_assert_eq!(ga.digest(), gb.digest());
    }

    /// A fault-free cluster reaches the same final state digest under the
    /// optimized and any ablated tuning, at any quantum.
    #[test]
    fn knobs_are_inert_on_cluster_state(
        ablated in tuning_strategy(),
        quantum in prop_oneof![Just(100u64), Just(500), Just(2000)],
    ) {
        let digest = |tuning: ExecTuning| {
            let mv = matvec::MatvecConfig::default();
            let program = matvec::program(&mv);
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 2,
                quantum,
                exec_tuning: tuning,
                ..ClusterConfig::default()
            });
            let programs: Vec<&Program> = (0..mv.ranks).map(|_| &program).collect();
            cluster.launch(&programs).expect("launch");
            let run = cluster.run();
            prop_assert!(!run.hang, "fault-free matvec must not hang");
            Ok(cluster.state_digest())
        };
        prop_assert_eq!(digest(ExecTuning::default())?, digest(ablated)?);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Campaign-level inertness, across every execution mode: a cold
    /// knobs-off campaign, an ablated cold campaign, an ablated
    /// warm-started campaign and an ablated journal-resumed campaign (cut
    /// off after a random number of rows) all produce the same outcome CSV
    /// and per-run provenance digests.
    #[test]
    fn knobs_are_inert_on_campaigns(
        seed in any::<u64>(),
        keep_rows in 0usize..6,
        ablated in tuning_strategy(),
        warm_start in any::<bool>(),
    ) {
        let config = |tuning: ExecTuning, warm: bool| CampaignConfig {
            runs: 6,
            seed,
            parallelism: 2,
            classes: vec![InsnClass::FpArith],
            rank_pool: RankPool::Random,
            provenance: true,
            warm_start: warm,
            tb_chaining: tuning.tb_chaining,
            superblocks: tuning.superblocks,
            taint_fast_path: tuning.taint_fast_path,
            ..CampaignConfig::default()
        };
        let baseline = Campaign::new(app(200), config(ExecTuning::default(), false)).run();

        // Ablated, cold.
        let cold = Campaign::new(app(200), config(ablated, false)).run();
        prop_assert_eq!(baseline.to_csv(), cold.to_csv());

        // Ablated, warm-started.
        let warm = Campaign::new(app(200), config(ablated, warm_start)).run();
        prop_assert_eq!(baseline.to_csv(), warm.to_csv());

        // Ablated, journaled, truncated after `keep_rows` rows, resumed.
        let dir = std::env::temp_dir().join(format!(
            "chaser-tuning-prop-{}-{seed:x}-{keep_rows}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.jsonl");
        Campaign::new(app(200), config(ablated, warm_start))
            .run_journaled(&path)
            .expect("journaled run");
        let full = std::fs::read_to_string(&path).expect("read journal");
        let keep: Vec<&str> = full.lines().take(1 + keep_rows).collect();
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).expect("truncate journal");
        let resumed = Campaign::new(app(200), config(ablated, warm_start))
            .resume(&path)
            .expect("resume");
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(baseline.to_csv(), resumed.to_csv());

        let a: Vec<u64> = baseline.outcomes.iter().map(|r| r.prov_digest).collect();
        let b: Vec<u64> = resumed.outcomes.iter().map(|r| r.prov_digest).collect();
        prop_assert_eq!(a, b);
    }
}

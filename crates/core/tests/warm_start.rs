//! Warm-start replay equivalence: a campaign whose runs restore from the
//! shared copy-on-write checkpoint must classify byte-identically to a
//! cold campaign on the same seed, while measurably skipping prefix work.

use chaser::{AppSpec, Campaign, CampaignConfig, RankPool};
use chaser_isa::InsnClass;
use chaser_workloads::matvec;

/// Matvec on a fine scheduling quantum, so the fault-free prefix (MPI
/// init, broadcast of `x`, first row sends) spans several rounds before
/// the first worker fp instruction — a real prefix for the checkpoint.
fn app() -> AppSpec {
    let mv = matvec::MatvecConfig::default();
    let mut app = AppSpec::replicated(matvec::program(&mv), mv.ranks as usize, 2);
    app.cluster.quantum = 200;
    app
}

fn config(warm_start: bool, tracing: bool) -> CampaignConfig {
    CampaignConfig {
        runs: 24,
        seed: 0x5EED_CAFE,
        parallelism: 2,
        classes: vec![InsnClass::FpArith],
        rank_pool: RankPool::Random,
        tracing,
        warm_start,
        ..CampaignConfig::default()
    }
}

#[test]
fn warm_campaign_matches_cold_byte_for_byte() {
    let cold = Campaign::new(app(), config(false, false)).run();
    let warm = Campaign::new(app(), config(true, false)).run();
    assert_eq!(
        cold.to_csv(),
        warm.to_csv(),
        "warm-start changed campaign outcomes"
    );
    assert_eq!(cold.skipped, warm.skipped);

    // Cold runs never restore; every warm run that executes restores once.
    // Runs whose drawn rank has no viable class skip before any cluster is
    // built (the master never computes fp), on both paths alike.
    assert_eq!(cold.snapshot_stats, chaser::SnapshotStats::default());
    let s = warm.snapshot_stats;
    assert_eq!(
        s.restores,
        24 - warm.skipped,
        "every executed warm run must restore the checkpoint"
    );
    assert!(s.pages_shared > 0, "restores must adopt shared pages");
    assert!(
        s.pages_cow < s.pages_shared,
        "the suffix dirty set must stay below full residency (CoW wins)"
    );
    // The warm-vs-cold ablation claim: each run skipped the prefix.
    assert!(s.insns_skipped > 0, "warm runs must skip prefix work");
    let skipped_per_run = s.insns_skipped / s.restores;
    for run in &warm.outcomes {
        assert!(
            run.total_insns >= skipped_per_run,
            "reported totals must include the restored prefix"
        );
    }
}

#[test]
fn resume_rejects_journal_from_a_different_execution_regime() {
    let dir = std::env::temp_dir().join(format!("chaser-warm-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("campaign.jsonl");
    Campaign::new(app(), config(false, false))
        .run_journaled(&path)
        .expect("journaled run");

    // A journal written cold must not be finished warm (or with cache
    // sharing toggled): both knobs are part of the config fingerprint.
    let warm = Campaign::new(app(), config(true, false)).resume(&path);
    assert!(
        matches!(warm, Err(chaser::JournalError::HeaderMismatch { .. })),
        "resume accepted a journal from a different warm_start regime"
    );
    let mut cfg = config(false, false);
    cfg.shared_tb_cache = false;
    let uncached = Campaign::new(app(), cfg).resume(&path);
    assert!(
        matches!(uncached, Err(chaser::JournalError::HeaderMismatch { .. })),
        "resume accepted a journal from a different shared_tb_cache regime"
    );

    // Unchanged config still resumes cleanly.
    let same = Campaign::new(app(), config(false, false)).resume(&path);
    assert!(same.is_ok(), "identical config must resume");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn warm_campaign_matches_cold_with_tracing() {
    let cold = Campaign::new(app(), config(false, true)).run();
    let warm = Campaign::new(app(), config(true, true)).run();
    assert_eq!(
        cold.to_csv(),
        warm.to_csv(),
        "warm-start changed traced campaign outcomes"
    );
    assert!(warm.snapshot_stats.restores > 0);
}

//! Statistical fault-injection campaigns: thousands of seeded single-fault
//! runs executed in parallel, classified against a golden run.

use crate::injector::InjectionRecord;
use crate::journal::{
    golden_digest, CampaignJournal, Fnv1a, JournalError, JournalHeader, JournalRow, JOURNAL_VERSION,
};
use crate::outcome::{Outcome, TermCause};
use crate::provenance::ProvenanceGraph;
use crate::session::{
    prepare_app, run_app, run_prepared, run_warm, warm_start_for, AppSpec, PreparedApp, RunOptions,
    RunReport, SnapshotStats, TraceRegime, WarmStartOptions,
};
use crate::shard::{ShardChaos, ShardCtl, ShardStats, ShardSupervision, ShardWorkers};
use crate::spec::{Corruption, InjectionSpec, OperandSel, Trigger};
use crate::tracer::TracerConfig;
use chaser_isa::InsnClass;
use chaser_mpi::{ParallelStats, RunBudget};
use chaser_tcg::CacheStats;
use chaser_vm::{EngineStats, ExecTuning};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

/// Which rank receives the fault in each run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankPool {
    /// Always the master (rank 0) — the paper's Matvec setup.
    Master,
    /// A uniformly random rank per run — the CLAMR setup.
    Random,
}

impl RankPool {
    /// The wire name used by campaign specs (`"master"` / `"random"`).
    pub fn name(self) -> &'static str {
        match self {
            RankPool::Master => "master",
            RankPool::Random => "random",
        }
    }

    /// Parses a wire name back into a pool; `None` on unknown names.
    pub fn from_name(s: &str) -> Option<RankPool> {
        match s {
            "master" => Some(RankPool::Master),
            "random" => Some(RankPool::Random),
            _ => None,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injection runs.
    pub runs: u64,
    /// Master seed; run `i` derives its own stream from it.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub parallelism: usize,
    /// Instruction classes faults may target (one is drawn per run).
    pub classes: Vec<InsnClass>,
    /// Which rank gets the fault.
    pub rank_pool: RankPool,
    /// Bits flipped per fault.
    pub bits_per_fault: u32,
    /// Which operand is corrupted.
    pub operand: OperandSel,
    /// Trace fault propagation during each run.
    pub tracing: bool,
    /// Tracer parameters when tracing.
    pub tracer: TracerConfig,
    /// Record a fault-propagation provenance graph per run and journal its
    /// aggregates (rank reach, blast radius, message-edge count, digest).
    pub provenance: bool,
    /// Tracing regime: [`TraceRegime::Full`] (default) honors the
    /// `tracing`/`provenance` flags above; [`TraceRegime::Off`] is the
    /// ZOFI-style statistical mode that never arms taint or provenance and
    /// classifies runs purely from termination cause plus golden-digest
    /// comparison. Part of the journal config fingerprint (v6).
    pub trace_regime: TraceRegime,
    /// Share one immutable base layer of clean translation blocks (warmed
    /// by the golden run) across all injection runs, so each run only
    /// translates the handful of blocks it instruments. Off = the cold
    /// path: every run translates from scratch. Outcomes are identical
    /// either way; this is the ablation knob behind the Fig. 10 numbers.
    pub shared_tb_cache: bool,
    /// Warm-start: execute the fault-free prefix once, freeze the cluster
    /// in a copy-on-write [`chaser_mpi::ClusterSnapshot`] at the last
    /// round boundary before any targetable instruction executes, and
    /// restore every injection run from that shared checkpoint so workers
    /// execute only the suffix. The outcome CSV is byte-identical to a
    /// cold campaign on the same seed; the win is the skipped prefix
    /// instructions (reported in
    /// [`CampaignResult::snapshot_stats`]).
    pub warm_start: bool,
    /// Per-run watchdog budget (instructions / rounds) applied to every
    /// injection run; merged with the cluster configuration's own budget,
    /// tighter bound wins. Default unlimited.
    pub run_budget: RunBudget,
    /// TB chaining: patch direct block exits so steady-state dispatch jumps
    /// block-to-block without translation-cache hash lookups. Outcomes are
    /// byte-identical either way; off is the ablation baseline.
    pub tb_chaining: bool,
    /// Superblock formation: fuse hot taken-chains of TBs into
    /// straight-line traces dispatched and executed as one unit (requires
    /// `tb_chaining`). Outcomes are byte-identical either way; off is the
    /// ablation baseline. Part of the journal config fingerprint (v7).
    pub superblocks: bool,
    /// Taint-idle fast path: while no taint (or provenance) is live in a
    /// node's shadow memory, guest memory operations skip all shadow work.
    /// Outcomes are byte-identical either way; off is the ablation
    /// baseline.
    pub taint_fast_path: bool,
    /// Worker threads each run's scheduler fans its nodes out over during
    /// the compute phase of every round (intra-run parallelism, on top of
    /// the inter-run `parallelism` workers). Outcomes, provenance digests
    /// and journals are byte-identical for any value; >1 only pays off when
    /// a run spans several nodes. 0 and 1 both mean serial.
    pub rank_threads: usize,
    /// Chaos knob: run indices whose execution deliberately panics *inside
    /// the harness* (not the guest). Used by the resilience tests and the
    /// CI smoke run to prove panic isolation: these runs must come back as
    /// quarantined [`Outcome::HarnessFault`] rows while every other run
    /// completes normally.
    pub panic_runs: Vec<u64>,
    /// Shard count for [`Campaign::run_sharded`]: the run-index range is
    /// split into this many contiguous shards, each executed by an isolated
    /// worker writing its own journal. 0 and 1 both mean one shard. Part of
    /// the journal config fingerprint (v5): a shard journal may only be
    /// finished — or merged — under the shard plan that created it.
    pub shards: u64,
    /// How shard workers execute: in-process threads (default) or self-exec
    /// subprocess workers driven by the `CHASER_SHARD_*` environment
    /// protocol. Operational only (like `parallelism`): excluded from the
    /// config fingerprint, and merged outputs are byte-identical either
    /// way.
    pub shard_workers: ShardWorkers,
    /// Liveness and retry policy for shard workers: journal-progress
    /// heartbeat timeout, capped exponential backoff, retry budget.
    /// Operational only, excluded from the fingerprint.
    pub shard_supervision: ShardSupervision,
    /// Journal durability: `fsync` campaign and shard journals every this
    /// many appended rows (0 = flush to the OS only, never fsync). Every
    /// row is still flushed as one whole line, so a killed worker loses at
    /// most the torn final line the reader already tolerates; this knob
    /// bounds what a power loss can take with it. Operational only,
    /// excluded from the fingerprint.
    pub journal_sync_rows: u64,
    /// Chaos knob for the shard supervisor (resilience tests / CI smoke):
    /// deliberately kill or stall shard workers after they journal N rows,
    /// to prove retry-with-resume and straggler recovery. Excluded from the
    /// fingerprint: a killed-and-retried shard journals exactly the rows an
    /// unharassed one would.
    pub shard_chaos: Vec<ShardChaos>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            runs: 100,
            seed: 0xC4A5E12,
            parallelism: 0,
            classes: vec![InsnClass::FpArith],
            rank_pool: RankPool::Master,
            bits_per_fault: 1,
            operand: OperandSel::Random,
            tracing: false,
            tracer: TracerConfig::default(),
            provenance: false,
            trace_regime: TraceRegime::default(),
            shared_tb_cache: true,
            warm_start: false,
            run_budget: RunBudget::default(),
            tb_chaining: true,
            superblocks: true,
            taint_fast_path: true,
            rank_threads: 1,
            panic_runs: Vec::new(),
            shards: 0,
            shard_workers: ShardWorkers::Thread,
            shard_supervision: ShardSupervision::default(),
            journal_sync_rows: crate::journal::DEFAULT_SYNC_ROWS,
            shard_chaos: Vec::new(),
        }
    }
}

/// The compact per-run result a campaign keeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Run index.
    pub run_idx: u64,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Targeted class this run.
    pub class: InsnClass,
    /// Targeted rank.
    pub rank: u32,
    /// The deterministic trigger count drawn.
    pub trigger_n: u64,
    /// Whether the fault actually fired.
    pub injected: bool,
    /// Tainted-memory reads observed (tracing runs only).
    pub taint_reads: u64,
    /// Tainted-memory writes observed.
    pub taint_writes: u64,
    /// Tainted point-to-point deliveries (fault crossed ranks).
    pub cross_rank: u64,
    /// Tainted deliveries whose TaintHub sync was lost after retries (the
    /// degraded-mode counter; non-zero only under an unreliable hub link).
    pub taint_sync_lost: u64,
    /// Ranks the fault reached, per the provenance graph (0 when
    /// provenance recording was off).
    pub prov_rank_reach: u32,
    /// Provenance blast radius: distinct tainted `(rank, byte)` write
    /// destinations.
    pub prov_blast_radius: u64,
    /// Cross-rank message edges in the provenance graph.
    pub prov_msg_edges: u64,
    /// Digest of the run's canonical provenance-graph JSON (replay
    /// fingerprint; 0 when provenance recording was off).
    pub prov_digest: u64,
    /// Total guest instructions the run retired.
    pub total_insns: u64,
    /// The injection record, when the fault fired.
    pub record: Option<InjectionRecord>,
    /// Translation-cache statistics for this run (all nodes combined).
    pub cache_stats: CacheStats,
    /// Hot-path engine counters for this run (all nodes combined): chain
    /// hits/severs and fast- vs slow-path memory operations.
    pub engine_stats: EngineStats,
    /// Scheduler-parallelism counters for this run (threads used, rounds
    /// fanned out, per-worker instruction balance).
    pub parallel: ParallelStats,
}

impl RunOutcome {
    /// Did the fault propagate across rank/node boundaries?
    pub fn propagated(&self) -> bool {
        self.cross_rank > 0
    }
}

/// Aggregate outcome counts (the Fig. 6 bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Bitwise-identical outputs.
    pub benign: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Abnormal terminations.
    pub terminated: u64,
    /// Quarantined harness failures — tool faults, excluded from
    /// [`OutcomeCounts::total`] and the Fig. 6 percentages because they say
    /// nothing about the target.
    pub harness_faults: u64,
}

impl OutcomeCounts {
    /// Total classified runs (quarantined harness faults excluded).
    pub fn total(&self) -> u64 {
        self.benign + self.sdc + self.terminated
    }

    /// `(benign, sdc, terminated)` as percentages.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            100.0 * self.benign as f64 / t,
            100.0 * self.sdc as f64 / t,
            100.0 * self.terminated as f64 / t,
        )
    }
}

/// Termination attribution (the Table III rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TerminationBreakdown {
    /// OS exceptions on the injected (master) rank.
    pub os_exceptions: u64,
    /// MPI-runtime detected errors.
    pub mpi_errors: u64,
    /// OS exceptions on a non-injected rank ("Slave Node failed").
    pub slave_node_failed: u64,
    /// Application-checker aborts.
    pub assertions: u64,
    /// Hangs.
    pub hangs: u64,
    /// Voluntary non-zero exits.
    pub abnormal_exits: u64,
    /// Watchdog budget stops (deterministic runaway detection).
    pub budget_exhausted: u64,
    /// Runs quarantined because their shard's workers kept dying
    /// ([`TermCause::ShardLost`]).
    pub shard_lost: u64,
}

impl TerminationBreakdown {
    /// Total terminated runs.
    pub fn total(&self) -> u64 {
        self.os_exceptions
            + self.mpi_errors
            + self.slave_node_failed
            + self.assertions
            + self.hangs
            + self.abnormal_exits
            + self.budget_exhausted
            + self.shard_lost
    }

    fn add(&mut self, cause: &TermCause) {
        match cause {
            TermCause::OsException { rank: 0, .. } => self.os_exceptions += 1,
            TermCause::OsException { .. } => self.slave_node_failed += 1,
            TermCause::MpiError(_) => self.mpi_errors += 1,
            TermCause::AssertionFailure { .. } => self.assertions += 1,
            TermCause::Hang => self.hangs += 1,
            TermCause::AbnormalExit { .. } => self.abnormal_exits += 1,
            TermCause::BudgetExhausted(_) => self.budget_exhausted += 1,
            // Never reached from Outcome::Terminated — ShardLost only
            // appears as a HarnessFault cause — but keep the bucket so the
            // breakdown stays total over TermCause.
            TermCause::ShardLost { .. } => self.shard_lost += 1,
        }
    }
}

/// Service-side counters stamped onto a campaign that ran under the
/// `chaser-serve` daemon: how the shared prepared-app pool treated this
/// job's key, and how deep the admission queue got while it waited. All
/// zero for standalone campaigns — and deliberately *never* part of the
/// outcome or per-run stats CSVs, which must stay byte-identical between
/// served and standalone executions of the same seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Campaigns that found their warmed [`crate::PreparedApp`] already in
    /// the pool.
    pub prepared_hits: u64,
    /// Campaigns that had to prepare (golden + profiling run, base cache,
    /// warm-start snapshot) from scratch.
    pub prepared_misses: u64,
    /// Prepared apps evicted to make room (LRU order).
    pub prepared_evictions: u64,
    /// High-water mark of the daemon's admission queue depth.
    pub queue_depth_hwm: u64,
}

impl PoolStats {
    /// Renders the pool counters as CSV (header + one row). A separate
    /// artifact from [`CampaignResult::stats_csv`] for the same reason
    /// [`ShardStats::to_csv`] is: service facts must not perturb the
    /// byte-identity of the per-run CSVs.
    pub fn to_csv(&self) -> String {
        format!(
            "prepared_hits,prepared_misses,prepared_evictions,queue_depth_hwm\n{},{},{},{}\n",
            self.prepared_hits, self.prepared_misses, self.prepared_evictions, self.queue_depth_hwm,
        )
    }
}

/// Everything a finished campaign knows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-run outcomes (injected runs only; see `skipped`).
    pub outcomes: Vec<RunOutcome>,
    /// Runs whose fault never fired (kept for accounting, not classified).
    pub skipped: u64,
    /// Instructions the golden run retired.
    pub golden_insns: u64,
    /// Dynamic execution counts per `(rank, class index)` from profiling.
    pub profile_counts: BTreeMap<(u32, usize), u64>,
    /// Translation-cache statistics summed over every injection run
    /// (skipped runs included; the golden and profiling runs are not).
    pub cache_stats: CacheStats,
    /// Snapshot/restore counters summed over the injection runs this
    /// process executed (all zero unless `warm_start` was on; rows a
    /// resume replayed from a journal contribute nothing — the row codec
    /// carries outcomes, not performance counters).
    pub snapshot_stats: SnapshotStats,
    /// Hot-path engine counters summed over every classified run (skipped
    /// runs excluded). Outcome rows journal their own counters, so a
    /// resumed campaign reports the same totals as an uninterrupted one.
    pub engine_stats: EngineStats,
    /// Scheduler-parallelism counters summed over every classified run
    /// (skipped runs excluded; journaled per row like `engine_stats`).
    pub parallel_stats: ParallelStats,
    /// Shard-supervision counters (shards, worker retries, reassigned and
    /// quarantined runs, per-shard wall times); all zero/empty unless the
    /// result came from [`Campaign::run_sharded`]. Rendered by
    /// [`ShardStats::to_csv`], never folded into
    /// [`CampaignResult::stats_csv`] — worker wall-times are wall-clock
    /// facts, and the per-run stats CSV must stay byte-identical between
    /// sharded and unsharded executions of the same seed.
    pub shard_stats: ShardStats,
    /// Prepared-app pool and admission-queue counters; all zero unless the
    /// campaign ran under the `chaser-serve` daemon, which stamps them on.
    /// Rendered by [`PoolStats::to_csv`], never folded into the per-run
    /// CSVs.
    pub pool_stats: PoolStats,
    /// The tracing regime the campaign executed under. Stamped by
    /// [`Campaign::run`] from the config; [`CampaignResult::to_csv`]
    /// renders the trace-derived columns as empty under
    /// [`TraceRegime::Off`] (no taint machinery ran, so a zero would be a
    /// lie — an empty cell keeps the schema while marking "not measured").
    pub trace_regime: TraceRegime,
}

impl CampaignResult {
    /// Outcome counts over the injected runs.
    pub fn outcome_counts(&self) -> OutcomeCounts {
        let mut c = OutcomeCounts::default();
        for run in &self.outcomes {
            match run.outcome {
                Outcome::Benign => c.benign += 1,
                Outcome::Sdc => c.sdc += 1,
                Outcome::Terminated(_) => c.terminated += 1,
                Outcome::HarnessFault { .. } => c.harness_faults += 1,
            }
        }
        c
    }

    /// Quarantined harness-failure rows (tool faults, not target outcomes).
    pub fn harness_faults(&self) -> impl Iterator<Item = &RunOutcome> {
        self.outcomes
            .iter()
            .filter(|r| r.outcome.is_harness_fault())
    }

    /// Table III attribution over all terminated runs.
    pub fn termination_breakdown(&self) -> TerminationBreakdown {
        let mut b = TerminationBreakdown::default();
        for run in &self.outcomes {
            if let Outcome::Terminated(cause) = &run.outcome {
                b.add(cause);
            }
        }
        b
    }

    /// Table III attribution restricted to runs whose fault crossed ranks.
    pub fn termination_breakdown_propagated(&self) -> TerminationBreakdown {
        let mut b = TerminationBreakdown::default();
        for run in self.outcomes.iter().filter(|r| r.propagated()) {
            if let Outcome::Terminated(cause) = &run.outcome {
                b.add(cause);
            }
        }
        b
    }

    /// Runs whose fault crossed a rank boundary.
    pub fn propagated_runs(&self) -> impl Iterator<Item = &RunOutcome> {
        self.outcomes.iter().filter(|r| r.propagated())
    }

    /// The CLAMR-study detected/undetected split:
    /// `(detected, undetected_benign, undetected_sdc)`.
    pub fn detection_split(&self) -> (u64, u64, u64) {
        let mut detected = 0;
        let mut benign = 0;
        let mut sdc = 0;
        for run in &self.outcomes {
            match run.outcome {
                Outcome::Terminated(_) => detected += 1,
                Outcome::Benign => benign += 1,
                Outcome::Sdc => sdc += 1,
                Outcome::HarnessFault { .. } => {}
            }
        }
        (detected, benign, sdc)
    }

    /// Renders the per-run outcomes as CSV (header + one row per run) for
    /// external plotting — the harness binaries accept `--csv <path>` to
    /// persist it.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "run_idx,outcome,class,rank,trigger_n,taint_reads,taint_writes,cross_rank,taint_sync_lost,prov_rank_reach,prov_blast_radius,prov_msg_edges,prov_digest,total_insns,site_pc,insn
",
        );
        for run in &self.outcomes {
            let (pc, insn) = run
                .record
                .as_ref()
                .map(|r| (format!("{:#x}", r.pc), r.insn.replace(',', ";")))
                .unwrap_or_default();
            // Under the statistical regime no taint machinery ran: the
            // trace-derived columns are emitted empty (schema-compatible,
            // but visibly "not measured" rather than a fake zero).
            let trace_cols = if self.trace_regime == TraceRegime::Off {
                ",,,,,,,".to_string()
            } else {
                format!(
                    "{},{},{},{},{},{},{},{:#x}",
                    run.taint_reads,
                    run.taint_writes,
                    run.cross_rank,
                    run.taint_sync_lost,
                    run.prov_rank_reach,
                    run.prov_blast_radius,
                    run.prov_msg_edges,
                    run.prov_digest,
                )
            };
            out.push_str(&format!(
                "{},{},{:?},{},{},{},{},{},{}
",
                run.run_idx,
                run.outcome,
                run.class,
                run.rank,
                run.trigger_n,
                trace_cols,
                run.total_insns,
                pc,
                insn,
            ));
        }
        out
    }

    /// Renders the per-run hot-path engine counters as CSV. Kept separate
    /// from [`CampaignResult::to_csv`] on purpose: outcome CSVs must stay
    /// byte-identical across the `tb_chaining` / `superblocks` /
    /// `taint_fast_path` ablation knobs, while these counters are exactly
    /// what the knobs change.
    pub fn stats_csv(&self) -> String {
        let mut out = String::from(
            "run_idx,tb_chain_hits,chain_severs,fast_path_insns,slow_path_insns,superblocks_formed,superblock_execs,superblock_bailouts,tb_lookups,tb_misses,rank_threads,parallel_rounds,max_worker_insns,total_worker_insns
",
        );
        for run in &self.outcomes {
            let e = run.engine_stats;
            let p = run.parallel;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}
",
                run.run_idx,
                e.tb_chain_hits,
                e.chain_severs,
                e.fast_path_insns,
                e.slow_path_insns,
                e.superblocks_formed,
                e.superblock_execs,
                e.superblock_bailouts,
                run.cache_stats.lookups,
                run.cache_stats.misses,
                p.threads,
                p.parallel_rounds,
                p.max_worker_insns,
                p.total_worker_insns,
            ));
        }
        out
    }

    /// Histogram of a per-run metric with fixed-width buckets:
    /// returns `(bucket lower bound, count)` pairs.
    pub fn histogram(
        &self,
        bucket_width: u64,
        metric: impl Fn(&RunOutcome) -> u64,
    ) -> Vec<(u64, u64)> {
        let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
        for run in &self.outcomes {
            let v = metric(run);
            *buckets
                .entry(v / bucket_width.max(1) * bucket_width.max(1))
                .or_insert(0) += 1;
        }
        buckets.into_iter().collect()
    }

    /// `(reads>writes, reads-only, writes-only)` run counts over traced
    /// runs with any taint activity — the paper's Fig. 8/9 side stats.
    pub fn read_write_split(&self) -> (u64, u64, u64) {
        let mut more_reads = 0;
        let mut reads_only = 0;
        let mut writes_only = 0;
        for run in &self.outcomes {
            let (r, w) = (run.taint_reads, run.taint_writes);
            if r > w && w > 0 {
                more_reads += 1;
            } else if r > 0 && w == 0 {
                reads_only += 1;
            } else if w > 0 && r == 0 {
                writes_only += 1;
            }
        }
        (more_reads, reads_only, writes_only)
    }
}

/// Per-injection-site vulnerability statistics (grouped by the targeted
/// instruction's address): the paper's hardening-candidate analysis —
/// "the injection points that resulted in higher tainted memory operations
/// should be considered candidates for further hardening".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteVulnerability {
    /// Disassembly of the instruction at this site.
    pub insn: String,
    /// Faults injected at this site.
    pub injections: u64,
    /// How many ended benign.
    pub benign: u64,
    /// How many ended as SDC.
    pub sdc: u64,
    /// How many terminated the run.
    pub terminated: u64,
    /// Total tainted memory operations caused by faults at this site.
    pub taint_ops: u64,
    /// How many of its faults crossed rank boundaries.
    pub propagated: u64,
}

impl SiteVulnerability {
    /// Fraction of this site's faults that did *not* end benign.
    pub fn vulnerability(&self) -> f64 {
        if self.injections == 0 {
            return 0.0;
        }
        (self.sdc + self.terminated) as f64 / self.injections as f64
    }

    /// Mean tainted memory operations per fault at this site.
    pub fn mean_taint_ops(&self) -> f64 {
        if self.injections == 0 {
            return 0.0;
        }
        self.taint_ops as f64 / self.injections as f64
    }
}

impl CampaignResult {
    /// Groups the campaign's outcomes by injection-site address.
    pub fn site_vulnerability(&self) -> BTreeMap<u64, SiteVulnerability> {
        let mut map: BTreeMap<u64, SiteVulnerability> = BTreeMap::new();
        for run in &self.outcomes {
            let Some(rec) = &run.record else { continue };
            let site = map.entry(rec.pc).or_default();
            if site.insn.is_empty() {
                site.insn = rec.insn.clone();
            }
            site.injections += 1;
            match run.outcome {
                Outcome::Benign => site.benign += 1,
                Outcome::Sdc => site.sdc += 1,
                Outcome::Terminated(_) => site.terminated += 1,
                // Unreachable in practice: quarantined rows carry no record.
                Outcome::HarnessFault { .. } => continue,
            }
            site.taint_ops += run.taint_reads + run.taint_writes;
            if run.propagated() {
                site.propagated += 1;
            }
        }
        map
    }

    /// The `n` sites with the most tainted memory operations per fault —
    /// the paper's hardening candidates.
    pub fn hardening_candidates(&self, n: usize) -> Vec<(u64, SiteVulnerability)> {
        let mut v: Vec<(u64, SiteVulnerability)> = self.site_vulnerability().into_iter().collect();
        v.sort_by(|a, b| {
            b.1.mean_taint_ops()
                .total_cmp(&a.1.mean_taint_ops())
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }
}

/// Rows replayed from a journal before a resume re-executes the rest.
#[derive(Debug, Default)]
pub(crate) struct ReplayBase {
    pub(crate) outcomes: Vec<RunOutcome>,
    pub(crate) skipped: u64,
    pub(crate) cache_stats: CacheStats,
}

impl ReplayBase {
    /// Folds one replayed journal row into the base.
    pub(crate) fn absorb(&mut self, row: &JournalRow) {
        match row {
            JournalRow::Outcome(o) => {
                self.cache_stats.absorb(o.cache_stats);
                self.outcomes.push((**o).clone());
            }
            JournalRow::Skip { cache_stats, .. } => {
                self.cache_stats.absorb(*cache_stats);
                self.skipped += 1;
            }
        }
    }
}

thread_local! {
    /// Set on campaign worker threads so the quarantine panic hook knows a
    /// panic there is caught and reported as a [`RunOutcome`], not printed.
    static QUARANTINE: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses the default
/// stderr backtrace for panics on quarantined campaign workers. Panics on
/// any other thread still reach the previous hook untouched.
fn install_quarantine_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUARANTINE.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Renders a `catch_unwind` payload as a short single-line message fit for
/// the journal (one row per line) and the outcome CSV (comma-separated).
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    let text = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    let mut clean: String = text
        .chars()
        .map(|c| match c {
            '\n' | '\r' => ' ',
            ',' => ';',
            c => c,
        })
        .collect();
    if clean.len() > 200 {
        let mut cut = 200;
        while !clean.is_char_boundary(cut) {
            cut -= 1;
        }
        clean.truncate(cut);
        clean.push_str("...");
    }
    clean
}

/// The quarantine row for a run the harness could not execute: a harness
/// panic (`cause: None`) or a degraded run whose shard's workers kept dying
/// (`cause: Some(TermCause::ShardLost { .. })`). The campaign keeps going,
/// and the row says nothing about the target application.
pub(crate) fn quarantined_outcome(
    idx: u64,
    payload: String,
    cause: Option<TermCause>,
) -> RunOutcome {
    RunOutcome {
        run_idx: idx,
        outcome: Outcome::HarnessFault {
            run_idx: idx,
            payload,
            cause,
        },
        class: InsnClass::Any,
        rank: 0,
        trigger_n: 0,
        injected: false,
        taint_reads: 0,
        taint_writes: 0,
        cross_rank: 0,
        taint_sync_lost: 0,
        prov_rank_reach: 0,
        prov_blast_radius: 0,
        prov_msg_edges: 0,
        prov_digest: 0,
        total_insns: 0,
        record: None,
        cache_stats: CacheStats::default(),
        engine_stats: EngineStats::default(),
        parallel: ParallelStats::default(),
    }
}

/// The quarantine row for a run whose *harness* (not guest) panicked.
fn harness_fault_outcome(idx: u64, payload: Box<dyn std::any::Any + Send>) -> RunOutcome {
    quarantined_outcome(idx, payload_message(payload), None)
}

/// A fault-injection campaign over one application.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub(crate) app: AppSpec,
    pub(crate) cfg: CampaignConfig,
}

impl Campaign {
    /// A campaign over `app` with `cfg`.
    pub fn new(app: AppSpec, cfg: CampaignConfig) -> Campaign {
        Campaign { app, cfg }
    }

    /// The golden run (fault-free), exposed for output inspection.
    pub fn golden(&self) -> RunReport {
        run_app(&self.app, &RunOptions::golden())
    }

    /// Prepares the application for this campaign: golden run, profiling
    /// run, and (warmed by the golden run) the per-node base translation
    /// caches shared across workers when `cfg.shared_tb_cache` is set.
    /// With `cfg.warm_start`, additionally captures the shared
    /// copy-on-write checkpoint every injection run restores from.
    pub fn prepare(&self) -> PreparedApp {
        let mut prepared = prepare_app(&self.app, &self.cfg.classes);
        if self.cfg.warm_start {
            let ranks: Vec<u32> = match self.cfg.rank_pool {
                RankPool::Master => vec![0],
                RankPool::Random => (0..self.app.nranks()).collect(),
            };
            let (eff_tracing, eff_provenance) = self
                .cfg
                .trace_regime
                .effective(self.cfg.tracing, self.cfg.provenance);
            prepared.warm = warm_start_for(
                &prepared,
                &WarmStartOptions {
                    classes: self.cfg.classes.clone(),
                    ranks,
                    // The prefix must be captured under the regime the
                    // injection runs execute with, so the regime-effective
                    // flags go in, not the raw config booleans.
                    tracing: eff_tracing,
                    provenance: eff_provenance,
                    budget: self.cfg.run_budget,
                },
            );
        }
        prepared
    }

    /// Executes the campaign: one golden + one profiling run, then
    /// `cfg.runs` seeded injection runs across worker threads. With
    /// `cfg.shared_tb_cache` every worker's runs start from the
    /// golden-warmed base translation cache; outcomes are bit-identical to
    /// the cold path either way.
    pub fn run(&self) -> CampaignResult {
        let prepared = self.prepare();
        let indices: Vec<u64> = (0..self.cfg.runs).collect();
        self.execute(&prepared, &indices, None, ReplayBase::default(), None)
    }

    /// Like [`Campaign::run`], journaling every finished run to `path` as
    /// an append-only checkpoint. A campaign killed mid-way can be finished
    /// with [`Campaign::resume`] on the same journal.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on filesystem failures.
    pub fn run_journaled(&self, path: &Path) -> Result<CampaignResult, JournalError> {
        let prepared = self.prepare();
        let journal = CampaignJournal::create_with(
            path,
            self.journal_header(&prepared),
            self.cfg.journal_sync_rows,
        )?;
        let indices: Vec<u64> = (0..self.cfg.runs).collect();
        Ok(self.execute(
            &prepared,
            &indices,
            Some(&journal),
            ReplayBase::default(),
            None,
        ))
    }

    /// Resumes a journaled campaign: validates that the journal belongs to
    /// *this* campaign (seed, configuration fingerprint, golden-output
    /// digest), replays the intact rows, and re-executes only the missing
    /// run indices. The result is byte-identical to an uninterrupted
    /// [`Campaign::run`] — per-run outcomes are deterministic functions of
    /// `(seed, run index)`, so it does not matter which process computed
    /// each row.
    ///
    /// # Errors
    ///
    /// [`JournalError::HeaderMismatch`] when the journal was written by a
    /// different campaign; [`JournalError::Malformed`] on a damaged
    /// journal (a truncated final line is tolerated, anything else is not).
    pub fn resume(&self, path: &Path) -> Result<CampaignResult, JournalError> {
        let prepared = self.prepare();
        let expected = self.journal_header(&prepared);
        let (found, rows) = CampaignJournal::read(path)?;
        if found != expected {
            return Err(JournalError::HeaderMismatch {
                path: path.display().to_string(),
                expected,
                found,
            });
        }
        // Last-wins dedup: a killed-and-resumed campaign may have journaled
        // a run twice; per-run determinism makes the copies identical, but
        // only one may be replayed.
        let mut by_idx: BTreeMap<u64, JournalRow> = BTreeMap::new();
        for row in rows {
            by_idx.insert(row.run_idx(), row);
        }
        let mut base = ReplayBase::default();
        for row in by_idx.values() {
            base.absorb(row);
        }
        let missing: Vec<u64> = (0..self.cfg.runs)
            .filter(|i| !by_idx.contains_key(i))
            .collect();
        let journal = CampaignJournal::append_to_with(path, self.cfg.journal_sync_rows)?;
        Ok(self.execute(&prepared, &missing, Some(&journal), base, None))
    }

    /// The header binding a journal to this campaign.
    pub(crate) fn journal_header(&self, prepared: &PreparedApp) -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            seed: self.cfg.seed,
            runs: self.cfg.runs,
            config_hash: self.config_fingerprint(),
            golden_digest: golden_digest(&prepared.golden.outputs),
            trace_regime: self.cfg.trace_regime,
        }
    }

    /// Fingerprint of every configuration knob that shapes the journal's
    /// contents or provenance. Operational knobs are excluded: which worker
    /// computed a row never changes it, so `parallelism`, the shard worker
    /// kind (`shard_workers`), the supervision timing (`shard_supervision`),
    /// the durability interval (`journal_sync_rows`) and the supervisor
    /// chaos knob (`shard_chaos`) stay out. `shared_tb_cache`, `warm_start`,
    /// `tb_chaining`, `taint_fast_path` and `rank_threads` *are* included
    /// even though all five are replay-equivalent knobs — a journal must be
    /// finished under the exact execution regime that started it, or its
    /// rows mix provenances silently (the journaled engine and parallelism
    /// counters would be incomparable across rows). `shards` is included
    /// (v5) because it fixes the shard plan: a shard journal's meta line is
    /// only meaningful under the plan that created it. `trace_regime` is
    /// included (v6): the regime decides whether taint counters in the
    /// journaled rows are measurements or never-armed zeros, so rows from
    /// different regimes must never mix. `superblocks` is included (v7) for
    /// the same reason as the other execution-regime knobs: the journaled
    /// engine counters it changes must stay comparable across rows.
    fn config_fingerprint(&self) -> u64 {
        let c = &self.cfg;
        let mut h = Fnv1a::new();
        h.write(
            format!(
                "{};{};{:?};{:?};{};{:?};{};{:?};{};{};{};{:?};{};{};{};{};{:?};{};{}",
                c.runs,
                c.seed,
                c.classes,
                c.rank_pool,
                c.bits_per_fault,
                c.operand,
                c.tracing,
                c.tracer,
                c.provenance,
                c.shared_tb_cache,
                c.warm_start,
                c.run_budget,
                c.tb_chaining,
                c.superblocks,
                c.taint_fast_path,
                c.rank_threads,
                c.panic_runs,
                c.shards,
                c.trace_regime.name(),
            )
            .as_bytes(),
        );
        h.finish()
    }

    /// The shared worker loop behind [`Campaign::run`], `run_journaled`,
    /// `resume` and the shard workers: executes `indices` across worker
    /// threads, each run isolated under `catch_unwind` so a harness panic
    /// quarantines that one run (as [`Outcome::HarnessFault`]) instead of
    /// poisoning the campaign, and folds the results into `base` (the rows
    /// a resume replayed from the journal). `ctl`, when present, is the
    /// shard worker's control block: it counts journal appends for the
    /// supervisor's liveness heartbeat, carries the chaos trigger, and its
    /// stop flag makes workers drain without taking new indices.
    pub(crate) fn execute(
        &self,
        prepared: &PreparedApp,
        indices: &[u64],
        journal: Option<&CampaignJournal>,
        base: ReplayBase,
        ctl: Option<&ShardCtl>,
    ) -> CampaignResult {
        let workers = if self.cfg.parallelism == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.cfg.parallelism
        };

        install_quarantine_hook();
        let next = AtomicUsize::new(0);
        let outcomes = Mutex::new(base.outcomes);
        let cache_stats = Mutex::new(base.cache_stats);
        let snapshot_stats = Mutex::new(SnapshotStats::default());
        let skipped = AtomicU64::new(base.skipped);

        std::thread::scope(|scope| {
            for _ in 0..workers.min(indices.len()).max(1) {
                scope.spawn(|| {
                    QUARANTINE.with(|q| q.set(true));
                    loop {
                        if ctl.is_some_and(ShardCtl::stopped) {
                            break;
                        }
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = indices.get(slot) else { break };
                        match catch_unwind(AssertUnwindSafe(|| self.one_run(idx, prepared))) {
                            Ok((run_cache, run_snap, Some(outcome))) => {
                                cache_stats.lock().expect("poisoned").absorb(run_cache);
                                snapshot_stats.lock().expect("poisoned").absorb(run_snap);
                                if let Some(j) = journal {
                                    let _ = j.append_outcome(&outcome);
                                }
                                if let Some(c) = ctl {
                                    c.on_row();
                                }
                                outcomes.lock().expect("poisoned").push(outcome);
                            }
                            Ok((run_cache, run_snap, None)) => {
                                cache_stats.lock().expect("poisoned").absorb(run_cache);
                                snapshot_stats.lock().expect("poisoned").absorb(run_snap);
                                if let Some(j) = journal {
                                    let _ = j.append_skip(idx, run_cache);
                                }
                                if let Some(c) = ctl {
                                    c.on_row();
                                }
                                skipped.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(payload) => {
                                let outcome = harness_fault_outcome(idx, payload);
                                if let Some(j) = journal {
                                    let _ = j.append_outcome(&outcome);
                                }
                                if let Some(c) = ctl {
                                    c.on_row();
                                }
                                outcomes.lock().expect("poisoned").push(outcome);
                            }
                        }
                    }
                });
            }
        });

        let mut outcomes = outcomes.into_inner().expect("poisoned");
        outcomes.sort_by_key(|o| o.run_idx);
        let mut engine_stats = EngineStats::default();
        let mut parallel_stats = ParallelStats::default();
        for o in &outcomes {
            engine_stats.absorb(o.engine_stats);
            parallel_stats.absorb(o.parallel);
        }
        CampaignResult {
            outcomes,
            skipped: skipped.load(Ordering::Relaxed),
            golden_insns: prepared.golden.cluster.total_insns,
            profile_counts: prepared.profile_counts.clone().into_iter().collect(),
            cache_stats: cache_stats.into_inner().expect("poisoned"),
            snapshot_stats: snapshot_stats.into_inner().expect("poisoned"),
            engine_stats,
            parallel_stats,
            shard_stats: ShardStats::default(),
            pool_stats: PoolStats::default(),
            trace_regime: self.cfg.trace_regime,
        }
    }

    /// Draws the run's fault parameters and executes it. Always returns the
    /// run's cache and snapshot statistics; the outcome is `None` when the
    /// fault never fired.
    fn one_run(
        &self,
        idx: u64,
        prepared: &PreparedApp,
    ) -> (CacheStats, SnapshotStats, Option<RunOutcome>) {
        if self.cfg.panic_runs.contains(&idx) {
            panic!("forced harness panic (run {idx})");
        }
        let golden = &prepared.golden;
        let profile = &prepared.profile_counts;
        let mut rng = SmallRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add(idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let rank = match self.cfg.rank_pool {
            RankPool::Master => 0,
            RankPool::Random => rng.gen_range(0..self.app.nranks()),
        };
        // Draw a class with a non-zero dynamic count for this rank.
        let viable: Vec<usize> = (0..self.cfg.classes.len())
            .filter(|&ci| profile.get(&(rank, ci)).copied().unwrap_or(0) > 0)
            .collect();
        let Some(&class_idx) = viable.get(
            rng.gen_range(0..viable.len().max(1))
                .min(viable.len().saturating_sub(1)),
        ) else {
            return (CacheStats::default(), SnapshotStats::default(), None);
        };
        let class = self.cfg.classes[class_idx];
        let dyn_count = profile[&(rank, class_idx)];
        let trigger_n = rng.gen_range(1..=dyn_count);

        let spec = InjectionSpec {
            target_program: self.app.name.clone(),
            target_rank: rank,
            class,
            trigger: Trigger::AfterN(trigger_n),
            corruption: Corruption::FlipRandomBits(self.cfg.bits_per_fault),
            operand: self.cfg.operand,
            max_injections: 1,
            seed: rng.gen(),
        };
        let opts = RunOptions {
            spec: Some(spec),
            tracing: self.cfg.tracing,
            tracer: self.cfg.tracer,
            provenance: self.cfg.provenance,
            regime: self.cfg.trace_regime,
            hook_mpi_symbols: false,
            budget: self.cfg.run_budget,
            exec_tuning: ExecTuning {
                tb_chaining: self.cfg.tb_chaining,
                superblocks: self.cfg.superblocks,
                taint_fast_path: self.cfg.taint_fast_path,
            },
            rank_threads: self.cfg.rank_threads,
        };
        let report = if prepared.warm.is_some() {
            run_warm(prepared, &opts, self.cfg.shared_tb_cache)
        } else if self.cfg.shared_tb_cache {
            run_prepared(prepared, &opts)
        } else {
            run_app(&self.app, &opts)
        };
        let cache_stats = report.cache_stats;
        let snap_stats = report.snapshot;
        if !report.injected() {
            return (cache_stats, snap_stats, None);
        }
        let outcome = report.classify_against(golden);
        let prov = report.provenance.as_ref();
        let outcome = RunOutcome {
            run_idx: idx,
            outcome,
            class,
            rank,
            trigger_n,
            injected: true,
            taint_reads: report.trace.as_ref().map_or(0, |t| t.taint_reads),
            taint_writes: report.trace.as_ref().map_or(0, |t| t.taint_writes),
            cross_rank: report.cluster.cross_rank_tainted_deliveries,
            taint_sync_lost: report.cluster.taint_sync_lost,
            prov_rank_reach: prov.map_or(0, |g| g.rank_reach().len() as u32),
            prov_blast_radius: prov.map_or(0, ProvenanceGraph::blast_radius_bytes),
            prov_msg_edges: prov.map_or(0, |g| g.msg_edges.len() as u64),
            prov_digest: prov.map_or(0, ProvenanceGraph::digest),
            total_insns: report.cluster.total_insns,
            record: report.injections.first().cloned(),
            cache_stats,
            engine_stats: report.engine_stats,
            parallel: report.parallel,
        };
        (cache_stats, snap_stats, Some(outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_vm::Signal;

    fn outcome(o: Outcome, reads: u64, writes: u64, cross: u64) -> RunOutcome {
        RunOutcome {
            run_idx: 0,
            outcome: o,
            class: InsnClass::Fadd,
            rank: 0,
            trigger_n: 1,
            injected: true,
            taint_reads: reads,
            taint_writes: writes,
            cross_rank: cross,
            taint_sync_lost: 0,
            prov_rank_reach: 0,
            prov_blast_radius: 0,
            prov_msg_edges: 0,
            prov_digest: 0,
            total_insns: 100,
            record: None,
            cache_stats: CacheStats::default(),
            engine_stats: EngineStats::default(),
            parallel: ParallelStats::default(),
        }
    }

    fn result(outcomes: Vec<RunOutcome>) -> CampaignResult {
        CampaignResult {
            outcomes,
            skipped: 0,
            golden_insns: 0,
            profile_counts: BTreeMap::new(),
            cache_stats: CacheStats::default(),
            snapshot_stats: SnapshotStats::default(),
            engine_stats: EngineStats::default(),
            parallel_stats: ParallelStats::default(),
            shard_stats: ShardStats::default(),
            pool_stats: PoolStats::default(),
            trace_regime: TraceRegime::default(),
        }
    }

    #[test]
    fn outcome_counts_and_percentages() {
        let r = result(vec![
            outcome(Outcome::Benign, 0, 0, 0),
            outcome(Outcome::Sdc, 0, 0, 0),
            outcome(
                Outcome::Terminated(TermCause::OsException {
                    rank: 0,
                    signal: Signal::Segv,
                }),
                0,
                0,
                0,
            ),
            outcome(Outcome::Benign, 0, 0, 0),
        ]);
        let c = r.outcome_counts();
        assert_eq!((c.benign, c.sdc, c.terminated), (2, 1, 1));
        let (b, s, t) = c.percentages();
        assert!((b - 50.0).abs() < 1e-9);
        assert!((s - 25.0).abs() < 1e-9);
        assert!((t - 25.0).abs() < 1e-9);
    }

    #[test]
    fn termination_breakdown_buckets() {
        let r = result(vec![
            outcome(
                Outcome::Terminated(TermCause::OsException {
                    rank: 0,
                    signal: Signal::Segv,
                }),
                0,
                0,
                0,
            ),
            outcome(
                Outcome::Terminated(TermCause::OsException {
                    rank: 2,
                    signal: Signal::Segv,
                }),
                0,
                0,
                1,
            ),
            outcome(
                Outcome::Terminated(TermCause::MpiError(chaser_mpi::MpiErrorKind::InvalidRank)),
                0,
                0,
                0,
            ),
            outcome(Outcome::Terminated(TermCause::Hang), 0, 0, 0),
        ]);
        let b = r.termination_breakdown();
        assert_eq!(b.os_exceptions, 1);
        assert_eq!(b.slave_node_failed, 1);
        assert_eq!(b.mpi_errors, 1);
        assert_eq!(b.hangs, 1);
        assert_eq!(b.total(), 4);
        // The propagated subset only sees the slave failure.
        let p = r.termination_breakdown_propagated();
        assert_eq!(p.total(), 1);
        assert_eq!(p.slave_node_failed, 1);
    }

    #[test]
    fn read_write_split_matches_definitions() {
        let r = result(vec![
            outcome(Outcome::Benign, 10, 2, 0), // more reads
            outcome(Outcome::Benign, 5, 0, 0),  // reads only
            outcome(Outcome::Benign, 0, 3, 0),  // writes only
            outcome(Outcome::Benign, 2, 5, 0),  // more writes: none of the three
        ]);
        assert_eq!(r.read_write_split(), (1, 1, 1));
    }

    #[test]
    fn pool_stats_csv_is_header_plus_one_row() {
        let stats = PoolStats {
            prepared_hits: 3,
            prepared_misses: 1,
            prepared_evictions: 2,
            queue_depth_hwm: 5,
        };
        assert_eq!(
            stats.to_csv(),
            "prepared_hits,prepared_misses,prepared_evictions,queue_depth_hwm\n3,1,2,5\n"
        );
        assert_eq!(
            PoolStats::default().to_csv(),
            "prepared_hits,prepared_misses,prepared_evictions,queue_depth_hwm\n0,0,0,0\n"
        );
    }

    #[test]
    fn rank_pool_names_round_trip() {
        for pool in [RankPool::Master, RankPool::Random] {
            assert_eq!(RankPool::from_name(pool.name()), Some(pool));
        }
        assert_eq!(RankPool::from_name("everyone"), None);
    }

    #[test]
    fn histogram_buckets_by_width() {
        let r = result(vec![
            outcome(Outcome::Benign, 5, 0, 0),
            outcome(Outcome::Benign, 15, 0, 0),
            outcome(Outcome::Benign, 17, 0, 0),
        ]);
        let h = r.histogram(10, |o| o.taint_reads);
        assert_eq!(h, vec![(0, 1), (10, 2)]);
    }
}

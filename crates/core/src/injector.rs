//! The injector runtime: arms on VMI process creation, instruments
//! targeted instructions at translation time, and fires corruptions at the
//! spliced callbacks.

use crate::spec::{Corruption, InjectionSpec, OperandSel, Trigger};
use chaser_isa::{FReg, Instruction, Reg};
use chaser_taint::{ProvSet, TaintMask};
use chaser_vm::{
    ExitStatus, FnHookSink, GuestCtx, InjectAction, InjectSink, NodeTranslateHook, VmiAction,
    VmiSink,
};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A register operand of a guest instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandLoc {
    /// A general-purpose register.
    Reg(Reg),
    /// A floating-point register.
    FReg(FReg),
}

impl std::fmt::Display for OperandLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OperandLoc::Reg(r) => write!(f, "{r}"),
            OperandLoc::FReg(r) => write!(f, "{r}"),
        }
    }
}

/// Register *operands* of `insn`: the registers the instruction actually
/// reads (read-modify-write destinations included, write-only destinations
/// excluded).
///
/// Corrupting a write-only destination *before* the instruction executes
/// would be masked by the instruction's own write — the fault would never
/// exist architecturally. The paper injects "into the operands" of the
/// targeted instruction, i.e. the consumed values, which is what this
/// models: for a load that includes the base (pointer) register, for an
/// `fadd` both FP inputs, and so on.
pub fn operand_candidates(insn: &Instruction) -> Vec<OperandLoc> {
    use chaser_isa::Reg as R;
    use Instruction as I;
    use OperandLoc as O;
    match *insn {
        I::MovRR { src, .. } => vec![O::Reg(src)],
        I::MovRI { .. } => vec![],
        I::Ld { base, .. } => vec![O::Reg(base)],
        I::St { src, base, .. } => vec![O::Reg(src), O::Reg(base)],
        I::LdIdx { base, idx, .. } => vec![O::Reg(base), O::Reg(idx)],
        I::StIdx { src, base, idx } => vec![O::Reg(src), O::Reg(base), O::Reg(idx)],
        I::Push { src } => vec![O::Reg(src), O::Reg(R::SP)],
        I::Pop { .. } => vec![O::Reg(R::SP)],
        I::Add { dst, src }
        | I::Sub { dst, src }
        | I::Mul { dst, src }
        | I::Divs { dst, src }
        | I::Divu { dst, src }
        | I::Rem { dst, src }
        | I::And { dst, src }
        | I::Or { dst, src }
        | I::Xor { dst, src }
        | I::Shl { dst, src }
        | I::Shr { dst, src }
        | I::Sar { dst, src } => vec![O::Reg(dst), O::Reg(src)],
        I::AddI { dst, .. }
        | I::SubI { dst, .. }
        | I::MulI { dst, .. }
        | I::AndI { dst, .. }
        | I::OrI { dst, .. }
        | I::XorI { dst, .. }
        | I::ShlI { dst, .. }
        | I::ShrI { dst, .. }
        | I::SarI { dst, .. }
        | I::Neg { dst }
        | I::Not { dst } => vec![O::Reg(dst)],
        I::Cmp { a, b } => vec![O::Reg(a), O::Reg(b)],
        I::CmpI { a, .. } => vec![O::Reg(a)],
        I::CallR { target } => vec![O::Reg(target)],
        I::FMov { src, .. } => vec![O::FReg(src)],
        I::FMovI { .. } => vec![],
        I::FLd { base, .. } => vec![O::Reg(base)],
        I::FSt { src, base, .. } => vec![O::FReg(src), O::Reg(base)],
        I::FLdIdx { base, idx, .. } => vec![O::Reg(base), O::Reg(idx)],
        I::FStIdx { src, base, idx } => vec![O::FReg(src), O::Reg(base), O::Reg(idx)],
        I::Fadd { dst, src }
        | I::Fsub { dst, src }
        | I::Fmul { dst, src }
        | I::Fdiv { dst, src }
        | I::Fmin { dst, src }
        | I::Fmax { dst, src } => vec![O::FReg(dst), O::FReg(src)],
        I::Fsqrt { dst } | I::Fabs { dst } | I::Fneg { dst } => vec![O::FReg(dst)],
        I::Fcmp { a, b } => vec![O::FReg(a), O::FReg(b)],
        I::CvtIF { src, .. } => vec![O::Reg(src)],
        I::CvtFI { src, .. } => vec![O::FReg(src)],
        I::MovFR { src, .. } => vec![O::FReg(src)],
        I::MovRF { src, .. } => vec![O::Reg(src)],
        I::Nop
        | I::Halt
        | I::Jmp { .. }
        | I::Jcc { .. }
        | I::Call { .. }
        | I::Ret
        | I::Hypercall { .. } => vec![],
    }
}

/// The effective guest address `insn` is about to access, or `None` for
/// instructions that do not touch data memory. Used by the
/// `CORRUPT_MEMORY` injection path ([`crate::OperandSel::Memory`]).
pub fn effective_address(insn: &Instruction, cpu: &chaser_isa::CpuState) -> Option<u64> {
    use Instruction as I;
    let idx_addr = |base: Reg, idx: Reg| cpu.reg(base).wrapping_add(cpu.reg(idx).wrapping_mul(8));
    let off_addr = |base: Reg, off: i32| cpu.reg(base).wrapping_add(off as i64 as u64);
    match *insn {
        I::Ld { base, off, .. } | I::St { base, off, .. } => Some(off_addr(base, off)),
        I::FLd { base, off, .. } | I::FSt { base, off, .. } => Some(off_addr(base, off)),
        I::LdIdx { base, idx, .. } | I::StIdx { base, idx, .. } => Some(idx_addr(base, idx)),
        I::FLdIdx { base, idx, .. } | I::FStIdx { base, idx, .. } => Some(idx_addr(base, idx)),
        I::Push { .. } => Some(cpu.sp().wrapping_sub(8)),
        I::Pop { .. } | I::Ret => Some(cpu.sp()),
        _ => None,
    }
}

/// A record of one placed fault — what the campaign logs per injection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Node the fault landed on.
    pub node: u32,
    /// Victim process.
    pub pid: u64,
    /// Address of the targeted instruction.
    pub pc: u64,
    /// Disassembly of the targeted instruction.
    pub insn: String,
    /// The corrupted operand.
    pub operand: String,
    /// Operand bits before corruption.
    pub old_bits: u64,
    /// Operand bits after corruption.
    pub new_bits: u64,
    /// Bits marked as the taint source.
    pub taint_mask: u64,
    /// Victim's retired-instruction count at injection.
    pub icount: u64,
    /// How many targeted-class instructions had executed (the trigger
    /// counter).
    pub exec_count: u64,
}

#[derive(Debug)]
struct InjState {
    seen_creations: u32,
    active: Option<(u32, u64)>,
    exec_count: u64,
    injections_done: u64,
    rng: SmallRng,
    records: Vec<InjectionRecord>,
}

/// The fault injector: implements the VMI creation callback
/// (`fi_creation_cb`), the translation-time target filter, and the
/// injection callback (`fault_injector` / `DECAF_inject_fault`) of the
/// paper's plugin structure (its Fig. 4).
#[derive(Debug)]
pub struct Injector {
    spec: InjectionSpec,
    state: Mutex<InjState>,
}

impl Injector {
    /// An injector executing `spec`.
    pub fn new(spec: InjectionSpec) -> Arc<Injector> {
        let rng = SmallRng::seed_from_u64(spec.seed);
        Arc::new(Injector {
            spec,
            state: Mutex::new(InjState {
                seen_creations: 0,
                active: None,
                exec_count: 0,
                injections_done: 0,
                rng,
                records: Vec::new(),
            }),
        })
    }

    /// The spec this injector runs.
    pub fn spec(&self) -> &InjectionSpec {
        &self.spec
    }

    /// Injections placed so far.
    pub fn injections_done(&self) -> u64 {
        self.state.lock().injections_done
    }

    /// Executed targeted-class instructions observed so far.
    pub fn exec_count(&self) -> u64 {
        self.state.lock().exec_count
    }

    /// The records of all placed faults.
    pub fn records(&self) -> Vec<InjectionRecord> {
        self.state.lock().records.clone()
    }

    /// Applies the spec's corruption to `old` using `rng` for randomness.
    fn corrupt_with(&self, old: u64, rng: &mut SmallRng) -> u64 {
        match &self.spec.corruption {
            Corruption::FlipBits(bits) => {
                let mut v = old;
                for b in bits {
                    v ^= 1u64 << (b & 63);
                }
                v
            }
            Corruption::FlipRandomBits(n) => {
                let mut v = old;
                let mut flipped = 0u64;
                while flipped.count_ones() < (*n).min(64) {
                    let b = rng.gen_range(0..64u32);
                    if flipped & (1 << b) == 0 {
                        flipped |= 1 << b;
                        v ^= 1 << b;
                    }
                }
                v
            }
            Corruption::SetValue(v) => *v,
            Corruption::Identity => old,
        }
    }

    fn corrupt(&self, old: u64, rng: &mut SmallRng) -> u64 {
        self.corrupt_with(old, rng)
    }

    fn is_done(&self) -> bool {
        let st = self.state.lock();
        st.injections_done >= self.spec.max_injections
    }

    fn inject(&self, insn: &Instruction, ctx: &mut GuestCtx<'_>) -> bool {
        // The CORRUPT_MEMORY path: hit the word the instruction is about
        // to access, when it has one and the address is mapped.
        if self.spec.operand == OperandSel::Memory {
            if let Some(addr) = effective_address(insn, ctx.cpu) {
                if let Ok(old) = ctx.read_mem(addr) {
                    let mut st = self.state.lock();
                    let new = self.corrupt(old, &mut st.rng);
                    // The fault's provenance id: its ordinal among this
                    // injector's placements.
                    let prov = ProvSet::single(st.injections_done as u32);
                    drop(st);
                    let mask = match &self.spec.corruption {
                        Corruption::Identity => TaintMask::ALL,
                        _ => TaintMask(old ^ new),
                    };
                    if ctx.write_mem(addr, new).is_ok() {
                        let _ = ctx.taint_mem_with_prov(addr, mask, prov);
                        let mut st = self.state.lock();
                        let exec_count = st.exec_count;
                        st.records.push(InjectionRecord {
                            node: ctx.node,
                            pid: ctx.pid,
                            pc: ctx.pc,
                            insn: insn.to_string(),
                            operand: format!("mem[{addr:#x}]"),
                            old_bits: old,
                            new_bits: new,
                            taint_mask: mask.0,
                            icount: ctx.icount,
                            exec_count,
                        });
                        st.injections_done += 1;
                        return true;
                    }
                }
            }
            // No memory operand (or unmapped): fall through to registers.
        }
        let candidates = operand_candidates(insn);
        if candidates.is_empty() {
            return false;
        }
        let mut st = self.state.lock();
        let loc = match self.spec.operand {
            OperandSel::Dst => candidates[0],
            OperandSel::Src => *candidates.get(1).unwrap_or(&candidates[0]),
            OperandSel::Random | OperandSel::Memory => {
                candidates[st.rng.gen_range(0..candidates.len())]
            }
        };
        let old = match loc {
            OperandLoc::Reg(r) => ctx.reg(r),
            OperandLoc::FReg(r) => ctx.freg_bits(r),
        };
        let new = {
            let rng = &mut st.rng;
            self.corrupt_with(old, rng)
        };
        // The injected fault is the taint source. Identity injections taint
        // the whole operand so tracing can be exercised without perturbing
        // the computation (the paper's overhead methodology).
        let mask = match &self.spec.corruption {
            Corruption::Identity => TaintMask::ALL,
            _ => TaintMask(old ^ new),
        };
        let prov = ProvSet::single(st.injections_done as u32);
        match loc {
            OperandLoc::Reg(r) => {
                ctx.set_reg(r, new);
                ctx.taint_reg_with_prov(r, mask, prov);
            }
            OperandLoc::FReg(r) => {
                ctx.set_freg_bits(r, new);
                ctx.taint_freg_with_prov(r, mask, prov);
            }
        }
        let exec_count = st.exec_count;
        st.records.push(InjectionRecord {
            node: ctx.node,
            pid: ctx.pid,
            pc: ctx.pc,
            insn: insn.to_string(),
            operand: loc.to_string(),
            old_bits: old,
            new_bits: new,
            taint_mask: mask.0,
            icount: ctx.icount,
            exec_count,
        });
        st.injections_done += 1;
        true
    }
}

impl NodeTranslateHook for Injector {
    fn inject_point(&self, node: u32, pid: u64, _pc: u64, insn: &Instruction) -> Option<u64> {
        if self.is_done() {
            return None;
        }
        let st = self.state.lock();
        if st.active != Some((node, pid)) {
            return None;
        }
        insn.is_in_class(self.spec.class).then_some(0)
    }
}

/// Shared handle wiring one [`Injector`] into a node's mutable sink slots.
#[derive(Debug, Clone)]
pub struct InjectorHandle(pub Arc<Injector>);

impl InjectSink for InjectorHandle {
    fn on_inject_point(
        &mut self,
        _point: u64,
        insn: &Instruction,
        ctx: &mut GuestCtx<'_>,
    ) -> InjectAction {
        let injector = &self.0;
        if injector.is_done() {
            return InjectAction::default();
        }
        {
            let mut st = injector.state.lock();
            if st.active != Some((ctx.node, ctx.pid)) {
                return InjectAction::default();
            }
            st.exec_count += 1;
            let fire = match injector.spec.trigger {
                // ">=" so that a trigger landing on an instruction with no
                // corruptible operand slides to the next targeted one.
                Trigger::AfterN(n) => st.exec_count >= n,
                Trigger::WithProbability(p) => st.rng.gen_bool(p.clamp(0.0, 1.0)),
                Trigger::Always => true,
                Trigger::Periodic { start, period } => {
                    st.exec_count >= start && (st.exec_count - start).is_multiple_of(period.max(1))
                }
            };
            if !fire {
                return InjectAction::default();
            }
        }
        injector.inject(insn, ctx);
        if injector.is_done() {
            // fi_clean_cb: the fault is placed — detach the injector by
            // flushing the translation cache so subsequent translations are
            // clean again (the "efficient" design point).
            InjectAction { flush_tb: true }
        } else {
            InjectAction::default()
        }
    }
}

impl VmiSink for InjectorHandle {
    fn on_process_created(&mut self, node: u32, pid: u64, name: &str) -> VmiAction {
        let injector = &self.0;
        if name != injector.spec.target_program {
            return VmiAction::NONE;
        }
        let mut st = injector.state.lock();
        let idx = st.seen_creations;
        st.seen_creations += 1;
        if idx == injector.spec.target_rank && st.active.is_none() {
            st.active = Some((node, pid));
            // Flush so the next translation round carries the injector.
            VmiAction::FLUSH
        } else {
            VmiAction::NONE
        }
    }

    fn on_process_exited(&mut self, _node: u32, _pid: u64, _status: ExitStatus) -> VmiAction {
        VmiAction::NONE
    }
}

// ---- profiling ----

/// Counts per-rank, per-class executions of targeted instructions during a
/// golden run. Campaigns use the counts to draw the deterministic trigger's
/// `n` uniformly over the class's dynamic execution count.
#[derive(Debug)]
pub struct ProfileHook {
    program: String,
    classes: Vec<chaser_isa::InsnClass>,
    state: Mutex<ProfileState>,
}

#[derive(Debug, Default)]
struct ProfileState {
    seen_creations: u32,
    rank_of: HashMap<(u32, u64), u32>,
    counts: HashMap<(u32, usize), u64>,
}

impl ProfileHook {
    /// Profiles executions of `classes` in every rank of `program`.
    pub fn new(
        program: impl Into<String>,
        classes: Vec<chaser_isa::InsnClass>,
    ) -> Arc<ProfileHook> {
        Arc::new(ProfileHook {
            program: program.into(),
            classes,
            state: Mutex::new(ProfileState::default()),
        })
    }

    /// The dynamic execution count of `classes[class_idx]` in `rank`.
    pub fn count(&self, rank: u32, class_idx: usize) -> u64 {
        *self
            .state
            .lock()
            .counts
            .get(&(rank, class_idx))
            .unwrap_or(&0)
    }

    /// All `(rank, class index) → count` pairs.
    pub fn counts(&self) -> HashMap<(u32, usize), u64> {
        self.state.lock().counts.clone()
    }
}

impl NodeTranslateHook for ProfileHook {
    fn inject_point(&self, node: u32, pid: u64, _pc: u64, insn: &Instruction) -> Option<u64> {
        let st = self.state.lock();
        if !st.rank_of.contains_key(&(node, pid)) {
            return None;
        }
        self.classes
            .iter()
            .position(|c| insn.is_in_class(*c))
            .map(|i| i as u64)
    }
}

/// Sink side of [`ProfileHook`].
#[derive(Debug, Clone)]
pub struct ProfileHandle(pub Arc<ProfileHook>);

impl InjectSink for ProfileHandle {
    fn on_inject_point(
        &mut self,
        point: u64,
        _insn: &Instruction,
        ctx: &mut GuestCtx<'_>,
    ) -> InjectAction {
        let mut st = self.0.state.lock();
        if let Some(&rank) = st.rank_of.get(&(ctx.node, ctx.pid)) {
            *st.counts.entry((rank, point as usize)).or_insert(0) += 1;
        }
        InjectAction::default()
    }
}

impl VmiSink for ProfileHandle {
    fn on_process_created(&mut self, node: u32, pid: u64, name: &str) -> VmiAction {
        if name != self.0.program {
            return VmiAction::NONE;
        }
        let mut st = self.0.state.lock();
        let rank = st.seen_creations;
        st.seen_creations += 1;
        st.rank_of.insert((node, pid), rank);
        VmiAction::FLUSH
    }
}

/// A no-op function-entry logger used to demonstrate (and test) the guest
/// function hooking path Chaser uses to intercept MPI calls.
#[derive(Debug, Default)]
pub struct FnHookLogger {
    /// `(hook id, pc, R1..R6 at entry)` per hit.
    pub hits: Vec<(u64, u64, [u64; 6])>,
}

impl FnHookSink for FnHookLogger {
    fn on_fn_entry(&mut self, hook_id: u64, ctx: &mut GuestCtx<'_>) {
        let args = [
            ctx.reg(Reg::R1),
            ctx.reg(Reg::R2),
            ctx.reg(Reg::R3),
            ctx.reg(Reg::R4),
            ctx.reg(Reg::R5),
            ctx.reg(Reg::R6),
        ];
        self.hits.push((hook_id, ctx.pc, args));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_isa::InsnClass;

    #[test]
    fn operand_candidates_are_read_operands() {
        // fadd reads both its destination (RMW) and its source.
        let insn = Instruction::Fadd {
            dst: FReg::F3,
            src: FReg::F4,
        };
        let ops = operand_candidates(&insn);
        assert_eq!(ops[0], OperandLoc::FReg(FReg::F3));
        assert_eq!(ops[1], OperandLoc::FReg(FReg::F4));
        // A load reads only its base pointer; its destination is
        // write-only, so corrupting it pre-execution would be masked.
        let ld = Instruction::Ld {
            dst: Reg::R1,
            base: Reg::R2,
            off: 0,
        };
        assert_eq!(operand_candidates(&ld), vec![OperandLoc::Reg(Reg::R2)]);
        // A register-immediate mov reads nothing corruptible.
        let movi = Instruction::MovRI {
            dst: Reg::R1,
            imm: 5,
        };
        assert!(operand_candidates(&movi).is_empty());
    }

    #[test]
    fn control_flow_has_no_register_operands() {
        assert!(operand_candidates(&Instruction::Ret).is_empty());
        assert!(operand_candidates(&Instruction::Jmp { target: 0 }).is_empty());
        assert!(operand_candidates(&Instruction::Nop).is_empty());
    }

    #[test]
    fn injector_arms_only_for_its_rank() {
        let spec = InjectionSpec::deterministic("app", InsnClass::Fadd, 1, vec![0]).with_rank(1);
        let injector = Injector::new(spec);
        let mut handle = InjectorHandle(Arc::clone(&injector));
        // First creation is rank 0 — not the target.
        assert_eq!(handle.on_process_created(0, 1, "app"), VmiAction::NONE);
        // Wrong name ignored entirely.
        assert_eq!(handle.on_process_created(0, 2, "other"), VmiAction::NONE);
        // Second matching creation is rank 1 — arm and flush.
        assert_eq!(handle.on_process_created(1, 1, "app"), VmiAction::FLUSH);
        let fadd = Instruction::Fadd {
            dst: FReg::F0,
            src: FReg::F1,
        };
        assert_eq!(injector.inject_point(1, 1, 0x400000, &fadd), Some(0));
        assert_eq!(injector.inject_point(0, 1, 0x400000, &fadd), None);
        let mov = Instruction::MovRR {
            dst: Reg::R1,
            src: Reg::R2,
        };
        assert_eq!(injector.inject_point(1, 1, 0x400000, &mov), None);
    }
}

//! The three fault models shipped with Chaser (the paper's Table I),
//! each built *only* on the exported plugin interfaces — the paper's
//! flexibility claim (Table II) is that a new model costs ~100 lines.
//!
//! | Model | Trigger | Source file |
//! |---|---|---|
//! | Probabilistic | fires with probability `p` per execution | `probabilistic.rs` |
//! | Deterministic | fires at the exact n-th execution | `deterministic.rs` |
//! | Group | injects into all floating-point instructions | `group.rs` |
//! | Intermittent (extension) | fires periodically from a start point | `intermittent.rs` |
//!
//! The per-file line counts are what the Table II harness
//! (`table2_loc`) reports.

mod deterministic;
mod group;
mod intermittent;
mod probabilistic;

pub use deterministic::DeterministicInjector;
pub use group::GroupInjector;
pub use intermittent::IntermittentInjector;
pub use probabilistic::ProbabilisticInjector;

/// Source text of the probabilistic injector (for the Table II LoC count).
pub const PROBABILISTIC_SRC: &str = include_str!("probabilistic.rs");
/// Source text of the deterministic injector.
pub const DETERMINISTIC_SRC: &str = include_str!("deterministic.rs");
/// Source text of the group injector.
pub const GROUP_SRC: &str = include_str!("group.rs");
/// Source text of the intermittent injector (our extension model).
pub const INTERMITTENT_SRC: &str = include_str!("intermittent.rs");

/// Parses an instruction-class mnemonic as accepted by the model commands.
pub(crate) fn parse_class(s: &str) -> Option<chaser_isa::InsnClass> {
    use chaser_isa::InsnClass as C;
    Some(match s {
        "mov" => C::Mov,
        "cmp" => C::Cmp,
        "fadd" => C::Fadd,
        "fsub" => C::Fsub,
        "fmul" => C::Fmul,
        "fdiv" => C::Fdiv,
        "fp" | "float" => C::FpArith,
        "fmov" => C::FMov,
        "fcmp" => C::Fcmp,
        "alu" => C::IntAlu,
        "branch" => C::Branch,
        "any" => C::Any,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_isa::InsnClass;

    #[test]
    fn class_mnemonics_parse() {
        assert_eq!(parse_class("fadd"), Some(InsnClass::Fadd));
        assert_eq!(parse_class("mov"), Some(InsnClass::Mov));
        assert_eq!(parse_class("fp"), Some(InsnClass::FpArith));
        assert_eq!(parse_class("bogus"), None);
    }

    #[test]
    fn model_sources_are_around_a_hundred_lines() {
        for (name, src) in [
            ("probabilistic", PROBABILISTIC_SRC),
            ("deterministic", DETERMINISTIC_SRC),
            ("group", GROUP_SRC),
            ("intermittent", INTERMITTENT_SRC),
        ] {
            let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
            assert!(
                (40..200).contains(&loc),
                "{name} injector is {loc} LoC — the Table II claim is ~100"
            );
        }
    }
}

//! The deterministic fault injector: the fault lands at an exact dynamic
//! execution count of the targeted instruction (Table I, row 2).

use crate::plugin::{CommandSpec, FiInterface, FiPlugin, PluginError, PluginHost};
use crate::spec::{Corruption, InjectionSpec, OperandSel, Trigger};

/// Registers the `inject_fault` command (the paper's canonical example:
/// "inject a fault to fadd after it is executed 1000 times"):
///
/// ```text
/// inject_fault <program> <class> <n> <bit,bit,...> [rank]
/// ```
///
/// Example: `inject_fault clamr fadd 1000 51` flips bit 51 of the `fadd`
/// destination on its 1000th execution.
#[derive(Debug, Default)]
pub struct DeterministicInjector;

impl DeterministicInjector {
    /// The command name this model registers.
    pub const COMMAND: &'static str = "inject_fault";
}

impl FiPlugin for DeterministicInjector {
    fn plugin_init(&mut self, host: &mut PluginHost) -> FiInterface {
        let cmd: CommandSpec = host.register_command(
            Self::COMMAND,
            "inject_fault <program> <class> <n> <bit,bit,...> [rank]",
            Box::new(|state, args| {
                if args.len() < 4 {
                    return Err(PluginError::BadArgs(
                        "usage: inject_fault <program> <class> <n> <bit,bit,...> [rank]".into(),
                    ));
                }
                let program = args[0].to_string();
                let class = super::parse_class(args[1])
                    .ok_or_else(|| PluginError::BadArgs(format!("unknown class `{}`", args[1])))?;
                let n: u64 = args[2]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad count `{}`", args[2])))?;
                if n == 0 {
                    return Err(PluginError::BadArgs("n must be >= 1".into()));
                }
                let bits: Vec<u32> = args[3]
                    .split(',')
                    .map(|b| b.parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| PluginError::BadArgs(format!("bad bit list `{}`", args[3])))?;
                if bits.iter().any(|&b| b > 63) {
                    return Err(PluginError::BadArgs("bit positions must be 0..=63".into()));
                }
                let rank: u32 = args
                    .get(4)
                    .map(|s| s.parse())
                    .transpose()
                    .map_err(|_| PluginError::BadArgs("bad rank".into()))?
                    .unwrap_or(0);
                state.pending_spec = Some(InjectionSpec {
                    target_program: program.clone(),
                    target_rank: rank,
                    class,
                    trigger: Trigger::AfterN(n),
                    corruption: Corruption::FlipBits(bits.clone()),
                    operand: OperandSel::Dst,
                    max_injections: 1,
                    seed: 0,
                });
                Ok(format!(
                    "deterministic injector armed: {program} class={class:?} n={n} bits={bits:?} \
                     rank={rank}"
                ))
            }),
        );
        FiInterface {
            commands: vec![cmd],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::HostState;
    use chaser_isa::InsnClass;

    #[test]
    fn paper_example_fadd_after_1000() {
        let mut host = PluginHost::new();
        DeterministicInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        host.exec(&mut state, "inject_fault clamr fadd 1000 51")
            .expect("exec");
        let spec = state.pending_spec.expect("spec");
        assert_eq!(spec.class, InsnClass::Fadd);
        assert_eq!(spec.trigger, Trigger::AfterN(1000));
        assert_eq!(spec.corruption, Corruption::FlipBits(vec![51]));
    }

    #[test]
    fn multi_bit_lists_parse() {
        let mut host = PluginHost::new();
        DeterministicInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        host.exec(&mut state, "inject_fault app mov 5 1,2,3 2")
            .expect("exec");
        let spec = state.pending_spec.expect("spec");
        assert_eq!(spec.corruption, Corruption::FlipBits(vec![1, 2, 3]));
        assert_eq!(spec.target_rank, 2);
    }

    #[test]
    fn rejects_zero_n_and_bad_bits() {
        let mut host = PluginHost::new();
        DeterministicInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        assert!(host.exec(&mut state, "inject_fault app mov 0 1").is_err());
        assert!(host.exec(&mut state, "inject_fault app mov 5 64").is_err());
    }
}

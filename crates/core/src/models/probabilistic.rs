//! The probabilistic fault injector: faults strike a targeted instruction
//! class with a fixed per-execution probability (Table I, row 1).

use crate::plugin::{CommandSpec, FiInterface, FiPlugin, PluginError, PluginHost};
use crate::spec::{Corruption, InjectionSpec, OperandSel, Trigger};

/// Registers the `inject_fault_prob` command:
///
/// ```text
/// inject_fault_prob <program> <class> <probability> <bits> [rank] [seed]
/// ```
///
/// Example: `inject_fault_prob matvec mov 0.0001 1 0 42` injects a 1-bit
/// flip into `mov` operands of rank 0 of `matvec`, each dynamic `mov`
/// independently drawing with probability 1e-4.
#[derive(Debug, Default)]
pub struct ProbabilisticInjector;

impl ProbabilisticInjector {
    /// The command name this model registers.
    pub const COMMAND: &'static str = "inject_fault_prob";
}

impl FiPlugin for ProbabilisticInjector {
    fn plugin_init(&mut self, host: &mut PluginHost) -> FiInterface {
        let cmd: CommandSpec = host.register_command(
            Self::COMMAND,
            "inject_fault_prob <program> <class> <probability> <bits> [rank] [seed]",
            Box::new(|state, args| {
                if args.len() < 4 {
                    return Err(PluginError::BadArgs(
                        "usage: inject_fault_prob <program> <class> <probability> <bits> \
                         [rank] [seed]"
                            .into(),
                    ));
                }
                let program = args[0].to_string();
                let class = super::parse_class(args[1])
                    .ok_or_else(|| PluginError::BadArgs(format!("unknown class `{}`", args[1])))?;
                let p: f64 = args[2]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad probability `{}`", args[2])))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(PluginError::BadArgs(format!(
                        "probability {p} out of [0, 1]"
                    )));
                }
                let bits: u32 = args[3]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad bit count `{}`", args[3])))?;
                let rank: u32 = args
                    .get(4)
                    .map(|s| s.parse())
                    .transpose()
                    .map_err(|_| PluginError::BadArgs("bad rank".into()))?
                    .unwrap_or(0);
                let seed: u64 = args
                    .get(5)
                    .map(|s| s.parse())
                    .transpose()
                    .map_err(|_| PluginError::BadArgs("bad seed".into()))?
                    .unwrap_or(0);
                state.pending_spec = Some(InjectionSpec {
                    target_program: program.clone(),
                    target_rank: rank,
                    class,
                    trigger: Trigger::WithProbability(p),
                    corruption: Corruption::FlipRandomBits(bits),
                    operand: OperandSel::Random,
                    max_injections: 1,
                    seed,
                });
                Ok(format!(
                    "probabilistic injector armed: {program} class={class:?} p={p} bits={bits} \
                     rank={rank}"
                ))
            }),
        );
        FiInterface {
            commands: vec![cmd],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::HostState;

    #[test]
    fn command_builds_a_probabilistic_spec() {
        let mut host = PluginHost::new();
        ProbabilisticInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        host.exec(&mut state, "inject_fault_prob matvec mov 0.001 2 0 7")
            .expect("exec");
        let spec = state.pending_spec.expect("spec");
        assert_eq!(spec.trigger, Trigger::WithProbability(0.001));
        assert_eq!(spec.corruption, Corruption::FlipRandomBits(2));
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn rejects_bad_probability() {
        let mut host = PluginHost::new();
        ProbabilisticInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        assert!(host
            .exec(&mut state, "inject_fault_prob matvec mov 1.5 1")
            .is_err());
    }
}

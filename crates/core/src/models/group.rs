//! The group fault injector: multiple faults across *all* floating-point
//! instructions (Table I, row 3).

use crate::plugin::{CommandSpec, FiInterface, FiPlugin, PluginError, PluginHost};
use crate::spec::{Corruption, InjectionSpec, OperandSel, Trigger};
use chaser_isa::InsnClass;

/// Registers the `inject_fault_group` command:
///
/// ```text
/// inject_fault_group <program> <probability> <bits> <max_faults> [rank]
/// ```
///
/// Every floating-point arithmetic instruction of the target becomes an
/// injection site; each execution draws independently until `max_faults`
/// faults have been placed.
#[derive(Debug, Default)]
pub struct GroupInjector;

impl GroupInjector {
    /// The command name this model registers.
    pub const COMMAND: &'static str = "inject_fault_group";
}

impl FiPlugin for GroupInjector {
    fn plugin_init(&mut self, host: &mut PluginHost) -> FiInterface {
        let cmd: CommandSpec = host.register_command(
            Self::COMMAND,
            "inject_fault_group <program> <probability> <bits> <max_faults> [rank]",
            Box::new(|state, args| {
                if args.len() < 4 {
                    return Err(PluginError::BadArgs(
                        "usage: inject_fault_group <program> <probability> <bits> <max_faults> \
                         [rank]"
                            .into(),
                    ));
                }
                let program = args[0].to_string();
                let p: f64 = args[1]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad probability `{}`", args[1])))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(PluginError::BadArgs(format!(
                        "probability {p} out of [0, 1]"
                    )));
                }
                let bits: u32 = args[2]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad bit count `{}`", args[2])))?;
                let max_faults: u64 = args[3]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad max_faults `{}`", args[3])))?;
                if max_faults == 0 {
                    return Err(PluginError::BadArgs("max_faults must be >= 1".into()));
                }
                let rank: u32 = args
                    .get(4)
                    .map(|s| s.parse())
                    .transpose()
                    .map_err(|_| PluginError::BadArgs("bad rank".into()))?
                    .unwrap_or(0);
                let trigger = if p >= 1.0 {
                    Trigger::Always
                } else {
                    Trigger::WithProbability(p)
                };
                state.pending_spec = Some(InjectionSpec {
                    target_program: program.clone(),
                    target_rank: rank,
                    class: InsnClass::FpArith,
                    trigger,
                    corruption: Corruption::FlipRandomBits(bits),
                    operand: OperandSel::Random,
                    max_injections: max_faults,
                    seed: 0,
                });
                Ok(format!(
                    "group injector armed: {program} all-FP p={p} bits={bits} \
                     max_faults={max_faults} rank={rank}"
                ))
            }),
        );
        FiInterface {
            commands: vec![cmd],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::HostState;

    #[test]
    fn group_spec_targets_all_fp_with_many_faults() {
        let mut host = PluginHost::new();
        GroupInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        host.exec(&mut state, "inject_fault_group clamr 0.01 1 10")
            .expect("exec");
        let spec = state.pending_spec.expect("spec");
        assert_eq!(spec.class, InsnClass::FpArith);
        assert_eq!(spec.max_injections, 10);
        assert_eq!(spec.trigger, Trigger::WithProbability(0.01));
    }

    #[test]
    fn certain_probability_becomes_always() {
        let mut host = PluginHost::new();
        GroupInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        host.exec(&mut state, "inject_fault_group clamr 1.0 1 3")
            .expect("exec");
        assert_eq!(state.pending_spec.expect("spec").trigger, Trigger::Always);
    }
}

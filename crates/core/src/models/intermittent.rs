//! An intermittent fault injector — a fourth model beyond the paper's
//! Table I, built entirely on the exported interfaces to demonstrate that
//! new *trigger semantics* (not just new parameters) fit in ~100 lines.
//!
//! Intermittent faults model marginal hardware: a bit that misbehaves
//! repeatedly under a recurring condition, rather than once (transient) or
//! permanently (stuck-at). The model fires at executions
//! `start, start+period, start+2·period, …` of the targeted class until
//! `max_faults` faults have been placed.

use crate::plugin::{CommandSpec, FiInterface, FiPlugin, PluginError, PluginHost};
use crate::spec::{Corruption, InjectionSpec, OperandSel, Trigger};

/// Registers the `inject_fault_intermittent` command:
///
/// ```text
/// inject_fault_intermittent <program> <class> <start> <period> <bit> <max_faults> [rank]
/// ```
///
/// Example: `inject_fault_intermittent clamr fadd 100 50 51 5` flips bit
/// 51 of the `fadd` destination at executions 100, 150, 200, 250, 300.
#[derive(Debug, Default)]
pub struct IntermittentInjector;

impl IntermittentInjector {
    /// The command name this model registers.
    pub const COMMAND: &'static str = "inject_fault_intermittent";
}

impl FiPlugin for IntermittentInjector {
    fn plugin_init(&mut self, host: &mut PluginHost) -> FiInterface {
        let cmd: CommandSpec = host.register_command(
            Self::COMMAND,
            "inject_fault_intermittent <program> <class> <start> <period> <bit> <max_faults> [rank]",
            Box::new(|state, args| {
                if args.len() < 6 {
                    return Err(PluginError::BadArgs(
                        "usage: inject_fault_intermittent <program> <class> <start> <period> \
                         <bit> <max_faults> [rank]"
                            .into(),
                    ));
                }
                let program = args[0].to_string();
                let class = super::parse_class(args[1])
                    .ok_or_else(|| PluginError::BadArgs(format!("unknown class `{}`", args[1])))?;
                let start: u64 = args[2]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad start `{}`", args[2])))?;
                let period: u64 = args[3]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad period `{}`", args[3])))?;
                if start == 0 || period == 0 {
                    return Err(PluginError::BadArgs("start and period must be >= 1".into()));
                }
                let bit: u32 = args[4]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad bit `{}`", args[4])))?;
                if bit > 63 {
                    return Err(PluginError::BadArgs("bit must be 0..=63".into()));
                }
                let max_faults: u64 = args[5]
                    .parse()
                    .map_err(|_| PluginError::BadArgs(format!("bad max_faults `{}`", args[5])))?;
                if max_faults == 0 {
                    return Err(PluginError::BadArgs("max_faults must be >= 1".into()));
                }
                let rank: u32 = args
                    .get(6)
                    .map(|s| s.parse())
                    .transpose()
                    .map_err(|_| PluginError::BadArgs("bad rank".into()))?
                    .unwrap_or(0);
                state.pending_spec = Some(InjectionSpec {
                    target_program: program.clone(),
                    target_rank: rank,
                    class,
                    trigger: Trigger::Periodic { start, period },
                    corruption: Corruption::FlipBits(vec![bit]),
                    operand: OperandSel::Dst,
                    max_injections: max_faults,
                    seed: 0,
                });
                Ok(format!(
                    "intermittent injector armed: {program} class={class:?} start={start} \
                     period={period} bit={bit} max_faults={max_faults} rank={rank}"
                ))
            }),
        );
        FiInterface {
            commands: vec![cmd],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::HostState;
    use chaser_isa::InsnClass;

    #[test]
    fn command_builds_a_periodic_spec() {
        let mut host = PluginHost::new();
        IntermittentInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        host.exec(
            &mut state,
            "inject_fault_intermittent clamr fadd 100 50 51 5",
        )
        .expect("exec");
        let spec = state.pending_spec.expect("spec");
        assert_eq!(spec.class, InsnClass::Fadd);
        assert_eq!(
            spec.trigger,
            Trigger::Periodic {
                start: 100,
                period: 50
            }
        );
        assert_eq!(spec.max_injections, 5);
    }

    #[test]
    fn zero_period_is_rejected() {
        let mut host = PluginHost::new();
        IntermittentInjector.plugin_init(&mut host);
        let mut state = HostState::default();
        assert!(host
            .exec(
                &mut state,
                "inject_fault_intermittent clamr fadd 100 0 51 5"
            )
            .is_err());
    }
}

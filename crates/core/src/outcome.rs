//! Outcome classification: benign / SDC / terminated, with termination
//! causes matching the paper's Table III attribution.

use chaser_mpi::{BudgetKind, ClusterRun, MpiErrorKind};
use chaser_vm::{ExitStatus, Signal};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a run terminated abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TermCause {
    /// The per-run watchdog budget ([`chaser_mpi::RunBudget`]) stopped the
    /// run — a runaway execution bounded deterministically, distinct from
    /// the progress-heuristic [`TermCause::Hang`].
    BudgetExhausted(BudgetKind),
    /// A rank was killed by an OS signal. `rank == 0` is the paper's
    /// "OS exceptions" row; `rank > 0` is its "Slave Node failed" row.
    OsException {
        /// The crashed rank.
        rank: u32,
        /// The fatal signal.
        signal: Signal,
    },
    /// The MPI runtime detected an error and aborted the job.
    MpiError(MpiErrorKind),
    /// The application's own correctness checker aborted (e.g. CLAMR-sim's
    /// mass-conservation test) — a *detected* fault.
    AssertionFailure {
        /// The aborting rank.
        rank: u32,
        /// The checker's error code.
        code: i64,
    },
    /// A rank exited voluntarily with a non-zero code.
    AbnormalExit {
        /// The exiting rank.
        rank: u32,
        /// The exit code.
        code: i64,
    },
    /// The job stopped making progress (deadlock or runaway loop).
    Hang,
    /// The shard supervisor abandoned the worker that owned this run after
    /// exhausting its retry budget; the run index was quarantined without a
    /// verdict. Appears only as the `cause` of a degraded
    /// [`Outcome::HarnessFault`] row, never as a target outcome.
    ShardLost {
        /// The shard whose workers kept dying.
        shard: u64,
    },
}

impl TermCause {
    /// Is this the paper's "Slave Node failed" category: an OS exception on
    /// a rank the fault was *not* injected into (a non-master rank)?
    pub fn is_slave_node_failure(&self) -> bool {
        matches!(self, TermCause::OsException { rank, .. } if *rank > 0)
    }

    /// Is this an OS exception on the master?
    pub fn is_master_os_exception(&self) -> bool {
        matches!(self, TermCause::OsException { rank: 0, .. })
    }
}

impl fmt::Display for TermCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermCause::BudgetExhausted(kind) => write!(f, "{kind} exhausted"),
            TermCause::OsException { rank, signal } => {
                write!(f, "rank {rank} killed by {signal}")
            }
            TermCause::MpiError(kind) => write!(f, "MPI error: {kind}"),
            TermCause::AssertionFailure { rank, code } => {
                write!(f, "rank {rank} assertion failed (code {code})")
            }
            TermCause::AbnormalExit { rank, code } => {
                write!(f, "rank {rank} exited with code {code}")
            }
            TermCause::Hang => write!(f, "hang"),
            TermCause::ShardLost { shard } => {
                write!(f, "shard {shard} lost (worker retries exhausted)")
            }
        }
    }
}

/// The three failure-outcome classes of the paper's Fig. 6, plus the
/// harness-fault quarantine row (a tool failure, never a target outcome).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Output files compare bitwise equal to the golden run.
    Benign,
    /// The run completed but its output differs — silent data corruption.
    Sdc,
    /// The run terminated abnormally.
    Terminated(TermCause),
    /// The *harness itself* panicked while executing this run. The row is
    /// quarantined: it says nothing about the target application and is
    /// excluded from vulnerability statistics, but the campaign keeps the
    /// run index so a resume can retry or a human can debug the payload.
    HarnessFault {
        /// The campaign run index whose execution panicked.
        run_idx: u64,
        /// The panic payload, sanitised to a single CSV-safe line.
        payload: String,
        /// Why the harness gave up, when it was not a panic: `None` for the
        /// classic quarantined-panic row, `Some(TermCause::ShardLost { .. })`
        /// for a run degraded because its shard's workers kept dying.
        cause: Option<TermCause>,
    },
}

impl Outcome {
    /// Was the fault *detected* in the paper's CLAMR-study sense (any
    /// abnormal termination, including the app's own checker)?
    pub fn is_detected(&self) -> bool {
        matches!(self, Outcome::Terminated(_))
    }

    /// Is this a quarantined harness failure rather than a target outcome?
    pub fn is_harness_fault(&self) -> bool {
        matches!(self, Outcome::HarnessFault { .. })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Benign => write!(f, "benign"),
            Outcome::Sdc => write!(f, "SDC"),
            Outcome::Terminated(cause) => write!(f, "terminated ({cause})"),
            Outcome::HarnessFault {
                run_idx, payload, ..
            } => {
                write!(f, "harness fault (run {run_idx}: {payload})")
            }
        }
    }
}

/// Classifies a finished cluster run against golden outputs.
///
/// `outputs[r]` / `golden[r]` are rank `r`'s result-file bytes. The outputs
/// are compared *bitwise*, the paper's SDC criterion.
///
/// Priority order (first match wins): budget exhaustion → hang → master OS
/// exception → application assertion → slave OS exception → MPI error →
/// abnormal voluntary exit → output comparison. A budget stop outranks the
/// hang heuristic because it is deterministic: the same bound fires at the
/// same instruction on every replay.
pub fn classify(run: &ClusterRun, outputs: &[Vec<u8>], golden: &[Vec<u8>]) -> Outcome {
    if let Some(kind) = run.budget_exhausted {
        return Outcome::Terminated(TermCause::BudgetExhausted(kind));
    }
    if run.hang {
        return Outcome::Terminated(TermCause::Hang);
    }

    let signal_of = |status: &ExitStatus| -> Option<Signal> {
        match status {
            ExitStatus::Signaled(sig) => Some(*sig),
            // A stray `halt` is a wild control transfer landing on the halt
            // encoding — morally an illegal-instruction death.
            ExitStatus::Halted => Some(Signal::Ill),
            _ => None,
        }
    };

    // Master OS exception first: the fault is injected on the master, so
    // its own crash is the primary attribution.
    if let Some(Some(sig)) = run
        .rank_exits
        .first()
        .map(|e| e.as_ref().and_then(signal_of))
    {
        return Outcome::Terminated(TermCause::OsException {
            rank: 0,
            signal: sig,
        });
    }
    for (rank, exit) in run.rank_exits.iter().enumerate() {
        if let Some(ExitStatus::AssertFailed(code)) = exit {
            return Outcome::Terminated(TermCause::AssertionFailure {
                rank: rank as u32,
                code: *code,
            });
        }
    }
    for (rank, exit) in run.rank_exits.iter().enumerate().skip(1) {
        if let Some(sig) = exit.as_ref().and_then(signal_of) {
            return Outcome::Terminated(TermCause::OsException {
                rank: rank as u32,
                signal: sig,
            });
        }
    }
    if let Some(err) = run.mpi_error {
        return Outcome::Terminated(TermCause::MpiError(err.kind));
    }
    for (rank, exit) in run.rank_exits.iter().enumerate() {
        match exit {
            Some(ExitStatus::Exited(0)) => {}
            Some(ExitStatus::Exited(code)) => {
                return Outcome::Terminated(TermCause::AbnormalExit {
                    rank: rank as u32,
                    code: *code,
                })
            }
            Some(ExitStatus::MpiAborted) => {
                // Aborted without a recorded error: treat as an MPI error
                // of unknown provenance (should not happen in practice).
                return Outcome::Terminated(TermCause::MpiError(MpiErrorKind::RankDied));
            }
            Some(_) | None => {
                return Outcome::Terminated(TermCause::Hang);
            }
        }
    }

    if outputs == golden {
        Outcome::Benign
    } else {
        Outcome::Sdc
    }
}

/// A contiguous corrupted byte range in one rank's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptedRegion {
    /// The rank whose output differs.
    pub rank: u32,
    /// Byte offset of the first differing byte.
    pub offset: usize,
    /// Length of the differing range in bytes.
    pub len: usize,
}

/// Locates the corrupted regions of an SDC: contiguous byte ranges where
/// `outputs` differ from `golden` (includes length mismatches as a
/// trailing region). Empty for bitwise-identical outputs.
pub fn diff_outputs(outputs: &[Vec<u8>], golden: &[Vec<u8>]) -> Vec<CorruptedRegion> {
    let mut regions = Vec::new();
    for (rank, (out, gold)) in outputs.iter().zip(golden).enumerate() {
        let common = out.len().min(gold.len());
        let mut start: Option<usize> = None;
        for i in 0..common {
            match (out[i] != gold[i], start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    regions.push(CorruptedRegion {
                        rank: rank as u32,
                        offset: s,
                        len: i - s,
                    });
                    start = None;
                }
                _ => {}
            }
        }
        let tail = out.len().max(gold.len());
        match start {
            Some(s) => regions.push(CorruptedRegion {
                rank: rank as u32,
                offset: s,
                len: tail - s,
            }),
            None if out.len() != gold.len() => regions.push(CorruptedRegion {
                rank: rank as u32,
                offset: common,
                len: tail - common,
            }),
            None => {}
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_mpi::MpiError;

    fn run(rank_exits: Vec<Option<ExitStatus>>) -> ClusterRun {
        ClusterRun {
            rank_exits,
            mpi_error: None,
            hang: false,
            budget_exhausted: None,
            total_insns: 0,
            rounds: 0,
            cross_rank_tainted_deliveries: 0,
            taint_sync_lost: 0,
            live_at_stop: Vec::new(),
        }
    }

    #[test]
    fn clean_identical_run_is_benign() {
        let r = run(vec![Some(ExitStatus::Exited(0)); 2]);
        let out = vec![vec![1, 2], vec![3]];
        assert_eq!(classify(&r, &out, &out), Outcome::Benign);
    }

    #[test]
    fn differing_output_is_sdc() {
        let r = run(vec![Some(ExitStatus::Exited(0))]);
        assert_eq!(classify(&r, &[vec![1, 2]], &[vec![1, 3]]), Outcome::Sdc);
    }

    #[test]
    fn master_crash_beats_everything_but_hang() {
        let mut r = run(vec![
            Some(ExitStatus::Signaled(Signal::Segv)),
            Some(ExitStatus::MpiAborted),
        ]);
        r.mpi_error = Some(MpiError {
            rank: 1,
            kind: MpiErrorKind::RankDied,
        });
        let out = classify(&r, &[], &[]);
        assert_eq!(
            out,
            Outcome::Terminated(TermCause::OsException {
                rank: 0,
                signal: Signal::Segv
            })
        );
        assert!(out.is_detected());
    }

    #[test]
    fn slave_crash_is_slave_node_failure_and_beats_mpi_error() {
        let mut r = run(vec![
            Some(ExitStatus::MpiAborted),
            Some(ExitStatus::Signaled(Signal::Segv)),
        ]);
        r.mpi_error = Some(MpiError {
            rank: 0,
            kind: MpiErrorKind::RankDied,
        });
        let Outcome::Terminated(cause) = classify(&r, &[], &[]) else {
            panic!("must be terminated");
        };
        assert!(cause.is_slave_node_failure());
        assert!(!cause.is_master_os_exception());
    }

    #[test]
    fn assertion_failure_is_detected() {
        let r = run(vec![
            Some(ExitStatus::AssertFailed(5)),
            Some(ExitStatus::Exited(0)),
        ]);
        assert_eq!(
            classify(&r, &[], &[]),
            Outcome::Terminated(TermCause::AssertionFailure { rank: 0, code: 5 })
        );
    }

    #[test]
    fn mpi_error_without_crash() {
        let mut r = run(vec![Some(ExitStatus::MpiAborted); 2]);
        r.mpi_error = Some(MpiError {
            rank: 0,
            kind: MpiErrorKind::InvalidRank,
        });
        assert_eq!(
            classify(&r, &[], &[]),
            Outcome::Terminated(TermCause::MpiError(MpiErrorKind::InvalidRank))
        );
    }

    #[test]
    fn hang_dominates() {
        let mut r = run(vec![None, None]);
        r.hang = true;
        assert_eq!(classify(&r, &[], &[]), Outcome::Terminated(TermCause::Hang));
    }

    #[test]
    fn halted_counts_as_illegal_instruction_death() {
        let r = run(vec![Some(ExitStatus::Halted)]);
        assert_eq!(
            classify(&r, &[], &[]),
            Outcome::Terminated(TermCause::OsException {
                rank: 0,
                signal: Signal::Ill
            })
        );
    }

    #[test]
    fn diff_outputs_locates_corruption() {
        let golden = vec![vec![0u8; 16], vec![1, 2, 3]];
        let mut faulty = golden.clone();
        faulty[0][4] = 0xff;
        faulty[0][5] = 0xff;
        faulty[0][12] = 0x01;
        let regions = diff_outputs(&faulty, &golden);
        assert_eq!(
            regions,
            vec![
                CorruptedRegion {
                    rank: 0,
                    offset: 4,
                    len: 2
                },
                CorruptedRegion {
                    rank: 0,
                    offset: 12,
                    len: 1
                },
            ]
        );
        assert!(diff_outputs(&golden, &golden).is_empty());
    }

    #[test]
    fn diff_outputs_reports_truncation_as_a_tail_region() {
        let golden = vec![vec![7u8; 8]];
        let faulty = vec![vec![7u8; 5]];
        let regions = diff_outputs(&faulty, &golden);
        assert_eq!(
            regions,
            vec![CorruptedRegion {
                rank: 0,
                offset: 5,
                len: 3
            }]
        );
    }

    #[test]
    fn budget_exhaustion_outranks_hang() {
        let mut r = run(vec![None]);
        r.hang = true;
        r.budget_exhausted = Some(BudgetKind::Insns);
        assert_eq!(
            classify(&r, &[], &[]),
            Outcome::Terminated(TermCause::BudgetExhausted(BudgetKind::Insns))
        );
    }

    #[test]
    fn harness_fault_is_not_a_detection() {
        let o = Outcome::HarnessFault {
            run_idx: 3,
            payload: "boom".into(),
            cause: None,
        };
        assert!(o.is_harness_fault());
        assert!(!o.is_detected());
        assert_eq!(o.to_string(), "harness fault (run 3: boom)");
    }

    #[test]
    fn nonzero_exit_is_abnormal() {
        let r = run(vec![Some(ExitStatus::Exited(3))]);
        assert_eq!(
            classify(&r, &[], &[]),
            Outcome::Terminated(TermCause::AbnormalExit { rank: 0, code: 3 })
        );
    }
}

//! Post-analysis of propagation traces.
//!
//! The paper logs every tainted access "for post analysis" and argues the
//! detailed records (eip, vaddr, paddr, value, instruction count) "provide
//! us with new ways to analyze and evaluate soft errors' impact". This
//! module implements that analysis layer over a [`TraceSummary`]: hot
//! contaminated addresses (hardening candidates — the paper: "injection
//! points that resulted in higher tainted memory operations should be
//! considered candidates for further hardening"), the propagation front
//! across processes, and per-site access statistics.

use crate::tracer::{AccessKind, TraceSummary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Access statistics for one contaminated memory location.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Tainted reads at this address.
    pub reads: u64,
    /// Tainted writes at this address.
    pub writes: u64,
    /// Instruction count of the first tainted access.
    pub first_icount: u64,
    /// Instruction count of the last tainted access.
    pub last_icount: u64,
}

impl SiteStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Contamination lifetime in instructions.
    pub fn lifetime(&self) -> u64 {
        self.last_icount.saturating_sub(self.first_icount)
    }
}

/// One entry of the propagation front: when taint first reached a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontEntry {
    /// Node of the process.
    pub node: u32,
    /// Process id.
    pub pid: u64,
    /// Its instruction count at the first tainted access.
    pub icount: u64,
    /// The instruction pointer of that access.
    pub eip: u64,
}

/// A taint def-use edge: an instruction whose tainted store was later
/// loaded by another instruction — one hop of the propagation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowEdge {
    /// The writing instruction's address.
    pub writer_eip: u64,
    /// The reading instruction's address.
    pub reader_eip: u64,
}

/// Analysis results derived from a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Per-virtual-address statistics (from the retained event log).
    pub sites: HashMap<u64, SiteStats>,
    /// Processes in order of first contamination.
    pub front: Vec<FrontEntry>,
    /// Distinct instructions (eips) that touched tainted data.
    pub tainted_eips: u64,
    /// Taint def-use edges with their observation counts: through which
    /// instruction pairs the fault flowed.
    pub flow_edges: HashMap<FlowEdge, u64>,
}

impl TraceAnalysis {
    /// Builds the analysis from a trace summary.
    ///
    /// Statistics come from the *retained* event log; for runs whose
    /// activity exceeded the tracer's log capacity they describe the
    /// earliest `log_capacity` accesses (the counters in the summary
    /// remain exact).
    pub fn from_trace(trace: &TraceSummary) -> TraceAnalysis {
        let mut sites: HashMap<u64, SiteStats> = HashMap::new();
        let mut first_seen: HashMap<(u32, u64), FrontEntry> = HashMap::new();
        let mut eips: HashMap<u64, ()> = HashMap::new();
        // Last instruction that wrote tainted data to each physical address
        // (physical, so cross-process flows through shared/copied pages
        // still link up).
        let mut last_writer: HashMap<u64, u64> = HashMap::new();
        let mut flow_edges: HashMap<FlowEdge, u64> = HashMap::new();

        for ev in &trace.events {
            match ev.kind {
                AccessKind::Write => {
                    last_writer.insert(ev.paddr, ev.eip);
                }
                AccessKind::Read => {
                    if let Some(&writer_eip) = last_writer.get(&ev.paddr) {
                        *flow_edges
                            .entry(FlowEdge {
                                writer_eip,
                                reader_eip: ev.eip,
                            })
                            .or_insert(0) += 1;
                    }
                }
            }
            let site = sites.entry(ev.vaddr).or_insert(SiteStats {
                first_icount: ev.icount,
                ..SiteStats::default()
            });
            match ev.kind {
                AccessKind::Read => site.reads += 1,
                AccessKind::Write => site.writes += 1,
            }
            site.first_icount = site.first_icount.min(ev.icount);
            site.last_icount = site.last_icount.max(ev.icount);

            let key = (ev.node, ev.pid);
            let entry = first_seen.entry(key).or_insert(FrontEntry {
                node: ev.node,
                pid: ev.pid,
                icount: ev.icount,
                eip: ev.eip,
            });
            if ev.icount < entry.icount {
                *entry = FrontEntry {
                    node: ev.node,
                    pid: ev.pid,
                    icount: ev.icount,
                    eip: ev.eip,
                };
            }
            eips.insert(ev.eip, ());
        }

        let mut front: Vec<FrontEntry> = first_seen.into_values().collect();
        front.sort_by_key(|e| e.icount);
        TraceAnalysis {
            sites,
            front,
            tainted_eips: eips.len() as u64,
            flow_edges,
        }
    }

    /// The `n` most-travelled def-use edges of the propagation.
    pub fn hottest_flows(&self, n: usize) -> Vec<(FlowEdge, u64)> {
        let mut v: Vec<(FlowEdge, u64)> = self.flow_edges.iter().map(|(e, c)| (*e, *c)).collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0.writer_eip.cmp(&b.0.writer_eip))
                .then(a.0.reader_eip.cmp(&b.0.reader_eip))
        });
        v.truncate(n);
        v
    }

    /// The `n` most-accessed contaminated addresses — hardening candidates.
    pub fn hottest_sites(&self, n: usize) -> Vec<(u64, SiteStats)> {
        let mut v: Vec<(u64, SiteStats)> = self.sites.iter().map(|(a, s)| (*a, *s)).collect();
        v.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Number of distinct contaminated addresses.
    pub fn contaminated_addresses(&self) -> usize {
        self.sites.len()
    }

    /// Did the fault reach more than one process?
    pub fn crossed_processes(&self) -> bool {
        self.front.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceEvent;

    fn ev(kind: AccessKind, node: u32, pid: u64, vaddr: u64, eip: u64, icount: u64) -> TraceEvent {
        TraceEvent {
            kind,
            node,
            pid,
            eip,
            vaddr,
            paddr: vaddr ^ 0xf000,
            taint: 0xff,
            value: 1,
            prov: 1,
            icount,
        }
    }

    fn sample_trace() -> TraceSummary {
        TraceSummary {
            events: vec![
                ev(AccessKind::Write, 0, 1, 0x1000, 0x400000, 10),
                ev(AccessKind::Read, 0, 1, 0x1000, 0x400010, 20),
                ev(AccessKind::Read, 0, 1, 0x1000, 0x400010, 30),
                ev(AccessKind::Read, 0, 1, 0x2000, 0x400020, 40),
                ev(AccessKind::Write, 1, 3, 0x3000, 0x400030, 15),
            ],
            ..TraceSummary::default()
        }
    }

    #[test]
    fn site_stats_aggregate_reads_and_writes() {
        let analysis = TraceAnalysis::from_trace(&sample_trace());
        assert_eq!(analysis.contaminated_addresses(), 3);
        let hot = &analysis.sites[&0x1000];
        assert_eq!(hot.reads, 2);
        assert_eq!(hot.writes, 1);
        assert_eq!(hot.first_icount, 10);
        assert_eq!(hot.last_icount, 30);
        assert_eq!(hot.lifetime(), 20);
    }

    #[test]
    fn hottest_sites_rank_by_total_accesses() {
        let analysis = TraceAnalysis::from_trace(&sample_trace());
        let hot = analysis.hottest_sites(2);
        assert_eq!(hot[0].0, 0x1000);
        assert_eq!(hot[0].1.total(), 3);
        assert_eq!(hot.len(), 2);
    }

    #[test]
    fn propagation_front_orders_processes() {
        let analysis = TraceAnalysis::from_trace(&sample_trace());
        assert!(analysis.crossed_processes());
        assert_eq!(analysis.front.len(), 2);
        // (0,1) first at icount 10, then (1,3) at 15? No: icounts are
        // per-process clocks; the front simply orders by them.
        assert_eq!(analysis.front[0].icount, 10);
        assert_eq!(analysis.front[1].icount, 15);
        assert_eq!(analysis.tainted_eips, 4);
    }

    #[test]
    fn flow_edges_pair_writers_with_later_readers() {
        let analysis = TraceAnalysis::from_trace(&sample_trace());
        // 0x400000 wrote 0x1000; 0x400010 read it twice.
        let edge = FlowEdge {
            writer_eip: 0x400000,
            reader_eip: 0x400010,
        };
        assert_eq!(analysis.flow_edges.get(&edge), Some(&2));
        // The read of 0x2000 has no prior writer: no edge.
        assert_eq!(analysis.flow_edges.len(), 1);
        let hottest = analysis.hottest_flows(5);
        assert_eq!(hottest[0], (edge, 2));
    }

    #[test]
    fn hottest_sites_break_total_ties_by_address() {
        // Three addresses, one access each: totals tie, so the ranking
        // must fall back to ascending address order — deterministically.
        let trace = TraceSummary {
            events: vec![
                ev(AccessKind::Read, 0, 1, 0x3000, 0x400000, 10),
                ev(AccessKind::Read, 0, 1, 0x1000, 0x400000, 20),
                ev(AccessKind::Read, 0, 1, 0x2000, 0x400000, 30),
            ],
            ..TraceSummary::default()
        };
        let analysis = TraceAnalysis::from_trace(&trace);
        let addrs: Vec<u64> = analysis.hottest_sites(3).iter().map(|(a, _)| *a).collect();
        assert_eq!(addrs, vec![0x1000, 0x2000, 0x3000]);
    }

    #[test]
    fn hottest_flows_break_count_ties_by_writer_then_reader() {
        // Three distinct edges observed once each; order must come from
        // (writer_eip, reader_eip) ascending, not hash order.
        let trace = TraceSummary {
            events: vec![
                ev(AccessKind::Write, 0, 1, 0x1000, 0x40_0020, 1),
                ev(AccessKind::Read, 0, 1, 0x1000, 0x40_0030, 2),
                ev(AccessKind::Write, 0, 1, 0x2000, 0x40_0010, 3),
                ev(AccessKind::Read, 0, 1, 0x2000, 0x40_0040, 4),
                ev(AccessKind::Write, 0, 1, 0x3000, 0x40_0010, 5),
                ev(AccessKind::Read, 0, 1, 0x3000, 0x40_0015, 6),
            ],
            ..TraceSummary::default()
        };
        let analysis = TraceAnalysis::from_trace(&trace);
        let flows = analysis.hottest_flows(10);
        let pairs: Vec<(u64, u64)> = flows
            .iter()
            .map(|(e, _)| (e.writer_eip, e.reader_eip))
            .collect();
        assert_eq!(
            pairs,
            vec![
                (0x40_0010, 0x40_0015),
                (0x40_0010, 0x40_0040),
                (0x40_0020, 0x40_0030),
            ]
        );
        // Higher counts still dominate the address tie-break.
        let mut events = trace.events.clone();
        events.push(ev(AccessKind::Read, 0, 1, 0x1000, 0x40_0030, 7));
        let analysis = TraceAnalysis::from_trace(&TraceSummary {
            events,
            ..TraceSummary::default()
        });
        let top = analysis.hottest_flows(1);
        assert_eq!(top[0].0.writer_eip, 0x40_0020);
        assert_eq!(top[0].1, 2);
    }

    #[test]
    fn empty_trace_yields_empty_analysis() {
        let analysis = TraceAnalysis::from_trace(&TraceSummary::default());
        assert_eq!(analysis.contaminated_addresses(), 0);
        assert!(!analysis.crossed_processes());
        assert!(analysis.hottest_sites(5).is_empty());
    }
}

//! The fault-propagation tracer: tainted-memory access logs, per-rank
//! counters and the tainted-bytes time series.
//!
//! This is the "accountable" half of Chaser. It subscribes to the engine's
//! tainted-memory callbacks (the paper's `DECAF_READ_TAINTMEM_CB` /
//! `DECAF_WRITE_TAINTMEM_CB`) and records, per access: eip, virtual
//! address, physical address, taint mask, current value and instruction
//! count — the exact fields the paper logs for post-analysis. The session
//! additionally samples the total number of tainted bytes every
//! `sample_interval` instructions, reproducing the Fig. 7 series.

use chaser_vm::{TaintEventSink, TaintMemEvent};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// The guest read tainted memory.
    Read,
    /// The guest wrote tainted data.
    Write,
}

/// One logged tainted-memory access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Read or write.
    pub kind: AccessKind,
    /// Node of the access.
    pub node: u32,
    /// Accessing process.
    pub pid: u64,
    /// Instruction pointer.
    pub eip: u64,
    /// Guest virtual address.
    pub vaddr: u64,
    /// Guest physical address.
    pub paddr: u64,
    /// Taint mask of the 8 accessed bytes.
    pub taint: u64,
    /// Value at the location.
    pub value: u64,
    /// Raw [`chaser_taint::ProvSet`] bits of the access (0 when the taint
    /// carries no fault provenance).
    pub prov: u32,
    /// Process instruction count at the access.
    pub icount: u64,
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracerConfig {
    /// Keep at most this many full [`TraceEvent`]s (counters keep counting
    /// past the cap; a multi-million-access run must not eat the host).
    pub log_capacity: usize,
    /// Sample the tainted-byte total every this many instructions.
    pub sample_interval: u64,
}

impl Default for TracerConfig {
    fn default() -> TracerConfig {
        TracerConfig {
            log_capacity: 10_000,
            // The paper extracts tainted-byte counts every 100K executed
            // instructions.
            sample_interval: 100_000,
        }
    }
}

/// Aggregated trace results for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total tainted-memory reads (all ranks).
    pub taint_reads: u64,
    /// Total tainted-memory writes (all ranks).
    pub taint_writes: u64,
    /// Reads per (node, pid).
    pub reads_per_proc: HashMap<(u32, u64), u64>,
    /// Writes per (node, pid).
    pub writes_per_proc: HashMap<(u32, u64), u64>,
    /// `(total instructions, tainted bytes)` samples — the Fig. 7 series.
    pub tainted_byte_samples: Vec<(u64, usize)>,
    /// The retained event log (capped).
    pub events: Vec<TraceEvent>,
    /// Events dropped after the cap was reached.
    pub dropped_events: u64,
}

impl TraceSummary {
    /// The peak of the tainted-bytes series.
    pub fn peak_tainted_bytes(&self) -> usize {
        self.tainted_byte_samples
            .iter()
            .map(|&(_, b)| b)
            .max()
            .unwrap_or(0)
    }

    /// The final value of the tainted-bytes series (the Fig. 7 plateau).
    pub fn final_tainted_bytes(&self) -> usize {
        self.tainted_byte_samples.last().map_or(0, |&(_, b)| b)
    }

    /// Renders the retained event log as CSV — the paper's per-access
    /// record (kind, node, pid, eip, vaddr, paddr, taint, value, prov,
    /// icount) for external post-analysis. Rows keep log order.
    pub fn events_to_csv(&self) -> String {
        let mut out = String::from("kind,node,pid,eip,vaddr,paddr,taint,value,prov,icount\n");
        for ev in &self.events {
            let kind = match ev.kind {
                AccessKind::Read => "read",
                AccessKind::Write => "write",
            };
            out.push_str(&format!(
                "{kind},{},{},{:#x},{:#x},{:#x},{:#x},{:#x},{:#x},{}\n",
                ev.node, ev.pid, ev.eip, ev.vaddr, ev.paddr, ev.taint, ev.value, ev.prov, ev.icount
            ));
        }
        out
    }
}

/// The tracer; wire it into every node with
/// [`chaser_vm::NodeHooks::taint_events`].
#[derive(Debug)]
pub struct Tracer {
    cfg: TracerConfig,
    summary: TraceSummary,
    last_sample_at: u64,
}

impl Tracer {
    /// A tracer with the given configuration.
    pub fn new(cfg: TracerConfig) -> Tracer {
        Tracer {
            cfg,
            summary: TraceSummary::default(),
            last_sample_at: 0,
        }
    }

    /// The configured sampling interval.
    pub fn sample_interval(&self) -> u64 {
        self.cfg.sample_interval
    }

    /// Records a tainted-bytes sample if `total_insns` has advanced past
    /// the next sampling point.
    pub fn maybe_sample(&mut self, total_insns: u64, tainted_bytes: usize) {
        if total_insns >= self.last_sample_at + self.cfg.sample_interval {
            self.summary
                .tainted_byte_samples
                .push((total_insns, tainted_bytes));
            self.last_sample_at = total_insns;
        }
    }

    /// Final results (consumes the tracer).
    pub fn into_summary(self) -> TraceSummary {
        self.summary
    }

    /// Results so far.
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }

    fn log(&mut self, kind: AccessKind, ev: &TaintMemEvent) {
        let s = &mut self.summary;
        match kind {
            AccessKind::Read => {
                s.taint_reads += 1;
                *s.reads_per_proc.entry((ev.node, ev.pid)).or_insert(0) += 1;
            }
            AccessKind::Write => {
                s.taint_writes += 1;
                *s.writes_per_proc.entry((ev.node, ev.pid)).or_insert(0) += 1;
            }
        }
        if s.events.len() < self.cfg.log_capacity {
            s.events.push(TraceEvent {
                kind,
                node: ev.node,
                pid: ev.pid,
                eip: ev.eip,
                vaddr: ev.vaddr,
                paddr: ev.paddr,
                taint: ev.taint.0,
                value: ev.value,
                prov: ev.prov.bits(),
                icount: ev.icount,
            });
        } else {
            s.dropped_events += 1;
        }
    }
}

impl TaintEventSink for Tracer {
    fn on_taint_read(&mut self, ev: &TaintMemEvent) {
        self.log(AccessKind::Read, ev);
    }

    fn on_taint_write(&mut self, ev: &TaintMemEvent) {
        self.log(AccessKind::Write, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_taint::{ProvSet, TaintMask};

    fn ev(node: u32, pid: u64) -> TaintMemEvent {
        TaintMemEvent {
            node,
            pid,
            eip: 0x400000,
            vaddr: 0x1000,
            paddr: 0x2000,
            taint: TaintMask::bit(3),
            value: 42,
            icount: 7,
            prov: ProvSet::single(0),
        }
    }

    #[test]
    fn counters_and_log_fields() {
        let mut t = Tracer::new(TracerConfig::default());
        t.on_taint_read(&ev(0, 1));
        t.on_taint_read(&ev(0, 1));
        t.on_taint_write(&ev(1, 2));
        let s = t.summary();
        assert_eq!(s.taint_reads, 2);
        assert_eq!(s.taint_writes, 1);
        assert_eq!(s.reads_per_proc[&(0, 1)], 2);
        assert_eq!(s.writes_per_proc[&(1, 2)], 1);
        let e = &s.events[0];
        assert_eq!(
            (e.eip, e.vaddr, e.paddr, e.value, e.icount),
            (0x400000, 0x1000, 0x2000, 42, 7),
            "the paper's log fields must all be present"
        );
    }

    #[test]
    fn log_is_capped_but_counters_continue() {
        let mut t = Tracer::new(TracerConfig {
            log_capacity: 2,
            sample_interval: 100,
        });
        for _ in 0..5 {
            t.on_taint_read(&ev(0, 1));
        }
        assert_eq!(t.summary().events.len(), 2);
        assert_eq!(t.summary().taint_reads, 5);
        assert_eq!(t.summary().dropped_events, 3);
    }

    #[test]
    fn event_csv_has_all_paper_fields() {
        let mut t = Tracer::new(TracerConfig::default());
        t.on_taint_read(&ev(0, 1));
        t.on_taint_write(&ev(1, 2));
        let csv = t.summary().events_to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("kind,node,pid,eip,vaddr,paddr,taint,value,prov,icount")
        );
        let first = lines.next().expect("one event row");
        assert!(first.starts_with("read,0,1,0x400000,0x1000,0x2000,"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn event_csv_rows_keep_log_order_and_column_count() {
        let mut t = Tracer::new(TracerConfig::default());
        t.on_taint_write(&ev(1, 2));
        t.on_taint_read(&ev(0, 1));
        t.on_taint_write(&ev(3, 4));
        let csv = t.summary().events_to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        // Rows appear in log order, not sorted.
        assert!(rows[0].starts_with("write,1,2,"));
        assert!(rows[1].starts_with("read,0,1,"));
        assert!(rows[2].starts_with("write,3,4,"));
        // Every row (header included) has exactly the 10 declared columns.
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), 10, "bad row: {line}");
        }
    }

    #[test]
    fn event_csv_carries_provenance_bits() {
        let mut t = Tracer::new(TracerConfig::default());
        t.on_taint_read(&ev(0, 1));
        let row = t
            .summary()
            .events_to_csv()
            .lines()
            .nth(1)
            .unwrap()
            .to_string();
        // prov is the 9th column, hex-formatted (ProvSet::single(0) = bit 0).
        assert_eq!(row.split(',').nth(8), Some("0x1"));
    }

    #[test]
    fn sampling_respects_interval() {
        let mut t = Tracer::new(TracerConfig {
            log_capacity: 10,
            sample_interval: 100,
        });
        t.maybe_sample(50, 1); // too early
        t.maybe_sample(100, 2);
        t.maybe_sample(150, 3); // too early again
        t.maybe_sample(230, 4);
        assert_eq!(t.summary().tainted_byte_samples, vec![(100, 2), (230, 4)]);
        assert_eq!(t.summary().peak_tainted_bytes(), 4);
        assert_eq!(t.summary().final_tainted_bytes(), 4);
    }
}

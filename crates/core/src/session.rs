//! The Chaser session: wires injector, tracer and hooks into a cluster and
//! executes single runs.

use crate::injector::{FnHookLogger, Injector, InjectorHandle, ProfileHandle, ProfileHook};
use crate::outcome::{classify, Outcome};
use crate::plugin::{FiInterface, FiPlugin, HostState, PluginError, PluginHost};
use crate::provenance::{ProvenanceGraph, ProvenanceRecorder, PROV_LOG_CAPACITY};
use crate::spec::InjectionSpec;
use crate::tracer::{TraceSummary, Tracer, TracerConfig};
use chaser_isa::{abi, InsnClass, Program};
use chaser_mpi::{
    Cluster, ClusterConfig, ClusterRun, ClusterSnapshot, NetStats, ParallelStats, RunBudget,
    SharedMpiObserver,
};
use chaser_tainthub::HubStats;
use chaser_tcg::{BaseLayer, CacheStats};
use chaser_vm::{
    EngineStats, ExecTuning, InjectSink, SharedFnHookSink, SharedInjectSink, SharedTaintSink,
    SharedTranslateHook, SharedVmiSink, VmiSink,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The application under test: one guest program per rank plus the cluster
/// configuration to run it on.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// The target program name (what VMI screens for).
    pub name: String,
    /// One program per rank (rank i = `programs[i]`, master = rank 0).
    pub programs: Vec<Program>,
    /// Cluster parameters.
    pub cluster: ClusterConfig,
}

impl AppSpec {
    /// A single-process application on a one-node cluster.
    pub fn single(program: Program) -> AppSpec {
        let name = program.name().to_string();
        AppSpec {
            name,
            programs: vec![program],
            cluster: ClusterConfig {
                nodes: 1,
                ..ClusterConfig::default()
            },
        }
    }

    /// `ranks` copies of the same program on `nodes` machines.
    pub fn replicated(program: Program, ranks: usize, nodes: usize) -> AppSpec {
        let name = program.name().to_string();
        AppSpec {
            name,
            programs: vec![program; ranks],
            cluster: ClusterConfig {
                nodes,
                ..ClusterConfig::default()
            },
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.programs.len() as u32
    }
}

/// How much of the tracing machinery a run (or campaign) arms.
///
/// The paper's enhancement over plain fault injection is elastic taint
/// tracing; ZOFI-style *statistical* campaigns need none of it — inject,
/// run at native speed, classify against the golden digest. This knob
/// selects between those worlds without touching the individual
/// `tracing`/`provenance` flags, so it composes with existing configs:
///
/// * [`TraceRegime::Full`] (the default) honors the `tracing` and
///   `provenance` flags exactly as configured — today's behavior.
/// * [`TraceRegime::TaintOnly`] forces taint tracing on and provenance
///   recording off.
/// * [`TraceRegime::Off`] forces both off: the taint policy is
///   `Disabled`, so no shadow state is ever materialised, no taint sink
///   or observer hooks are registered, the TaintHub never publishes, and
///   every clean block executes through the fast-path memory tier.
///   Outcomes are still classified soundly — see `DESIGN.md` §13.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceRegime {
    /// Statistical mode: never arm taint or provenance, whatever the
    /// `tracing`/`provenance` flags say.
    Off,
    /// Taint tracing without provenance graphs.
    TaintOnly,
    /// Honor the `tracing`/`provenance` flags as configured.
    #[default]
    Full,
}

impl TraceRegime {
    /// The wire name (`off` / `taint` / `full`) used by journals, CLI
    /// tokens and campaign specs.
    pub fn name(self) -> &'static str {
        match self {
            TraceRegime::Off => "off",
            TraceRegime::TaintOnly => "taint",
            TraceRegime::Full => "full",
        }
    }

    /// Parses a wire name produced by [`TraceRegime::name`].
    pub fn from_name(name: &str) -> Option<TraceRegime> {
        match name {
            "off" => Some(TraceRegime::Off),
            "taint" => Some(TraceRegime::TaintOnly),
            "full" => Some(TraceRegime::Full),
            _ => None,
        }
    }

    /// The effective `(tracing, provenance)` pair after this regime is
    /// applied to the configured flags. Every consumer of the raw flags
    /// goes through here, so the regime cannot be half-applied.
    pub fn effective(self, tracing: bool, provenance: bool) -> (bool, bool) {
        match self {
            TraceRegime::Off => (false, false),
            TraceRegime::TaintOnly => (true, false),
            TraceRegime::Full => (tracing, provenance),
        }
    }
}

/// Per-run options.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// The fault to inject, if any.
    pub spec: Option<InjectionSpec>,
    /// Enable the fault-propagation tracer.
    pub tracing: bool,
    /// Tracer parameters.
    pub tracer: TracerConfig,
    /// Record a per-run fault-propagation [`ProvenanceGraph`] (taint
    /// machinery stays on even without `tracing`).
    pub provenance: bool,
    /// Tracing regime: [`TraceRegime::Full`] (default) honors the
    /// `tracing`/`provenance` flags above; `TaintOnly` and `Off` override
    /// them — see [`TraceRegime`].
    pub regime: TraceRegime,
    /// Hook the guest MPI wrapper functions by symbol address (the paper's
    /// interception mechanism; mostly useful for demos and tests — the
    /// runtime-level observers carry the actual taint synchronisation).
    pub hook_mpi_symbols: bool,
    /// Per-run watchdog budget, merged (tighter bound wins) with the
    /// cluster configuration's own [`RunBudget`].
    pub budget: RunBudget,
    /// Hot-path engine knobs (TB chaining, taint-idle fast path). Both
    /// default on; turning either off is observationally equivalent but
    /// slower — see `DESIGN.md` §9.
    pub exec_tuning: ExecTuning,
    /// Worker threads the cluster scheduler's compute phase may fan nodes
    /// out over. `0` inherits the application's own
    /// [`ClusterConfig::rank_threads`]; any other value overrides it.
    /// Observationally inert — see `DESIGN.md` §10.
    pub rank_threads: usize,
}

impl RunOptions {
    /// Options for a golden (fault-free, untraced) run.
    pub fn golden() -> RunOptions {
        RunOptions::default()
    }

    /// Options injecting `spec` with tracing and provenance recording on.
    pub fn inject_traced(spec: InjectionSpec) -> RunOptions {
        RunOptions {
            spec: Some(spec),
            tracing: true,
            provenance: true,
            ..RunOptions::default()
        }
    }

    /// Options injecting `spec` without tracing.
    pub fn inject(spec: InjectionSpec) -> RunOptions {
        RunOptions {
            spec: Some(spec),
            tracing: false,
            ..RunOptions::default()
        }
    }

    /// The effective `(tracing, provenance)` pair after the regime is
    /// applied — what the run actually arms.
    pub fn effective_trace(&self) -> (bool, bool) {
        self.regime.effective(self.tracing, self.provenance)
    }
}

/// Snapshot/restore counters for one run (or summed over a campaign).
/// All zero on cold runs; a warm-started run reports one restore plus its
/// copy-on-write page traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Cluster restores performed (1 for a warm run, 0 for a cold one).
    pub restores: u64,
    /// Pages adopted `Arc`-shared (zero-copy) from the snapshot.
    pub pages_shared: u64,
    /// Shared pages privatised by a suffix write (the run's dirty set).
    pub pages_cow: u64,
    /// Guest instructions the checkpointed prefix covered — work a warm
    /// run did *not* re-execute.
    pub insns_skipped: u64,
}

impl SnapshotStats {
    /// Accumulates `other` into `self` (campaign-level aggregation).
    pub fn absorb(&mut self, other: SnapshotStats) {
        self.restores += other.restores;
        self.pages_shared += other.pages_shared;
        self.pages_cow += other.pages_cow;
        self.insns_skipped += other.insns_skipped;
    }
}

/// Everything one run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The cluster-level result.
    pub cluster: ClusterRun,
    /// Per-rank result-file bytes (fd 3).
    pub outputs: Vec<Vec<u8>>,
    /// Per-rank stdout bytes.
    pub stdouts: Vec<Vec<u8>>,
    /// Faults actually placed.
    pub injections: Vec<crate::injector::InjectionRecord>,
    /// Executions of the targeted class observed by the injector.
    pub injector_exec_count: u64,
    /// Trace results when tracing was enabled.
    pub trace: Option<TraceSummary>,
    /// TaintHub counters.
    pub hub_stats: HubStats,
    /// TaintHub records still queued (unconsumed) at run end — a campaign
    /// over a healthy hub sees this drain to 0 on completed runs.
    pub hub_pending: usize,
    /// Taint records published to the hub over the whole run (lifetime
    /// counter; unaffected by consumption and GC).
    pub hub_published: u64,
    /// Interconnect counters (drops, retransmits, duplicates, losses on an
    /// unreliable fabric).
    pub net: NetStats,
    /// Guest MPI function-hook hits when `hook_mpi_symbols` was set:
    /// `(hook id, pc, args)`.
    pub fn_hook_hits: Vec<(u64, u64, [u64; 6])>,
    /// Translation-cache statistics aggregated over the run's nodes.
    pub cache_stats: CacheStats,
    /// Hot-path engine counters aggregated over the run's nodes (chain
    /// hits/severs, fast- vs slow-path memory operations).
    pub engine_stats: EngineStats,
    /// Snapshot/restore counters (all zero on cold runs).
    pub snapshot: SnapshotStats,
    /// Scheduler-parallelism counters: threads used, rounds that ran work
    /// on more than one worker, and the per-worker instruction balance.
    pub parallel: ParallelStats,
    /// The fault-propagation provenance graph when
    /// [`RunOptions::provenance`] was set.
    pub provenance: Option<ProvenanceGraph>,
}

impl RunReport {
    /// Classifies this run against a golden run's outputs.
    pub fn classify_against(&self, golden: &RunReport) -> Outcome {
        classify(&self.cluster, &self.outputs, &golden.outputs)
    }

    /// Did the injector fire at least once?
    pub fn injected(&self) -> bool {
        !self.injections.is_empty()
    }

    /// The corrupted regions of this run's outputs relative to a golden
    /// run (empty unless the run is an SDC).
    pub fn corrupted_regions(&self, golden: &RunReport) -> Vec<crate::CorruptedRegion> {
        crate::diff_outputs(&self.outputs, &golden.outputs)
    }
}

/// The one typed hook-wiring builder shared by every run flavour: collects
/// whichever sinks a run needs and installs them all in a single pass.
/// Node-level hooks (translate / inject / VMI / guest-function sinks) land
/// on every node; taint sinks and MPI observers register at the cluster so
/// their events commit in canonical rank order at the round barrier. Must
/// be applied before launch so VMI observes process creation.
#[derive(Default)]
pub struct HookRegistry {
    translate: Option<SharedTranslateHook>,
    inject: Option<SharedInjectSink>,
    vmi: Option<SharedVmiSink>,
    fn_hook_sink: Option<SharedFnHookSink>,
    taint_sinks: Vec<SharedTaintSink>,
    observers: Vec<SharedMpiObserver>,
}

impl HookRegistry {
    /// An empty registry.
    pub fn new() -> HookRegistry {
        HookRegistry::default()
    }

    /// Installs `hook` as the translate hook and `handle` as both the
    /// inject sink receiving its `CallInject` callbacks and the VMI sink
    /// screening process events.
    pub fn instrument<H>(mut self, hook: SharedTranslateHook, handle: H) -> HookRegistry
    where
        H: InjectSink + VmiSink + Send + 'static,
    {
        let handle = Arc::new(Mutex::new(handle));
        self.translate = Some(hook);
        self.inject = Some(Arc::clone(&handle) as SharedInjectSink);
        self.vmi = Some(handle as SharedVmiSink);
        self
    }

    /// Registers a cluster-level taint-event sink (tracer, provenance
    /// recorder); events are drained to it at each round barrier.
    pub fn taint_sink(mut self, sink: SharedTaintSink) -> HookRegistry {
        self.taint_sinks.push(sink);
        self
    }

    /// Registers an MPI runtime observer.
    pub fn observer(mut self, obs: SharedMpiObserver) -> HookRegistry {
        self.observers.push(obs);
        self
    }

    /// Installs the guest function-entry sink.
    pub fn fn_hook_sink(mut self, sink: SharedFnHookSink) -> HookRegistry {
        self.fn_hook_sink = Some(sink);
        self
    }

    /// Wires everything collected into `cluster`.
    pub fn apply(self, cluster: &mut Cluster) {
        cluster.for_each_node_mut(|node| {
            let hooks = node.hooks_mut();
            if let Some(translate) = &self.translate {
                hooks.translate = Some(Arc::clone(translate));
            }
            if let Some(inject) = &self.inject {
                hooks.inject = Some(Arc::clone(inject));
            }
            if let Some(vmi) = &self.vmi {
                hooks.vmi.push(Arc::clone(vmi));
            }
            if let Some(sink) = &self.fn_hook_sink {
                hooks.fn_hook_sink = Some(Arc::clone(sink));
            }
        });
        for sink in self.taint_sinks {
            cluster.add_taint_sink(sink);
        }
        for obs in self.observers {
            cluster.add_observer(obs);
        }
    }
}

/// Collects per-rank result-file and stdout bytes.
fn collect_rank_files(cluster: &Cluster) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut outputs = Vec::new();
    let mut stdouts = Vec::new();
    for rank in 0..cluster.nranks() {
        let files = cluster.rank_files(rank);
        outputs.push(files.output.clone());
        stdouts.push(files.stdout.clone());
    }
    (outputs, stdouts)
}

/// Executes one run of `app` under `opts`.
pub fn run_app(app: &AppSpec, opts: &RunOptions) -> RunReport {
    run_app_inner(app, opts, None)
}

/// The cluster configuration a run actually executes under. The paper's
/// "fault propagation tracing" switch governs the whole taint machinery
/// (DECAF++-style elastic tainting): with tracing off, no shadow state is
/// maintained at all, which is what makes the FI-only configuration nearly
/// free (Fig. 10). The per-run watchdog budget is merged in (tighter bound
/// wins). A warm-start prefix must be captured under this same effective
/// configuration, or replay equivalence breaks.
fn effective_cluster_cfg(app: &AppSpec, opts: &RunOptions) -> ClusterConfig {
    let mut cluster_cfg = app.cluster.clone();
    let (tracing, provenance) = opts.effective_trace();
    if !tracing && !provenance {
        cluster_cfg.taint_policy = chaser_taint::TaintPolicy::Disabled;
    }
    cluster_cfg.run_budget = cluster_cfg.run_budget.merge(opts.budget);
    cluster_cfg.exec_tuning = opts.exec_tuning;
    if opts.rank_threads != 0 {
        cluster_cfg.rank_threads = opts.rank_threads;
    }
    if opts.hook_mpi_symbols {
        // Function-entry hits are logged in firing order from inside the
        // compute phase; keep that order deterministic by running serial.
        cluster_cfg.rank_threads = 1;
    }
    cluster_cfg
}

/// Drives `cluster` to completion, sampling tainted-byte counts into the
/// tracer after every round.
fn run_sampled(cluster: &mut Cluster, tracer: Option<&Arc<Mutex<Tracer>>>) -> ClusterRun {
    cluster.run_with(|c| {
        if let Some(tr) = tracer {
            let total = c.total_insns();
            let tainted: usize = c
                .nodes()
                .iter()
                .map(|n| n.taint().mem().tainted_bytes())
                .sum();
            tr.lock().maybe_sample(total, tainted);
        }
    })
}

/// Assembles the [`RunReport`] shared by every run flavour.
fn build_report(
    cluster: &Cluster,
    cluster_run: ClusterRun,
    injector: Option<&Arc<Injector>>,
    tracer: Option<Arc<Mutex<Tracer>>>,
    fn_logger: Option<Arc<Mutex<FnHookLogger>>>,
    snapshot: SnapshotStats,
    recorder: Option<Arc<Mutex<ProvenanceRecorder>>>,
) -> RunReport {
    let provenance = recorder.map(|rec| {
        let mut rank_of: BTreeMap<(u32, u64), u32> = BTreeMap::new();
        for rank in 0..cluster.nranks() {
            let (ni, pid) = cluster.rank_location(rank);
            rank_of.insert((ni as u32, pid), rank);
        }
        rec.lock().to_graph(&rank_of)
    });
    let (outputs, stdouts) = collect_rank_files(cluster);
    RunReport {
        cluster: cluster_run,
        outputs,
        stdouts,
        injections: injector.map(|i| i.records()).unwrap_or_default(),
        injector_exec_count: injector.map_or(0, |i| i.exec_count()),
        trace: tracer.map(|tr| tr.lock().summary().clone()),
        hub_stats: cluster.hub().stats(),
        hub_pending: cluster.hub().pending(),
        hub_published: cluster.hub().published_total(),
        net: cluster.net_stats(),
        fn_hook_hits: fn_logger.map_or_else(Vec::new, |l| l.lock().hits.clone()),
        cache_stats: cluster.tb_cache_stats(),
        engine_stats: cluster.engine_stats(),
        snapshot,
        parallel: cluster.parallel_stats(),
        provenance,
    }
}

/// Builds the hook registry every injection-run flavour shares: injector
/// instrumentation, the tracer and provenance recorder as barrier-drained
/// taint sinks, and the recorder doubling as the cross-rank MPI observer.
fn run_registry(
    injector: Option<&Arc<Injector>>,
    tracer: Option<&Arc<Mutex<Tracer>>>,
    recorder: Option<&Arc<Mutex<ProvenanceRecorder>>>,
) -> HookRegistry {
    let mut registry = HookRegistry::new();
    if let Some(inj) = injector {
        registry = registry.instrument(
            Arc::clone(inj) as SharedTranslateHook,
            InjectorHandle(Arc::clone(inj)),
        );
    }
    if let Some(tr) = tracer {
        registry = registry.taint_sink(Arc::clone(tr) as SharedTaintSink);
    }
    if let Some(rec) = recorder {
        registry = registry
            .taint_sink(Arc::clone(rec) as SharedTaintSink)
            .observer(Arc::clone(rec) as SharedMpiObserver);
    }
    registry
}

fn run_app_inner(
    app: &AppSpec,
    opts: &RunOptions,
    base_caches: Option<&[Arc<BaseLayer>]>,
) -> RunReport {
    let mut cluster = Cluster::new(effective_cluster_cfg(app, opts));
    if let Some(bases) = base_caches {
        cluster.install_base_caches(bases);
    }

    let injector = opts.spec.clone().map(Injector::new);
    let (tracing, provenance) = opts.effective_trace();
    let tracer = tracing.then(|| Arc::new(Mutex::new(Tracer::new(opts.tracer))));
    let recorder =
        provenance.then(|| Arc::new(Mutex::new(ProvenanceRecorder::new(PROV_LOG_CAPACITY))));
    let fn_logger = opts
        .hook_mpi_symbols
        .then(|| Arc::new(Mutex::new(FnHookLogger::default())));

    let mut registry = run_registry(injector.as_ref(), tracer.as_ref(), recorder.as_ref());
    if let Some(logger) = &fn_logger {
        registry = registry.fn_hook_sink(Arc::clone(logger) as SharedFnHookSink);
    }
    registry.apply(&mut cluster);

    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");

    // Hook the guest MPI wrapper symbols by address, per rank.
    if opts.hook_mpi_symbols {
        for rank in 0..cluster.nranks() {
            let (ni, pid) = cluster.rank_location(rank);
            let program = &app.programs[rank as usize];
            for (hook_id, sym) in [
                abi::symbols::MPI_SEND,
                abi::symbols::MPI_RECV,
                abi::symbols::MPI_BCAST,
                abi::symbols::MPI_REDUCE,
            ]
            .iter()
            .enumerate()
            {
                if let Some(addr) = program.symbol(sym) {
                    cluster
                        .node_mut(ni)
                        .hooks_mut()
                        .fn_hooks
                        .insert((pid, addr), hook_id as u64);
                }
            }
        }
    }

    let cluster_run = run_sampled(&mut cluster, tracer.as_ref());
    build_report(
        &cluster,
        cluster_run,
        injector.as_ref(),
        tracer,
        fn_logger,
        SnapshotStats::default(),
        recorder,
    )
}

/// An application prepared for repeated campaign runs: the golden
/// (fault-free) reference report, per-`(rank, class)` dynamic execution
/// counts, and one immutable base translation cache per node, sealed from
/// a hook-free warm-up run. Cheap to share across worker threads — the
/// base layers are read-only `Arc`s that every run's overlay sits on top
/// of, so workers skip almost all translation work.
#[derive(Debug, Clone)]
pub struct PreparedApp {
    /// The application under test.
    pub app: AppSpec,
    /// The golden reference report (produced by the warm-up run).
    pub golden: RunReport,
    /// Dynamic execution counts per `(rank, class index)`.
    pub profile_counts: HashMap<(u32, usize), u64>,
    /// Clean-TB base layers, one per node, warmed by the golden run.
    pub base_caches: Vec<Arc<BaseLayer>>,
    /// Warm-start checkpoint, when one was captured (see
    /// [`warm_start_for`]). `None` means every run executes from launch.
    pub warm: Option<WarmStart>,
}

/// A warm-start checkpoint shared by every injection run of a campaign:
/// the cluster frozen at the last round boundary *before any targetable
/// instruction executes*. Each run's trigger count is at least 1, so no
/// fault can fire inside the checkpointed prefix — restoring it and
/// executing only the suffix is replay-equivalent to a cold run.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// The copy-on-write checkpoint every warm run restores from. Guest
    /// pages inside are `Arc`-shared across worker threads; each run
    /// privatises only the pages its suffix writes.
    pub snapshot: Arc<ClusterSnapshot>,
    /// Scheduler rounds the checkpointed prefix covers.
    pub safe_rounds: u64,
    /// Guest instructions the prefix retired (skipped by every warm run).
    pub prefix_insns: u64,
}

/// What a warm-start capture must know about the campaign it serves: the
/// `(rank, class)` pairs faults may target, and the per-run execution
/// regime (tracing, watchdog budget) the prefix must be captured under.
#[derive(Debug, Clone)]
pub struct WarmStartOptions {
    /// Instruction classes faults may target.
    pub classes: Vec<InsnClass>,
    /// Ranks faults may target (the campaign's rank pool, expanded).
    pub ranks: Vec<u32>,
    /// Whether campaign runs trace fault propagation.
    pub tracing: bool,
    /// Whether campaign runs record provenance graphs (keeps the taint
    /// machinery on, like `tracing`).
    pub provenance: bool,
    /// The campaign's per-run watchdog budget.
    pub budget: RunBudget,
}

/// Captures a warm-start checkpoint for `prepared` under `wopts`, in two
/// passes over the fault-free execution:
///
/// 1. **Trigger-site analysis** — a profiled cluster steps round by round
///    to find the largest prefix with zero dynamic executions of any
///    campaign class on any targetable rank. Since every run draws a
///    trigger count of at least 1, no fault can fire inside that prefix.
/// 2. **Capture** — a hook-free cluster replays the safe prefix under the
///    exact effective configuration injection runs execute with (same
///    taint policy, same merged budget — RNG streams and round clocks must
///    line up), and is frozen at the round boundary.
///
/// Returns `None` when warm-starting cannot help: the first targetable
/// instruction executes in round 0, or none ever executes (every campaign
/// run would skip anyway).
pub fn warm_start_for(prepared: &PreparedApp, wopts: &WarmStartOptions) -> Option<WarmStart> {
    let app = &prepared.app;
    let run_opts = RunOptions {
        tracing: wopts.tracing,
        provenance: wopts.provenance,
        budget: wopts.budget,
        ..RunOptions::default()
    };
    let cfg = effective_cluster_cfg(app, &run_opts);
    let program_refs: Vec<&Program> = app.programs.iter().collect();

    let mut probe = Cluster::new(cfg.clone());
    let profile = ProfileHook::new(app.name.clone(), wopts.classes.clone());
    HookRegistry::new()
        .instrument(
            Arc::clone(&profile) as SharedTranslateHook,
            ProfileHandle(Arc::clone(&profile)),
        )
        .apply(&mut probe);
    probe.launch(&program_refs).expect("launch application");
    let mut safe_rounds = 0;
    loop {
        if probe.finished() {
            return None;
        }
        probe.step_round();
        let counts = profile.counts();
        let fired = wopts.ranks.iter().any(|&r| {
            (0..wopts.classes.len()).any(|ci| counts.get(&(r, ci)).copied().unwrap_or(0) > 0)
        });
        if fired {
            break;
        }
        safe_rounds = probe.round();
    }
    if safe_rounds == 0 {
        return None;
    }

    let mut prefix = Cluster::new(cfg);
    prefix.install_base_caches(&prepared.base_caches);
    prefix.launch(&program_refs).expect("launch application");
    for _ in 0..safe_rounds {
        prefix.step_round();
    }
    let snap = prefix.snapshot();
    Some(WarmStart {
        safe_rounds,
        prefix_insns: snap.total_insns(),
        snapshot: Arc::new(snap),
    })
}

/// Runs the prepared application once from its warm-start checkpoint:
/// restores the shared snapshot (zero-copy; guest pages go copy-on-write),
/// wires this run's hooks, replays VMI process-creation events so the
/// injector arms exactly as a cold run's would, and executes only the
/// suffix. With `share_base_caches`, nodes are also born holding the
/// golden-warmed base translation layers.
///
/// Replay-equivalent to [`run_prepared`] under the same options: the
/// checkpoint predates every possible trigger site and RNG streams resume
/// at their captured positions, so the report matches a cold run's (modulo
/// `cache_stats` and the `snapshot` counters).
///
/// # Panics
///
/// Panics when `prepared` carries no checkpoint, or when
/// `opts.hook_mpi_symbols` is set (unsupported on the warm path).
pub fn run_warm(prepared: &PreparedApp, opts: &RunOptions, share_base_caches: bool) -> RunReport {
    let warm = prepared
        .warm
        .as_ref()
        .expect("prepared application has no warm-start checkpoint");
    assert!(
        !opts.hook_mpi_symbols,
        "symbol hooks are not supported on the warm path"
    );
    let app = &prepared.app;
    let mut cluster = Cluster::from_snapshot(effective_cluster_cfg(app, opts), &warm.snapshot);

    let injector = opts.spec.clone().map(Injector::new);
    let (tracing, provenance) = opts.effective_trace();
    let tracer = tracing.then(|| Arc::new(Mutex::new(Tracer::new(opts.tracer))));
    let recorder =
        provenance.then(|| Arc::new(Mutex::new(ProvenanceRecorder::new(PROV_LOG_CAPACITY))));
    run_registry(injector.as_ref(), tracer.as_ref(), recorder.as_ref()).apply(&mut cluster);
    cluster.replay_vmi_creations();
    if share_base_caches {
        cluster.install_base_caches(&prepared.base_caches);
    }

    let cluster_run = run_sampled(&mut cluster, tracer.as_ref());
    let mem = cluster.mem_stats();
    let snapshot = SnapshotStats {
        restores: 1,
        pages_shared: mem.pages_shared,
        pages_cow: mem.pages_cow,
        insns_skipped: warm.prefix_insns,
    };
    build_report(
        &cluster,
        cluster_run,
        injector.as_ref(),
        tracer,
        None,
        snapshot,
        recorder,
    )
}

/// Prepares `app` for repeated runs: executes one hook-free golden run,
/// seals every node's translation cache into a shareable base layer, and
/// profiles the dynamic execution counts of `classes`.
///
/// The warm-up must be the *golden* run, not the profiling run: with no
/// translate hook installed every block translates clean, so sealing
/// captures the whole guest working set. [`ProfileHook`] instruments the
/// target's blocks, and sealing drops instrumented TBs.
///
/// # Panics
///
/// Panics when the golden run hangs — the application or cluster
/// configuration is broken.
pub fn prepare_app(app: &AppSpec, classes: &[InsnClass]) -> PreparedApp {
    let mut cluster_cfg = app.cluster.clone();
    cluster_cfg.taint_policy = chaser_taint::TaintPolicy::Disabled;
    let mut cluster = Cluster::new(cluster_cfg);
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();
    assert!(
        !cluster_run.hang,
        "golden run hung — application or cluster configuration is broken"
    );
    let golden = build_report(
        &cluster,
        cluster_run,
        None,
        None,
        None,
        SnapshotStats::default(),
        None,
    );
    let base_caches = cluster.seal_tb_caches();
    let (_, profile_counts) = profile_app(app, classes);
    PreparedApp {
        app: app.clone(),
        golden,
        profile_counts,
        base_caches,
        warm: None,
    }
}

/// Runs the prepared application once under `opts`, with every node born
/// holding the shared base translation cache. Semantics are identical to
/// [`run_app`] on [`PreparedApp::app`] — instrumented blocks always
/// translate fresh into the per-run overlay, and flushes clear only the
/// overlay — so same options and seed give the same [`RunReport`] contents
/// (modulo `cache_stats`).
pub fn run_prepared(prepared: &PreparedApp, opts: &RunOptions) -> RunReport {
    run_app_inner(&prepared.app, opts, Some(&prepared.base_caches))
}

/// Runs `app` fault-free while counting dynamic executions of each class in
/// `classes`, per rank. Returns the golden report and the counts keyed
/// `(rank, class index)`.
pub fn profile_app(
    app: &AppSpec,
    classes: &[InsnClass],
) -> (RunReport, HashMap<(u32, usize), u64>) {
    let mut cluster = Cluster::new(app.cluster.clone());
    let profile = ProfileHook::new(app.name.clone(), classes.to_vec());
    HookRegistry::new()
        .instrument(
            Arc::clone(&profile) as SharedTranslateHook,
            ProfileHandle(Arc::clone(&profile)),
        )
        .apply(&mut cluster);
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();
    let report = build_report(
        &cluster,
        cluster_run,
        None,
        None,
        None,
        SnapshotStats::default(),
        None,
    );
    (report, profile.counts())
}

/// Runs `app` under *instruction-level* tracing (see
/// [`crate::InsnLevelTracer`]): every instruction of the target is
/// instrumented, the rejected-alternative baseline for the granularity
/// ablation. With `seed_taint`, `F0` is marked fully tainted at the first
/// traced instruction so there is live taint to chase.
pub fn run_app_insn_traced(
    app: &AppSpec,
    seed_taint: bool,
) -> (RunReport, crate::InsnTraceSummary) {
    // The per-instruction log records firing order from inside the compute
    // phase; keep it deterministic by running serial.
    let mut cluster_cfg = app.cluster.clone();
    cluster_cfg.rank_threads = 1;
    let mut cluster = Cluster::new(cluster_cfg);
    let tracer = crate::InsnLevelTracer::new(app.name.clone(), seed_taint);
    HookRegistry::new()
        .instrument(
            Arc::clone(&tracer) as SharedTranslateHook,
            crate::InsnTraceHandle(Arc::clone(&tracer)),
        )
        .apply(&mut cluster);
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();
    let report = build_report(
        &cluster,
        cluster_run,
        None,
        None,
        None,
        SnapshotStats::default(),
        None,
    );
    (report, tracer.summary())
}

/// The top-level session object: owns the plugin registry and pending
/// injection commands, and runs experiments.
#[derive(Debug, Default)]
pub struct Chaser {
    host: PluginHost,
    state: HostState,
    loaded: Vec<FiInterface>,
}

impl Chaser {
    /// A fresh session with no plugins loaded.
    pub fn new() -> Chaser {
        Chaser::default()
    }

    /// Loads a plugin: calls its `plugin_init` against the registry.
    pub fn load_plugin(&mut self, plugin: &mut dyn FiPlugin) -> FiInterface {
        let iface = plugin.plugin_init(&mut self.host);
        self.loaded.push(iface.clone());
        iface
    }

    /// Executes a terminal command registered by a loaded plugin (e.g.
    /// `inject_fault matvec mov 1000 5`).
    ///
    /// # Errors
    ///
    /// [`PluginError`] on unknown commands or bad arguments.
    pub fn exec_command(&mut self, line: &str) -> Result<String, PluginError> {
        self.host.exec(&mut self.state, line)
    }

    /// The spec deposited by the last `inject_fault`-style command.
    pub fn pending_spec(&self) -> Option<&InjectionSpec> {
        self.state.pending_spec.as_ref()
    }

    /// Takes (and clears) the pending spec.
    pub fn take_pending_spec(&mut self) -> Option<InjectionSpec> {
        self.state.pending_spec.take()
    }

    /// All commands currently registered.
    pub fn commands(&self) -> Vec<crate::plugin::CommandSpec> {
        self.host.commands().to_vec()
    }

    /// Runs `app` once under `opts`.
    pub fn run(&self, app: &AppSpec, opts: &RunOptions) -> RunReport {
        run_app(app, opts)
    }

    /// Runs `app` once injecting the pending command's spec (with tracing),
    /// consuming the pending spec.
    ///
    /// # Panics
    ///
    /// Panics when no spec is pending — execute an `inject_fault` command
    /// first.
    pub fn run_pending(&mut self, app: &AppSpec) -> RunReport {
        let spec = self
            .take_pending_spec()
            .expect("no pending injection spec; run an inject_fault command first");
        run_app(app, &RunOptions::inject_traced(spec))
    }
}

//! The Chaser session: wires injector, tracer and hooks into a cluster and
//! executes single runs.

use crate::injector::{FnHookLogger, Injector, InjectorHandle, ProfileHandle, ProfileHook};
use crate::outcome::{classify, Outcome};
use crate::plugin::{FiInterface, FiPlugin, HostState, PluginError, PluginHost};
use crate::spec::InjectionSpec;
use crate::tracer::{TraceSummary, Tracer, TracerConfig};
use chaser_isa::{abi, InsnClass, Program};
use chaser_mpi::{Cluster, ClusterConfig, ClusterRun, NetStats, RunBudget};
use chaser_tainthub::HubStats;
use chaser_tcg::{BaseLayer, CacheStats};
use chaser_vm::{FnHookSink, InjectSink, NodeTranslateHook, TaintEventSink, VmiSink};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// The application under test: one guest program per rank plus the cluster
/// configuration to run it on.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// The target program name (what VMI screens for).
    pub name: String,
    /// One program per rank (rank i = `programs[i]`, master = rank 0).
    pub programs: Vec<Program>,
    /// Cluster parameters.
    pub cluster: ClusterConfig,
}

impl AppSpec {
    /// A single-process application on a one-node cluster.
    pub fn single(program: Program) -> AppSpec {
        let name = program.name().to_string();
        AppSpec {
            name,
            programs: vec![program],
            cluster: ClusterConfig {
                nodes: 1,
                ..ClusterConfig::default()
            },
        }
    }

    /// `ranks` copies of the same program on `nodes` machines.
    pub fn replicated(program: Program, ranks: usize, nodes: usize) -> AppSpec {
        let name = program.name().to_string();
        AppSpec {
            name,
            programs: vec![program; ranks],
            cluster: ClusterConfig {
                nodes,
                ..ClusterConfig::default()
            },
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.programs.len() as u32
    }
}

/// Per-run options.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// The fault to inject, if any.
    pub spec: Option<InjectionSpec>,
    /// Enable the fault-propagation tracer.
    pub tracing: bool,
    /// Tracer parameters.
    pub tracer: TracerConfig,
    /// Hook the guest MPI wrapper functions by symbol address (the paper's
    /// interception mechanism; mostly useful for demos and tests — the
    /// runtime-level observers carry the actual taint synchronisation).
    pub hook_mpi_symbols: bool,
    /// Per-run watchdog budget, merged (tighter bound wins) with the
    /// cluster configuration's own [`RunBudget`].
    pub budget: RunBudget,
}

impl RunOptions {
    /// Options for a golden (fault-free, untraced) run.
    pub fn golden() -> RunOptions {
        RunOptions::default()
    }

    /// Options injecting `spec` with tracing on.
    pub fn inject_traced(spec: InjectionSpec) -> RunOptions {
        RunOptions {
            spec: Some(spec),
            tracing: true,
            ..RunOptions::default()
        }
    }

    /// Options injecting `spec` without tracing.
    pub fn inject(spec: InjectionSpec) -> RunOptions {
        RunOptions {
            spec: Some(spec),
            tracing: false,
            ..RunOptions::default()
        }
    }
}

/// Everything one run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The cluster-level result.
    pub cluster: ClusterRun,
    /// Per-rank result-file bytes (fd 3).
    pub outputs: Vec<Vec<u8>>,
    /// Per-rank stdout bytes.
    pub stdouts: Vec<Vec<u8>>,
    /// Faults actually placed.
    pub injections: Vec<crate::injector::InjectionRecord>,
    /// Executions of the targeted class observed by the injector.
    pub injector_exec_count: u64,
    /// Trace results when tracing was enabled.
    pub trace: Option<TraceSummary>,
    /// TaintHub counters.
    pub hub_stats: HubStats,
    /// TaintHub records still queued (unconsumed) at run end — a campaign
    /// over a healthy hub sees this drain to 0 on completed runs.
    pub hub_pending: usize,
    /// Taint records published to the hub over the whole run (lifetime
    /// counter; unaffected by consumption and GC).
    pub hub_published: u64,
    /// Interconnect counters (drops, retransmits, duplicates, losses on an
    /// unreliable fabric).
    pub net: NetStats,
    /// Guest MPI function-hook hits when `hook_mpi_symbols` was set:
    /// `(hook id, pc, args)`.
    pub fn_hook_hits: Vec<(u64, u64, [u64; 6])>,
    /// Translation-cache statistics aggregated over the run's nodes.
    pub cache_stats: CacheStats,
}

impl RunReport {
    /// Classifies this run against a golden run's outputs.
    pub fn classify_against(&self, golden: &RunReport) -> Outcome {
        classify(&self.cluster, &self.outputs, &golden.outputs)
    }

    /// Did the injector fire at least once?
    pub fn injected(&self) -> bool {
        !self.injections.is_empty()
    }

    /// The corrupted regions of this run's outputs relative to a golden
    /// run (empty unless the run is an SDC).
    pub fn corrupted_regions(&self, golden: &RunReport) -> Vec<crate::CorruptedRegion> {
        crate::diff_outputs(&self.outputs, &golden.outputs)
    }
}

/// The instrumentation sinks one run installs on every node: the translate
/// hook plus the handle that receives its `CallInject` callbacks and VMI
/// process events, pre-coerced to the node-facing trait objects.
type InstrumentSinks = (
    Rc<dyn NodeTranslateHook>,
    Rc<RefCell<dyn InjectSink>>,
    Rc<RefCell<dyn VmiSink>>,
);

/// Builds an [`InstrumentSinks`] triple from a translate hook and the handle
/// serving as both its inject and VMI sink.
fn instrument_sinks<H>(hook: Rc<dyn NodeTranslateHook>, handle: H) -> InstrumentSinks
where
    H: InjectSink + VmiSink + 'static,
{
    let handle = Rc::new(RefCell::new(handle));
    (
        hook,
        Rc::clone(&handle) as Rc<RefCell<dyn InjectSink>>,
        handle as Rc<RefCell<dyn VmiSink>>,
    )
}

/// The one hook-wiring pass shared by every run flavour: installs whichever
/// sinks are present on all nodes. Must run before launch so VMI observes
/// process creation.
fn wire_cluster_hooks(
    cluster: &mut Cluster,
    instrument: Option<InstrumentSinks>,
    taint_events: Option<Rc<RefCell<dyn TaintEventSink>>>,
    fn_hook_sink: Option<Rc<RefCell<dyn FnHookSink>>>,
) {
    cluster.for_each_node_mut(|node| {
        let hooks = node.hooks_mut();
        if let Some((translate, inject, vmi)) = &instrument {
            hooks.translate = Some(Rc::clone(translate));
            hooks.inject = Some(Rc::clone(inject));
            hooks.vmi.push(Rc::clone(vmi));
        }
        if let Some(tr) = &taint_events {
            hooks.taint_events = Some(Rc::clone(tr));
        }
        if let Some(logger) = &fn_hook_sink {
            hooks.fn_hook_sink = Some(Rc::clone(logger));
        }
    });
}

/// Collects per-rank result-file and stdout bytes.
fn collect_rank_files(cluster: &Cluster) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut outputs = Vec::new();
    let mut stdouts = Vec::new();
    for rank in 0..cluster.nranks() {
        let files = cluster.rank_files(rank);
        outputs.push(files.output.clone());
        stdouts.push(files.stdout.clone());
    }
    (outputs, stdouts)
}

/// Executes one run of `app` under `opts`.
pub fn run_app(app: &AppSpec, opts: &RunOptions) -> RunReport {
    run_app_inner(app, opts, None)
}

fn run_app_inner(
    app: &AppSpec,
    opts: &RunOptions,
    base_caches: Option<&[Arc<BaseLayer>]>,
) -> RunReport {
    // The paper's "fault propagation tracing" switch governs the whole
    // taint machinery (DECAF++-style elastic tainting): with tracing off,
    // no shadow state is maintained at all, which is what makes the
    // FI-only configuration nearly free (Fig. 10).
    let mut cluster_cfg = app.cluster.clone();
    if !opts.tracing {
        cluster_cfg.taint_policy = chaser_taint::TaintPolicy::Disabled;
    }
    cluster_cfg.run_budget = cluster_cfg.run_budget.merge(opts.budget);
    let mut cluster = Cluster::new(cluster_cfg);
    if let Some(bases) = base_caches {
        cluster.install_base_caches(bases);
    }

    let injector = opts.spec.clone().map(Injector::new);
    let tracer = opts
        .tracing
        .then(|| Rc::new(RefCell::new(Tracer::new(opts.tracer))));
    let fn_logger = opts
        .hook_mpi_symbols
        .then(|| Rc::new(RefCell::new(FnHookLogger::default())));

    wire_cluster_hooks(
        &mut cluster,
        injector.as_ref().map(|inj| {
            instrument_sinks(
                Rc::clone(inj) as Rc<dyn NodeTranslateHook>,
                InjectorHandle(Rc::clone(inj)),
            )
        }),
        tracer
            .as_ref()
            .map(|tr| Rc::clone(tr) as Rc<RefCell<dyn TaintEventSink>>),
        fn_logger
            .as_ref()
            .map(|l| Rc::clone(l) as Rc<RefCell<dyn FnHookSink>>),
    );

    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");

    // Hook the guest MPI wrapper symbols by address, per rank.
    if opts.hook_mpi_symbols {
        for rank in 0..cluster.nranks() {
            let (ni, pid) = cluster.rank_location(rank);
            let program = &app.programs[rank as usize];
            for (hook_id, sym) in [
                abi::symbols::MPI_SEND,
                abi::symbols::MPI_RECV,
                abi::symbols::MPI_BCAST,
                abi::symbols::MPI_REDUCE,
            ]
            .iter()
            .enumerate()
            {
                if let Some(addr) = program.symbol(sym) {
                    cluster
                        .node_mut(ni)
                        .hooks_mut()
                        .fn_hooks
                        .insert((pid, addr), hook_id as u64);
                }
            }
        }
    }

    let sample_tracer = tracer.clone();
    let cluster_run = cluster.run_with(|c| {
        if let Some(tr) = &sample_tracer {
            let total = c.total_insns();
            let tainted: usize = c
                .nodes()
                .iter()
                .map(|n| n.taint().mem().tainted_bytes())
                .sum();
            tr.borrow_mut().maybe_sample(total, tainted);
        }
    });

    let (outputs, stdouts) = collect_rank_files(&cluster);

    RunReport {
        cluster: cluster_run,
        outputs,
        stdouts,
        injections: injector.as_ref().map(|i| i.records()).unwrap_or_default(),
        injector_exec_count: injector.as_ref().map_or(0, |i| i.exec_count()),
        trace: tracer.map(|tr| tr.borrow().summary().clone()),
        hub_stats: cluster.hub().stats(),
        hub_pending: cluster.hub().pending(),
        hub_published: cluster.hub().published_total(),
        net: cluster.net_stats(),
        fn_hook_hits: fn_logger.map_or_else(Vec::new, |l| l.borrow().hits.clone()),
        cache_stats: cluster.tb_cache_stats(),
    }
}

/// An application prepared for repeated campaign runs: the golden
/// (fault-free) reference report, per-`(rank, class)` dynamic execution
/// counts, and one immutable base translation cache per node, sealed from
/// a hook-free warm-up run. Cheap to share across worker threads — the
/// base layers are read-only `Arc`s that every run's overlay sits on top
/// of, so workers skip almost all translation work.
#[derive(Debug, Clone)]
pub struct PreparedApp {
    /// The application under test.
    pub app: AppSpec,
    /// The golden reference report (produced by the warm-up run).
    pub golden: RunReport,
    /// Dynamic execution counts per `(rank, class index)`.
    pub profile_counts: HashMap<(u32, usize), u64>,
    /// Clean-TB base layers, one per node, warmed by the golden run.
    pub base_caches: Vec<Arc<BaseLayer>>,
}

/// Prepares `app` for repeated runs: executes one hook-free golden run,
/// seals every node's translation cache into a shareable base layer, and
/// profiles the dynamic execution counts of `classes`.
///
/// The warm-up must be the *golden* run, not the profiling run: with no
/// translate hook installed every block translates clean, so sealing
/// captures the whole guest working set. [`ProfileHook`] instruments the
/// target's blocks, and sealing drops instrumented TBs.
///
/// # Panics
///
/// Panics when the golden run hangs — the application or cluster
/// configuration is broken.
pub fn prepare_app(app: &AppSpec, classes: &[InsnClass]) -> PreparedApp {
    let mut cluster_cfg = app.cluster.clone();
    cluster_cfg.taint_policy = chaser_taint::TaintPolicy::Disabled;
    let mut cluster = Cluster::new(cluster_cfg);
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();
    assert!(
        !cluster_run.hang,
        "golden run hung — application or cluster configuration is broken"
    );
    let (outputs, stdouts) = collect_rank_files(&cluster);
    let golden = RunReport {
        cluster: cluster_run,
        outputs,
        stdouts,
        injections: Vec::new(),
        injector_exec_count: 0,
        trace: None,
        hub_stats: cluster.hub().stats(),
        hub_pending: cluster.hub().pending(),
        hub_published: cluster.hub().published_total(),
        net: cluster.net_stats(),
        fn_hook_hits: Vec::new(),
        cache_stats: cluster.tb_cache_stats(),
    };
    let base_caches = cluster.seal_tb_caches();
    let (_, profile_counts) = profile_app(app, classes);
    PreparedApp {
        app: app.clone(),
        golden,
        profile_counts,
        base_caches,
    }
}

/// Runs the prepared application once under `opts`, with every node born
/// holding the shared base translation cache. Semantics are identical to
/// [`run_app`] on [`PreparedApp::app`] — instrumented blocks always
/// translate fresh into the per-run overlay, and flushes clear only the
/// overlay — so same options and seed give the same [`RunReport`] contents
/// (modulo `cache_stats`).
pub fn run_prepared(prepared: &PreparedApp, opts: &RunOptions) -> RunReport {
    run_app_inner(&prepared.app, opts, Some(&prepared.base_caches))
}

/// Runs `app` fault-free while counting dynamic executions of each class in
/// `classes`, per rank. Returns the golden report and the counts keyed
/// `(rank, class index)`.
pub fn profile_app(
    app: &AppSpec,
    classes: &[InsnClass],
) -> (RunReport, HashMap<(u32, usize), u64>) {
    let mut cluster = Cluster::new(app.cluster.clone());
    let profile = ProfileHook::new(app.name.clone(), classes.to_vec());
    wire_cluster_hooks(
        &mut cluster,
        Some(instrument_sinks(
            Rc::clone(&profile) as Rc<dyn NodeTranslateHook>,
            ProfileHandle(Rc::clone(&profile)),
        )),
        None,
        None,
    );
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();

    let (outputs, stdouts) = collect_rank_files(&cluster);
    let report = RunReport {
        cluster: cluster_run,
        outputs,
        stdouts,
        injections: Vec::new(),
        injector_exec_count: 0,
        trace: None,
        hub_stats: cluster.hub().stats(),
        hub_pending: cluster.hub().pending(),
        hub_published: cluster.hub().published_total(),
        net: cluster.net_stats(),
        fn_hook_hits: Vec::new(),
        cache_stats: cluster.tb_cache_stats(),
    };
    (report, profile.counts())
}

/// Runs `app` under *instruction-level* tracing (see
/// [`crate::InsnLevelTracer`]): every instruction of the target is
/// instrumented, the rejected-alternative baseline for the granularity
/// ablation. With `seed_taint`, `F0` is marked fully tainted at the first
/// traced instruction so there is live taint to chase.
pub fn run_app_insn_traced(
    app: &AppSpec,
    seed_taint: bool,
) -> (RunReport, crate::InsnTraceSummary) {
    let mut cluster = Cluster::new(app.cluster.clone());
    let tracer = crate::InsnLevelTracer::new(app.name.clone(), seed_taint);
    wire_cluster_hooks(
        &mut cluster,
        Some(instrument_sinks(
            Rc::clone(&tracer) as Rc<dyn NodeTranslateHook>,
            crate::InsnTraceHandle(Rc::clone(&tracer)),
        )),
        None,
        None,
    );
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();
    let (outputs, stdouts) = collect_rank_files(&cluster);
    let report = RunReport {
        cluster: cluster_run,
        outputs,
        stdouts,
        injections: Vec::new(),
        injector_exec_count: 0,
        trace: None,
        hub_stats: cluster.hub().stats(),
        hub_pending: cluster.hub().pending(),
        hub_published: cluster.hub().published_total(),
        net: cluster.net_stats(),
        fn_hook_hits: Vec::new(),
        cache_stats: cluster.tb_cache_stats(),
    };
    (report, tracer.summary())
}

/// The top-level session object: owns the plugin registry and pending
/// injection commands, and runs experiments.
#[derive(Debug, Default)]
pub struct Chaser {
    host: PluginHost,
    state: HostState,
    loaded: Vec<FiInterface>,
}

impl Chaser {
    /// A fresh session with no plugins loaded.
    pub fn new() -> Chaser {
        Chaser::default()
    }

    /// Loads a plugin: calls its `plugin_init` against the registry.
    pub fn load_plugin(&mut self, plugin: &mut dyn FiPlugin) -> FiInterface {
        let iface = plugin.plugin_init(&mut self.host);
        self.loaded.push(iface.clone());
        iface
    }

    /// Executes a terminal command registered by a loaded plugin (e.g.
    /// `inject_fault matvec mov 1000 5`).
    ///
    /// # Errors
    ///
    /// [`PluginError`] on unknown commands or bad arguments.
    pub fn exec_command(&mut self, line: &str) -> Result<String, PluginError> {
        self.host.exec(&mut self.state, line)
    }

    /// The spec deposited by the last `inject_fault`-style command.
    pub fn pending_spec(&self) -> Option<&InjectionSpec> {
        self.state.pending_spec.as_ref()
    }

    /// Takes (and clears) the pending spec.
    pub fn take_pending_spec(&mut self) -> Option<InjectionSpec> {
        self.state.pending_spec.take()
    }

    /// All commands currently registered.
    pub fn commands(&self) -> Vec<crate::plugin::CommandSpec> {
        self.host.commands().to_vec()
    }

    /// Runs `app` once under `opts`.
    pub fn run(&self, app: &AppSpec, opts: &RunOptions) -> RunReport {
        run_app(app, opts)
    }

    /// Runs `app` once injecting the pending command's spec (with tracing),
    /// consuming the pending spec.
    ///
    /// # Panics
    ///
    /// Panics when no spec is pending — execute an `inject_fault` command
    /// first.
    pub fn run_pending(&mut self, app: &AppSpec) -> RunReport {
        let spec = self
            .take_pending_spec()
            .expect("no pending injection spec; run an inject_fault command first");
        run_app(app, &RunOptions::inject_traced(spec))
    }
}

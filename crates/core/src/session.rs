//! The Chaser session: wires injector, tracer and hooks into a cluster and
//! executes single runs.

use crate::injector::{FnHookLogger, Injector, InjectorHandle, ProfileHandle, ProfileHook};
use crate::outcome::{classify, Outcome};
use crate::plugin::{FiInterface, FiPlugin, HostState, PluginError, PluginHost};
use crate::provenance::{ProvenanceGraph, ProvenanceRecorder, PROV_LOG_CAPACITY};
use crate::spec::InjectionSpec;
use crate::tracer::{TraceSummary, Tracer, TracerConfig};
use chaser_isa::{abi, InsnClass, Program};
use chaser_mpi::{
    Cluster, ClusterConfig, ClusterRun, ClusterSnapshot, MpiObserver, NetStats, RunBudget,
};
use chaser_tainthub::HubStats;
use chaser_tcg::{BaseLayer, CacheStats};
use chaser_vm::{
    EngineStats, ExecTuning, FnHookSink, InjectSink, NodeTranslateHook, TaintEventFanout,
    TaintEventSink, VmiSink,
};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// The application under test: one guest program per rank plus the cluster
/// configuration to run it on.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// The target program name (what VMI screens for).
    pub name: String,
    /// One program per rank (rank i = `programs[i]`, master = rank 0).
    pub programs: Vec<Program>,
    /// Cluster parameters.
    pub cluster: ClusterConfig,
}

impl AppSpec {
    /// A single-process application on a one-node cluster.
    pub fn single(program: Program) -> AppSpec {
        let name = program.name().to_string();
        AppSpec {
            name,
            programs: vec![program],
            cluster: ClusterConfig {
                nodes: 1,
                ..ClusterConfig::default()
            },
        }
    }

    /// `ranks` copies of the same program on `nodes` machines.
    pub fn replicated(program: Program, ranks: usize, nodes: usize) -> AppSpec {
        let name = program.name().to_string();
        AppSpec {
            name,
            programs: vec![program; ranks],
            cluster: ClusterConfig {
                nodes,
                ..ClusterConfig::default()
            },
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.programs.len() as u32
    }
}

/// Per-run options.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// The fault to inject, if any.
    pub spec: Option<InjectionSpec>,
    /// Enable the fault-propagation tracer.
    pub tracing: bool,
    /// Tracer parameters.
    pub tracer: TracerConfig,
    /// Record a per-run fault-propagation [`ProvenanceGraph`] (taint
    /// machinery stays on even without `tracing`).
    pub provenance: bool,
    /// Hook the guest MPI wrapper functions by symbol address (the paper's
    /// interception mechanism; mostly useful for demos and tests — the
    /// runtime-level observers carry the actual taint synchronisation).
    pub hook_mpi_symbols: bool,
    /// Per-run watchdog budget, merged (tighter bound wins) with the
    /// cluster configuration's own [`RunBudget`].
    pub budget: RunBudget,
    /// Hot-path engine knobs (TB chaining, taint-idle fast path). Both
    /// default on; turning either off is observationally equivalent but
    /// slower — see `DESIGN.md` §9.
    pub exec_tuning: ExecTuning,
}

impl RunOptions {
    /// Options for a golden (fault-free, untraced) run.
    pub fn golden() -> RunOptions {
        RunOptions::default()
    }

    /// Options injecting `spec` with tracing and provenance recording on.
    pub fn inject_traced(spec: InjectionSpec) -> RunOptions {
        RunOptions {
            spec: Some(spec),
            tracing: true,
            provenance: true,
            ..RunOptions::default()
        }
    }

    /// Options injecting `spec` without tracing.
    pub fn inject(spec: InjectionSpec) -> RunOptions {
        RunOptions {
            spec: Some(spec),
            tracing: false,
            ..RunOptions::default()
        }
    }
}

/// Snapshot/restore counters for one run (or summed over a campaign).
/// All zero on cold runs; a warm-started run reports one restore plus its
/// copy-on-write page traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Cluster restores performed (1 for a warm run, 0 for a cold one).
    pub restores: u64,
    /// Pages adopted `Arc`-shared (zero-copy) from the snapshot.
    pub pages_shared: u64,
    /// Shared pages privatised by a suffix write (the run's dirty set).
    pub pages_cow: u64,
    /// Guest instructions the checkpointed prefix covered — work a warm
    /// run did *not* re-execute.
    pub insns_skipped: u64,
}

impl SnapshotStats {
    /// Accumulates `other` into `self` (campaign-level aggregation).
    pub fn absorb(&mut self, other: SnapshotStats) {
        self.restores += other.restores;
        self.pages_shared += other.pages_shared;
        self.pages_cow += other.pages_cow;
        self.insns_skipped += other.insns_skipped;
    }
}

/// Everything one run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The cluster-level result.
    pub cluster: ClusterRun,
    /// Per-rank result-file bytes (fd 3).
    pub outputs: Vec<Vec<u8>>,
    /// Per-rank stdout bytes.
    pub stdouts: Vec<Vec<u8>>,
    /// Faults actually placed.
    pub injections: Vec<crate::injector::InjectionRecord>,
    /// Executions of the targeted class observed by the injector.
    pub injector_exec_count: u64,
    /// Trace results when tracing was enabled.
    pub trace: Option<TraceSummary>,
    /// TaintHub counters.
    pub hub_stats: HubStats,
    /// TaintHub records still queued (unconsumed) at run end — a campaign
    /// over a healthy hub sees this drain to 0 on completed runs.
    pub hub_pending: usize,
    /// Taint records published to the hub over the whole run (lifetime
    /// counter; unaffected by consumption and GC).
    pub hub_published: u64,
    /// Interconnect counters (drops, retransmits, duplicates, losses on an
    /// unreliable fabric).
    pub net: NetStats,
    /// Guest MPI function-hook hits when `hook_mpi_symbols` was set:
    /// `(hook id, pc, args)`.
    pub fn_hook_hits: Vec<(u64, u64, [u64; 6])>,
    /// Translation-cache statistics aggregated over the run's nodes.
    pub cache_stats: CacheStats,
    /// Hot-path engine counters aggregated over the run's nodes (chain
    /// hits/severs, fast- vs slow-path memory operations).
    pub engine_stats: EngineStats,
    /// Snapshot/restore counters (all zero on cold runs).
    pub snapshot: SnapshotStats,
    /// The fault-propagation provenance graph when
    /// [`RunOptions::provenance`] was set.
    pub provenance: Option<ProvenanceGraph>,
}

impl RunReport {
    /// Classifies this run against a golden run's outputs.
    pub fn classify_against(&self, golden: &RunReport) -> Outcome {
        classify(&self.cluster, &self.outputs, &golden.outputs)
    }

    /// Did the injector fire at least once?
    pub fn injected(&self) -> bool {
        !self.injections.is_empty()
    }

    /// The corrupted regions of this run's outputs relative to a golden
    /// run (empty unless the run is an SDC).
    pub fn corrupted_regions(&self, golden: &RunReport) -> Vec<crate::CorruptedRegion> {
        crate::diff_outputs(&self.outputs, &golden.outputs)
    }
}

/// The instrumentation sinks one run installs on every node: the translate
/// hook plus the handle that receives its `CallInject` callbacks and VMI
/// process events, pre-coerced to the node-facing trait objects.
type InstrumentSinks = (
    Rc<dyn NodeTranslateHook>,
    Rc<RefCell<dyn InjectSink>>,
    Rc<RefCell<dyn VmiSink>>,
);

/// Builds an [`InstrumentSinks`] triple from a translate hook and the handle
/// serving as both its inject and VMI sink.
fn instrument_sinks<H>(hook: Rc<dyn NodeTranslateHook>, handle: H) -> InstrumentSinks
where
    H: InjectSink + VmiSink + 'static,
{
    let handle = Rc::new(RefCell::new(handle));
    (
        hook,
        Rc::clone(&handle) as Rc<RefCell<dyn InjectSink>>,
        handle as Rc<RefCell<dyn VmiSink>>,
    )
}

/// The one hook-wiring pass shared by every run flavour: installs whichever
/// sinks are present on all nodes. Must run before launch so VMI observes
/// process creation.
fn wire_cluster_hooks(
    cluster: &mut Cluster,
    instrument: Option<InstrumentSinks>,
    taint_events: Option<Rc<RefCell<dyn TaintEventSink>>>,
    fn_hook_sink: Option<Rc<RefCell<dyn FnHookSink>>>,
) {
    cluster.for_each_node_mut(|node| {
        let hooks = node.hooks_mut();
        if let Some((translate, inject, vmi)) = &instrument {
            hooks.translate = Some(Rc::clone(translate));
            hooks.inject = Some(Rc::clone(inject));
            hooks.vmi.push(Rc::clone(vmi));
        }
        if let Some(tr) = &taint_events {
            hooks.taint_events = Some(Rc::clone(tr));
        }
        if let Some(logger) = &fn_hook_sink {
            hooks.fn_hook_sink = Some(Rc::clone(logger));
        }
    });
}

/// Collects per-rank result-file and stdout bytes.
fn collect_rank_files(cluster: &Cluster) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut outputs = Vec::new();
    let mut stdouts = Vec::new();
    for rank in 0..cluster.nranks() {
        let files = cluster.rank_files(rank);
        outputs.push(files.output.clone());
        stdouts.push(files.stdout.clone());
    }
    (outputs, stdouts)
}

/// Executes one run of `app` under `opts`.
pub fn run_app(app: &AppSpec, opts: &RunOptions) -> RunReport {
    run_app_inner(app, opts, None)
}

/// The cluster configuration a run actually executes under. The paper's
/// "fault propagation tracing" switch governs the whole taint machinery
/// (DECAF++-style elastic tainting): with tracing off, no shadow state is
/// maintained at all, which is what makes the FI-only configuration nearly
/// free (Fig. 10). The per-run watchdog budget is merged in (tighter bound
/// wins). A warm-start prefix must be captured under this same effective
/// configuration, or replay equivalence breaks.
fn effective_cluster_cfg(app: &AppSpec, opts: &RunOptions) -> ClusterConfig {
    let mut cluster_cfg = app.cluster.clone();
    if !opts.tracing && !opts.provenance {
        cluster_cfg.taint_policy = chaser_taint::TaintPolicy::Disabled;
    }
    cluster_cfg.run_budget = cluster_cfg.run_budget.merge(opts.budget);
    cluster_cfg.exec_tuning = opts.exec_tuning;
    cluster_cfg
}

/// Drives `cluster` to completion, sampling tainted-byte counts into the
/// tracer after every round and keeping the provenance recorder's round
/// cell current so its events carry round attribution.
fn run_sampled(
    cluster: &mut Cluster,
    tracer: Option<&Rc<RefCell<Tracer>>>,
    round: Option<&Rc<Cell<u64>>>,
) -> ClusterRun {
    cluster.run_with(|c| {
        if let Some(cell) = round {
            cell.set(c.round());
        }
        if let Some(tr) = tracer {
            let total = c.total_insns();
            let tainted: usize = c
                .nodes()
                .iter()
                .map(|n| n.taint().mem().tainted_bytes())
                .sum();
            tr.borrow_mut().maybe_sample(total, tainted);
        }
    })
}

/// Assembles the [`RunReport`] shared by every run flavour.
fn build_report(
    cluster: &Cluster,
    cluster_run: ClusterRun,
    injector: Option<&Rc<Injector>>,
    tracer: Option<Rc<RefCell<Tracer>>>,
    fn_logger: Option<Rc<RefCell<FnHookLogger>>>,
    snapshot: SnapshotStats,
    recorder: Option<Rc<RefCell<ProvenanceRecorder>>>,
) -> RunReport {
    let provenance = recorder.map(|rec| {
        let mut rank_of: BTreeMap<(u32, u64), u32> = BTreeMap::new();
        for rank in 0..cluster.nranks() {
            let (ni, pid) = cluster.rank_location(rank);
            rank_of.insert((ni as u32, pid), rank);
        }
        rec.borrow().to_graph(&rank_of)
    });
    let (outputs, stdouts) = collect_rank_files(cluster);
    RunReport {
        cluster: cluster_run,
        outputs,
        stdouts,
        injections: injector.map(|i| i.records()).unwrap_or_default(),
        injector_exec_count: injector.map_or(0, |i| i.exec_count()),
        trace: tracer.map(|tr| tr.borrow().summary().clone()),
        hub_stats: cluster.hub().stats(),
        hub_pending: cluster.hub().pending(),
        hub_published: cluster.hub().published_total(),
        net: cluster.net_stats(),
        fn_hook_hits: fn_logger.map_or_else(Vec::new, |l| l.borrow().hits.clone()),
        cache_stats: cluster.tb_cache_stats(),
        engine_stats: cluster.engine_stats(),
        snapshot,
        provenance,
    }
}

/// Builds the single taint-event sink a run installs: the tracer and/or
/// the provenance recorder, fanned out when both are present.
fn taint_event_sink(
    tracer: Option<&Rc<RefCell<Tracer>>>,
    recorder: Option<&Rc<RefCell<ProvenanceRecorder>>>,
) -> Option<Rc<RefCell<dyn TaintEventSink>>> {
    match (tracer, recorder) {
        (None, None) => None,
        (Some(tr), None) => Some(Rc::clone(tr) as Rc<RefCell<dyn TaintEventSink>>),
        (None, Some(rec)) => Some(Rc::clone(rec) as Rc<RefCell<dyn TaintEventSink>>),
        (Some(tr), Some(rec)) => {
            let mut fanout = TaintEventFanout::new();
            fanout.push(Rc::clone(tr) as Rc<RefCell<dyn TaintEventSink>>);
            fanout.push(Rc::clone(rec) as Rc<RefCell<dyn TaintEventSink>>);
            Some(Rc::new(RefCell::new(fanout)) as Rc<RefCell<dyn TaintEventSink>>)
        }
    }
}

/// Creates the provenance recorder for a run (when enabled), registers it
/// as an MPI observer for cross-rank edges, and primes its round cell with
/// the cluster's current round (non-zero on warm restores).
fn wire_provenance(
    cluster: &mut Cluster,
    opts: &RunOptions,
) -> Option<Rc<RefCell<ProvenanceRecorder>>> {
    let recorder = opts
        .provenance
        .then(|| Rc::new(RefCell::new(ProvenanceRecorder::new(PROV_LOG_CAPACITY))))?;
    recorder.borrow().round_handle().set(cluster.round());
    cluster.add_observer(Rc::clone(&recorder) as Rc<RefCell<dyn MpiObserver>>);
    Some(recorder)
}

fn run_app_inner(
    app: &AppSpec,
    opts: &RunOptions,
    base_caches: Option<&[Arc<BaseLayer>]>,
) -> RunReport {
    let mut cluster = Cluster::new(effective_cluster_cfg(app, opts));
    if let Some(bases) = base_caches {
        cluster.install_base_caches(bases);
    }

    let injector = opts.spec.clone().map(Injector::new);
    let tracer = opts
        .tracing
        .then(|| Rc::new(RefCell::new(Tracer::new(opts.tracer))));
    let recorder = wire_provenance(&mut cluster, opts);
    let fn_logger = opts
        .hook_mpi_symbols
        .then(|| Rc::new(RefCell::new(FnHookLogger::default())));

    wire_cluster_hooks(
        &mut cluster,
        injector.as_ref().map(|inj| {
            instrument_sinks(
                Rc::clone(inj) as Rc<dyn NodeTranslateHook>,
                InjectorHandle(Rc::clone(inj)),
            )
        }),
        taint_event_sink(tracer.as_ref(), recorder.as_ref()),
        fn_logger
            .as_ref()
            .map(|l| Rc::clone(l) as Rc<RefCell<dyn FnHookSink>>),
    );

    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");

    // Hook the guest MPI wrapper symbols by address, per rank.
    if opts.hook_mpi_symbols {
        for rank in 0..cluster.nranks() {
            let (ni, pid) = cluster.rank_location(rank);
            let program = &app.programs[rank as usize];
            for (hook_id, sym) in [
                abi::symbols::MPI_SEND,
                abi::symbols::MPI_RECV,
                abi::symbols::MPI_BCAST,
                abi::symbols::MPI_REDUCE,
            ]
            .iter()
            .enumerate()
            {
                if let Some(addr) = program.symbol(sym) {
                    cluster
                        .node_mut(ni)
                        .hooks_mut()
                        .fn_hooks
                        .insert((pid, addr), hook_id as u64);
                }
            }
        }
    }

    let round = recorder.as_ref().map(|r| r.borrow().round_handle());
    let cluster_run = run_sampled(&mut cluster, tracer.as_ref(), round.as_ref());
    build_report(
        &cluster,
        cluster_run,
        injector.as_ref(),
        tracer,
        fn_logger,
        SnapshotStats::default(),
        recorder,
    )
}

/// An application prepared for repeated campaign runs: the golden
/// (fault-free) reference report, per-`(rank, class)` dynamic execution
/// counts, and one immutable base translation cache per node, sealed from
/// a hook-free warm-up run. Cheap to share across worker threads — the
/// base layers are read-only `Arc`s that every run's overlay sits on top
/// of, so workers skip almost all translation work.
#[derive(Debug, Clone)]
pub struct PreparedApp {
    /// The application under test.
    pub app: AppSpec,
    /// The golden reference report (produced by the warm-up run).
    pub golden: RunReport,
    /// Dynamic execution counts per `(rank, class index)`.
    pub profile_counts: HashMap<(u32, usize), u64>,
    /// Clean-TB base layers, one per node, warmed by the golden run.
    pub base_caches: Vec<Arc<BaseLayer>>,
    /// Warm-start checkpoint, when one was captured (see
    /// [`warm_start_for`]). `None` means every run executes from launch.
    pub warm: Option<WarmStart>,
}

/// A warm-start checkpoint shared by every injection run of a campaign:
/// the cluster frozen at the last round boundary *before any targetable
/// instruction executes*. Each run's trigger count is at least 1, so no
/// fault can fire inside the checkpointed prefix — restoring it and
/// executing only the suffix is replay-equivalent to a cold run.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// The copy-on-write checkpoint every warm run restores from. Guest
    /// pages inside are `Arc`-shared across worker threads; each run
    /// privatises only the pages its suffix writes.
    pub snapshot: Arc<ClusterSnapshot>,
    /// Scheduler rounds the checkpointed prefix covers.
    pub safe_rounds: u64,
    /// Guest instructions the prefix retired (skipped by every warm run).
    pub prefix_insns: u64,
}

/// What a warm-start capture must know about the campaign it serves: the
/// `(rank, class)` pairs faults may target, and the per-run execution
/// regime (tracing, watchdog budget) the prefix must be captured under.
#[derive(Debug, Clone)]
pub struct WarmStartOptions {
    /// Instruction classes faults may target.
    pub classes: Vec<InsnClass>,
    /// Ranks faults may target (the campaign's rank pool, expanded).
    pub ranks: Vec<u32>,
    /// Whether campaign runs trace fault propagation.
    pub tracing: bool,
    /// Whether campaign runs record provenance graphs (keeps the taint
    /// machinery on, like `tracing`).
    pub provenance: bool,
    /// The campaign's per-run watchdog budget.
    pub budget: RunBudget,
}

/// Captures a warm-start checkpoint for `prepared` under `wopts`, in two
/// passes over the fault-free execution:
///
/// 1. **Trigger-site analysis** — a profiled cluster steps round by round
///    to find the largest prefix with zero dynamic executions of any
///    campaign class on any targetable rank. Since every run draws a
///    trigger count of at least 1, no fault can fire inside that prefix.
/// 2. **Capture** — a hook-free cluster replays the safe prefix under the
///    exact effective configuration injection runs execute with (same
///    taint policy, same merged budget — RNG streams and round clocks must
///    line up), and is frozen at the round boundary.
///
/// Returns `None` when warm-starting cannot help: the first targetable
/// instruction executes in round 0, or none ever executes (every campaign
/// run would skip anyway).
pub fn warm_start_for(prepared: &PreparedApp, wopts: &WarmStartOptions) -> Option<WarmStart> {
    let app = &prepared.app;
    let run_opts = RunOptions {
        tracing: wopts.tracing,
        provenance: wopts.provenance,
        budget: wopts.budget,
        ..RunOptions::default()
    };
    let cfg = effective_cluster_cfg(app, &run_opts);
    let program_refs: Vec<&Program> = app.programs.iter().collect();

    let mut probe = Cluster::new(cfg.clone());
    let profile = ProfileHook::new(app.name.clone(), wopts.classes.clone());
    wire_cluster_hooks(
        &mut probe,
        Some(instrument_sinks(
            Rc::clone(&profile) as Rc<dyn NodeTranslateHook>,
            ProfileHandle(Rc::clone(&profile)),
        )),
        None,
        None,
    );
    probe.launch(&program_refs).expect("launch application");
    let mut safe_rounds = 0;
    loop {
        if probe.finished() {
            return None;
        }
        probe.step_round();
        let counts = profile.counts();
        let fired = wopts.ranks.iter().any(|&r| {
            (0..wopts.classes.len()).any(|ci| counts.get(&(r, ci)).copied().unwrap_or(0) > 0)
        });
        if fired {
            break;
        }
        safe_rounds = probe.round();
    }
    if safe_rounds == 0 {
        return None;
    }

    let mut prefix = Cluster::new(cfg);
    prefix.install_base_caches(&prepared.base_caches);
    prefix.launch(&program_refs).expect("launch application");
    for _ in 0..safe_rounds {
        prefix.step_round();
    }
    let snap = prefix.snapshot();
    Some(WarmStart {
        safe_rounds,
        prefix_insns: snap.total_insns(),
        snapshot: Arc::new(snap),
    })
}

/// Runs the prepared application once from its warm-start checkpoint:
/// restores the shared snapshot (zero-copy; guest pages go copy-on-write),
/// wires this run's hooks, replays VMI process-creation events so the
/// injector arms exactly as a cold run's would, and executes only the
/// suffix. With `share_base_caches`, nodes are also born holding the
/// golden-warmed base translation layers.
///
/// Replay-equivalent to [`run_prepared`] under the same options: the
/// checkpoint predates every possible trigger site and RNG streams resume
/// at their captured positions, so the report matches a cold run's (modulo
/// `cache_stats` and the `snapshot` counters).
///
/// # Panics
///
/// Panics when `prepared` carries no checkpoint, or when
/// `opts.hook_mpi_symbols` is set (unsupported on the warm path).
pub fn run_warm(prepared: &PreparedApp, opts: &RunOptions, share_base_caches: bool) -> RunReport {
    let warm = prepared
        .warm
        .as_ref()
        .expect("prepared application has no warm-start checkpoint");
    assert!(
        !opts.hook_mpi_symbols,
        "symbol hooks are not supported on the warm path"
    );
    let app = &prepared.app;
    let mut cluster = Cluster::from_snapshot(effective_cluster_cfg(app, opts), &warm.snapshot);

    let injector = opts.spec.clone().map(Injector::new);
    let tracer = opts
        .tracing
        .then(|| Rc::new(RefCell::new(Tracer::new(opts.tracer))));
    let recorder = wire_provenance(&mut cluster, opts);
    wire_cluster_hooks(
        &mut cluster,
        injector.as_ref().map(|inj| {
            instrument_sinks(
                Rc::clone(inj) as Rc<dyn NodeTranslateHook>,
                InjectorHandle(Rc::clone(inj)),
            )
        }),
        taint_event_sink(tracer.as_ref(), recorder.as_ref()),
        None,
    );
    cluster.replay_vmi_creations();
    if share_base_caches {
        cluster.install_base_caches(&prepared.base_caches);
    }

    let round = recorder.as_ref().map(|r| r.borrow().round_handle());
    let cluster_run = run_sampled(&mut cluster, tracer.as_ref(), round.as_ref());
    let mem = cluster.mem_stats();
    let snapshot = SnapshotStats {
        restores: 1,
        pages_shared: mem.pages_shared,
        pages_cow: mem.pages_cow,
        insns_skipped: warm.prefix_insns,
    };
    build_report(
        &cluster,
        cluster_run,
        injector.as_ref(),
        tracer,
        None,
        snapshot,
        recorder,
    )
}

/// Prepares `app` for repeated runs: executes one hook-free golden run,
/// seals every node's translation cache into a shareable base layer, and
/// profiles the dynamic execution counts of `classes`.
///
/// The warm-up must be the *golden* run, not the profiling run: with no
/// translate hook installed every block translates clean, so sealing
/// captures the whole guest working set. [`ProfileHook`] instruments the
/// target's blocks, and sealing drops instrumented TBs.
///
/// # Panics
///
/// Panics when the golden run hangs — the application or cluster
/// configuration is broken.
pub fn prepare_app(app: &AppSpec, classes: &[InsnClass]) -> PreparedApp {
    let mut cluster_cfg = app.cluster.clone();
    cluster_cfg.taint_policy = chaser_taint::TaintPolicy::Disabled;
    let mut cluster = Cluster::new(cluster_cfg);
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();
    assert!(
        !cluster_run.hang,
        "golden run hung — application or cluster configuration is broken"
    );
    let golden = build_report(
        &cluster,
        cluster_run,
        None,
        None,
        None,
        SnapshotStats::default(),
        None,
    );
    let base_caches = cluster.seal_tb_caches();
    let (_, profile_counts) = profile_app(app, classes);
    PreparedApp {
        app: app.clone(),
        golden,
        profile_counts,
        base_caches,
        warm: None,
    }
}

/// Runs the prepared application once under `opts`, with every node born
/// holding the shared base translation cache. Semantics are identical to
/// [`run_app`] on [`PreparedApp::app`] — instrumented blocks always
/// translate fresh into the per-run overlay, and flushes clear only the
/// overlay — so same options and seed give the same [`RunReport`] contents
/// (modulo `cache_stats`).
pub fn run_prepared(prepared: &PreparedApp, opts: &RunOptions) -> RunReport {
    run_app_inner(&prepared.app, opts, Some(&prepared.base_caches))
}

/// Runs `app` fault-free while counting dynamic executions of each class in
/// `classes`, per rank. Returns the golden report and the counts keyed
/// `(rank, class index)`.
pub fn profile_app(
    app: &AppSpec,
    classes: &[InsnClass],
) -> (RunReport, HashMap<(u32, usize), u64>) {
    let mut cluster = Cluster::new(app.cluster.clone());
    let profile = ProfileHook::new(app.name.clone(), classes.to_vec());
    wire_cluster_hooks(
        &mut cluster,
        Some(instrument_sinks(
            Rc::clone(&profile) as Rc<dyn NodeTranslateHook>,
            ProfileHandle(Rc::clone(&profile)),
        )),
        None,
        None,
    );
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();
    let report = build_report(
        &cluster,
        cluster_run,
        None,
        None,
        None,
        SnapshotStats::default(),
        None,
    );
    (report, profile.counts())
}

/// Runs `app` under *instruction-level* tracing (see
/// [`crate::InsnLevelTracer`]): every instruction of the target is
/// instrumented, the rejected-alternative baseline for the granularity
/// ablation. With `seed_taint`, `F0` is marked fully tainted at the first
/// traced instruction so there is live taint to chase.
pub fn run_app_insn_traced(
    app: &AppSpec,
    seed_taint: bool,
) -> (RunReport, crate::InsnTraceSummary) {
    let mut cluster = Cluster::new(app.cluster.clone());
    let tracer = crate::InsnLevelTracer::new(app.name.clone(), seed_taint);
    wire_cluster_hooks(
        &mut cluster,
        Some(instrument_sinks(
            Rc::clone(&tracer) as Rc<dyn NodeTranslateHook>,
            crate::InsnTraceHandle(Rc::clone(&tracer)),
        )),
        None,
        None,
    );
    let program_refs: Vec<&Program> = app.programs.iter().collect();
    cluster.launch(&program_refs).expect("launch application");
    let cluster_run = cluster.run();
    let report = build_report(
        &cluster,
        cluster_run,
        None,
        None,
        None,
        SnapshotStats::default(),
        None,
    );
    (report, tracer.summary())
}

/// The top-level session object: owns the plugin registry and pending
/// injection commands, and runs experiments.
#[derive(Debug, Default)]
pub struct Chaser {
    host: PluginHost,
    state: HostState,
    loaded: Vec<FiInterface>,
}

impl Chaser {
    /// A fresh session with no plugins loaded.
    pub fn new() -> Chaser {
        Chaser::default()
    }

    /// Loads a plugin: calls its `plugin_init` against the registry.
    pub fn load_plugin(&mut self, plugin: &mut dyn FiPlugin) -> FiInterface {
        let iface = plugin.plugin_init(&mut self.host);
        self.loaded.push(iface.clone());
        iface
    }

    /// Executes a terminal command registered by a loaded plugin (e.g.
    /// `inject_fault matvec mov 1000 5`).
    ///
    /// # Errors
    ///
    /// [`PluginError`] on unknown commands or bad arguments.
    pub fn exec_command(&mut self, line: &str) -> Result<String, PluginError> {
        self.host.exec(&mut self.state, line)
    }

    /// The spec deposited by the last `inject_fault`-style command.
    pub fn pending_spec(&self) -> Option<&InjectionSpec> {
        self.state.pending_spec.as_ref()
    }

    /// Takes (and clears) the pending spec.
    pub fn take_pending_spec(&mut self) -> Option<InjectionSpec> {
        self.state.pending_spec.take()
    }

    /// All commands currently registered.
    pub fn commands(&self) -> Vec<crate::plugin::CommandSpec> {
        self.host.commands().to_vec()
    }

    /// Runs `app` once under `opts`.
    pub fn run(&self, app: &AppSpec, opts: &RunOptions) -> RunReport {
        run_app(app, opts)
    }

    /// Runs `app` once injecting the pending command's spec (with tracing),
    /// consuming the pending spec.
    ///
    /// # Panics
    ///
    /// Panics when no spec is pending — execute an `inject_fault` command
    /// first.
    pub fn run_pending(&mut self, app: &AppSpec) -> RunReport {
        let spec = self
            .take_pending_spec()
            .expect("no pending injection spec; run an inject_fault command first");
        run_app(app, &RunOptions::inject_traced(spec))
    }
}

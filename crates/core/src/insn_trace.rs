//! Instruction-level fault-propagation tracing — the design alternative
//! the paper rejects.
//!
//! Chaser's §III-C: "While instruction level traces can record the most
//! complete information about fault propagation, the performance penalty
//! is unacceptable in practice. In contrast to instruction level tracing,
//! Chaser records tainted memory access activity only."
//!
//! This module implements the rejected alternative so the claim is
//! measurable: every instruction of the target process is instrumented
//! (the translation of *each* instruction carries a callback), and at
//! every executed instruction the tracer polls the architectural taint
//! state and counts/logs instructions that run with live taint. The
//! `ablation` benchmark compares its cost against the shipping
//! memory-access-granularity [`crate::Tracer`].

use chaser_isa::{FReg, Instruction};
use chaser_taint::TaintMask;
use chaser_vm::{
    ExitStatus, GuestCtx, InjectAction, InjectSink, NodeTranslateHook, VmiAction, VmiSink,
};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// What instruction-level tracing collected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InsnTraceSummary {
    /// Instructions executed under instrumentation.
    pub insns_observed: u64,
    /// Instructions that executed while any register carried taint.
    pub tainted_insns: u64,
    /// Retained per-instruction log entries `(node, pid, pc, tainted reg
    /// bits)` — capped like the memory tracer's log.
    pub log: Vec<(u32, u64, u64, u32)>,
    /// Entries dropped past the cap.
    pub dropped: u64,
}

#[derive(Debug)]
struct InsnTraceState {
    active: HashSet<(u32, u64)>,
    seeded: bool,
    summary: InsnTraceSummary,
}

/// The instruction-level tracer. Instruments *every* instruction of every
/// process of the target program.
#[derive(Debug)]
pub struct InsnLevelTracer {
    program: String,
    log_capacity: usize,
    /// Mark `F0` fully tainted at the first traced instruction, so the
    /// tracer has live taint to chase even without a separate injector
    /// (the translate/inject hook slots are occupied by the tracer).
    seed_taint: bool,
    state: Mutex<InsnTraceState>,
}

impl InsnLevelTracer {
    /// A tracer for `program`, optionally seeding taint at start.
    pub fn new(program: impl Into<String>, seed_taint: bool) -> Arc<InsnLevelTracer> {
        Arc::new(InsnLevelTracer {
            program: program.into(),
            log_capacity: 10_000,
            seed_taint,
            state: Mutex::new(InsnTraceState {
                active: HashSet::new(),
                seeded: false,
                summary: InsnTraceSummary::default(),
            }),
        })
    }

    /// Results so far.
    pub fn summary(&self) -> InsnTraceSummary {
        self.state.lock().summary.clone()
    }
}

impl NodeTranslateHook for InsnLevelTracer {
    fn inject_point(&self, node: u32, pid: u64, _pc: u64, _insn: &Instruction) -> Option<u64> {
        // Every instruction of an active process is instrumented — this is
        // exactly the cost Chaser's JIT design avoids.
        self.state.lock().active.contains(&(node, pid)).then_some(0)
    }
}

/// Sink half of [`InsnLevelTracer`] for the node hook slots.
#[derive(Debug, Clone)]
pub struct InsnTraceHandle(pub Arc<InsnLevelTracer>);

impl InjectSink for InsnTraceHandle {
    fn on_inject_point(
        &mut self,
        _point: u64,
        _insn: &Instruction,
        ctx: &mut GuestCtx<'_>,
    ) -> InjectAction {
        let tracer = &self.0;
        let mut st = tracer.state.lock();
        if tracer.seed_taint && !st.seeded {
            st.seeded = true;
            ctx.taint_freg(FReg::F0, TaintMask::ALL);
        }
        st.summary.insns_observed += 1;
        let live_bits = ctx.taint.tainted_reg_bits();
        if live_bits > 0 {
            st.summary.tainted_insns += 1;
            if st.summary.log.len() < tracer.log_capacity {
                st.summary.log.push((ctx.node, ctx.pid, ctx.pc, live_bits));
            } else {
                st.summary.dropped += 1;
            }
        }
        InjectAction::default()
    }
}

impl VmiSink for InsnTraceHandle {
    fn on_process_created(&mut self, node: u32, pid: u64, name: &str) -> VmiAction {
        if name != self.0.program {
            return VmiAction::NONE;
        }
        self.0.state.lock().active.insert((node, pid));
        VmiAction::FLUSH
    }

    fn on_process_exited(&mut self, node: u32, pid: u64, _status: ExitStatus) -> VmiAction {
        self.0.state.lock().active.remove(&(node, pid));
        VmiAction::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_isa::Reg;

    #[test]
    fn arms_only_for_matching_program() {
        let tracer = InsnLevelTracer::new("app", false);
        let mut handle = InsnTraceHandle(Arc::clone(&tracer));
        assert_eq!(handle.on_process_created(0, 1, "other"), VmiAction::NONE);
        assert_eq!(handle.on_process_created(0, 2, "app"), VmiAction::FLUSH);
        let nop = Instruction::Nop;
        assert_eq!(tracer.inject_point(0, 2, 0, &nop), Some(0));
        assert_eq!(tracer.inject_point(0, 1, 0, &nop), None);
        // Unlike the JIT injector, *every* instruction kind is a point.
        let mov = Instruction::MovRR {
            dst: Reg::R1,
            src: Reg::R2,
        };
        assert_eq!(tracer.inject_point(0, 2, 0, &mov), Some(0));
    }

    #[test]
    fn exit_disarms() {
        let tracer = InsnLevelTracer::new("app", false);
        let mut handle = InsnTraceHandle(Arc::clone(&tracer));
        handle.on_process_created(1, 7, "app");
        handle.on_process_exited(1, 7, ExitStatus::Exited(0));
        assert_eq!(tracer.inject_point(1, 7, 0, &Instruction::Nop), None);
    }
}

//! The plugin interface: how users extend Chaser with new fault injectors.
//!
//! This mirrors the software structure of the paper's fault-injection
//! plugin (its Fig. 4): a plugin's [`FiPlugin::plugin_init`] is called when
//! it is loaded, receives the host registry, and returns an
//! [`FiInterface`] describing the terminal commands it added (the paper's
//! `fi_interface_st` with its `inject_fault` command). When the user types
//! a registered command, the plugin's handler (`do_fi_fault`) parses the
//! arguments and deposits an [`InjectionSpec`] into the host state, where
//! the next run picks it up.

use crate::spec::InjectionSpec;
use std::collections::HashMap;
use std::fmt;

/// A terminal command exported by a plugin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandSpec {
    /// Command name as typed by the user.
    pub name: String,
    /// One-line usage string.
    pub help: String,
}

/// What a plugin exports at load time (the paper's `fi_interface_st`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiInterface {
    /// The commands the plugin registered.
    pub commands: Vec<CommandSpec>,
}

/// Errors surfaced to the user's terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PluginError {
    /// No plugin registered this command.
    UnknownCommand(String),
    /// The command rejected its arguments.
    BadArgs(String),
}

impl fmt::Display for PluginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PluginError::UnknownCommand(c) => write!(f, "unknown command `{c}`"),
            PluginError::BadArgs(msg) => write!(f, "bad arguments: {msg}"),
        }
    }
}

impl std::error::Error for PluginError {}

/// Mutable state commands operate on.
#[derive(Debug, Default)]
pub struct HostState {
    /// The spec the next run will execute (set by `inject_fault`-style
    /// commands).
    pub pending_spec: Option<InjectionSpec>,
}

/// A command handler: receives the host state and the command's arguments,
/// returns a message for the terminal.
pub type CommandHandler =
    Box<dyn FnMut(&mut HostState, &[&str]) -> Result<String, PluginError> + Send>;

/// The command registry plugins install into.
#[derive(Default)]
pub struct PluginHost {
    handlers: HashMap<String, CommandHandler>,
    commands: Vec<CommandSpec>,
}

impl fmt::Debug for PluginHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PluginHost")
            .field("commands", &self.commands)
            .finish()
    }
}

impl PluginHost {
    /// An empty registry.
    pub fn new() -> PluginHost {
        PluginHost::default()
    }

    /// Registers a command; later registrations shadow earlier ones.
    pub fn register_command(
        &mut self,
        name: impl Into<String>,
        help: impl Into<String>,
        handler: CommandHandler,
    ) -> CommandSpec {
        let spec = CommandSpec {
            name: name.into(),
            help: help.into(),
        };
        self.handlers.insert(spec.name.clone(), handler);
        self.commands.push(spec.clone());
        spec
    }

    /// Every registered command.
    pub fn commands(&self) -> &[CommandSpec] {
        &self.commands
    }

    /// Parses and dispatches one terminal line.
    ///
    /// # Errors
    ///
    /// [`PluginError::UnknownCommand`] for unregistered commands;
    /// whatever the handler returns otherwise.
    pub fn exec(&mut self, state: &mut HostState, line: &str) -> Result<String, PluginError> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Err(PluginError::BadArgs("empty command line".into()));
        };
        let args: Vec<&str> = parts.collect();
        let handler = self
            .handlers
            .get_mut(cmd)
            .ok_or_else(|| PluginError::UnknownCommand(cmd.to_string()))?;
        handler(state, &args)
    }
}

/// A fault-injector plugin.
pub trait FiPlugin {
    /// Called once at load time; registers commands and returns the
    /// exported interface.
    fn plugin_init(&mut self, host: &mut PluginHost) -> FiInterface;
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_isa::InsnClass;

    struct Dummy;
    impl FiPlugin for Dummy {
        fn plugin_init(&mut self, host: &mut PluginHost) -> FiInterface {
            let cmd = host.register_command(
                "inject_noop",
                "inject_noop <program>",
                Box::new(|state, args| {
                    let [program] = args else {
                        return Err(PluginError::BadArgs("expected 1 arg".into()));
                    };
                    state.pending_spec = Some(InjectionSpec::deterministic(
                        *program,
                        InsnClass::Any,
                        1,
                        vec![0],
                    ));
                    Ok(format!("armed for {program}"))
                }),
            );
            FiInterface {
                commands: vec![cmd],
            }
        }
    }

    #[test]
    fn plugin_registers_and_dispatches() {
        let mut host = PluginHost::new();
        let iface = Dummy.plugin_init(&mut host);
        assert_eq!(iface.commands.len(), 1);
        let mut state = HostState::default();
        let msg = host.exec(&mut state, "inject_noop matvec").expect("exec");
        assert_eq!(msg, "armed for matvec");
        let spec = state.pending_spec.expect("spec armed");
        assert_eq!(spec.target_program, "matvec");
    }

    #[test]
    fn unknown_command_errors() {
        let mut host = PluginHost::new();
        let mut state = HostState::default();
        assert_eq!(
            host.exec(&mut state, "nope 1 2"),
            Err(PluginError::UnknownCommand("nope".into()))
        );
    }

    #[test]
    fn bad_args_are_reported() {
        let mut host = PluginHost::new();
        Dummy.plugin_init(&mut host);
        let mut state = HostState::default();
        assert!(matches!(
            host.exec(&mut state, "inject_noop a b"),
            Err(PluginError::BadArgs(_))
        ));
        assert!(matches!(
            host.exec(&mut state, "   "),
            Err(PluginError::BadArgs(_))
        ));
    }
}

//! Append-only campaign journal: checkpoint/resume for long campaigns.
//!
//! A campaign writes one JSONL file: a header line binding the journal to
//! its campaign (seed, config fingerprint, golden-output digest) followed
//! by one line per finished run, appended as workers complete them. A
//! killed campaign leaves at worst one truncated trailing line; resuming
//! validates the header, replays the intact rows, and re-executes only the
//! missing run indices — reproducing the uninterrupted [`CampaignResult`]
//! byte for byte.
//!
//! The vendored `serde` is marker-only (no `serde_json`), so the JSON here
//! is hand-rolled: a minimal value model plus explicit encoders/decoders
//! for exactly the types a [`RunOutcome`] contains.

use crate::campaign::RunOutcome;
use crate::injector::InjectionRecord;
use crate::outcome::{Outcome, TermCause};
use crate::session::TraceRegime;
use chaser_isa::InsnClass;
use chaser_mpi::{BudgetKind, MpiErrorKind, ParallelStats};
use chaser_tcg::CacheStats;
use chaser_vm::{EngineStats, Signal};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

// ---- minimal JSON value model ----

/// A parsed JSON value. Numbers are integers only — nothing a campaign
/// journal stores is fractional.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (wide enough for both `u64` and `i64`).
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so encoding is canonical.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` on any other variant.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric field `key` of an object.
    ///
    /// # Errors
    ///
    /// [`JournalError::Malformed`] when the field is missing or non-numeric.
    pub fn num(&self, key: &str) -> Result<i128, JournalError> {
        match self.get(key) {
            Some(Json::Num(n)) => Ok(*n),
            _ => Err(bad(format!("missing numeric field `{key}`"))),
        }
    }

    /// The numeric field `key`, narrowed to `u64`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Malformed`] when the field is missing, non-numeric,
    /// or out of range.
    pub fn u64(&self, key: &str) -> Result<u64, JournalError> {
        u64::try_from(self.num(key)?).map_err(|_| bad(format!("field `{key}` out of u64 range")))
    }

    fn i64(&self, key: &str) -> Result<i64, JournalError> {
        i64::try_from(self.num(key)?).map_err(|_| bad(format!("field `{key}` out of i64 range")))
    }

    /// The string field `key` of an object.
    ///
    /// # Errors
    ///
    /// [`JournalError::Malformed`] when the field is missing or not a
    /// string.
    pub fn str(&self, key: &str) -> Result<&str, JournalError> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s),
            _ => Err(bad(format!("missing string field `{key}`"))),
        }
    }

    /// The boolean field `key`, or `default` when absent or non-boolean.
    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        match self.get(key) {
            Some(Json::Bool(b)) => *b,
            _ => default,
        }
    }
}

/// Encodes `value` canonically (no whitespace, object fields in insertion
/// order) onto `out` — the exact encoding journal lines use, which is what
/// makes re-encoded rows byte-comparable. Public so the serve protocol can
/// speak the same wire format.
pub fn encode(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => out.push_str(&n.to_string()),
        Json::Str(s) => encode_str(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_str(k, out);
                out.push(':');
                encode(v, out);
            }
            out.push('}');
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn bad(msg: impl Into<String>) -> JournalError {
    JournalError::Malformed {
        path: String::new(),
        line: 0,
        msg: msg.into(),
    }
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Parser<'a> {
        Parser {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JournalError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(bad(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JournalError> {
        match self.peek().ok_or_else(|| bad("unexpected end of line"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(bad(format!("unexpected byte `{}`", other as char))),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JournalError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(bad(format!("expected literal `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JournalError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i128>()
            .map(Json::Num)
            .map_err(|_| bad(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JournalError> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Operate on the original &str slice to keep UTF-8 intact.
        let rest = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| bad("invalid UTF-8 in string"))?;
        let mut chars = rest.char_indices();
        loop {
            let (i, c) = chars.next().ok_or_else(|| bad("unterminated string"))?;
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars.next().ok_or_else(|| bad("dangling escape"))?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars.next().ok_or_else(|| bad("short \\u escape"))?;
                                code = code * 16
                                    + h.to_digit(16).ok_or_else(|| bad("bad \\u escape"))?;
                            }
                            out.push(
                                char::from_u32(code).ok_or_else(|| bad("bad \\u code point"))?,
                            );
                        }
                        other => return Err(bad(format!("unknown escape `\\{other}`"))),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JournalError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(bad("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JournalError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(bad("expected `,` or `}`")),
            }
        }
    }
}

/// Parses one complete JSON value from `line`, rejecting trailing garbage.
pub fn parse_json(line: &str) -> Result<Json, JournalError> {
    let mut p = Parser::new(line);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(bad("trailing bytes after JSON value"));
    }
    Ok(v)
}

// ---- fingerprints ----

/// FNV-1a over a byte stream: the journal's stable, dependency-free hash.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of the golden run's per-rank output files: resuming against a
/// *different* application (or a changed golden) must be rejected, because
/// journalled SDC/benign classifications are only valid against the golden
/// outputs they were computed from.
pub fn golden_digest(outputs: &[Vec<u8>]) -> u64 {
    let mut h = Fnv1a::new();
    for out in outputs {
        h.write(&(out.len() as u64).to_le_bytes());
        h.write(out);
    }
    h.finish()
}

// ---- journal proper ----

/// Errors reading or validating a journal.
///
/// Every variant carries the offending journal's file path (and, for parse
/// failures, the 1-based line number) so a failure among K shard journals
/// names exactly which file and row broke. Errors minted deep inside the
/// codec start with an empty path / zero line; the file-level readers fill
/// them in via [`JournalError::with_path`] before surfacing them.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io {
        /// The journal file involved (empty when unknown).
        path: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A non-trailing line failed to parse, or a parsed row is missing
    /// required fields.
    Malformed {
        /// The journal file involved (empty when unknown).
        path: String,
        /// 1-based line number of the failing line (0 when unknown).
        line: u64,
        /// What was wrong with it.
        msg: String,
    },
    /// The header does not match the resuming campaign (different seed,
    /// configuration, or golden outputs).
    HeaderMismatch {
        /// The journal file involved (empty when unknown).
        path: String,
        /// What the resuming campaign computed.
        expected: JournalHeader,
        /// What the journal file recorded.
        found: JournalHeader,
    },
}

impl JournalError {
    /// Fills in the journal file path on an error that lacks one.
    pub fn with_path(mut self, p: &Path) -> JournalError {
        let (JournalError::Io { path, .. }
        | JournalError::Malformed { path, .. }
        | JournalError::HeaderMismatch { path, .. }) = &mut self;
        if path.is_empty() {
            *path = p.display().to_string();
        }
        self
    }

    /// Fills in the 1-based line number on a parse error that lacks one.
    fn with_line(mut self, l: u64) -> JournalError {
        if let JournalError::Malformed { line, .. } = &mut self {
            if *line == 0 {
                *line = l;
            }
        }
        self
    }
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, source } if path.is_empty() => {
                write!(f, "journal I/O error: {source}")
            }
            JournalError::Io { path, source } => write!(f, "journal I/O error ({path}): {source}"),
            JournalError::Malformed { path, line, msg } => {
                write!(f, "malformed journal")?;
                if !path.is_empty() {
                    write!(f, " {path}")?;
                    if *line > 0 {
                        write!(f, ":{line}")?;
                    }
                }
                write!(f, ": {msg}")
            }
            JournalError::HeaderMismatch {
                path,
                expected,
                found,
            } => {
                write!(f, "journal")?;
                if !path.is_empty() {
                    write!(f, " {path}")?;
                }
                write!(
                    f,
                    " belongs to a different campaign (differs in: {}; expected {expected:?}, found {found:?})",
                    expected.differing_fields(found).join(", ")
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> JournalError {
        JournalError::Io {
            path: String::new(),
            source: e,
        }
    }
}

/// The journal's first line: binds the file to one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Journal format version.
    pub version: u64,
    /// The campaign's master seed.
    pub seed: u64,
    /// Number of injection runs the campaign will execute.
    pub runs: u64,
    /// Fingerprint of the outcome-relevant campaign configuration
    /// (parallelism excluded — worker count never changes outcomes).
    pub config_hash: u64,
    /// [`golden_digest`] of the golden run's outputs.
    pub golden_digest: u64,
    /// The campaign's tracing regime (v6). Also folded into
    /// `config_hash`, but carried explicitly so a mismatch error can name
    /// the field instead of pointing at an opaque fingerprint.
    pub trace_regime: TraceRegime,
}

/// Current journal format version. Version 2 added the per-run provenance
/// aggregates (`prov_rank_reach` / `prov_blast_radius` / `prov_msg_edges` /
/// `prov_digest`) to outcome rows. Version 3 added the per-run hot-path
/// engine counters (`engine_stats`) to outcome rows and folded the
/// `tb_chaining` / `taint_fast_path` knobs into the config fingerprint.
/// Version 4 added the per-run rank-parallelism counters (`parallel`) to
/// outcome rows and folded `rank_threads` into the config fingerprint.
/// Version 5 added sharded campaigns: the `shards` knob joined the config
/// fingerprint, shard journals carry a [`ShardMeta`] assignment line after
/// the header, and quarantined harness-fault rows may carry a typed
/// `cause` naming the lost shard.
/// Version 6 added the tracing regime: `trace_regime` joined both the
/// header (named field, so mismatches are diagnosable) and the config
/// fingerprint — rows journaled under the statistical `off` regime carry
/// never-armed zeros in their taint counters and must not mix with `full`
/// rows.
/// Version 7 added superblock formation: the `superblocks` knob joined the
/// config fingerprint, and outcome rows' `engine_stats` gained the
/// `superblocks_formed` / `superblock_execs` / `superblock_bailouts`
/// counters.
pub const JOURNAL_VERSION: u64 = 7;

/// Line 2 of a *shard* journal: which contiguous slice of the campaign's
/// run-index range this file owns. The merge uses it to prove coverage
/// (every index in exactly one shard) and to reject rows outside their
/// shard's slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard id (0-based, dense).
    pub shard: u64,
    /// First run index this shard owns (inclusive).
    pub start: u64,
    /// One past the last run index this shard owns (exclusive).
    pub end: u64,
}

impl ShardMeta {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("chaser_shard".into(), Json::Num(self.shard as i128)),
            ("start".into(), Json::Num(self.start as i128)),
            ("end".into(), Json::Num(self.end as i128)),
        ])
    }

    fn from_json(v: &Json) -> Result<ShardMeta, JournalError> {
        Ok(ShardMeta {
            shard: v.u64("chaser_shard")?,
            start: v.u64("start")?,
            end: v.u64("end")?,
        })
    }
}

impl JournalHeader {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("chaser_journal".into(), Json::Num(self.version as i128)),
            ("seed".into(), Json::Num(self.seed as i128)),
            ("runs".into(), Json::Num(self.runs as i128)),
            ("config_hash".into(), Json::Num(self.config_hash as i128)),
            (
                "golden_digest".into(),
                Json::Num(self.golden_digest as i128),
            ),
            (
                "trace_regime".into(),
                Json::Str(self.trace_regime.name().into()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<JournalHeader, JournalError> {
        let regime = v.str("trace_regime")?;
        Ok(JournalHeader {
            version: v.u64("chaser_journal")?,
            seed: v.u64("seed")?,
            runs: v.u64("runs")?,
            config_hash: v.u64("config_hash")?,
            golden_digest: v.u64("golden_digest")?,
            trace_regime: TraceRegime::from_name(regime)
                .ok_or_else(|| bad(format!("unknown trace regime `{regime}`")))?,
        })
    }

    /// Names of the header fields on which `self` and `other` disagree —
    /// what a [`JournalError::HeaderMismatch`] reports, so "resumed under
    /// the wrong trace regime" reads as `trace_regime` rather than an
    /// opaque fingerprint difference.
    pub fn differing_fields(&self, other: &JournalHeader) -> Vec<&'static str> {
        let mut fields = Vec::new();
        if self.version != other.version {
            fields.push("version");
        }
        if self.seed != other.seed {
            fields.push("seed");
        }
        if self.runs != other.runs {
            fields.push("runs");
        }
        if self.config_hash != other.config_hash {
            fields.push("config_hash");
        }
        if self.golden_digest != other.golden_digest {
            fields.push("golden_digest");
        }
        if self.trace_regime != other.trace_regime {
            fields.push("trace_regime");
        }
        fields
    }
}

/// One replayed journal row.
#[derive(Debug, Clone)]
pub enum JournalRow {
    /// A classified (or quarantined) run.
    Outcome(Box<RunOutcome>),
    /// A run whose fault never fired; only its cache statistics matter.
    Skip {
        /// The skipped run index.
        run_idx: u64,
        /// The run's translation-cache statistics.
        cache_stats: CacheStats,
    },
}

impl JournalRow {
    /// The run index this row finishes.
    pub fn run_idx(&self) -> u64 {
        match self {
            JournalRow::Outcome(o) => o.run_idx,
            JournalRow::Skip { run_idx, .. } => *run_idx,
        }
    }

    /// The row re-encoded exactly as the journal writes it (sans newline).
    /// Two rows are *the same row* iff their canonical lines are equal —
    /// the merge uses this to tell a harmless exact duplicate from two
    /// conflicting results for one run index.
    pub fn canonical_line(&self) -> String {
        let value = match self {
            JournalRow::Outcome(o) => outcome_to_json(o),
            JournalRow::Skip {
                run_idx,
                cache_stats,
            } => Json::Obj(vec![
                ("run_idx".into(), Json::Num(*run_idx as i128)),
                ("skip".into(), Json::Bool(true)),
                ("cache_stats".into(), cache_stats_to_json(cache_stats)),
            ]),
        };
        let mut line = String::new();
        encode(&value, &mut line);
        line
    }
}

/// Default journal fsync interval, in rows (see
/// [`CampaignJournal::create_with`]).
pub const DEFAULT_SYNC_ROWS: u64 = 32;

#[derive(Debug)]
struct SyncedWriter {
    buf: BufWriter<File>,
    /// `sync_data` every this many rows; 0 = flush only, never fsync.
    sync_every: u64,
    rows_since_sync: u64,
}

/// An open, append-mode campaign journal. Thread-safe: campaign workers
/// append rows concurrently; every row is written (and flushed) as one
/// whole line under a lock, so a kill can only truncate the final line.
/// On top of the per-row flush, the file is `fsync`ed every `sync_every`
/// rows so a power loss is bounded too — a SIGKILL'd worker loses at most
/// the torn final line the reader already tolerates.
#[derive(Debug)]
pub struct CampaignJournal {
    path: String,
    writer: Mutex<SyncedWriter>,
}

impl CampaignJournal {
    /// Creates (truncating) a journal at `path` and writes the header,
    /// with the default fsync interval ([`DEFAULT_SYNC_ROWS`]).
    pub fn create(path: &Path, header: JournalHeader) -> Result<CampaignJournal, JournalError> {
        CampaignJournal::create_with(path, header, DEFAULT_SYNC_ROWS)
    }

    /// Creates (truncating) a journal at `path` and writes the header.
    /// `sync_every` is the durability knob: `sync_data` the file every that
    /// many appended rows (0 = flush to the OS only, never fsync).
    pub fn create_with(
        path: &Path,
        header: JournalHeader,
        sync_every: u64,
    ) -> Result<CampaignJournal, JournalError> {
        let file = File::create(path).map_err(|e| JournalError::from(e).with_path(path))?;
        let journal = CampaignJournal {
            path: path.display().to_string(),
            writer: Mutex::new(SyncedWriter {
                buf: BufWriter::new(file),
                sync_every,
                rows_since_sync: 0,
            }),
        };
        journal.append_line(&header.to_json())?;
        Ok(journal)
    }

    /// Creates (truncating) a *shard* journal: header, then the shard's
    /// [`ShardMeta`] assignment line, both made durable immediately so a
    /// worker crash can never lose the preamble.
    pub fn create_shard(
        path: &Path,
        header: JournalHeader,
        meta: ShardMeta,
        sync_every: u64,
    ) -> Result<CampaignJournal, JournalError> {
        let journal = CampaignJournal::create_with(path, header, sync_every)?;
        journal.append_line(&meta.to_json())?;
        journal.sync_now()?;
        Ok(journal)
    }

    /// Reopens `path` for appending further rows (resume), with the default
    /// fsync interval ([`DEFAULT_SYNC_ROWS`]).
    pub fn append_to(path: &Path) -> Result<CampaignJournal, JournalError> {
        CampaignJournal::append_to_with(path, DEFAULT_SYNC_ROWS)
    }

    /// Reopens `path` for appending further rows (resume). A torn final
    /// line — the shape a kill mid-write leaves behind — is trimmed back to
    /// the last complete row first, so appended rows start on a fresh line.
    /// `sync_every` as for [`CampaignJournal::create_with`].
    pub fn append_to_with(path: &Path, sync_every: u64) -> Result<CampaignJournal, JournalError> {
        let ctx = |e: io::Error| JournalError::from(e).with_path(path);
        let bytes = std::fs::read(path).map_err(ctx)?;
        if !bytes.is_empty() && !bytes.ends_with(b"\n") {
            let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
            let file = OpenOptions::new().write(true).open(path).map_err(ctx)?;
            file.set_len(keep as u64).map_err(ctx)?;
        }
        let file = OpenOptions::new().append(true).open(path).map_err(ctx)?;
        Ok(CampaignJournal {
            path: path.display().to_string(),
            writer: Mutex::new(SyncedWriter {
                buf: BufWriter::new(file),
                sync_every,
                rows_since_sync: 0,
            }),
        })
    }

    fn io_ctx(&self, e: io::Error) -> JournalError {
        JournalError::Io {
            path: self.path.clone(),
            source: e,
        }
    }

    fn append_line(&self, value: &Json) -> Result<(), JournalError> {
        let mut line = String::new();
        encode(value, &mut line);
        line.push('\n');
        let mut w = self.writer.lock().expect("journal lock poisoned");
        w.buf
            .write_all(line.as_bytes())
            .map_err(|e| self.io_ctx(e))?;
        w.buf.flush().map_err(|e| self.io_ctx(e))?;
        w.rows_since_sync += 1;
        if w.sync_every > 0 && w.rows_since_sync >= w.sync_every {
            w.buf.get_ref().sync_data().map_err(|e| self.io_ctx(e))?;
            w.rows_since_sync = 0;
        }
        Ok(())
    }

    /// Forces the journal to stable storage now, regardless of interval.
    pub fn sync_now(&self) -> Result<(), JournalError> {
        let mut w = self.writer.lock().expect("journal lock poisoned");
        w.buf.flush().map_err(|e| self.io_ctx(e))?;
        w.buf.get_ref().sync_data().map_err(|e| self.io_ctx(e))?;
        w.rows_since_sync = 0;
        Ok(())
    }

    /// Appends one finished run.
    pub fn append_outcome(&self, outcome: &RunOutcome) -> Result<(), JournalError> {
        self.append_line(&outcome_to_json(outcome))
    }

    /// Appends a skipped (never-fired) run.
    pub fn append_skip(&self, run_idx: u64, cache_stats: CacheStats) -> Result<(), JournalError> {
        self.append_line(&Json::Obj(vec![
            ("run_idx".into(), Json::Num(run_idx as i128)),
            ("skip".into(), Json::Bool(true)),
            ("cache_stats".into(), cache_stats_to_json(&cache_stats)),
        ]))
    }

    /// Reads and validates a journal: returns the header and the intact
    /// rows. A truncated *final* line (the kill signature) is tolerated and
    /// dropped; a malformed line anywhere else is an error.
    pub fn read(path: &Path) -> Result<(JournalHeader, Vec<JournalRow>), JournalError> {
        let (header, _meta, rows) = CampaignJournal::read_inner(path, false)?;
        Ok((header, rows))
    }

    /// Reads and validates a *shard* journal: header, the shard's
    /// [`ShardMeta`] assignment, then the intact rows (same torn-final-line
    /// tolerance as [`CampaignJournal::read`]).
    pub fn read_shard(
        path: &Path,
    ) -> Result<(JournalHeader, ShardMeta, Vec<JournalRow>), JournalError> {
        let (header, meta, rows) = CampaignJournal::read_inner(path, true)?;
        let meta = meta.expect("read_inner returns meta when expected");
        Ok((header, meta, rows))
    }

    fn read_inner(
        path: &Path,
        expect_meta: bool,
    ) -> Result<(JournalHeader, Option<ShardMeta>, Vec<JournalRow>), JournalError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| JournalError::from(e).with_path(path))?;
        let complete = text.ends_with('\n');
        // Keep real 1-based line numbers through the blank-line filter so
        // errors point at the exact row in the file.
        let lines: Vec<(u64, &str)> = text
            .split('\n')
            .enumerate()
            .map(|(i, l)| ((i + 1) as u64, l))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        let Some(&(header_no, header_line)) = lines.first() else {
            return Err(bad("empty journal (no header line)").with_path(path));
        };
        let header = parse_json(header_line)
            .and_then(|v| JournalHeader::from_json(&v))
            .map_err(|e| e.with_line(header_no).with_path(path))?;
        let mut rest = &lines[1..];
        let meta = if expect_meta {
            let Some(&(meta_no, meta_line)) = rest.first() else {
                return Err(bad("shard journal missing its shard-assignment line")
                    .with_line(2)
                    .with_path(path));
            };
            let meta = parse_json(meta_line)
                .and_then(|v| ShardMeta::from_json(&v))
                .map_err(|e| e.with_line(meta_no).with_path(path))?;
            rest = &rest[1..];
            Some(meta)
        } else {
            None
        };
        let mut rows = Vec::new();
        for (i, &(line_no, line)) in rest.iter().enumerate() {
            let parsed = parse_json(line).and_then(|v| row_from_json(&v));
            match parsed {
                Ok(row) => rows.push(row),
                // Only the final line may be damaged (the append was cut
                // mid-write); anything earlier means real corruption.
                Err(_) if i + 1 == rest.len() && !complete => break,
                Err(e) => return Err(e.with_line(line_no).with_path(path)),
            }
        }
        Ok((header, meta, rows))
    }
}

// ---- RunOutcome <-> JSON ----

fn cache_stats_to_json(c: &CacheStats) -> Json {
    Json::Obj(vec![
        ("lookups".into(), Json::Num(c.lookups as i128)),
        ("misses".into(), Json::Num(c.misses as i128)),
        ("base_hits".into(), Json::Num(c.base_hits as i128)),
        ("overlay_hits".into(), Json::Num(c.overlay_hits as i128)),
        ("flushes".into(), Json::Num(c.flushes as i128)),
        ("asid_flushes".into(), Json::Num(c.asid_flushes as i128)),
        (
            "translated_insns".into(),
            Json::Num(c.translated_insns as i128),
        ),
        ("overlay_blocks".into(), Json::Num(c.overlay_blocks as i128)),
        ("base_blocks".into(), Json::Num(c.base_blocks as i128)),
    ])
}

fn cache_stats_from_json(v: &Json) -> Result<CacheStats, JournalError> {
    Ok(CacheStats {
        lookups: v.u64("lookups")?,
        misses: v.u64("misses")?,
        base_hits: v.u64("base_hits")?,
        overlay_hits: v.u64("overlay_hits")?,
        flushes: v.u64("flushes")?,
        asid_flushes: v.u64("asid_flushes")?,
        translated_insns: v.u64("translated_insns")?,
        overlay_blocks: v.u64("overlay_blocks")?,
        base_blocks: v.u64("base_blocks")?,
    })
}

fn engine_stats_to_json(e: &EngineStats) -> Json {
    Json::Obj(vec![
        ("tb_chain_hits".into(), Json::Num(e.tb_chain_hits as i128)),
        ("chain_severs".into(), Json::Num(e.chain_severs as i128)),
        (
            "fast_path_insns".into(),
            Json::Num(e.fast_path_insns as i128),
        ),
        (
            "slow_path_insns".into(),
            Json::Num(e.slow_path_insns as i128),
        ),
        (
            "superblocks_formed".into(),
            Json::Num(e.superblocks_formed as i128),
        ),
        (
            "superblock_execs".into(),
            Json::Num(e.superblock_execs as i128),
        ),
        (
            "superblock_bailouts".into(),
            Json::Num(e.superblock_bailouts as i128),
        ),
    ])
}

fn engine_stats_from_json(v: &Json) -> Result<EngineStats, JournalError> {
    Ok(EngineStats {
        tb_chain_hits: v.u64("tb_chain_hits")?,
        chain_severs: v.u64("chain_severs")?,
        fast_path_insns: v.u64("fast_path_insns")?,
        slow_path_insns: v.u64("slow_path_insns")?,
        superblocks_formed: v.u64("superblocks_formed")?,
        superblock_execs: v.u64("superblock_execs")?,
        superblock_bailouts: v.u64("superblock_bailouts")?,
    })
}

fn parallel_stats_to_json(p: &ParallelStats) -> Json {
    Json::Obj(vec![
        ("threads".into(), Json::Num(p.threads as i128)),
        ("rounds".into(), Json::Num(p.rounds as i128)),
        (
            "parallel_rounds".into(),
            Json::Num(p.parallel_rounds as i128),
        ),
        (
            "max_worker_insns".into(),
            Json::Num(p.max_worker_insns as i128),
        ),
        (
            "total_worker_insns".into(),
            Json::Num(p.total_worker_insns as i128),
        ),
    ])
}

fn parallel_stats_from_json(v: &Json) -> Result<ParallelStats, JournalError> {
    Ok(ParallelStats {
        threads: v.u64("threads")?,
        rounds: v.u64("rounds")?,
        parallel_rounds: v.u64("parallel_rounds")?,
        max_worker_insns: v.u64("max_worker_insns")?,
        total_worker_insns: v.u64("total_worker_insns")?,
    })
}

fn record_to_json(r: &InjectionRecord) -> Json {
    Json::Obj(vec![
        ("node".into(), Json::Num(r.node as i128)),
        ("pid".into(), Json::Num(r.pid as i128)),
        ("pc".into(), Json::Num(r.pc as i128)),
        ("insn".into(), Json::Str(r.insn.clone())),
        ("operand".into(), Json::Str(r.operand.clone())),
        ("old_bits".into(), Json::Num(r.old_bits as i128)),
        ("new_bits".into(), Json::Num(r.new_bits as i128)),
        ("taint_mask".into(), Json::Num(r.taint_mask as i128)),
        ("icount".into(), Json::Num(r.icount as i128)),
        ("exec_count".into(), Json::Num(r.exec_count as i128)),
    ])
}

fn record_from_json(v: &Json) -> Result<InjectionRecord, JournalError> {
    Ok(InjectionRecord {
        node: v.u64("node")? as u32,
        pid: v.u64("pid")?,
        pc: v.u64("pc")?,
        insn: v.str("insn")?.to_string(),
        operand: v.str("operand")?.to_string(),
        old_bits: v.u64("old_bits")?,
        new_bits: v.u64("new_bits")?,
        taint_mask: v.u64("taint_mask")?,
        icount: v.u64("icount")?,
        exec_count: v.u64("exec_count")?,
    })
}

fn signal_name(s: Signal) -> &'static str {
    match s {
        Signal::Segv => "segv",
        Signal::Fpe => "fpe",
        Signal::Ill => "ill",
    }
}

fn signal_from_name(s: &str) -> Result<Signal, JournalError> {
    match s {
        "segv" => Ok(Signal::Segv),
        "fpe" => Ok(Signal::Fpe),
        "ill" => Ok(Signal::Ill),
        other => Err(bad(format!("unknown signal `{other}`"))),
    }
}

fn mpi_error_name(k: MpiErrorKind) -> &'static str {
    match k {
        MpiErrorKind::NotInitialized => "not_initialized",
        MpiErrorKind::InvalidRank => "invalid_rank",
        MpiErrorKind::InvalidDatatype => "invalid_datatype",
        MpiErrorKind::InvalidCount => "invalid_count",
        MpiErrorKind::InvalidOp => "invalid_op",
        MpiErrorKind::Truncation => "truncation",
        MpiErrorKind::TypeMismatch => "type_mismatch",
        MpiErrorKind::RankDied => "rank_died",
    }
}

fn mpi_error_from_name(s: &str) -> Result<MpiErrorKind, JournalError> {
    Ok(match s {
        "not_initialized" => MpiErrorKind::NotInitialized,
        "invalid_rank" => MpiErrorKind::InvalidRank,
        "invalid_datatype" => MpiErrorKind::InvalidDatatype,
        "invalid_count" => MpiErrorKind::InvalidCount,
        "invalid_op" => MpiErrorKind::InvalidOp,
        "truncation" => MpiErrorKind::Truncation,
        "type_mismatch" => MpiErrorKind::TypeMismatch,
        "rank_died" => MpiErrorKind::RankDied,
        other => return Err(bad(format!("unknown MPI error `{other}`"))),
    })
}

/// The canonical journal name of an instruction class (its `Debug` form) —
/// the inverse of [`class_from_name`].
pub fn class_name(c: InsnClass) -> String {
    format!("{c:?}")
}

/// Parses the canonical journal name of an instruction class.
///
/// # Errors
///
/// [`JournalError::Malformed`] on an unknown name.
pub fn class_from_name(s: &str) -> Result<InsnClass, JournalError> {
    Ok(match s {
        "Mov" => InsnClass::Mov,
        "IntAlu" => InsnClass::IntAlu,
        "Cmp" => InsnClass::Cmp,
        "Fadd" => InsnClass::Fadd,
        "Fsub" => InsnClass::Fsub,
        "Fmul" => InsnClass::Fmul,
        "Fdiv" => InsnClass::Fdiv,
        "FpArith" => InsnClass::FpArith,
        "FMov" => InsnClass::FMov,
        "Fcmp" => InsnClass::Fcmp,
        "Branch" => InsnClass::Branch,
        "Any" => InsnClass::Any,
        other => return Err(bad(format!("unknown instruction class `{other}`"))),
    })
}

fn cause_to_json(cause: &TermCause) -> Json {
    let kv = |k: &str, fields: Vec<(String, Json)>| {
        let mut all = vec![("kind".to_string(), Json::Str(k.to_string()))];
        all.extend(fields);
        Json::Obj(all)
    };
    match cause {
        TermCause::BudgetExhausted(kind) => kv(
            "budget",
            vec![(
                "which".into(),
                Json::Str(
                    match kind {
                        BudgetKind::Insns => "insns",
                        BudgetKind::Rounds => "rounds",
                    }
                    .into(),
                ),
            )],
        ),
        TermCause::OsException { rank, signal } => kv(
            "os_exception",
            vec![
                ("rank".into(), Json::Num(*rank as i128)),
                ("signal".into(), Json::Str(signal_name(*signal).into())),
            ],
        ),
        TermCause::MpiError(kind) => kv(
            "mpi_error",
            vec![("which".into(), Json::Str(mpi_error_name(*kind).into()))],
        ),
        TermCause::AssertionFailure { rank, code } => kv(
            "assertion",
            vec![
                ("rank".into(), Json::Num(*rank as i128)),
                ("code".into(), Json::Num(*code as i128)),
            ],
        ),
        TermCause::AbnormalExit { rank, code } => kv(
            "abnormal_exit",
            vec![
                ("rank".into(), Json::Num(*rank as i128)),
                ("code".into(), Json::Num(*code as i128)),
            ],
        ),
        TermCause::Hang => kv("hang", vec![]),
        TermCause::ShardLost { shard } => kv(
            "shard_lost",
            vec![("shard".into(), Json::Num(*shard as i128))],
        ),
    }
}

fn cause_from_json(v: &Json) -> Result<TermCause, JournalError> {
    Ok(match v.str("kind")? {
        "budget" => TermCause::BudgetExhausted(match v.str("which")? {
            "insns" => BudgetKind::Insns,
            "rounds" => BudgetKind::Rounds,
            other => return Err(bad(format!("unknown budget kind `{other}`"))),
        }),
        "os_exception" => TermCause::OsException {
            rank: v.u64("rank")? as u32,
            signal: signal_from_name(v.str("signal")?)?,
        },
        "mpi_error" => TermCause::MpiError(mpi_error_from_name(v.str("which")?)?),
        "assertion" => TermCause::AssertionFailure {
            rank: v.u64("rank")? as u32,
            code: v.i64("code")?,
        },
        "abnormal_exit" => TermCause::AbnormalExit {
            rank: v.u64("rank")? as u32,
            code: v.i64("code")?,
        },
        "hang" => TermCause::Hang,
        "shard_lost" => TermCause::ShardLost {
            shard: v.u64("shard")?,
        },
        other => return Err(bad(format!("unknown termination cause `{other}`"))),
    })
}

fn outcome_kind_to_json(outcome: &Outcome) -> Json {
    match outcome {
        Outcome::Benign => Json::Obj(vec![("kind".into(), Json::Str("benign".into()))]),
        Outcome::Sdc => Json::Obj(vec![("kind".into(), Json::Str("sdc".into()))]),
        Outcome::Terminated(cause) => Json::Obj(vec![
            ("kind".into(), Json::Str("terminated".into())),
            ("cause".into(), cause_to_json(cause)),
        ]),
        Outcome::HarnessFault {
            run_idx,
            payload,
            cause,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str("harness_fault".into())),
            ("run_idx".into(), Json::Num(*run_idx as i128)),
            ("payload".into(), Json::Str(payload.clone())),
            (
                "cause".into(),
                cause.as_ref().map_or(Json::Null, cause_to_json),
            ),
        ]),
    }
}

fn outcome_kind_from_json(v: &Json) -> Result<Outcome, JournalError> {
    Ok(match v.str("kind")? {
        "benign" => Outcome::Benign,
        "sdc" => Outcome::Sdc,
        "terminated" => Outcome::Terminated(cause_from_json(
            v.get("cause").ok_or_else(|| bad("missing `cause`"))?,
        )?),
        "harness_fault" => Outcome::HarnessFault {
            run_idx: v.u64("run_idx")?,
            payload: v.str("payload")?.to_string(),
            cause: match v.get("cause") {
                Some(Json::Null) | None => None,
                Some(c) => Some(cause_from_json(c)?),
            },
        },
        other => return Err(bad(format!("unknown outcome kind `{other}`"))),
    })
}

fn outcome_to_json(o: &RunOutcome) -> Json {
    Json::Obj(vec![
        ("run_idx".into(), Json::Num(o.run_idx as i128)),
        ("outcome".into(), outcome_kind_to_json(&o.outcome)),
        ("class".into(), Json::Str(class_name(o.class))),
        ("rank".into(), Json::Num(o.rank as i128)),
        ("trigger_n".into(), Json::Num(o.trigger_n as i128)),
        ("injected".into(), Json::Bool(o.injected)),
        ("taint_reads".into(), Json::Num(o.taint_reads as i128)),
        ("taint_writes".into(), Json::Num(o.taint_writes as i128)),
        ("cross_rank".into(), Json::Num(o.cross_rank as i128)),
        ("total_insns".into(), Json::Num(o.total_insns as i128)),
        (
            "taint_sync_lost".into(),
            Json::Num(o.taint_sync_lost as i128),
        ),
        (
            "prov_rank_reach".into(),
            Json::Num(o.prov_rank_reach as i128),
        ),
        (
            "prov_blast_radius".into(),
            Json::Num(o.prov_blast_radius as i128),
        ),
        ("prov_msg_edges".into(), Json::Num(o.prov_msg_edges as i128)),
        ("prov_digest".into(), Json::Num(o.prov_digest as i128)),
        (
            "record".into(),
            o.record.as_ref().map_or(Json::Null, record_to_json),
        ),
        ("cache_stats".into(), cache_stats_to_json(&o.cache_stats)),
        ("engine_stats".into(), engine_stats_to_json(&o.engine_stats)),
        ("parallel".into(), parallel_stats_to_json(&o.parallel)),
    ])
}

fn outcome_from_json(v: &Json) -> Result<RunOutcome, JournalError> {
    Ok(RunOutcome {
        run_idx: v.u64("run_idx")?,
        outcome: outcome_kind_from_json(v.get("outcome").ok_or_else(|| bad("missing `outcome`"))?)?,
        class: class_from_name(v.str("class")?)?,
        rank: v.u64("rank")? as u32,
        trigger_n: v.u64("trigger_n")?,
        injected: v.bool_or("injected", false),
        taint_reads: v.u64("taint_reads")?,
        taint_writes: v.u64("taint_writes")?,
        cross_rank: v.u64("cross_rank")?,
        total_insns: v.u64("total_insns")?,
        taint_sync_lost: v.u64("taint_sync_lost")?,
        prov_rank_reach: v.u64("prov_rank_reach")? as u32,
        prov_blast_radius: v.u64("prov_blast_radius")?,
        prov_msg_edges: v.u64("prov_msg_edges")?,
        prov_digest: v.u64("prov_digest")?,
        record: match v.get("record") {
            Some(Json::Null) | None => None,
            Some(rec) => Some(record_from_json(rec)?),
        },
        cache_stats: cache_stats_from_json(
            v.get("cache_stats")
                .ok_or_else(|| bad("missing `cache_stats`"))?,
        )?,
        engine_stats: engine_stats_from_json(
            v.get("engine_stats")
                .ok_or_else(|| bad("missing `engine_stats`"))?,
        )?,
        parallel: parallel_stats_from_json(
            v.get("parallel").ok_or_else(|| bad("missing `parallel`"))?,
        )?,
    })
}

fn row_from_json(v: &Json) -> Result<JournalRow, JournalError> {
    if v.bool_or("skip", false) {
        Ok(JournalRow::Skip {
            run_idx: v.u64("run_idx")?,
            cache_stats: cache_stats_from_json(
                v.get("cache_stats")
                    .ok_or_else(|| bad("missing `cache_stats`"))?,
            )?,
        })
    } else {
        Ok(JournalRow::Outcome(Box::new(outcome_from_json(v)?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> RunOutcome {
        RunOutcome {
            run_idx: 7,
            outcome: Outcome::Terminated(TermCause::OsException {
                rank: 0,
                signal: Signal::Segv,
            }),
            class: InsnClass::FpArith,
            rank: 0,
            trigger_n: 1234,
            injected: true,
            taint_reads: 5,
            taint_writes: 3,
            cross_rank: 1,
            total_insns: 99_000,
            taint_sync_lost: 0,
            prov_rank_reach: 2,
            prov_blast_radius: 48,
            prov_msg_edges: 1,
            prov_digest: 0xDEAD_BEEF,
            record: Some(InjectionRecord {
                node: 0,
                pid: 1,
                pc: 0x40_0010,
                insn: "fadd f0, f1".into(),
                operand: "f0".into(),
                old_bits: 0x3ff0_0000_0000_0000,
                new_bits: 0x3ff0_0000_0000_0001,
                taint_mask: 1,
                icount: 777,
                exec_count: 1234,
            }),
            cache_stats: CacheStats {
                lookups: 10,
                misses: 2,
                ..CacheStats::default()
            },
            engine_stats: EngineStats {
                tb_chain_hits: 42,
                chain_severs: 1,
                fast_path_insns: 800,
                slow_path_insns: 7,
                superblocks_formed: 3,
                superblock_execs: 20,
                superblock_bailouts: 1,
            },
            parallel: ParallelStats {
                threads: 4,
                rounds: 12,
                parallel_rounds: 11,
                max_worker_insns: 30_000,
                total_worker_insns: 99_000,
            },
        }
    }

    #[test]
    fn outcome_rows_round_trip() {
        for outcome in [
            Outcome::Benign,
            Outcome::Sdc,
            Outcome::Terminated(TermCause::Hang),
            Outcome::Terminated(TermCause::BudgetExhausted(BudgetKind::Rounds)),
            Outcome::Terminated(TermCause::MpiError(MpiErrorKind::Truncation)),
            Outcome::Terminated(TermCause::AssertionFailure { rank: 2, code: -9 }),
            Outcome::HarnessFault {
                run_idx: 7,
                payload: "index out of bounds: \"quoted\"".into(),
                cause: None,
            },
            Outcome::HarnessFault {
                run_idx: 8,
                payload: "shard 3 lost".into(),
                cause: Some(TermCause::ShardLost { shard: 3 }),
            },
        ] {
            let mut o = sample_outcome();
            o.outcome = outcome;
            let mut line = String::new();
            encode(&outcome_to_json(&o), &mut line);
            let back = outcome_from_json(&parse_json(&line).expect("parse")).expect("decode");
            assert_eq!(format!("{o:?}"), format!("{back:?}"), "round trip");
        }
    }

    #[test]
    fn strings_with_escapes_survive() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f — π".into());
        let mut line = String::new();
        encode(&v, &mut line);
        assert_eq!(parse_json(&line).expect("parse"), v);
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        let dir = std::env::temp_dir().join("chaser-journal-test-trunc");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("j.jsonl");
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            seed: 1,
            runs: 10,
            config_hash: 2,
            golden_digest: 3,
            trace_regime: TraceRegime::Full,
        };
        let j = CampaignJournal::create(&path, header).expect("create");
        j.append_outcome(&sample_outcome()).expect("append");
        drop(j);
        // Simulate a kill mid-append: add a half-written row.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"run_idx\":9,\"outco");
        std::fs::write(&path, &text).expect("write");
        let (h, rows) = CampaignJournal::read(&path).expect("read back");
        assert_eq!(h, header);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].run_idx(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_before_the_final_line_is_an_error() {
        let dir = std::env::temp_dir().join("chaser-journal-test-corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("j.jsonl");
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            seed: 1,
            runs: 10,
            config_hash: 2,
            golden_digest: 3,
            trace_regime: TraceRegime::Full,
        };
        let j = CampaignJournal::create(&path, header).expect("create");
        j.append_skip(0, CacheStats::default()).expect("append");
        drop(j);
        let text = std::fs::read_to_string(&path).expect("read");
        // Damage the middle line, keep a valid complete line after it.
        let damaged = text.replace("\"skip\":true", "\"skip\":tr");
        let with_tail = format!("{damaged}{{\"run_idx\":1,\"skip\":true,\"cache_stats\":{{\"lookups\":0,\"misses\":0,\"base_hits\":0,\"overlay_hits\":0,\"flushes\":0,\"asid_flushes\":0,\"translated_insns\":0,\"overlay_blocks\":0,\"base_blocks\":0}}}}\n");
        std::fs::write(&path, &with_tail).expect("write");
        assert!(CampaignJournal::read(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Cross-rank fault-propagation provenance graphs.
//!
//! The tracer ([`crate::Tracer`]) answers "how much did the fault touch";
//! this module answers "*where did it go*". Every injected fault carries a
//! provenance id alongside its taint (a [`chaser_taint::ProvSet`] bit), the
//! VM's tainted-memory hooks report instruction-level propagation events
//! (eip, addresses, tainted mask, current value, scheduler round), and the
//! MPI runtime reports a [`chaser_mpi::CrossRankEdge`] whenever the
//! TaintHub republishes taint into a receiver — the paper's cross-node
//! propagation, made queryable. A run's [`ProvenanceGraph`] holds the
//! canonicalised events, per-site nodes, intra-rank def-use flow edges and
//! the `(tag, src → dst)` message edges, with queries (first-contamination
//! round per rank, blast radius, rank reach, SDC sink classification) and
//! deterministic DOT/JSON exports whose digests are byte-identical across
//! cold, warm-started and journal-resumed executions of the same seed.

use crate::journal::{encode, Fnv1a, Json};
use crate::tracer::AccessKind;
use chaser_mpi::{CrossRankEdge, Envelope, MpiObserver};
use chaser_vm::{TaintEventSink, TaintMemEvent};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Rank value for propagation events whose process could not be resolved
/// to an MPI rank (never produced by a normal run; kept instead of
/// dropping the event so the graph stays complete).
pub const UNRESOLVED_RANK: u32 = u32::MAX;

/// Default cap on retained propagation events per run.
pub const PROV_LOG_CAPACITY: usize = 16_384;

/// One instruction-level propagation event: a tainted-memory access with
/// the provenance bits that flowed through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvEvent {
    /// Read or write.
    pub kind: AccessKind,
    /// MPI rank of the accessing process ([`UNRESOLVED_RANK`] when the
    /// process is not a rank).
    pub rank: u32,
    /// Node of the access.
    pub node: u32,
    /// Accessing process.
    pub pid: u64,
    /// Instruction pointer.
    pub eip: u64,
    /// Guest virtual address.
    pub vaddr: u64,
    /// Guest physical address.
    pub paddr: u64,
    /// Taint mask of the 8 accessed bytes.
    pub taint: u64,
    /// Value at the location (the *tainted value* as currently computed).
    pub value: u64,
    /// Raw [`chaser_taint::ProvSet`] bits that flowed through the access.
    pub prov: u32,
    /// Cluster scheduler round of the access.
    pub round: u64,
    /// Process instruction count at the access.
    pub icount: u64,
}

/// A cross-rank message edge: tainted payload bytes delivered from one
/// rank to another (serde-friendly mirror of [`CrossRankEdge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgEdge {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dest: u32,
    /// MPI message tag (collectives use their synthetic operation tag).
    pub tag: u64,
    /// Sender-side sequence number (0 for collectives).
    pub seq: u64,
    /// Scheduler round of the delivery.
    pub round: u64,
    /// Tainted payload bytes that crossed.
    pub tainted_bytes: u64,
    /// Union of the per-byte provenance bits that crossed.
    pub prov_bits: u32,
}

impl MsgEdge {
    fn from_cross_rank(e: &CrossRankEdge) -> MsgEdge {
        MsgEdge {
            src: e.src,
            dest: e.dest,
            tag: e.tag,
            seq: e.seq,
            round: e.round,
            tainted_bytes: e.tainted_bytes as u64,
            prov_bits: e.prov_bits,
        }
    }
}

/// A graph node: one `(rank, eip)` instruction site that touched tainted
/// data, with its access counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvSite {
    /// Rank of the site.
    pub rank: u32,
    /// Instruction address.
    pub eip: u64,
    /// Tainted reads at this site.
    pub reads: u64,
    /// Tainted writes at this site.
    pub writes: u64,
    /// First scheduler round the site touched tainted data.
    pub first_round: u64,
    /// Union of the provenance bits seen at this site.
    pub prov_bits: u32,
}

/// An intra-rank taint def-use edge: a site whose tainted store was later
/// loaded by another site of the same process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvFlowEdge {
    /// Rank the flow happened on.
    pub rank: u32,
    /// The writing site's instruction address.
    pub writer_eip: u64,
    /// The reading site's instruction address.
    pub reader_eip: u64,
    /// Observations of this edge.
    pub count: u64,
}

/// How a rank relates to the fault at run end (SDC sink classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SinkKind {
    /// Output corrupted *and* the graph recorded tainted writes on the
    /// rank: the corruption is accounted for by traced propagation.
    TaintedSdc,
    /// Output corrupted but no tainted write was recorded there — the
    /// taint was lost (washed out, log cap, or an untracked carrier).
    UntracedSdc,
    /// Tainted data reached the rank but its output stayed clean — the
    /// contamination was masked before the result file.
    Masked,
}

/// Per-rank sink classification for a run's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinkClass {
    /// The rank being classified.
    pub rank: u32,
    /// Its relation to the fault.
    pub kind: SinkKind,
    /// The last tainted write recorded on the rank (the candidate SDC
    /// sink instruction), when any was.
    pub last_write: Option<ProvEvent>,
}

/// A per-run fault-propagation provenance graph: nodes are tainted sites,
/// edges are intra-rank data flows plus cross-rank message edges. All
/// vectors are canonically sorted, so two equal runs produce byte-equal
/// exports.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceGraph {
    /// Retained propagation events (rank-resolved, canonically ordered).
    pub events: Vec<ProvEvent>,
    /// Tainted instruction sites (the graph's nodes).
    pub sites: Vec<ProvSite>,
    /// Intra-rank def-use flow edges.
    pub flow_edges: Vec<ProvFlowEdge>,
    /// Cross-rank message edges.
    pub msg_edges: Vec<MsgEdge>,
    /// Events dropped after the recorder's cap was reached.
    pub dropped_events: u64,
}

fn kind_ord(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

fn kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "read",
        AccessKind::Write => "write",
    }
}

impl ProvenanceGraph {
    /// Assembles the canonical graph from raw events and message edges.
    /// `rank_of` maps `(node, pid)` to MPI rank.
    fn assemble(
        mut events: Vec<ProvEvent>,
        mut msg_edges: Vec<MsgEdge>,
        dropped_events: u64,
        rank_of: &BTreeMap<(u32, u64), u32>,
    ) -> ProvenanceGraph {
        for ev in &mut events {
            ev.rank = rank_of
                .get(&(ev.node, ev.pid))
                .copied()
                .unwrap_or(UNRESOLVED_RANK);
        }
        events.sort_by_key(|e| {
            (
                e.round,
                e.rank,
                e.icount,
                e.eip,
                e.vaddr,
                kind_ord(e.kind),
                e.taint,
            )
        });
        msg_edges.sort_by_key(|e| (e.round, e.src, e.dest, e.tag, e.seq));

        let mut site_acc: BTreeMap<(u32, u64), ProvSite> = BTreeMap::new();
        // Last tainted writer per (node, pid, paddr): flows are intra-rank;
        // cross-rank hops are the message edges.
        let mut last_writer: BTreeMap<(u32, u64, u64), u64> = BTreeMap::new();
        let mut flow_acc: BTreeMap<(u32, u64, u64), u64> = BTreeMap::new();
        for ev in &events {
            let site = site_acc.entry((ev.rank, ev.eip)).or_insert(ProvSite {
                rank: ev.rank,
                eip: ev.eip,
                reads: 0,
                writes: 0,
                first_round: ev.round,
                prov_bits: 0,
            });
            site.first_round = site.first_round.min(ev.round);
            site.prov_bits |= ev.prov;
            match ev.kind {
                AccessKind::Read => {
                    site.reads += 1;
                    if let Some(&writer_eip) = last_writer.get(&(ev.node, ev.pid, ev.paddr)) {
                        *flow_acc.entry((ev.rank, writer_eip, ev.eip)).or_insert(0) += 1;
                    }
                }
                AccessKind::Write => {
                    site.writes += 1;
                    last_writer.insert((ev.node, ev.pid, ev.paddr), ev.eip);
                }
            }
        }
        ProvenanceGraph {
            events,
            sites: site_acc.into_values().collect(),
            flow_edges: flow_acc
                .into_iter()
                .map(|((rank, writer_eip, reader_eip), count)| ProvFlowEdge {
                    rank,
                    writer_eip,
                    reader_eip,
                    count,
                })
                .collect(),
            msg_edges,
            dropped_events,
        }
    }

    /// The first scheduler round at which each rank was contaminated (via
    /// a recorded event or a tainted delivery into it), per rank.
    pub fn first_contamination_rounds(&self) -> BTreeMap<u32, u64> {
        let mut m: BTreeMap<u32, u64> = BTreeMap::new();
        let mut note = |rank: u32, round: u64| {
            let slot = m.entry(rank).or_insert(u64::MAX);
            *slot = (*slot).min(round);
        };
        for ev in &self.events {
            if ev.rank != UNRESOLVED_RANK {
                note(ev.rank, ev.round);
            }
        }
        for e in &self.msg_edges {
            // The sender was contaminated no later than the delivery too.
            note(e.src, e.round);
            note(e.dest, e.round);
        }
        m
    }

    /// Blast radius: distinct tainted `(rank, physical byte)` destinations
    /// among the recorded writes, in bytes.
    pub fn blast_radius_bytes(&self) -> u64 {
        let mut bytes: BTreeSet<(u32, u64)> = BTreeSet::new();
        for ev in &self.events {
            if ev.kind != AccessKind::Write {
                continue;
            }
            for i in 0..8u64 {
                if (ev.taint >> (i * 8)) & 0xff != 0 {
                    bytes.insert((ev.rank, ev.paddr + i));
                }
            }
        }
        bytes.len() as u64
    }

    /// Every rank the fault reached: ranks with recorded events plus both
    /// endpoints of every tainted message edge, sorted ascending.
    pub fn rank_reach(&self) -> Vec<u32> {
        let mut ranks: BTreeSet<u32> = BTreeSet::new();
        for ev in &self.events {
            if ev.rank != UNRESOLVED_RANK {
                ranks.insert(ev.rank);
            }
        }
        for e in &self.msg_edges {
            ranks.insert(e.src);
            ranks.insert(e.dest);
        }
        ranks.into_iter().collect()
    }

    /// The last tainted write recorded on `rank` — the candidate sink
    /// instruction for an SDC on that rank.
    pub fn sink_for(&self, rank: u32) -> Option<ProvEvent> {
        self.events
            .iter()
            .filter(|e| e.rank == rank && e.kind == AccessKind::Write)
            .max_by_key(|e| (e.round, e.icount))
            .copied()
    }

    /// Classifies every reached or corrupted rank against the run's SDC
    /// evidence (`corrupted_ranks` — ranks whose output diverged from the
    /// golden run, e.g. from [`crate::diff_outputs`]).
    pub fn classify_sinks(&self, corrupted_ranks: &[u32]) -> Vec<SinkClass> {
        let corrupted: BTreeSet<u32> = corrupted_ranks.iter().copied().collect();
        let mut ranks: BTreeSet<u32> = self.rank_reach().into_iter().collect();
        ranks.extend(corrupted.iter().copied());
        ranks
            .into_iter()
            .map(|rank| {
                let last_write = self.sink_for(rank);
                let kind = match (corrupted.contains(&rank), last_write.is_some()) {
                    (true, true) => SinkKind::TaintedSdc,
                    (true, false) => SinkKind::UntracedSdc,
                    (false, _) => SinkKind::Masked,
                };
                SinkClass {
                    rank,
                    kind,
                    last_write,
                }
            })
            .collect()
    }

    /// Renders the graph as Graphviz DOT: site nodes grouped by rank,
    /// intra-rank flow edges solid, cross-rank message edges dashed
    /// between rank hubs. Deterministic byte-for-byte.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph provenance {\n  rankdir=LR;\n");
        for rank in self.rank_reach() {
            out.push_str(&format!(
                "  \"rank{rank}\" [shape=box,style=bold,label=\"rank {rank}\"];\n"
            ));
        }
        for s in &self.sites {
            out.push_str(&format!(
                "  \"r{}_{:#x}\" [label=\"r{} {:#x}\\n{}w/{}r round {}\"];\n",
                s.rank, s.eip, s.rank, s.eip, s.writes, s.reads, s.first_round
            ));
            out.push_str(&format!(
                "  \"rank{}\" -> \"r{}_{:#x}\";\n",
                s.rank, s.rank, s.eip
            ));
        }
        for f in &self.flow_edges {
            out.push_str(&format!(
                "  \"r{}_{:#x}\" -> \"r{}_{:#x}\" [label=\"{}\"];\n",
                f.rank, f.writer_eip, f.rank, f.reader_eip, f.count
            ));
        }
        for e in &self.msg_edges {
            out.push_str(&format!(
                "  \"rank{}\" -> \"rank{}\" [style=dashed,label=\"tag {:#x} seq {} round {}: {}B\"];\n",
                e.src, e.dest, e.tag, e.seq, e.round, e.tainted_bytes
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph as one canonical JSON document (hand-rolled, no
    /// external dependency). Deterministic byte-for-byte.
    pub fn to_json(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("kind".into(), Json::Str(kind_name(e.kind).into())),
                    ("rank".into(), Json::Num(e.rank as i128)),
                    ("node".into(), Json::Num(e.node as i128)),
                    ("pid".into(), Json::Num(e.pid as i128)),
                    ("eip".into(), Json::Num(e.eip as i128)),
                    ("vaddr".into(), Json::Num(e.vaddr as i128)),
                    ("paddr".into(), Json::Num(e.paddr as i128)),
                    ("taint".into(), Json::Num(e.taint as i128)),
                    ("value".into(), Json::Num(e.value as i128)),
                    ("prov".into(), Json::Num(e.prov as i128)),
                    ("round".into(), Json::Num(e.round as i128)),
                    ("icount".into(), Json::Num(e.icount as i128)),
                ])
            })
            .collect();
        let sites = self
            .sites
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("rank".into(), Json::Num(s.rank as i128)),
                    ("eip".into(), Json::Num(s.eip as i128)),
                    ("reads".into(), Json::Num(s.reads as i128)),
                    ("writes".into(), Json::Num(s.writes as i128)),
                    ("first_round".into(), Json::Num(s.first_round as i128)),
                    ("prov_bits".into(), Json::Num(s.prov_bits as i128)),
                ])
            })
            .collect();
        let flows = self
            .flow_edges
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("rank".into(), Json::Num(f.rank as i128)),
                    ("writer_eip".into(), Json::Num(f.writer_eip as i128)),
                    ("reader_eip".into(), Json::Num(f.reader_eip as i128)),
                    ("count".into(), Json::Num(f.count as i128)),
                ])
            })
            .collect();
        let msgs = self
            .msg_edges
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("src".into(), Json::Num(e.src as i128)),
                    ("dest".into(), Json::Num(e.dest as i128)),
                    ("tag".into(), Json::Num(e.tag as i128)),
                    ("seq".into(), Json::Num(e.seq as i128)),
                    ("round".into(), Json::Num(e.round as i128)),
                    ("tainted_bytes".into(), Json::Num(e.tainted_bytes as i128)),
                    ("prov_bits".into(), Json::Num(e.prov_bits as i128)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("chaser_provenance".into(), Json::Num(1)),
            ("events".into(), Json::Arr(events)),
            ("sites".into(), Json::Arr(sites)),
            ("flow_edges".into(), Json::Arr(flows)),
            ("msg_edges".into(), Json::Arr(msgs)),
            (
                "dropped_events".into(),
                Json::Num(self.dropped_events as i128),
            ),
        ]);
        let mut out = String::new();
        encode(&doc, &mut out);
        out
    }

    /// FNV-1a digest of the canonical JSON export — the replay-stability
    /// fingerprint journaled with each run.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.to_json().as_bytes());
        h.finish()
    }
}

/// Per-run recorder wired into the VM's tainted-memory hooks (through the
/// cluster's round-barrier taint drain, next to the tracer) and into the
/// cluster's MPI observers. The cluster announces the scheduler round via
/// [`TaintEventSink::on_round`] before dispatching each round's buffered
/// events, so events carry round attribution.
#[derive(Debug)]
pub struct ProvenanceRecorder {
    round: u64,
    capacity: usize,
    events: Vec<ProvEvent>,
    msg_edges: Vec<MsgEdge>,
    dropped: u64,
}

impl ProvenanceRecorder {
    /// A recorder retaining at most `capacity` events (message edges are
    /// never dropped; there are at most a few per delivery).
    pub fn new(capacity: usize) -> ProvenanceRecorder {
        ProvenanceRecorder {
            round: 0,
            capacity,
            events: Vec::new(),
            msg_edges: Vec::new(),
            dropped: 0,
        }
    }

    fn log(&mut self, kind: AccessKind, ev: &TaintMemEvent) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(ProvEvent {
            kind,
            rank: UNRESOLVED_RANK,
            node: ev.node,
            pid: ev.pid,
            eip: ev.eip,
            vaddr: ev.vaddr,
            paddr: ev.paddr,
            taint: ev.taint.0,
            value: ev.value,
            prov: ev.prov.bits(),
            round: self.round,
            icount: ev.icount,
        });
    }

    /// Builds the canonical graph; `rank_of` maps `(node, pid)` to rank.
    pub fn to_graph(&self, rank_of: &BTreeMap<(u32, u64), u32>) -> ProvenanceGraph {
        ProvenanceGraph::assemble(
            self.events.clone(),
            self.msg_edges.clone(),
            self.dropped,
            rank_of,
        )
    }
}

impl TaintEventSink for ProvenanceRecorder {
    fn on_round(&mut self, round: u64) {
        self.round = round;
    }

    fn on_taint_read(&mut self, ev: &TaintMemEvent) {
        self.log(AccessKind::Read, ev);
    }

    fn on_taint_write(&mut self, ev: &TaintMemEvent) {
        self.log(AccessKind::Write, ev);
    }
}

impl MpiObserver for ProvenanceRecorder {
    fn on_send(&mut self, _env: &Envelope, _tainted_bytes: usize) {}

    fn on_delivered(&mut self, _env: &Envelope, _tainted_bytes: usize) {}

    fn on_tainted_delivery(&mut self, edge: &CrossRankEdge) {
        self.msg_edges.push(MsgEdge::from_cross_rank(edge));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_taint::{ProvSet, TaintMask};

    fn mem_event(node: u32, pid: u64, eip: u64, paddr: u64, prov: ProvSet) -> TaintMemEvent {
        TaintMemEvent {
            node,
            pid,
            eip,
            vaddr: paddr | 0x1_0000,
            paddr,
            taint: TaintMask(0xff),
            value: 7,
            icount: eip & 0xfff,
            prov,
        }
    }

    fn edge(src: u32, dest: u32, round: u64) -> CrossRankEdge {
        CrossRankEdge {
            src,
            dest,
            tag: 5,
            seq: 1,
            round,
            tainted_bytes: 8,
            prov_bits: 1,
        }
    }

    fn rank_map() -> BTreeMap<(u32, u64), u32> {
        // Two nodes, one rank each.
        [((0, 1), 0), ((1, 1), 1)].into_iter().collect()
    }

    fn recorded() -> ProvenanceGraph {
        let mut r = ProvenanceRecorder::new(16);
        r.on_round(2);
        r.on_taint_write(&mem_event(0, 1, 0x400, 0x2000, ProvSet::single(0)));
        r.on_taint_read(&mem_event(0, 1, 0x408, 0x2000, ProvSet::single(0)));
        r.on_tainted_delivery(&edge(0, 1, 3));
        r.on_round(4);
        r.on_taint_write(&mem_event(1, 1, 0x500, 0x3000, ProvSet::single(0)));
        r.to_graph(&rank_map())
    }

    #[test]
    fn graph_builds_sites_flows_and_message_edges() {
        let g = recorded();
        assert_eq!(g.events.len(), 3);
        assert_eq!(g.sites.len(), 3);
        // The read of 0x2000 saw the write at 0x400: one intra-rank flow.
        assert_eq!(
            g.flow_edges,
            vec![ProvFlowEdge {
                rank: 0,
                writer_eip: 0x400,
                reader_eip: 0x408,
                count: 1
            }]
        );
        assert_eq!(g.msg_edges.len(), 1);
        assert_eq!((g.msg_edges[0].src, g.msg_edges[0].dest), (0, 1));
    }

    #[test]
    fn queries_cover_reach_rounds_and_blast_radius() {
        let g = recorded();
        assert_eq!(g.rank_reach(), vec![0, 1]);
        let rounds = g.first_contamination_rounds();
        assert_eq!(rounds[&0], 2);
        // Rank 1 was first contaminated by the round-3 delivery, before
        // its own round-4 write.
        assert_eq!(rounds[&1], 3);
        // Two writes, each with one tainted byte (mask 0xff = byte 0).
        assert_eq!(g.blast_radius_bytes(), 2);
    }

    #[test]
    fn sink_classification_tracks_corruption_evidence() {
        let g = recorded();
        let sinks = g.classify_sinks(&[1]);
        assert_eq!(sinks.len(), 2);
        assert_eq!(sinks[0].kind, SinkKind::Masked);
        assert_eq!(sinks[1].kind, SinkKind::TaintedSdc);
        assert_eq!(sinks[1].last_write.expect("rank 1 wrote").eip, 0x500);
        // A corrupted rank with no recorded writes is an untraced SDC.
        let sinks = g.classify_sinks(&[2]);
        assert_eq!(sinks.last().map(|s| s.kind), Some(SinkKind::UntracedSdc));
    }

    #[test]
    fn exports_are_deterministic() {
        let (a, b) = (recorded(), recorded());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_dot(), b.to_dot());
        assert_eq!(a.digest(), b.digest());
        assert!(a.to_dot().contains("style=dashed"));
        assert!(a.to_json().contains("\"chaser_provenance\":1"));
    }

    #[test]
    fn recorder_caps_events_but_counts_drops() {
        let mut r = ProvenanceRecorder::new(2);
        for i in 0..5 {
            r.on_taint_read(&mem_event(0, 1, 0x400 + i, 0x2000, ProvSet::EMPTY));
        }
        let g = r.to_graph(&rank_map());
        assert_eq!(g.events.len(), 2);
        assert_eq!(g.dropped_events, 3);
    }
}

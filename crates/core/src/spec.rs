//! Injection specifications: what, where, when and how to inject.
//!
//! These types are the Rust rendering of the paper's `fi_cmds_st` /
//! `fi_trigger_st` structures: the user (or a fault-model plugin) fills in
//! the targeted program, instruction class, trigger condition and
//! corruption, and hands the spec to the [`crate::Chaser`] session.

use chaser_isa::InsnClass;
use serde::{Deserialize, Serialize};

/// When the injector fires (the paper's `fi_trigger_st`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// Fire on the n-th execution of a targeted instruction (the
    /// deterministic fault model).
    AfterN(u64),
    /// Fire independently with probability `p` at every execution (the
    /// probabilistic fault model).
    WithProbability(f64),
    /// Fire at every execution (combined with `max_injections`, the group
    /// fault model).
    Always,
    /// Fire periodically: at executions `start`, `start + period`,
    /// `start + 2·period`, … — an *intermittent* fault (e.g. a marginal
    /// cell that misbehaves under a recurring access pattern). An
    /// extension beyond the paper's three models, built to show the
    /// trigger interface carries new semantics.
    Periodic {
        /// First firing execution count (1-based).
        start: u64,
        /// Distance between firings.
        period: u64,
    },
}

/// How the chosen operand is corrupted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Corruption {
    /// Flip exactly these bit positions (0–63).
    FlipBits(Vec<u32>),
    /// Flip `n` distinct randomly chosen bits.
    FlipRandomBits(u32),
    /// Overwrite the operand with a value.
    SetValue(u64),
    /// Write the *original* value back unchanged but mark it tainted —
    /// the paper's Fig. 10 methodology for measuring overhead without
    /// perturbing application behaviour.
    Identity,
}

/// Which operand of the targeted instruction to corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandSel {
    /// The destination register.
    Dst,
    /// The (first) source register; falls back to the destination when the
    /// instruction has no register source.
    Src,
    /// A uniformly random register operand.
    Random,
    /// The memory word the instruction is about to access (the paper's
    /// `CORRUPT_MEMORY` helper); falls back to a register operand for
    /// instructions that do not touch memory.
    Memory,
}

impl OperandSel {
    /// The wire name used by campaign specs
    /// (`"dst"` / `"src"` / `"random"` / `"memory"`).
    pub fn name(self) -> &'static str {
        match self {
            OperandSel::Dst => "dst",
            OperandSel::Src => "src",
            OperandSel::Random => "random",
            OperandSel::Memory => "memory",
        }
    }

    /// Parses a wire name back into a selector; `None` on unknown names.
    pub fn from_name(s: &str) -> Option<OperandSel> {
        match s {
            "dst" => Some(OperandSel::Dst),
            "src" => Some(OperandSel::Src),
            "random" => Some(OperandSel::Random),
            "memory" => Some(OperandSel::Memory),
            _ => None,
        }
    }
}

/// A complete injection experiment description (the paper's `fi_cmds_st`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionSpec {
    /// Name of the targeted application — VMI screens created processes
    /// against this.
    pub target_program: String,
    /// Which rank of the application to inject into (0 = master).
    pub target_rank: u32,
    /// The targeted instruction class (`fadd`, `mov`, `cmp`, …).
    pub class: InsnClass,
    /// When to fire.
    pub trigger: Trigger,
    /// What to do to the operand.
    pub corruption: Corruption,
    /// Which operand.
    pub operand: OperandSel,
    /// Detach after this many injections (1 for single-fault runs;
    /// larger for the group model).
    pub max_injections: u64,
    /// Seed for the injector's private randomness (probabilistic trigger,
    /// random bit/operand choices).
    pub seed: u64,
}

impl InjectionSpec {
    /// A single deterministic bit-flip: flip `bits` of the `class`
    /// instruction's destination after `n` executions in `program`.
    pub fn deterministic(
        program: impl Into<String>,
        class: InsnClass,
        n: u64,
        bits: Vec<u32>,
    ) -> InjectionSpec {
        InjectionSpec {
            target_program: program.into(),
            target_rank: 0,
            class,
            trigger: Trigger::AfterN(n),
            corruption: Corruption::FlipBits(bits),
            operand: OperandSel::Dst,
            max_injections: 1,
            seed: 0,
        }
    }

    /// Returns a copy targeting a specific rank.
    pub fn with_rank(mut self, rank: u32) -> InjectionSpec {
        self.target_rank = rank;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> InjectionSpec {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_constructor_defaults() {
        let spec = InjectionSpec::deterministic("matvec", InsnClass::Mov, 1000, vec![5]);
        assert_eq!(spec.target_program, "matvec");
        assert_eq!(spec.trigger, Trigger::AfterN(1000));
        assert_eq!(spec.corruption, Corruption::FlipBits(vec![5]));
        assert_eq!(spec.max_injections, 1);
        assert_eq!(spec.target_rank, 0);
    }

    #[test]
    fn operand_names_round_trip() {
        for sel in [
            OperandSel::Dst,
            OperandSel::Src,
            OperandSel::Random,
            OperandSel::Memory,
        ] {
            assert_eq!(OperandSel::from_name(sel.name()), Some(sel));
        }
        assert_eq!(OperandSel::from_name("flags"), None);
    }

    #[test]
    fn builder_style_modifiers() {
        let spec = InjectionSpec::deterministic("x", InsnClass::Fadd, 1, vec![0])
            .with_rank(3)
            .with_seed(99);
        assert_eq!(spec.target_rank, 3);
        assert_eq!(spec.seed, 99);
    }
}

//! # chaser
//!
//! A Rust reproduction of **Chaser** (Guan et al., DSN 2020): a
//! fine-grained, accountable, flexible and efficient fault-injection and
//! fault-propagation-tracing framework for (MPI) applications.
//!
//! The original is built on QEMU/DECAF; this implementation runs guest
//! programs on a simulated whole-system stack (`chaser-isa` / `chaser-tcg`
//! / `chaser-vm` / `chaser-taint` / `chaser-mpi` / `chaser-tainthub`) that
//! preserves the mechanisms the paper contributes:
//!
//! * **Just-in-time fault injection** — only instructions matching the
//!   [`InjectionSpec`] are instrumented, by splicing a callback into their
//!   dynamic-binary-translation output when the target process is detected
//!   via VMI; the translation cache is flushed to attach and detach the
//!   injector ([`Injector`]).
//! * **Fault-propagation tracing** — injected faults become bitwise taint
//!   sources; tainted memory reads/writes are logged with eip, virtual and
//!   physical address, taint mask and value ([`Tracer`]), and cross-rank
//!   propagation is synchronised through the TaintHub.
//! * **Flexible interfaces** — fault models are plugins over exported
//!   interfaces ([`FiPlugin`], [`PluginHost`]); the three stock models
//!   (probabilistic, deterministic, group — the paper's Table I) each cost
//!   about 100 lines ([`models`]).
//! * **Campaigns** — thousands of seeded single-fault runs in parallel,
//!   classified benign / SDC / terminated against a golden run
//!   ([`Campaign`]), with the paper's Table III termination attribution.
//!
//! # Quickstart
//!
//! ```
//! use chaser::{AppSpec, Chaser, DeterministicInjector, RunOptions};
//! use chaser_isa::{Asm, FReg, Reg};
//!
//! // A tiny FP guest program.
//! let mut a = Asm::new("demo");
//! a.fmovi(FReg::F0, 1.0);
//! a.fmovi(FReg::F1, 2.0);
//! a.fadd(FReg::F0, FReg::F1);
//! a.exit(0);
//! let app = AppSpec::single(a.assemble().expect("assemble"));
//!
//! // Load the deterministic fault model and arm it from its command.
//! let mut chaser = Chaser::new();
//! chaser.load_plugin(&mut DeterministicInjector);
//! chaser
//!     .exec_command("inject_fault demo fadd 1 51")
//!     .expect("arm injector");
//!
//! let report = chaser.run_pending(&app);
//! assert!(report.injected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod campaign;
mod injector;
mod insn_trace;
mod journal;
pub mod models;
mod outcome;
mod plugin;
mod provenance;
mod session;
mod shard;
mod spec;
mod tracer;

pub use campaign::{
    Campaign, CampaignConfig, CampaignResult, OutcomeCounts, PoolStats, RankPool, RunOutcome,
    SiteVulnerability, TerminationBreakdown,
};
pub use injector::{
    effective_address, operand_candidates, FnHookLogger, InjectionRecord, Injector, InjectorHandle,
    OperandLoc, ProfileHandle, ProfileHook,
};
pub use insn_trace::{InsnLevelTracer, InsnTraceHandle, InsnTraceSummary};
pub use journal::{
    class_from_name, class_name, encode as encode_json, golden_digest, parse_json, CampaignJournal,
    JournalError, JournalHeader, JournalRow, Json, ShardMeta, DEFAULT_SYNC_ROWS, JOURNAL_VERSION,
};
pub use models::{
    DeterministicInjector, GroupInjector, IntermittentInjector, ProbabilisticInjector,
};
pub use outcome::{classify, diff_outputs, CorruptedRegion, Outcome, TermCause};
pub use plugin::{CommandSpec, FiInterface, FiPlugin, HostState, PluginError, PluginHost};
pub use provenance::{
    MsgEdge, ProvEvent, ProvFlowEdge, ProvSite, ProvenanceGraph, ProvenanceRecorder, SinkClass,
    SinkKind, PROV_LOG_CAPACITY, UNRESOLVED_RANK,
};
pub use session::{
    prepare_app, profile_app, run_app, run_app_insn_traced, run_prepared, run_warm, warm_start_for,
    AppSpec, Chaser, HookRegistry, PreparedApp, RunOptions, RunReport, SnapshotStats, TraceRegime,
    WarmStart, WarmStartOptions,
};
pub use shard::{
    is_shard_lost, merge_shard_journals, shard_journal_path, ChaosKind, ShardChaos, ShardError,
    ShardPlan, ShardReport, ShardStats, ShardSupervision, ShardWorkers, StopSignal,
    ENV_SHARD_ATTEMPT, ENV_SHARD_CHAOS, ENV_SHARD_END, ENV_SHARD_INDEX, ENV_SHARD_JOURNAL,
    ENV_SHARD_START,
};

// Re-exported so cache-aware callers (benches, campaign analyses) can name
// the layered-translation-cache types without depending on chaser-tcg.
pub use chaser_tcg::{BaseLayer, CacheStats};
pub use spec::{Corruption, InjectionSpec, OperandSel, Trigger};
pub use tracer::{AccessKind, TraceEvent, TraceSummary, Tracer, TracerConfig};

#[cfg(test)]
mod serde_surface_tests {
    //! C-SERDE compliance: the crate's data-structure types implement
    //! `Serialize`/`Deserialize` (checked at compile time) so campaign
    //! results and trace logs can be persisted by downstream tooling.

    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    fn assert_serialize<T: serde::Serialize>() {}

    #[test]
    fn result_types_are_serde() {
        assert_serde::<crate::InjectionSpec>();
        assert_serde::<crate::InjectionRecord>();
        assert_serde::<crate::TraceEvent>();
        assert_serde::<crate::TraceSummary>();
        assert_serde::<crate::Outcome>();
        assert_serde::<crate::TermCause>();
        assert_serde::<crate::RunOutcome>();
        assert_serde::<crate::CampaignResult>();
        assert_serde::<crate::ShardStats>();
        assert_serde::<crate::ShardReport>();
        assert_serde::<crate::PoolStats>();
        assert_serde::<crate::ProvenanceGraph>();
        assert_serde::<crate::ProvEvent>();
        assert_serde::<crate::MsgEdge>();
        assert_serde::<crate::SinkClass>();
        assert_serialize::<crate::analysis::TraceAnalysis>();
    }

    #[test]
    fn handles_are_send_where_needed() {
        // Campaign fan-out moves specs and results across threads.
        fn assert_send<T: Send>() {}
        assert_send::<crate::InjectionSpec>();
        assert_send::<crate::CampaignResult>();
        assert_send::<crate::AppSpec>();
    }
}

//! Shard supervisor: fault-tolerant sharded campaigns.
//!
//! [`Campaign::run_sharded`] splits a campaign's run-index range into a
//! [`ShardPlan`] of contiguous shards and executes each shard as an
//! isolated worker — an in-process thread by default, or a self-exec
//! subprocess ([`ShardWorkers::Subprocess`]) driven by the `CHASER_SHARD_*`
//! environment protocol. Every shard appends to its own
//! fingerprint-validated journal (`<base>.shard-K.jsonl`), so worker death
//! costs at most one torn line.
//!
//! The supervisor watches each worker's *journal progress* (file growth vs.
//! [`ShardSupervision::heartbeat_timeout_ms`]): a subprocess that stops
//! appending is a straggler and gets killed. Dead or incomplete workers are
//! relaunched with capped exponential backoff; each relaunch *resumes* the
//! shard journal ([`Campaign::resume`] semantics — replay intact rows,
//! re-execute only the missing indices), so retries never redo finished
//! work and never duplicate rows. A shard that exhausts
//! [`ShardSupervision::max_retries`] is degraded gracefully: its unfinished
//! run indices become quarantined [`Outcome::HarnessFault`] rows whose
//! cause is [`TermCause::ShardLost`], and the campaign still completes.
//!
//! [`merge_shard_journals`] then stitches the shard journals back together
//! deterministically: every header must match the campaign fingerprint,
//! shard ranges must be disjoint and cover the campaign, rows must fall
//! inside their shard's range, and duplicates are either byte-identical
//! (deduped — determinism makes re-executed rows identical) or a typed
//! error. The merged [`CampaignResult`], outcome CSV and stats CSV are
//! byte-identical to a single-process [`Campaign::run_journaled`] of the
//! same seed and configuration.

use crate::campaign::{quarantined_outcome, Campaign, CampaignResult, ReplayBase};
use crate::journal::{CampaignJournal, JournalError, JournalHeader, JournalRow, ShardMeta};
use crate::outcome::{Outcome, TermCause};
use crate::session::{PreparedApp, TraceRegime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Env var carrying the shard journal path to a subprocess worker.
pub const ENV_SHARD_JOURNAL: &str = "CHASER_SHARD_JOURNAL";
/// Env var carrying the shard id to a subprocess worker.
pub const ENV_SHARD_INDEX: &str = "CHASER_SHARD_INDEX";
/// Env var carrying the shard's first run index (inclusive).
pub const ENV_SHARD_START: &str = "CHASER_SHARD_START";
/// Env var carrying the shard's end run index (exclusive).
pub const ENV_SHARD_END: &str = "CHASER_SHARD_END";
/// Env var carrying the 1-based attempt number (first launch = 1).
pub const ENV_SHARD_ATTEMPT: &str = "CHASER_SHARD_ATTEMPT";
/// Env var carrying a chaos directive (`kill:<rows>` / `stall:<rows>`) to a
/// subprocess worker; absent on unharassed launches.
pub const ENV_SHARD_CHAOS: &str = "CHASER_SHARD_CHAOS";

/// How shard workers execute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ShardWorkers {
    /// In-process worker threads (the default): cheapest, shares the
    /// supervisor's [`PreparedApp`], and a worker "death" can only come
    /// from the cooperative chaos knob.
    #[default]
    Thread,
    /// Self-exec subprocess workers: the argv prefix to spawn (program,
    /// then arguments — e.g. `["/path/chaser_cli", "shard-worker", ...]`).
    /// The shard assignment itself travels via the `CHASER_SHARD_*`
    /// environment protocol, so one prefix serves every shard and attempt.
    /// Process isolation means a worker crash (OOM, abort, SIGKILL) cannot
    /// take the supervisor down.
    Subprocess(Vec<String>),
}

/// A shared, raise-once stop signal: the drain lever the `chaser-serve`
/// daemon (or any embedder) pulls to checkpoint an in-flight sharded
/// campaign. All clones observe the same flag. Once raised, supervisors
/// stop relaunching workers, thread workers drain at run granularity,
/// subprocess workers are reclaimed, and
/// [`Campaign::run_sharded_with`] returns [`ShardError::Interrupted`]
/// instead of degrading the unfinished indices — the shard journals stay
/// resumable.
#[derive(Debug, Clone, Default)]
pub struct StopSignal(Arc<AtomicBool>);

impl StopSignal {
    /// A fresh, unraised signal.
    pub fn new() -> StopSignal {
        StopSignal::default()
    }

    /// Raises the signal. Idempotent and irrevocable.
    pub fn raise(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has the signal been raised?
    pub fn raised(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Liveness and retry policy for shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSupervision {
    /// A subprocess worker whose journal has not grown for this long is
    /// declared a straggler and killed (liveness is *journal progress*,
    /// not process existence — a hung worker is as dead as a crashed one).
    pub heartbeat_timeout_ms: u64,
    /// Relaunches allowed per shard beyond the first attempt; a shard that
    /// is still incomplete after `1 + max_retries` attempts is degraded to
    /// quarantined [`TermCause::ShardLost`] rows.
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base_ms << (n - 1)`, capped at
    /// [`ShardSupervision::backoff_cap_ms`].
    pub backoff_base_ms: u64,
    /// Upper bound on the exponential backoff.
    pub backoff_cap_ms: u64,
}

impl Default for ShardSupervision {
    fn default() -> ShardSupervision {
        ShardSupervision {
            heartbeat_timeout_ms: 30_000,
            max_retries: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 5_000,
        }
    }
}

/// What a chaos directive does to a worker when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Die abruptly: subprocess workers `exit(9)` mid-campaign (the
    /// SIGKILL shape — possibly leaving a torn final line, which the
    /// reader tolerates); thread workers stop taking indices and drain.
    Kill,
    /// Stop making progress while staying alive: subprocess workers sleep
    /// forever so only the supervisor's journal-progress heartbeat can
    /// reclaim them; thread workers degrade to [`ChaosKind::Kill`].
    Stall,
}

/// One chaos directive for the shard supervisor's fault-injection knob
/// (`CampaignConfig::shard_chaos`): harass `shard`'s workers after they
/// journal `after_rows` rows, on every attempt up to and including
/// `attempts`. Later attempts run unharassed — which is exactly what lets
/// the retry path prove itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChaos {
    /// The shard whose workers are harassed.
    pub shard: u64,
    /// Rows the worker journals before the chaos fires.
    pub after_rows: u64,
    /// Highest 1-based attempt number still harassed.
    pub attempts: u32,
    /// What happens when it fires.
    pub kind: ChaosKind,
}

/// Per-shard supervision report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard id.
    pub shard: u64,
    /// First run index (inclusive).
    pub start: u64,
    /// End run index (exclusive).
    pub end: u64,
    /// Worker launches this shard took (1 = no retries).
    pub attempts: u64,
    /// Run indices re-dispatched to a relaunched worker (missing rows at
    /// the moment a retry started).
    pub reassigned: u64,
    /// Run indices degraded to quarantined [`TermCause::ShardLost`] rows.
    pub quarantined: u64,
    /// Wall-clock milliseconds from first launch to shard completion.
    pub wall_ms: u64,
}

/// Shard-supervision counters for a whole campaign
/// (`CampaignResult::shard_stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shards the campaign ran with (0 = the campaign was not sharded).
    pub shards: u64,
    /// Worker relaunches across all shards.
    pub retries: u64,
    /// Run indices re-dispatched to relaunched workers.
    pub reassignments: u64,
    /// Run indices quarantined after retry exhaustion.
    pub quarantined_runs: u64,
    /// Per-shard detail.
    pub per_shard: Vec<ShardReport>,
}

impl ShardStats {
    /// Renders the per-shard supervision counters as CSV. Deliberately a
    /// separate artifact from `CampaignResult::stats_csv`: wall times are
    /// wall-clock facts, while the per-run stats CSV must stay
    /// byte-identical between sharded and unsharded executions.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("shard,start,end,attempts,reassigned,quarantined,wall_ms\n");
        for s in &self.per_shard {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                s.shard, s.start, s.end, s.attempts, s.reassigned, s.quarantined, s.wall_ms,
            ));
        }
        out
    }
}

/// The deterministic split of a campaign's run-index range into contiguous
/// shards: pure arithmetic over `(runs, shards)`, so the supervisor and
/// every subprocess worker derive the identical plan independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Total runs covered.
    pub runs: u64,
    /// The shard ranges, in shard-id order; disjoint, contiguous, and
    /// covering `0..runs` exactly.
    pub ranges: Vec<ShardMeta>,
}

impl ShardPlan {
    /// Splits `runs` indices into `shards` near-equal contiguous chunks
    /// (the first `runs % shards` chunks get one extra index). `shards` is
    /// clamped to `1..=runs` (min one shard; never more shards than runs,
    /// except that zero-run campaigns still get one empty shard).
    pub fn split(runs: u64, shards: u64) -> ShardPlan {
        let shards = shards.clamp(1, runs.max(1));
        let base = runs / shards;
        let extra = runs % shards;
        let mut ranges = Vec::with_capacity(shards as usize);
        let mut start = 0;
        for shard in 0..shards {
            let len = base + u64::from(shard < extra);
            ranges.push(ShardMeta {
                shard,
                start,
                end: start + len,
            });
            start += len;
        }
        ShardPlan { runs, ranges }
    }
}

/// Errors from the shard supervisor and the journal merge.
#[derive(Debug)]
pub enum ShardError {
    /// A shard journal failed to read, validate, or write.
    Journal(JournalError),
    /// A shard journal's assignment line disagrees with the plan (wrong
    /// shard id or range for its position).
    MetaMismatch {
        /// The offending journal file.
        path: String,
        /// The assignment the plan dictates.
        expected: ShardMeta,
        /// The assignment the file recorded.
        found: ShardMeta,
    },
    /// A shard journal's range is not contained in `0..runs`.
    BadRange {
        /// The offending journal file.
        path: String,
        /// The recorded assignment.
        meta: ShardMeta,
        /// The campaign's run count.
        runs: u64,
    },
    /// Two shard journals claim overlapping run-index ranges.
    OverlappingShards {
        /// One claimant.
        shard: u64,
        /// The other claimant.
        other: u64,
    },
    /// A row's run index falls outside its journal's declared range.
    RowOutOfRange {
        /// The offending journal file.
        path: String,
        /// The stray row's run index.
        run_idx: u64,
        /// The journal's declared range start (inclusive).
        start: u64,
        /// The journal's declared range end (exclusive).
        end: u64,
    },
    /// Two different rows claim the same run index (byte-identical
    /// duplicates are deduped instead — determinism makes honest
    /// re-executions identical, so a *conflicting* duplicate means the
    /// journals do not belong together).
    ConflictingDuplicate {
        /// The journal file containing the second, conflicting copy.
        path: String,
        /// The contested run index.
        run_idx: u64,
    },
    /// A shard journal was written under a different tracing regime than
    /// the campaign merging it. Checked before the generic header
    /// comparison: `off`-regime rows carry never-armed zeros in their
    /// taint counters, so mixing regimes would corrupt the merged result
    /// silently if only the opaque fingerprint were compared.
    RegimeMismatch {
        /// The offending journal file.
        path: String,
        /// The regime the merging campaign runs under.
        expected: TraceRegime,
        /// The regime the journal was written under.
        found: TraceRegime,
    },
    /// The merged journals do not cover every run index.
    MissingRuns {
        /// How many indices have no row.
        count: u64,
        /// The lowest uncovered index.
        first: u64,
    },
    /// A [`StopSignal`] was raised before every shard finished. Not a
    /// failure: every completed row is in the shard journals, and running
    /// the same campaign over them again resumes exactly the missing
    /// indices.
    Interrupted {
        /// Run indices without a journal row at stop time.
        missing: u64,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Journal(e) => write!(f, "{e}"),
            ShardError::MetaMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "shard journal {path} carries the wrong assignment (expected {expected:?}, found {found:?})"
            ),
            ShardError::BadRange { path, meta, runs } => write!(
                f,
                "shard journal {path} claims range {}..{} outside the campaign's {runs} runs",
                meta.start, meta.end
            ),
            ShardError::OverlappingShards { shard, other } => {
                write!(f, "shards {shard} and {other} claim overlapping run ranges")
            }
            ShardError::RowOutOfRange {
                path,
                run_idx,
                start,
                end,
            } => write!(
                f,
                "shard journal {path} holds run {run_idx} outside its range {start}..{end}"
            ),
            ShardError::ConflictingDuplicate { path, run_idx } => write!(
                f,
                "shard journal {path} holds a conflicting duplicate of run {run_idx}"
            ),
            ShardError::RegimeMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "shard journal {path} was written under trace regime `{}` but the campaign runs under `{}`",
                found.name(),
                expected.name()
            ),
            ShardError::MissingRuns { count, first } => write!(
                f,
                "merged shard journals are missing {count} run(s), first {first}"
            ),
            ShardError::Interrupted { missing } => write!(
                f,
                "sharded campaign stopped with {missing} run(s) unfinished (shard journals are resumable)"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<JournalError> for ShardError {
    fn from(e: JournalError) -> ShardError {
        ShardError::Journal(e)
    }
}

/// What a worker does when its chaos directive fires.
#[derive(Debug, Clone, Copy)]
enum ChaosAction {
    /// Stop taking indices and drain (thread workers).
    Bail,
    /// `exit(9)` — abrupt subprocess death, SIGKILL shape.
    Exit,
    /// Stop appending but stay alive, so only the heartbeat reclaims us.
    Stall,
}

/// The shard worker's control block: counts journal appends (the liveness
/// signal the supervisor watches through the file), carries the chaos
/// directive, and holds the stop flag that drains worker threads.
#[derive(Debug, Default)]
pub(crate) struct ShardCtl {
    appended: AtomicU64,
    stop: AtomicBool,
    chaos: Option<(u64, ChaosAction)>,
    /// External drain lever: when the embedder's [`StopSignal`] is raised,
    /// thread workers stop taking indices just as if the internal stop
    /// flag fired, but without marking the attempt dead.
    ext_stop: Option<StopSignal>,
}

impl ShardCtl {
    fn new(chaos: Option<(u64, ChaosAction)>, ext_stop: Option<StopSignal>) -> ShardCtl {
        ShardCtl {
            chaos,
            ext_stop,
            ..ShardCtl::default()
        }
    }

    /// Should workers stop taking new run indices?
    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || self.ext_stop.as_ref().is_some_and(StopSignal::raised)
    }

    /// Called by the campaign worker loop after every journal append.
    pub(crate) fn on_row(&self) {
        let n = self.appended.fetch_add(1, Ordering::SeqCst) + 1;
        let Some((after_rows, action)) = self.chaos else {
            return;
        };
        if n != after_rows {
            return;
        }
        // Raise the stop flag first in every case: sibling worker threads
        // must stop appending too, or the "dead" worker would keep making
        // journal progress and the heartbeat would never fire.
        self.stop.store(true, Ordering::SeqCst);
        match action {
            ChaosAction::Bail => {}
            ChaosAction::Exit => std::process::exit(9),
            ChaosAction::Stall => loop {
                std::thread::sleep(Duration::from_millis(50));
            },
        }
    }
}

/// The shard journal path for shard `shard` of the campaign journaled at
/// `base`: `campaign.jsonl` → `campaign.shard-K.jsonl`.
pub fn shard_journal_path(base: &Path, shard: u64) -> PathBuf {
    let stem = base.file_stem().map_or_else(
        || "campaign".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    base.with_file_name(format!("{stem}.shard-{shard}.jsonl"))
}

/// Reads the shard journals at `paths`, validates them against `expected`
/// (the campaign's journal header) and each other, and returns the rows
/// stitched into run-index order.
///
/// Merge invariants, each with a typed [`ShardError`]:
/// * every header equals `expected` (same seed, config fingerprint and
///   golden digest);
/// * every declared range lies inside `0..expected.runs` and ranges are
///   pairwise disjoint;
/// * every row's run index lies inside its journal's declared range;
/// * duplicate run indices carry byte-identical rows (deduped) — anything
///   else is [`ShardError::ConflictingDuplicate`];
/// * the union of rows covers every run index exactly once.
///
/// # Errors
///
/// [`ShardError`] naming the offending file and row; never a silent bad
/// merge.
pub fn merge_shard_journals(
    paths: &[PathBuf],
    expected: &JournalHeader,
) -> Result<Vec<JournalRow>, ShardError> {
    let mut metas: Vec<ShardMeta> = Vec::new();
    let mut by_idx: BTreeMap<u64, (JournalRow, String)> = BTreeMap::new();
    for path in paths {
        let (header, meta, rows) = CampaignJournal::read_shard(path)?;
        let path_str = path.display().to_string();
        if header.trace_regime != expected.trace_regime {
            return Err(ShardError::RegimeMismatch {
                path: path_str,
                expected: expected.trace_regime,
                found: header.trace_regime,
            });
        }
        if header != *expected {
            return Err(JournalError::HeaderMismatch {
                path: path_str,
                expected: *expected,
                found: header,
            }
            .into());
        }
        if meta.start > meta.end || meta.end > expected.runs {
            return Err(ShardError::BadRange {
                path: path_str,
                meta,
                runs: expected.runs,
            });
        }
        for prev in &metas {
            if meta.start < prev.end && prev.start < meta.end {
                return Err(ShardError::OverlappingShards {
                    shard: meta.shard,
                    other: prev.shard,
                });
            }
        }
        metas.push(meta);
        for row in rows {
            let idx = row.run_idx();
            if idx < meta.start || idx >= meta.end {
                return Err(ShardError::RowOutOfRange {
                    path: path_str,
                    run_idx: idx,
                    start: meta.start,
                    end: meta.end,
                });
            }
            let line = row.canonical_line();
            match by_idx.get(&idx) {
                Some((_, existing)) if *existing == line => {} // exact dup: drop
                Some(_) => {
                    return Err(ShardError::ConflictingDuplicate {
                        path: path_str,
                        run_idx: idx,
                    })
                }
                None => {
                    by_idx.insert(idx, (row, line));
                }
            }
        }
    }
    let missing: Vec<u64> = (0..expected.runs)
        .filter(|i| !by_idx.contains_key(i))
        .collect();
    if let Some(&first) = missing.first() {
        return Err(ShardError::MissingRuns {
            count: missing.len() as u64,
            first,
        });
    }
    Ok(by_idx.into_values().map(|(row, _)| row).collect())
}

/// Parses a `CHASER_SHARD_CHAOS` directive (`kill:<rows>` / `stall:<rows>`).
fn parse_chaos_env(text: &str) -> Option<(u64, ChaosAction)> {
    let (kind, rows) = text.split_once(':')?;
    let rows = rows.parse().ok()?;
    match kind {
        "kill" => Some((rows, ChaosAction::Exit)),
        "stall" => Some((rows, ChaosAction::Stall)),
        _ => None,
    }
}

fn env_u64(var: &str) -> Result<u64, JournalError> {
    let text = std::env::var(var).map_err(|_| JournalError::Malformed {
        path: String::new(),
        line: 0,
        msg: format!("shard worker env var `{var}` missing"),
    })?;
    text.parse().map_err(|_| JournalError::Malformed {
        path: String::new(),
        line: 0,
        msg: format!("shard worker env var `{var}` is not a number: `{text}`"),
    })
}

impl Campaign {
    /// Executes the campaign sharded: splits `0..runs` into
    /// `cfg.shards` chunks, runs each as a supervised worker with its own
    /// journal next to `journal_base` (`<stem>.shard-K.jsonl`), recovers
    /// dead/hung/straggler workers by resuming their journals with capped
    /// exponential backoff, degrades shards that exhaust their retry
    /// budget into quarantined rows, and deterministically merges the
    /// shard journals. The merged result, outcome CSV and stats CSV are
    /// byte-identical to [`Campaign::run_journaled`] on the same
    /// seed/config (absent degradation, which only ever *adds* quarantined
    /// [`TermCause::ShardLost`] rows for runs no worker could finish).
    ///
    /// Existing shard journals from a previous (killed) supervisor are
    /// validated and resumed rather than restarted, so the whole campaign
    /// is crash-tolerant end to end.
    ///
    /// # Errors
    ///
    /// [`ShardError`] when a shard journal cannot be created, validated or
    /// merged. Worker failures are not errors — they are retried, then
    /// degraded.
    pub fn run_sharded(&self, journal_base: &Path) -> Result<CampaignResult, ShardError> {
        self.run_sharded_with(&self.prepare(), journal_base, None)
    }

    /// [`Campaign::run_sharded`] with the preparation and the stop lever
    /// externalized — the embedding surface the `chaser-serve` daemon runs
    /// jobs through. `prepared` may be shared across campaigns with the
    /// same prepare-relevant configuration (the warmed-pool path), and
    /// raising `stop` drains the supervisors: workers finish or checkpoint
    /// their current run, nothing is relaunched, nothing is quarantined,
    /// and the call returns [`ShardError::Interrupted`] with the journals
    /// left resumable. A later `run_sharded_with` over the same journals
    /// (same campaign, `stop` unraised) finishes exactly the missing
    /// indices and merges a result byte-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`ShardError`] as for [`Campaign::run_sharded`], plus
    /// [`ShardError::Interrupted`] when `stop` was raised before every
    /// shard finished.
    pub fn run_sharded_with(
        &self,
        prepared: &PreparedApp,
        journal_base: &Path,
        stop: Option<&StopSignal>,
    ) -> Result<CampaignResult, ShardError> {
        let header = self.journal_header(prepared);
        let plan = ShardPlan::split(self.cfg.runs, self.cfg.shards);
        let paths: Vec<PathBuf> = plan
            .ranges
            .iter()
            .map(|m| shard_journal_path(journal_base, m.shard))
            .collect();

        // Create or revalidate every shard journal up front: a header or
        // assignment mismatch must abort before any worker runs.
        for (meta, path) in plan.ranges.iter().zip(&paths) {
            if path.exists() {
                let (found_header, found_meta, _) = CampaignJournal::read_shard(path)?;
                if found_header.trace_regime != header.trace_regime {
                    return Err(ShardError::RegimeMismatch {
                        path: path.display().to_string(),
                        expected: header.trace_regime,
                        found: found_header.trace_regime,
                    });
                }
                if found_header != header {
                    return Err(JournalError::HeaderMismatch {
                        path: path.display().to_string(),
                        expected: header,
                        found: found_header,
                    }
                    .into());
                }
                if found_meta != *meta {
                    return Err(ShardError::MetaMismatch {
                        path: path.display().to_string(),
                        expected: *meta,
                        found: found_meta,
                    });
                }
            } else {
                CampaignJournal::create_shard(path, header, *meta, self.cfg.journal_sync_rows)?;
            }
        }

        let reports: Mutex<Vec<ShardReport>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (meta, path) in plan.ranges.iter().zip(&paths) {
                let reports = &reports;
                scope.spawn(move || {
                    let report = self.supervise_shard(prepared, *meta, path, stop);
                    reports.lock().expect("poisoned").push(report);
                });
            }
        });
        let mut per_shard = reports.into_inner().expect("poisoned");
        per_shard.sort_by_key(|r| r.shard);

        // A raised stop signal with unfinished indices is a checkpoint,
        // not a merge failure: report how much is left and leave the
        // journals exactly as the drained workers did.
        if stop.is_some_and(StopSignal::raised) {
            let missing: u64 = plan
                .ranges
                .iter()
                .zip(&paths)
                .map(|(m, p)| self.missing_in_shard(p, *m).len() as u64)
                .sum();
            if missing > 0 {
                return Err(ShardError::Interrupted { missing });
            }
        }

        let rows = merge_shard_journals(&paths, &header)?;
        let mut base = ReplayBase::default();
        for row in &rows {
            base.absorb(row);
        }
        // Fold the merged rows through the same assembly path a resume
        // uses (execute with nothing left to run), so the result is shaped
        // identically to an unsharded campaign's.
        let mut result = self.execute(prepared, &[], None, base, None);
        result.shard_stats = ShardStats {
            shards: plan.ranges.len() as u64,
            retries: per_shard.iter().map(|r| r.attempts.saturating_sub(1)).sum(),
            reassignments: per_shard.iter().map(|r| r.reassigned).sum(),
            quarantined_runs: per_shard.iter().map(|r| r.quarantined).sum(),
            per_shard,
        };
        Ok(result)
    }

    /// Entry point for a subprocess shard worker: reads its assignment
    /// from the `CHASER_SHARD_*` environment, validates the shard journal
    /// against this campaign's own header, and executes exactly the
    /// missing run indices of its range (resume semantics). The worker's
    /// campaign must be configured identically to the supervisor's — the
    /// journal header check enforces it.
    ///
    /// # Errors
    ///
    /// [`ShardError`] when the environment is incomplete or the journal
    /// does not belong to this campaign.
    pub fn shard_worker_from_env(&self) -> Result<(), ShardError> {
        let path = std::env::var(ENV_SHARD_JOURNAL).map_err(|_| {
            ShardError::Journal(JournalError::Malformed {
                path: String::new(),
                line: 0,
                msg: format!("shard worker env var `{ENV_SHARD_JOURNAL}` missing"),
            })
        })?;
        let meta = ShardMeta {
            shard: env_u64(ENV_SHARD_INDEX)?,
            start: env_u64(ENV_SHARD_START)?,
            end: env_u64(ENV_SHARD_END)?,
        };
        let chaos = std::env::var(ENV_SHARD_CHAOS)
            .ok()
            .as_deref()
            .and_then(parse_chaos_env);
        let prepared = self.prepare();
        let ctl = ShardCtl::new(chaos, None);
        self.run_shard_attempt(&prepared, meta, Path::new(&path), &ctl)
    }

    /// One worker attempt over a shard: validate the journal, replay what
    /// is done, execute what is missing. Shared by thread workers (called
    /// in-process) and subprocess workers (via
    /// [`Campaign::shard_worker_from_env`]).
    fn run_shard_attempt(
        &self,
        prepared: &PreparedApp,
        meta: ShardMeta,
        path: &Path,
        ctl: &ShardCtl,
    ) -> Result<(), ShardError> {
        let expected = self.journal_header(prepared);
        let (header, found_meta, rows) = CampaignJournal::read_shard(path)?;
        if header != expected {
            return Err(JournalError::HeaderMismatch {
                path: path.display().to_string(),
                expected,
                found: header,
            }
            .into());
        }
        if found_meta != meta {
            return Err(ShardError::MetaMismatch {
                path: path.display().to_string(),
                expected: meta,
                found: found_meta,
            });
        }
        let done: BTreeSet<u64> = rows.iter().map(JournalRow::run_idx).collect();
        let missing: Vec<u64> = (meta.start..meta.end)
            .filter(|i| !done.contains(i))
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        let journal = CampaignJournal::append_to_with(path, self.cfg.journal_sync_rows)?;
        // The attempt's CampaignResult is discarded: shard results only
        // ever materialize through the merge, so every regime (thread,
        // subprocess, retried, degraded) reports through one code path.
        self.execute(
            prepared,
            &missing,
            Some(&journal),
            ReplayBase::default(),
            Some(ctl),
        );
        Ok(())
    }

    /// Supervises one shard to completion: launch, watch, retry with
    /// backoff, and finally degrade. Infallible by design — supervision
    /// failures become retries, and retry exhaustion becomes quarantined
    /// rows, never a hang or abort.
    fn supervise_shard(
        &self,
        prepared: &PreparedApp,
        meta: ShardMeta,
        path: &Path,
        stop: Option<&StopSignal>,
    ) -> ShardReport {
        let sup = self.cfg.shard_supervision;
        let t0 = Instant::now();
        let mut attempts: u64 = 0;
        let mut reassigned: u64 = 0;
        let mut quarantined: u64 = 0;
        loop {
            let missing = self.missing_in_shard(path, meta);
            if missing.is_empty() {
                break;
            }
            if stop.is_some_and(StopSignal::raised) {
                // Drain, never degrade: the missing indices stay missing so
                // a later supervisor can resume this journal.
                break;
            }
            if attempts > u64::from(sup.max_retries) {
                // Retry budget exhausted: degrade the shard's unfinished
                // indices to quarantined rows so the campaign completes.
                quarantined = self.quarantine_shard(path, meta, &missing, attempts);
                break;
            }
            if attempts > 0 {
                reassigned += missing.len() as u64;
                let shift = (attempts - 1).min(16) as u32;
                let backoff = sup
                    .backoff_base_ms
                    .saturating_mul(1u64 << shift)
                    .min(sup.backoff_cap_ms);
                // Sleep in slices so a drain does not wait out the backoff.
                let mut remaining = backoff;
                while remaining > 0 && !stop.is_some_and(StopSignal::raised) {
                    let step = remaining.min(10);
                    std::thread::sleep(Duration::from_millis(step));
                    remaining -= step;
                }
            }
            attempts += 1;
            let chaos = self
                .cfg
                .shard_chaos
                .iter()
                .find(|c| c.shard == meta.shard && attempts <= u64::from(c.attempts))
                .copied();
            match &self.cfg.shard_workers {
                ShardWorkers::Thread => {
                    // Thread chaos is cooperative: both kinds degrade to a
                    // bail (an in-process worker cannot really die without
                    // taking the supervisor with it).
                    let ctl = ShardCtl::new(
                        chaos.map(|c| (c.after_rows, ChaosAction::Bail)),
                        stop.cloned(),
                    );
                    let _ = self.run_shard_attempt(prepared, meta, path, &ctl);
                }
                ShardWorkers::Subprocess(argv) => {
                    self.run_subprocess_attempt(argv, meta, path, attempts, chaos, sup, stop);
                }
            }
        }
        ShardReport {
            shard: meta.shard,
            start: meta.start,
            end: meta.end,
            attempts,
            reassigned,
            quarantined,
            wall_ms: t0.elapsed().as_millis() as u64,
        }
    }

    /// The run indices of `meta`'s range with no journal row yet. Read
    /// failures count as "everything missing": the journal may be mid-torn
    /// from a kill, and the retry's `append_to` trim will repair it.
    fn missing_in_shard(&self, path: &Path, meta: ShardMeta) -> Vec<u64> {
        match CampaignJournal::read_shard(path) {
            Ok((_, _, rows)) => {
                let done: BTreeSet<u64> = rows.iter().map(JournalRow::run_idx).collect();
                (meta.start..meta.end)
                    .filter(|i| !done.contains(i))
                    .collect()
            }
            Err(_) => (meta.start..meta.end).collect(),
        }
    }

    /// Degrades a shard: appends a quarantined [`TermCause::ShardLost`]
    /// row for every unfinished index. Returns how many were quarantined
    /// (0 if even the degradation append fails — the merge will then
    /// report the missing rows as a typed error instead of hanging).
    fn quarantine_shard(
        &self,
        path: &Path,
        meta: ShardMeta,
        missing: &[u64],
        attempts: u64,
    ) -> u64 {
        let Ok(journal) = CampaignJournal::append_to_with(path, self.cfg.journal_sync_rows) else {
            return 0;
        };
        let mut written = 0;
        for &idx in missing {
            let outcome = quarantined_outcome(
                idx,
                format!(
                    "shard {} lost: worker retries exhausted after {attempts} attempt(s)",
                    meta.shard
                ),
                Some(TermCause::ShardLost { shard: meta.shard }),
            );
            if journal.append_outcome(&outcome).is_err() {
                break;
            }
            written += 1;
        }
        let _ = journal.sync_now();
        written
    }

    /// Launches one subprocess worker attempt and babysits it: polls for
    /// exit, watches the shard journal for progress, and kills the process
    /// when the heartbeat window passes without the file growing (the
    /// straggler path). Spawn failures simply end the attempt — the
    /// supervisor's completeness check turns them into retries.
    #[allow(clippy::too_many_arguments)]
    fn run_subprocess_attempt(
        &self,
        argv: &[String],
        meta: ShardMeta,
        path: &Path,
        attempt: u64,
        chaos: Option<ShardChaos>,
        sup: ShardSupervision,
        stop: Option<&StopSignal>,
    ) {
        let Some((program, rest)) = argv.split_first() else {
            return;
        };
        let mut cmd = Command::new(program);
        cmd.args(rest)
            .env(ENV_SHARD_JOURNAL, path)
            .env(ENV_SHARD_INDEX, meta.shard.to_string())
            .env(ENV_SHARD_START, meta.start.to_string())
            .env(ENV_SHARD_END, meta.end.to_string())
            .env(ENV_SHARD_ATTEMPT, attempt.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(c) = chaos {
            let kind = match c.kind {
                ChaosKind::Kill => "kill",
                ChaosKind::Stall => "stall",
            };
            cmd.env(ENV_SHARD_CHAOS, format!("{kind}:{}", c.after_rows));
        }
        let Ok(mut child) = cmd.spawn() else {
            return;
        };
        let timeout = Duration::from_millis(sup.heartbeat_timeout_ms.max(1));
        let mut last_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let mut last_progress = Instant::now();
        loop {
            if stop.is_some_and(StopSignal::raised) {
                // Drain: reclaim the worker now. Its journal keeps every
                // fully appended row; a torn final line from the kill is
                // trimmed when the journal is resumed.
                let _ = child.kill();
                let _ = child.wait();
                break;
            }
            match child.try_wait() {
                Ok(Some(_)) | Err(_) => break,
                Ok(None) => {}
            }
            let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(last_len);
            if len != last_len {
                last_len = len;
                last_progress = Instant::now();
            } else if last_progress.elapsed() > timeout {
                // Straggler: alive but journaling nothing. Reclaim it; the
                // retry loop resumes whatever it did manage to append.
                let _ = child.kill();
                let _ = child.wait();
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Degraded rows are ordinary quarantined harness faults; this helper is
/// what tests use to recognize them.
pub fn is_shard_lost(outcome: &Outcome) -> bool {
    matches!(
        outcome,
        Outcome::HarnessFault {
            cause: Some(TermCause::ShardLost { .. }),
            ..
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_range_with_near_equal_chunks() {
        for runs in [0u64, 1, 7, 10, 100] {
            for shards in [1u64, 2, 3, 4, 7, 200] {
                let plan = ShardPlan::split(runs, shards);
                assert_eq!(plan.runs, runs);
                assert!(!plan.ranges.is_empty());
                assert!(plan.ranges.len() as u64 <= shards.max(1));
                let mut next = 0;
                for (i, m) in plan.ranges.iter().enumerate() {
                    assert_eq!(m.shard, i as u64);
                    assert_eq!(m.start, next, "contiguous at {runs}/{shards}");
                    assert!(m.end >= m.start);
                    next = m.end;
                }
                assert_eq!(next, runs, "covers 0..runs at {runs}/{shards}");
                let lens: Vec<u64> = plan.ranges.iter().map(|m| m.end - m.start).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal at {runs}/{shards}: {lens:?}");
            }
        }
    }

    #[test]
    fn shard_paths_derive_from_the_base_stem() {
        assert_eq!(
            shard_journal_path(Path::new("/tmp/x/campaign.jsonl"), 3),
            PathBuf::from("/tmp/x/campaign.shard-3.jsonl")
        );
        assert_eq!(
            shard_journal_path(Path::new("run"), 0),
            PathBuf::from("run.shard-0.jsonl")
        );
    }

    #[test]
    fn chaos_env_round_trips() {
        assert!(matches!(
            parse_chaos_env("kill:5"),
            Some((5, ChaosAction::Exit))
        ));
        assert!(matches!(
            parse_chaos_env("stall:2"),
            Some((2, ChaosAction::Stall))
        ));
        assert!(parse_chaos_env("nonsense").is_none());
        assert!(parse_chaos_env("kill:x").is_none());
    }

    #[test]
    fn shard_stats_csv_lists_every_shard() {
        let stats = ShardStats {
            shards: 2,
            retries: 1,
            reassignments: 3,
            quarantined_runs: 0,
            per_shard: vec![
                ShardReport {
                    shard: 0,
                    start: 0,
                    end: 5,
                    attempts: 1,
                    reassigned: 0,
                    quarantined: 0,
                    wall_ms: 10,
                },
                ShardReport {
                    shard: 1,
                    start: 5,
                    end: 10,
                    attempts: 2,
                    reassigned: 3,
                    quarantined: 0,
                    wall_ms: 25,
                },
            ],
        };
        let csv = stats.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "shard,start,end,attempts,reassigned,quarantined,wall_ms"
        );
        assert_eq!(lines[1], "0,0,5,1,0,0,10");
        assert_eq!(lines[2], "1,5,10,2,3,0,25");
    }

    #[test]
    fn stop_signal_is_shared_and_sticky() {
        let signal = StopSignal::new();
        let clone = signal.clone();
        assert!(!clone.raised());
        signal.raise();
        assert!(clone.raised());
        signal.raise(); // idempotent
        assert!(signal.raised());
    }

    #[test]
    fn external_stop_drains_thread_workers() {
        let stop = StopSignal::new();
        let ctl = ShardCtl::new(None, Some(stop.clone()));
        assert!(!ctl.stopped());
        stop.raise();
        assert!(ctl.stopped());
    }

    #[test]
    fn shard_lost_recognizer_matches_only_degraded_rows() {
        assert!(is_shard_lost(&Outcome::HarnessFault {
            run_idx: 1,
            payload: "x".into(),
            cause: Some(TermCause::ShardLost { shard: 0 }),
        }));
        assert!(!is_shard_lost(&Outcome::HarnessFault {
            run_idx: 1,
            payload: "x".into(),
            cause: None,
        }));
        assert!(!is_shard_lost(&Outcome::Benign));
    }
}

//! # chaser-tainthub
//!
//! TaintHub: the central registry that synchronises MPI-message taint
//! status between ranks — the piece Chaser adds over per-message-header
//! schemes (Ashraf et al.'s approach the paper contrasts in Related Work).
//!
//! On the sender side, Chaser hooks the MPI send functions, extracts the
//! message identity `(source, dest, tag)` and — *only if the send buffer is
//! tainted* — publishes the buffer's per-byte taint masks to the hub. On
//! the receiver side, Chaser polls the hub by `(source, tag)` after a
//! receive completes; a miss costs one lookup and nothing else, which is
//! why the paper argues the hub is cheaper than parsing a header on every
//! message when no fault is in flight.
//!
//! The hub lives on the cluster head node in the paper's testbed; here it
//! is a shared object owned by the simulated cluster. It is `Sync` so
//! parallel campaigns can also share one hub across runs if desired
//! (each run normally gets its own).
//!
//! # Example
//!
//! ```
//! use chaser_tainthub::{MsgId, TaintHub};
//!
//! let hub = TaintHub::new();
//! let id = MsgId { src: 0, dest: 2, tag: 7 };
//! hub.publish(id, vec![0xff, 0x00, 0x01]);
//! let rec = hub.poll(id).expect("published record");
//! assert_eq!(rec.masks, vec![0xff, 0x00, 0x01]);
//! assert!(hub.poll(id).is_none(), "records are consumed in FIFO order");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// The identity of one MPI message, as the hub keys taint records.
///
/// The paper's sender shares `(tag, dest)` plus the taint status; the
/// receiver polls with `(tag, source)`. Both sides know all three fields,
/// so the hub keys on the triple to disambiguate concurrent pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dest: u32,
    /// MPI message tag.
    pub tag: u64,
}

/// A published taint record: one mask byte per message byte.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaintRecord {
    /// Per-byte taint masks of the message payload.
    pub masks: Vec<u8>,
    /// The sender-side message sequence number.
    ///
    /// Only *tainted* messages are published (the design that keeps the
    /// fault-free path cheap), so a bare FIFO would mis-align with the
    /// message stream once clean messages interleave. The sequence number
    /// lets [`TaintHub::poll_matching`] recognise that the front record
    /// belongs to a *later* message than the one just received.
    pub seq: u64,
    /// Publication timestamp in the publisher's clock (scheduler rounds for
    /// the cluster), consulted by [`TaintHub::gc`] to expire records whose
    /// receiver will never poll (e.g. it died mid-communication).
    pub published_at: u64,
    /// Per-byte fault provenance of the payload (`ProvSet` bitmasks from
    /// `chaser-taint`, stored raw to keep the hub dependency-light). Empty
    /// when the publisher does not track provenance; otherwise parallel to
    /// [`TaintRecord::masks`].
    pub provs: Vec<u32>,
}

impl TaintRecord {
    /// True when at least one payload byte is tainted.
    pub fn is_tainted(&self) -> bool {
        self.masks.iter().any(|&m| m != 0)
    }

    /// Number of tainted payload bytes.
    pub fn tainted_bytes(&self) -> usize {
        self.masks.iter().filter(|&&m| m != 0).count()
    }
}

/// Hub counters, used by the flexibility/overhead evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HubStats {
    /// Records published by senders.
    pub published: u64,
    /// Poll requests from receivers.
    pub polls: u64,
    /// Polls that found a record.
    pub hits: u64,
    /// Total tainted payload bytes published.
    pub tainted_bytes_published: u64,
    /// Records dropped by [`TaintHub::gc`] after their TTL lapsed.
    pub expired: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<MsgId, VecDeque<TaintRecord>>,
    stats: HubStats,
}

/// The TaintHub service.
#[derive(Debug, Default)]
pub struct TaintHub {
    inner: Mutex<Inner>,
}

impl TaintHub {
    /// An empty hub.
    pub fn new() -> TaintHub {
        TaintHub::default()
    }

    /// Sender side: records the taint masks of an in-flight message.
    ///
    /// Multiple messages with the same id queue in FIFO order, matching the
    /// non-overtaking delivery of the simulated interconnect.
    pub fn publish(&self, id: MsgId, masks: Vec<u8>) {
        self.publish_seq(id, 0, masks);
    }

    /// Sender side with an explicit message sequence number (see
    /// [`TaintRecord::seq`]).
    pub fn publish_seq(&self, id: MsgId, seq: u64, masks: Vec<u8>) {
        self.publish_seq_at(id, seq, masks, 0);
    }

    /// Sender side with an explicit sequence number and publication
    /// timestamp (see [`TaintRecord::published_at`] and [`TaintHub::gc`]).
    pub fn publish_seq_at(&self, id: MsgId, seq: u64, masks: Vec<u8>, now: u64) {
        self.publish_full(id, seq, masks, now, Vec::new());
    }

    /// Sender side carrying per-byte fault provenance alongside the masks
    /// (see [`TaintRecord::provs`]).
    pub fn publish_full(&self, id: MsgId, seq: u64, masks: Vec<u8>, now: u64, provs: Vec<u32>) {
        let mut inner = self.inner.lock();
        inner.stats.published += 1;
        inner.stats.tainted_bytes_published += masks.iter().filter(|&&m| m != 0).count() as u64;
        inner.map.entry(id).or_default().push_back(TaintRecord {
            masks,
            seq,
            published_at: now,
            provs,
        });
    }

    /// Receiver side: consumes the front record for `id` only when it
    /// belongs to message `seq`.
    ///
    /// Returns `None` both on a miss (nothing published for `id`) and when
    /// the front record is for a later message — i.e. the received message
    /// itself was clean.
    pub fn poll_matching(&self, id: MsgId, seq: u64) -> Option<TaintRecord> {
        let mut inner = self.inner.lock();
        inner.stats.polls += 1;
        let rec = {
            let q = inner.map.get_mut(&id)?;
            if q.front().is_some_and(|r| r.seq == seq) {
                q.pop_front()
            } else {
                None
            }
        };
        if rec.is_some() {
            inner.stats.hits += 1;
        }
        rec
    }

    /// Receiver side: retrieves (and consumes) the oldest record for `id`.
    ///
    /// Returns `None` when the message was never published — the common,
    /// fault-free case the hub makes cheap.
    pub fn poll(&self, id: MsgId) -> Option<TaintRecord> {
        let mut inner = self.inner.lock();
        inner.stats.polls += 1;
        let rec = inner.map.get_mut(&id).and_then(VecDeque::pop_front);
        if rec.is_some() {
            inner.stats.hits += 1;
        }
        rec
    }

    /// Number of queued (unconsumed) records.
    pub fn pending(&self) -> usize {
        self.inner.lock().map.values().map(VecDeque::len).sum()
    }

    /// Total records ever published (consumed or not) — with
    /// [`TaintHub::pending`] this lets long campaigns assert the hub
    /// drains instead of accumulating records invisibly.
    pub fn published_total(&self) -> u64 {
        self.inner.lock().stats.published
    }

    /// Drops every record older than `ttl` at time `now` (both in the
    /// publisher's clock; see [`TaintRecord::published_at`]) and returns
    /// how many were expired. Records for receivers that died or aborted
    /// mid-communication are never polled; without a TTL they would pin
    /// their payload masks for the rest of the run.
    pub fn gc(&self, now: u64, ttl: u64) -> usize {
        let mut inner = self.inner.lock();
        let mut expired = 0;
        inner.map.retain(|_, q| {
            let before = q.len();
            q.retain(|r| now.saturating_sub(r.published_at) <= ttl);
            expired += before - q.len();
            !q.is_empty()
        });
        inner.stats.expired += expired as u64;
        expired
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HubStats {
        self.inner.lock().stats
    }

    /// Clears all records and counters (between campaign runs).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.stats = HubStats::default();
    }

    /// Freezes the hub's full state — every queued record plus the
    /// counters — into a [`HubSnapshot`]. Queues are stored in sorted
    /// `MsgId` order so the snapshot is deterministic regardless of map
    /// iteration order.
    pub fn snapshot(&self) -> HubSnapshot {
        let inner = self.inner.lock();
        let mut queues: Vec<(MsgId, Vec<TaintRecord>)> = inner
            .map
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(id, q)| (*id, q.iter().cloned().collect()))
            .collect();
        queues.sort_unstable_by_key(|(id, _)| (id.src, id.dest, id.tag));
        HubSnapshot {
            queues,
            stats: inner.stats,
        }
    }

    /// Replaces the hub's state with the snapshot's (records and counters).
    pub fn restore(&self, snap: &HubSnapshot) {
        let mut inner = self.inner.lock();
        inner.map = snap
            .queues
            .iter()
            .map(|(id, q)| (*id, q.iter().cloned().collect()))
            .collect();
        inner.stats = snap.stats;
    }
}

/// A frozen image of a [`TaintHub`]: queued records in sorted-id order plus
/// the counters, cheap to clone and shareable across threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HubSnapshot {
    queues: Vec<(MsgId, Vec<TaintRecord>)>,
    stats: HubStats,
}

impl HubSnapshot {
    /// Visits every queued record in deterministic order (for digests).
    pub fn for_each_record(&self, mut f: impl FnMut(MsgId, &TaintRecord)) {
        for (id, q) in &self.queues {
            for rec in q {
                f(*id, rec);
            }
        }
    }

    /// Total queued records captured.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|(_, q)| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ID: MsgId = MsgId {
        src: 1,
        dest: 0,
        tag: 9,
    };

    #[test]
    fn miss_costs_a_poll_and_returns_none() {
        let hub = TaintHub::new();
        assert!(hub.poll(ID).is_none());
        let stats = hub.stats();
        assert_eq!(stats.polls, 1);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn records_are_fifo_per_id() {
        let hub = TaintHub::new();
        hub.publish(ID, vec![1]);
        hub.publish(ID, vec![2]);
        assert_eq!(hub.poll(ID).expect("first").masks, vec![1]);
        assert_eq!(hub.poll(ID).expect("second").masks, vec![2]);
        assert!(hub.poll(ID).is_none());
    }

    #[test]
    fn ids_are_independent() {
        let hub = TaintHub::new();
        hub.publish(ID, vec![1]);
        let other = MsgId {
            tag: ID.tag + 1,
            ..ID
        };
        assert!(hub.poll(other).is_none());
        assert!(hub.poll(ID).is_some());
    }

    #[test]
    fn stats_count_tainted_bytes() {
        let hub = TaintHub::new();
        hub.publish(ID, vec![0, 0xff, 0, 3]);
        assert_eq!(hub.stats().tainted_bytes_published, 2);
        assert_eq!(hub.pending(), 1);
        hub.reset();
        assert_eq!(hub.pending(), 0);
        assert_eq!(hub.stats(), HubStats::default());
    }

    #[test]
    fn record_taint_accessors() {
        let rec = TaintRecord {
            masks: vec![0, 1, 0],
            seq: 0,
            published_at: 0,
            provs: Vec::new(),
        };
        assert!(rec.is_tainted());
        assert_eq!(rec.tainted_bytes(), 1);
        let clean = TaintRecord {
            masks: vec![0, 0],
            seq: 0,
            published_at: 0,
            provs: Vec::new(),
        };
        assert!(!clean.is_tainted());
    }

    #[test]
    fn gc_expires_only_stale_records() {
        let hub = TaintHub::new();
        hub.publish_seq_at(ID, 0, vec![1], 0);
        hub.publish_seq_at(ID, 7, vec![2], 90);
        assert_eq!(hub.published_total(), 2);
        // At round 100 with ttl 50 only the round-0 record is stale.
        assert_eq!(hub.gc(100, 50), 1);
        assert_eq!(hub.pending(), 1);
        assert_eq!(hub.stats().expired, 1);
        // The surviving record is still consumable by its seq.
        assert_eq!(hub.poll_matching(ID, 7).expect("survivor").masks, vec![2]);
        // Idempotent once drained.
        assert_eq!(hub.gc(1000, 0), 0);
    }

    #[test]
    fn poll_matching_skips_records_for_later_messages() {
        let hub = TaintHub::new();
        // Message seq 5 was tainted and published; seqs 3 and 4 were clean.
        hub.publish_seq(ID, 5, vec![0xff]);
        assert!(hub.poll_matching(ID, 3).is_none());
        assert!(hub.poll_matching(ID, 4).is_none());
        let rec = hub.poll_matching(ID, 5).expect("record for seq 5");
        assert_eq!(rec.seq, 5);
        assert!(hub.poll_matching(ID, 5).is_none());
    }

    #[test]
    fn snapshot_restore_round_trips_records_and_stats() {
        let hub = TaintHub::new();
        hub.publish_seq_at(ID, 3, vec![0xff, 0], 10);
        hub.publish_seq_at(ID, 5, vec![1], 11);
        let snap = hub.snapshot();
        assert_eq!(snap.pending(), 2);
        // Mutate the hub past the capture point...
        hub.poll_matching(ID, 3);
        hub.publish(ID, vec![9]);
        // ...then restore a fresh hub and check it matches the capture.
        let other = TaintHub::new();
        other.restore(&snap);
        assert_eq!(other.snapshot(), snap);
        assert_eq!(
            other.poll_matching(ID, 3).expect("restored record").masks,
            vec![0xff, 0]
        );
        let mut seen = Vec::new();
        snap.for_each_record(|id, rec| seen.push((id, rec.seq)));
        assert_eq!(seen, vec![(ID, 3), (ID, 5)]);
    }

    #[test]
    fn publish_full_carries_provenance() {
        let hub = TaintHub::new();
        hub.publish_full(ID, 2, vec![0xff, 0], 5, vec![0b1, 0]);
        let rec = hub.poll_matching(ID, 2).expect("record");
        assert_eq!(rec.provs, vec![0b1, 0]);
        // Plain publishes leave provenance empty.
        hub.publish_seq_at(ID, 3, vec![1], 6);
        assert!(hub.poll_matching(ID, 3).expect("record").provs.is_empty());
    }

    #[test]
    fn hub_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TaintHub>();
    }
}

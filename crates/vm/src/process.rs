//! Guest processes.

use crate::kernel::ExitStatus;
use crate::paging::AddressSpace;
use chaser_isa::CpuState;

/// A process's scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Ready to execute.
    Runnable,
    /// Parked in an MPI call, waiting for the runtime to complete it.
    BlockedMpi,
    /// Finished (see [`Process::exit_status`]).
    Exited,
}

/// A pending MPI hypercall captured by the engine, to be completed by the
/// cluster runtime in `chaser-mpi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiRequest {
    /// The MPI hypercall number (`chaser_isa::abi::MPI_*`).
    pub num: u16,
    /// Arguments from `R1..=R6` at trap time.
    pub args: [u64; 6],
    /// Where execution resumes once the call completes.
    pub resume_pc: u64,
}

/// Output streams of a process, captured for outcome classification.
///
/// `output` (fd 3) is the workload's result file; the campaign classifier
/// compares it bitwise against the golden run — the paper's SDC criterion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessFiles {
    /// Bytes written to stdout (fd 1).
    pub stdout: Vec<u8>,
    /// Bytes written to the result file (fd 3).
    pub output: Vec<u8>,
}

/// A guest process: CPU, address space and kernel bookkeeping.
#[derive(Debug, Clone)]
pub struct Process {
    pid: u64,
    name: String,
    /// Architectural CPU state.
    pub cpu: CpuState,
    /// The process's page tables.
    pub aspace: AddressSpace,
    /// Scheduling state.
    pub state: ProcState,
    /// Exit status once `state == Exited`.
    pub exit: Option<ExitStatus>,
    /// Retired guest instructions.
    pub icount: u64,
    /// Current heap break.
    pub brk: u64,
    /// Captured output streams.
    pub files: ProcessFiles,
    /// In-flight MPI request while `state == BlockedMpi`.
    pub pending_mpi: Option<MpiRequest>,
}

impl Process {
    pub(crate) fn new(
        pid: u64,
        name: String,
        cpu: CpuState,
        aspace: AddressSpace,
        brk: u64,
    ) -> Process {
        Process {
            pid,
            name,
            cpu,
            aspace,
            state: ProcState::Runnable,
            exit: None,
            icount: 0,
            brk,
            files: ProcessFiles::default(),
            pending_mpi: None,
        }
    }

    /// The process id (also its address-space id).
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// The program name (VMI screens against this).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The exit status, if the process has exited.
    pub fn exit_status(&self) -> Option<ExitStatus> {
        self.exit
    }

    /// Marks the process exited with `status`.
    pub fn terminate(&mut self, status: ExitStatus) {
        self.state = ProcState::Exited;
        self.exit = Some(status);
        self.pending_mpi = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Signal;

    #[test]
    fn terminate_transitions_state() {
        let mut p = Process::new(1, "t".into(), CpuState::new(0), AddressSpace::new(1), 0);
        assert_eq!(p.state, ProcState::Runnable);
        assert_eq!(p.exit_status(), None);
        p.pending_mpi = Some(MpiRequest {
            num: 103,
            args: [0; 6],
            resume_pc: 0,
        });
        p.terminate(ExitStatus::Signaled(Signal::Segv));
        assert_eq!(p.state, ProcState::Exited);
        assert_eq!(p.exit_status(), Some(ExitStatus::Signaled(Signal::Segv)));
        assert!(p.pending_mpi.is_none());
    }
}

//! # chaser-vm
//!
//! The whole-system virtual machine underneath Chaser: guest physical
//! memory, paged per-process address spaces, an OS-lite kernel (signals,
//! syscalls, process lifecycle), VMI-style introspection events, and the
//! TCG-IR execution engine that drives value computation and bitwise taint
//! propagation in lock-step.
//!
//! This crate stands in for the QEMU/DECAF virtual machine the paper builds
//! on. The correspondence:
//!
//! | Paper (QEMU/DECAF)                  | Here                               |
//! |-------------------------------------|------------------------------------|
//! | guest VM with physical RAM          | [`Node`] + [`PhysMemory`]          |
//! | process address spaces (CR3)        | [`AddressSpace`] (asid = pid)      |
//! | VMI process-creation events         | [`VmiSink`]                        |
//! | `DECAF_inject_fault` callback       | [`InjectSink`]                     |
//! | `DECAF_READ/WRITE_TAINTMEM_CB`      | [`TaintEventSink`]                 |
//! | guest function hooking (MPI calls)  | [`FnHookSink`] + symbol addresses  |
//! | OS signals (SIGSEGV/SIGFPE/SIGILL)  | [`Signal`]                         |
//!
//! A [`Node`] is one simulated machine; `chaser-mpi` assembles several into
//! a cluster. Guest execution proceeds in slices ([`Node::run_slice`]) so a
//! cluster scheduler can interleave ranks deterministically.
//!
//! # Example
//!
//! Run a tiny program to completion on a single node:
//!
//! ```
//! use chaser_isa::{Asm, Reg};
//! use chaser_vm::{ExitStatus, Node, SliceExit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new("demo");
//! a.movi(Reg::R1, 41);
//! a.addi(Reg::R1, 1);
//! a.exit_with(Reg::R1);
//! let prog = a.assemble()?;
//!
//! let mut node = Node::new(0);
//! let pid = node.spawn(&prog)?;
//! let exit = node.run_slice(pid, 1_000_000);
//! assert!(matches!(exit, SliceExit::Exited(ExitStatus::Exited(42))));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod hooks;
mod kernel;
mod mem;
mod node;
mod paging;
mod process;
mod vmi;

pub use engine::{EngineStats, ExecTuning};
pub use hooks::{
    BufferedTaintEvent, FnHookSink, GuestCtx, InjectAction, InjectSink, NodeHooks,
    NodeTranslateHook, SharedFnHookSink, SharedInjectSink, SharedTaintSink, SharedTranslateHook,
    SharedVmiSink, TaintAccessKind, TaintEventFanout, TaintEventSink, TaintMemEvent,
};
pub use kernel::{ExitStatus, Signal};
pub use mem::{MemFault, MemFaultKind, MemSnapshot, MemStats, PhysMemory, DEFAULT_PHYS_BYTES};
pub use node::{Node, NodeSnapshot, SliceExit, SpawnError};
pub use paging::{AddressSpace, PagePerms};
pub use process::{MpiRequest, ProcState, Process, ProcessFiles};
pub use vmi::{VmiAction, VmiSink};

// Re-exported so cache-sharing callers can name the layered-cache types
// without a direct chaser-tcg dependency.
pub use chaser_tcg::{BaseLayer, CacheStats};

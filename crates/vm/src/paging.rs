//! Per-process virtual address spaces.

use crate::mem::{MemFault, MemFaultKind, PhysMemory};
use chaser_isa::PAGE_SIZE;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePerms {
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl PagePerms {
    /// Read-only data.
    pub const R: PagePerms = PagePerms {
        write: false,
        exec: false,
    };
    /// Read-write data.
    pub const RW: PagePerms = PagePerms {
        write: true,
        exec: false,
    };
    /// Read-execute text.
    pub const RX: PagePerms = PagePerms {
        write: false,
        exec: true,
    };
}

#[derive(Debug, Clone, Copy)]
struct Pte {
    frame: u64,
    perms: PagePerms,
}

/// Size of the direct-mapped software TLB (power of two).
const TLB_SIZE: usize = 64;

// A TLB entry packs a cached page-table hit into one atomic word (a
// single-word entry cannot tear, so relaxed loads/stores are sound even
// with the address space shared across campaign threads): bits 0..28 hold
// `vpn + 1` (zero = invalid), bits 28..60 the physical frame number, bit
// 60 the write permission and bit 61 the exec permission. Pages whose vpn
// or frame number overflows the field are simply never cached.
const TLB_TAG_BITS: u32 = 28;
const TLB_FRAME_BITS: u32 = 32;
const TLB_TAG_MASK: u64 = (1 << TLB_TAG_BITS) - 1;
const TLB_FRAME_MASK: u64 = (1 << TLB_FRAME_BITS) - 1;
const TLB_WRITE_BIT: u64 = 1 << (TLB_TAG_BITS + TLB_FRAME_BITS);
const TLB_EXEC_BIT: u64 = 1 << (TLB_TAG_BITS + TLB_FRAME_BITS + 1);

/// A single-level page table mapping guest virtual pages to physical
/// frames, one per process.
///
/// The `asid` tags translation-cache entries (QEMU keys its TB cache by the
/// guest's CR3; here the process id plays that role).
///
/// Translation goes through a direct-mapped software TLB in front of the
/// page-table hash map. Mappings are only ever *added* (`map_region` skips
/// pages already present and nothing unmaps), so a cached entry can never
/// go stale and the TLB needs no invalidation.
#[derive(Debug)]
pub struct AddressSpace {
    asid: u64,
    pages: HashMap<u64, Pte>,
    tlb: [AtomicU64; TLB_SIZE],
}

impl Clone for AddressSpace {
    fn clone(&self) -> AddressSpace {
        AddressSpace {
            asid: self.asid,
            pages: self.pages.clone(),
            tlb: std::array::from_fn(|i| AtomicU64::new(self.tlb[i].load(Ordering::Relaxed))),
        }
    }
}

impl AddressSpace {
    /// An empty address space tagged `asid`.
    pub fn new(asid: u64) -> AddressSpace {
        AddressSpace {
            asid,
            pages: HashMap::new(),
            tlb: [const { AtomicU64::new(0) }; TLB_SIZE],
        }
    }

    /// The address-space identifier.
    pub fn asid(&self) -> u64 {
        self.asid
    }

    /// Maps `len` bytes starting at page-aligned `vaddr` with fresh zeroed
    /// frames, returning an error when physical memory is exhausted.
    pub fn map_region(
        &mut self,
        phys: &mut PhysMemory,
        vaddr: u64,
        len: u64,
        perms: PagePerms,
    ) -> Result<(), MemFault> {
        assert_eq!(vaddr % PAGE_SIZE, 0, "mappings must be page aligned");
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let vpn = vaddr / PAGE_SIZE + i;
            if self.pages.contains_key(&vpn) {
                continue;
            }
            let frame = phys.alloc_frame().ok_or(MemFault {
                vaddr: vpn * PAGE_SIZE,
                kind: MemFaultKind::Unmapped,
            })?;
            self.pages.insert(vpn, Pte { frame, perms });
        }
        Ok(())
    }

    /// Translates a virtual address for a data read.
    pub fn translate_read(&self, vaddr: u64) -> Result<u64, MemFault> {
        self.translate(vaddr, false, false)
    }

    /// Translates a virtual address for a data write.
    pub fn translate_write(&self, vaddr: u64) -> Result<u64, MemFault> {
        self.translate(vaddr, true, false)
    }

    /// Translates a virtual address for instruction fetch.
    pub fn translate_exec(&self, vaddr: u64) -> Result<u64, MemFault> {
        self.translate(vaddr, false, true)
    }

    fn translate(&self, vaddr: u64, write: bool, exec: bool) -> Result<u64, MemFault> {
        let vpn = vaddr / PAGE_SIZE;
        let off = vaddr % PAGE_SIZE;
        let tag = vpn + 1;
        let slot = &self.tlb[vpn as usize & (TLB_SIZE - 1)];
        let cached = slot.load(Ordering::Relaxed);
        let (frame, writable, executable) = if cached & TLB_TAG_MASK == tag {
            // TLB hit: one array index instead of a hash lookup.
            (
                ((cached >> TLB_TAG_BITS) & TLB_FRAME_MASK) * PAGE_SIZE,
                cached & TLB_WRITE_BIT != 0,
                cached & TLB_EXEC_BIT != 0,
            )
        } else {
            let pte = self.pages.get(&vpn).ok_or(MemFault {
                vaddr,
                kind: MemFaultKind::Unmapped,
            })?;
            let frame_pn = pte.frame / PAGE_SIZE;
            if tag <= TLB_TAG_MASK && frame_pn <= TLB_FRAME_MASK && pte.frame % PAGE_SIZE == 0 {
                let mut entry = tag | (frame_pn << TLB_TAG_BITS);
                if pte.perms.write {
                    entry |= TLB_WRITE_BIT;
                }
                if pte.perms.exec {
                    entry |= TLB_EXEC_BIT;
                }
                slot.store(entry, Ordering::Relaxed);
            }
            (pte.frame, pte.perms.write, pte.perms.exec)
        };
        if (write && !writable) || (exec && !executable) {
            return Err(MemFault {
                vaddr,
                kind: MemFaultKind::Protection,
            });
        }
        Ok(frame + off)
    }

    /// Reads a guest u64 (may cross a page boundary).
    pub fn read_u64(&self, phys: &PhysMemory, vaddr: u64) -> Result<u64, MemFault> {
        if vaddr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let p = self.translate_read(vaddr)?;
            Ok(phys.read_u64(p))
        } else {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                let p = self.translate_read(vaddr + i as u64)?;
                *b = phys.read_u8(p);
            }
            Ok(u64::from_le_bytes(bytes))
        }
    }

    /// Writes a guest u64 (may cross a page boundary).
    pub fn write_u64(&self, phys: &mut PhysMemory, vaddr: u64, v: u64) -> Result<(), MemFault> {
        if vaddr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let p = self.translate_write(vaddr)?;
            phys.write_u64(p, v);
        } else {
            for (i, b) in v.to_le_bytes().iter().enumerate() {
                let p = self.translate_write(vaddr + i as u64)?;
                phys.write_u8(p, *b);
            }
        }
        Ok(())
    }

    /// Reads `len` guest bytes.
    pub fn read_bytes(&self, phys: &PhysMemory, vaddr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        // `len` may be a corrupted guest value (e.g. a fault flipped a
        // syscall argument): never pre-allocate it on the host. An absurd
        // length walks into unmapped territory and faults like real
        // hardware would, growing the buffer only as far as it got.
        let mut out = Vec::with_capacity(len.min(64 * 1024) as usize);
        let mut cur = vaddr;
        let end = vaddr.checked_add(len).ok_or(MemFault {
            vaddr,
            kind: MemFaultKind::Unmapped,
        })?;
        while cur < end {
            let p = self.translate_read(cur)?;
            let in_page = (PAGE_SIZE - cur % PAGE_SIZE).min(end - cur);
            out.extend_from_slice(phys.read_bytes(p, in_page as usize));
            cur += in_page;
        }
        Ok(out)
    }

    /// Writes guest bytes.
    pub fn write_bytes(
        &self,
        phys: &mut PhysMemory,
        vaddr: u64,
        data: &[u8],
    ) -> Result<(), MemFault> {
        let mut cur = vaddr;
        let mut off = 0usize;
        while off < data.len() {
            let p = self.translate_write(cur)?;
            let in_page = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min(data.len() - off);
            phys.write_bytes(p, &data[off..off + in_page]);
            cur += in_page as u64;
            off += in_page;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMemory, AddressSpace) {
        let mut phys = PhysMemory::new(32 * PAGE_SIZE);
        let mut asp = AddressSpace::new(1);
        asp.map_region(&mut phys, 0x1000, 3 * PAGE_SIZE, PagePerms::RW)
            .expect("map");
        (phys, asp)
    }

    #[test]
    fn translate_and_rw_round_trip() {
        let (mut phys, asp) = setup();
        asp.write_u64(&mut phys, 0x1010, 77).expect("write");
        assert_eq!(asp.read_u64(&phys, 0x1010).expect("read"), 77);
    }

    #[test]
    fn cross_page_u64_access() {
        let (mut phys, asp) = setup();
        let vaddr = 0x1000 + PAGE_SIZE - 3;
        asp.write_u64(&mut phys, vaddr, 0x1122_3344_5566_7788)
            .expect("write");
        assert_eq!(
            asp.read_u64(&phys, vaddr).expect("read"),
            0x1122_3344_5566_7788
        );
    }

    #[test]
    fn unmapped_access_faults() {
        let (phys, asp) = setup();
        let err = asp.read_u64(&phys, 0x9999_0000).expect_err("fault");
        assert_eq!(err.kind, MemFaultKind::Unmapped);
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut phys = PhysMemory::new(8 * PAGE_SIZE);
        let mut asp = AddressSpace::new(1);
        asp.map_region(&mut phys, 0x2000, PAGE_SIZE, PagePerms::R)
            .expect("map");
        assert!(asp.read_u64(&phys, 0x2000).is_ok());
        let err = asp.write_u64(&mut phys, 0x2000, 1).expect_err("fault");
        assert_eq!(err.kind, MemFaultKind::Protection);
    }

    #[test]
    fn exec_permission_is_enforced() {
        let mut phys = PhysMemory::new(8 * PAGE_SIZE);
        let mut asp = AddressSpace::new(1);
        asp.map_region(&mut phys, 0x3000, PAGE_SIZE, PagePerms::RX)
            .expect("map");
        assert!(asp.translate_exec(0x3000).is_ok());
        asp.map_region(&mut phys, 0x4000, PAGE_SIZE, PagePerms::RW)
            .expect("map");
        assert_eq!(
            asp.translate_exec(0x4000).expect_err("fault").kind,
            MemFaultKind::Protection
        );
    }

    #[test]
    fn bytes_round_trip_across_pages() {
        let (mut phys, asp) = setup();
        let data: Vec<u8> = (0..=255u8).cycle().take(2 * PAGE_SIZE as usize).collect();
        asp.write_bytes(&mut phys, 0x1000, &data).expect("write");
        let back = asp
            .read_bytes(&phys, 0x1000, data.len() as u64)
            .expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn double_map_is_idempotent() {
        let (mut phys, mut asp) = setup();
        asp.write_u64(&mut phys, 0x1000, 42).expect("write");
        // Remapping the same region must not replace frames (data survives).
        asp.map_region(&mut phys, 0x1000, PAGE_SIZE, PagePerms::RW)
            .expect("remap");
        assert_eq!(asp.read_u64(&phys, 0x1000).expect("read"), 42);
    }
}

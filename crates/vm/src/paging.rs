//! Per-process virtual address spaces.

use crate::mem::{MemFault, MemFaultKind, PhysMemory};
use chaser_isa::PAGE_SIZE;
use std::collections::HashMap;

/// Page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePerms {
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl PagePerms {
    /// Read-only data.
    pub const R: PagePerms = PagePerms {
        write: false,
        exec: false,
    };
    /// Read-write data.
    pub const RW: PagePerms = PagePerms {
        write: true,
        exec: false,
    };
    /// Read-execute text.
    pub const RX: PagePerms = PagePerms {
        write: false,
        exec: true,
    };
}

#[derive(Debug, Clone, Copy)]
struct Pte {
    frame: u64,
    perms: PagePerms,
}

/// A single-level page table mapping guest virtual pages to physical
/// frames, one per process.
///
/// The `asid` tags translation-cache entries (QEMU keys its TB cache by the
/// guest's CR3; here the process id plays that role).
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: u64,
    pages: HashMap<u64, Pte>,
}

impl AddressSpace {
    /// An empty address space tagged `asid`.
    pub fn new(asid: u64) -> AddressSpace {
        AddressSpace {
            asid,
            pages: HashMap::new(),
        }
    }

    /// The address-space identifier.
    pub fn asid(&self) -> u64 {
        self.asid
    }

    /// Maps `len` bytes starting at page-aligned `vaddr` with fresh zeroed
    /// frames, returning an error when physical memory is exhausted.
    pub fn map_region(
        &mut self,
        phys: &mut PhysMemory,
        vaddr: u64,
        len: u64,
        perms: PagePerms,
    ) -> Result<(), MemFault> {
        assert_eq!(vaddr % PAGE_SIZE, 0, "mappings must be page aligned");
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let vpn = vaddr / PAGE_SIZE + i;
            if self.pages.contains_key(&vpn) {
                continue;
            }
            let frame = phys.alloc_frame().ok_or(MemFault {
                vaddr: vpn * PAGE_SIZE,
                kind: MemFaultKind::Unmapped,
            })?;
            self.pages.insert(vpn, Pte { frame, perms });
        }
        Ok(())
    }

    /// Translates a virtual address for a data read.
    pub fn translate_read(&self, vaddr: u64) -> Result<u64, MemFault> {
        self.translate(vaddr, false, false)
    }

    /// Translates a virtual address for a data write.
    pub fn translate_write(&self, vaddr: u64) -> Result<u64, MemFault> {
        self.translate(vaddr, true, false)
    }

    /// Translates a virtual address for instruction fetch.
    pub fn translate_exec(&self, vaddr: u64) -> Result<u64, MemFault> {
        self.translate(vaddr, false, true)
    }

    fn translate(&self, vaddr: u64, write: bool, exec: bool) -> Result<u64, MemFault> {
        let vpn = vaddr / PAGE_SIZE;
        let off = vaddr % PAGE_SIZE;
        let pte = self.pages.get(&vpn).ok_or(MemFault {
            vaddr,
            kind: MemFaultKind::Unmapped,
        })?;
        if (write && !pte.perms.write) || (exec && !pte.perms.exec) {
            return Err(MemFault {
                vaddr,
                kind: MemFaultKind::Protection,
            });
        }
        Ok(pte.frame + off)
    }

    /// Reads a guest u64 (may cross a page boundary).
    pub fn read_u64(&self, phys: &PhysMemory, vaddr: u64) -> Result<u64, MemFault> {
        if vaddr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let p = self.translate_read(vaddr)?;
            Ok(phys.read_u64(p))
        } else {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                let p = self.translate_read(vaddr + i as u64)?;
                *b = phys.read_u8(p);
            }
            Ok(u64::from_le_bytes(bytes))
        }
    }

    /// Writes a guest u64 (may cross a page boundary).
    pub fn write_u64(&self, phys: &mut PhysMemory, vaddr: u64, v: u64) -> Result<(), MemFault> {
        if vaddr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let p = self.translate_write(vaddr)?;
            phys.write_u64(p, v);
        } else {
            for (i, b) in v.to_le_bytes().iter().enumerate() {
                let p = self.translate_write(vaddr + i as u64)?;
                phys.write_u8(p, *b);
            }
        }
        Ok(())
    }

    /// Reads `len` guest bytes.
    pub fn read_bytes(&self, phys: &PhysMemory, vaddr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        // `len` may be a corrupted guest value (e.g. a fault flipped a
        // syscall argument): never pre-allocate it on the host. An absurd
        // length walks into unmapped territory and faults like real
        // hardware would, growing the buffer only as far as it got.
        let mut out = Vec::with_capacity(len.min(64 * 1024) as usize);
        let mut cur = vaddr;
        let end = vaddr.checked_add(len).ok_or(MemFault {
            vaddr,
            kind: MemFaultKind::Unmapped,
        })?;
        while cur < end {
            let p = self.translate_read(cur)?;
            let in_page = (PAGE_SIZE - cur % PAGE_SIZE).min(end - cur);
            out.extend_from_slice(phys.read_bytes(p, in_page as usize));
            cur += in_page;
        }
        Ok(out)
    }

    /// Writes guest bytes.
    pub fn write_bytes(
        &self,
        phys: &mut PhysMemory,
        vaddr: u64,
        data: &[u8],
    ) -> Result<(), MemFault> {
        let mut cur = vaddr;
        let mut off = 0usize;
        while off < data.len() {
            let p = self.translate_write(cur)?;
            let in_page = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min(data.len() - off);
            phys.write_bytes(p, &data[off..off + in_page]);
            cur += in_page as u64;
            off += in_page;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMemory, AddressSpace) {
        let mut phys = PhysMemory::new(32 * PAGE_SIZE);
        let mut asp = AddressSpace::new(1);
        asp.map_region(&mut phys, 0x1000, 3 * PAGE_SIZE, PagePerms::RW)
            .expect("map");
        (phys, asp)
    }

    #[test]
    fn translate_and_rw_round_trip() {
        let (mut phys, asp) = setup();
        asp.write_u64(&mut phys, 0x1010, 77).expect("write");
        assert_eq!(asp.read_u64(&phys, 0x1010).expect("read"), 77);
    }

    #[test]
    fn cross_page_u64_access() {
        let (mut phys, asp) = setup();
        let vaddr = 0x1000 + PAGE_SIZE - 3;
        asp.write_u64(&mut phys, vaddr, 0x1122_3344_5566_7788)
            .expect("write");
        assert_eq!(
            asp.read_u64(&phys, vaddr).expect("read"),
            0x1122_3344_5566_7788
        );
    }

    #[test]
    fn unmapped_access_faults() {
        let (phys, asp) = setup();
        let err = asp.read_u64(&phys, 0x9999_0000).expect_err("fault");
        assert_eq!(err.kind, MemFaultKind::Unmapped);
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut phys = PhysMemory::new(8 * PAGE_SIZE);
        let mut asp = AddressSpace::new(1);
        asp.map_region(&mut phys, 0x2000, PAGE_SIZE, PagePerms::R)
            .expect("map");
        assert!(asp.read_u64(&phys, 0x2000).is_ok());
        let err = asp.write_u64(&mut phys, 0x2000, 1).expect_err("fault");
        assert_eq!(err.kind, MemFaultKind::Protection);
    }

    #[test]
    fn exec_permission_is_enforced() {
        let mut phys = PhysMemory::new(8 * PAGE_SIZE);
        let mut asp = AddressSpace::new(1);
        asp.map_region(&mut phys, 0x3000, PAGE_SIZE, PagePerms::RX)
            .expect("map");
        assert!(asp.translate_exec(0x3000).is_ok());
        asp.map_region(&mut phys, 0x4000, PAGE_SIZE, PagePerms::RW)
            .expect("map");
        assert_eq!(
            asp.translate_exec(0x4000).expect_err("fault").kind,
            MemFaultKind::Protection
        );
    }

    #[test]
    fn bytes_round_trip_across_pages() {
        let (mut phys, asp) = setup();
        let data: Vec<u8> = (0..=255u8).cycle().take(2 * PAGE_SIZE as usize).collect();
        asp.write_bytes(&mut phys, 0x1000, &data).expect("write");
        let back = asp
            .read_bytes(&phys, 0x1000, data.len() as u64)
            .expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn double_map_is_idempotent() {
        let (mut phys, mut asp) = setup();
        asp.write_u64(&mut phys, 0x1000, 42).expect("write");
        // Remapping the same region must not replace frames (data survives).
        asp.map_region(&mut phys, 0x1000, PAGE_SIZE, PagePerms::RW)
            .expect("remap");
        assert_eq!(asp.read_u64(&phys, 0x1000).expect("read"), 42);
    }
}

//! Virtual Machine Introspection events.
//!
//! DECAF's VMI reconstructs guest-OS process state from outside; Chaser
//! registers a `VMI_CREATEPROC_CB` to detect its target application and
//! arm the injector. Here the kernel is simulated, so the node reports
//! process lifecycle events directly to registered [`VmiSink`]s and applies
//! the returned [`VmiAction`]s (e.g. flushing the translation cache so the
//! next translation round carries the instrumentation — the paper's
//! sequence on target-process creation).

use crate::kernel::ExitStatus;

/// What a VMI sink wants done after observing an event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmiAction {
    /// Flush the node's translation cache (forces retranslation, which
    /// re-consults the translate hook).
    pub flush_tb: bool,
}

impl VmiAction {
    /// No action.
    pub const NONE: VmiAction = VmiAction { flush_tb: false };
    /// Flush the translation cache.
    pub const FLUSH: VmiAction = VmiAction { flush_tb: true };

    /// Combines two actions.
    pub fn merge(self, other: VmiAction) -> VmiAction {
        VmiAction {
            flush_tb: self.flush_tb || other.flush_tb,
        }
    }
}

/// Observer of guest process lifecycle events.
pub trait VmiSink {
    /// A process was created on `node` with id `pid` running `name`.
    fn on_process_created(&mut self, node: u32, pid: u64, name: &str) -> VmiAction;

    /// A process exited.
    fn on_process_exited(&mut self, _node: u32, _pid: u64, _status: ExitStatus) -> VmiAction {
        VmiAction::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_ors_flags() {
        assert_eq!(VmiAction::NONE.merge(VmiAction::FLUSH), VmiAction::FLUSH);
        assert_eq!(VmiAction::NONE.merge(VmiAction::NONE), VmiAction::NONE);
    }
}

//! Guest physical memory and frame allocation.
//!
//! Memory is page-granular and lazily materialised: a page holds no storage
//! until first written, reads of untouched pages serve a shared zero page.
//! Pages are either `Owned` (private, writable in place) or `Shared`
//! (`Arc`-backed, adopted from a [`MemSnapshot`]); writing a `Shared` page
//! copies it on write. This is what lets a whole cluster checkpoint be
//! shared across campaign workers the way the layered TB cache shares
//! translations: the snapshot holds `Arc`s to frozen pages, every restored
//! node starts by referencing them, and only pages the suffix execution
//! actually dirties are ever copied.

use chaser_isa::PAGE_SIZE;
use std::fmt;
use std::sync::Arc;

/// Default physical memory per node: 64 MiB, plenty for the paper's
/// mini-app workloads while keeping thousands of campaign runs cheap.
pub const DEFAULT_PHYS_BYTES: u64 = 64 << 20;

/// Page size in bytes as a usize index width.
const PAGE_BYTES: usize = PAGE_SIZE as usize;

/// One physical page.
type Page = [u8; PAGE_BYTES];

/// The canonical all-zero page served for reads of never-written pages.
static ZERO_PAGE: Page = [0u8; PAGE_BYTES];

/// Why a guest memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFaultKind {
    /// No mapping for the page.
    Unmapped,
    /// Mapping exists but forbids the access (write to read-only, execute
    /// of non-executable).
    Protection,
}

/// A guest memory fault; the kernel turns this into `SIGSEGV`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting guest virtual address.
    pub vaddr: u64,
    /// The fault kind.
    pub kind: MemFaultKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            MemFaultKind::Unmapped => write!(f, "unmapped guest address {:#x}", self.vaddr),
            MemFaultKind::Protection => write!(f, "protection fault at {:#x}", self.vaddr),
        }
    }
}

impl std::error::Error for MemFault {}

/// Backing storage for one resident physical page.
#[derive(Clone)]
enum PageState {
    /// Private storage, written in place.
    Owned(Box<Page>),
    /// Frozen storage adopted from a snapshot; copied on first write.
    Shared(Arc<Page>),
}

impl PageState {
    fn bytes(&self) -> &Page {
        match self {
            PageState::Owned(p) => p,
            PageState::Shared(p) => p,
        }
    }
}

/// Copy-on-write / dirty-page counters for one `PhysMemory`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Pages adopted as `Arc`-shared (zero-copy) when this memory was
    /// restored from a snapshot.
    pub pages_shared: u64,
    /// Shared pages privatised by a write since then (the run's dirty set).
    pub pages_cow: u64,
}

impl MemStats {
    /// Accumulates `other` into `self` (for cluster- and campaign-level
    /// aggregation).
    pub fn absorb(&mut self, other: &MemStats) {
        self.pages_shared += other.pages_shared;
        self.pages_cow += other.pages_cow;
    }
}

/// A frozen, `Arc`-shared image of a `PhysMemory`, cheap to clone and safe
/// to hand to many worker threads at once. Never-written pages stay `None`
/// so a snapshot costs storage proportional to the resident set only.
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    pages: Vec<Option<Arc<Page>>>,
    next_frame: u64,
}

impl MemSnapshot {
    /// Number of resident (captured) pages in the snapshot.
    pub fn resident_pages(&self) -> u64 {
        self.pages.iter().filter(|p| p.is_some()).count() as u64
    }
}

/// One node's physical memory plus a bump frame allocator.
///
/// Frames are never freed: campaign runs are short-lived and each run gets
/// a fresh node, so reclamation buys nothing and would complicate the
/// deterministic replay story.
///
/// All multi-byte accessors (`read_u64`, `read_bytes`, ...) require the
/// access to stay within one physical page. Every caller honours this:
/// frames are page-aligned and the paging layer chunks virtually-contiguous
/// accesses per page before touching physical memory.
#[derive(Clone)]
pub struct PhysMemory {
    pages: Vec<Option<PageState>>,
    next_frame: u64,
    stats: MemStats,
}

impl PhysMemory {
    /// Allocates `size` bytes of zeroed guest RAM (rounded up to a page).
    /// Storage is lazy: untouched pages occupy no memory.
    pub fn new(size: u64) -> PhysMemory {
        let npages = size.div_ceil(PAGE_SIZE) as usize;
        PhysMemory {
            pages: vec![None; npages],
            next_frame: 0,
            stats: MemStats::default(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Allocates one zeroed frame, returning its physical base address, or
    /// `None` when RAM is exhausted. The frame's storage stays lazy until
    /// first written.
    pub fn alloc_frame(&mut self) -> Option<u64> {
        let base = self.next_frame;
        if base + PAGE_SIZE > self.capacity() {
            return None;
        }
        self.next_frame += PAGE_SIZE;
        Some(base)
    }

    /// The resident page backing `paddr` for reads, or the zero page.
    #[inline]
    fn page(&self, paddr: u64) -> &Page {
        match &self.pages[(paddr / PAGE_SIZE) as usize] {
            Some(state) => state.bytes(),
            None => &ZERO_PAGE,
        }
    }

    /// The private, writable page backing `paddr`, materialising zero pages
    /// and copying shared pages on demand.
    #[inline]
    fn page_mut(&mut self, paddr: u64) -> &mut Page {
        let slot = &mut self.pages[(paddr / PAGE_SIZE) as usize];
        match slot {
            Some(PageState::Owned(p)) => p,
            Some(PageState::Shared(shared)) => {
                self.stats.pages_cow += 1;
                *slot = Some(PageState::Owned(Box::new(**shared)));
                match slot {
                    Some(PageState::Owned(p)) => p,
                    _ => unreachable!("just installed an owned page"),
                }
            }
            None => {
                *slot = Some(PageState::Owned(Box::new(ZERO_PAGE)));
                match slot {
                    Some(PageState::Owned(p)) => p,
                    _ => unreachable!("just installed an owned page"),
                }
            }
        }
    }

    /// Reads one byte of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is beyond capacity — physical addresses only come
    /// from the page tables, so this indicates a VM bug, not a guest fault.
    pub fn read_u8(&self, paddr: u64) -> u8 {
        self.page(paddr)[(paddr % PAGE_SIZE) as usize]
    }

    /// Writes one byte of physical memory.
    pub fn write_u8(&mut self, paddr: u64, v: u8) {
        self.page_mut(paddr)[(paddr % PAGE_SIZE) as usize] = v;
    }

    /// Reads a little-endian u64 that must not cross a physical page
    /// boundary (frames are page-aligned, so the paging layer's fast path
    /// guarantees this).
    pub fn read_u64(&self, paddr: u64) -> u64 {
        let off = (paddr % PAGE_SIZE) as usize;
        debug_assert!(off + 8 <= PAGE_BYTES, "u64 read crosses a page");
        u64::from_le_bytes(self.page(paddr)[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Writes a little-endian u64 (same single-page contract as
    /// [`PhysMemory::read_u64`]).
    pub fn write_u64(&mut self, paddr: u64, v: u64) {
        let off = (paddr % PAGE_SIZE) as usize;
        debug_assert!(off + 8 <= PAGE_BYTES, "u64 write crosses a page");
        self.page_mut(paddr)[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Borrows bytes out of physical memory. The range must stay within one
    /// physical page (all callers chunk per page).
    pub fn read_bytes(&self, paddr: u64, len: usize) -> &[u8] {
        let off = (paddr % PAGE_SIZE) as usize;
        debug_assert!(off + len <= PAGE_BYTES, "read crosses a physical page");
        &self.page(paddr)[off..off + len]
    }

    /// Copies bytes into physical memory (single-page contract as above).
    pub fn write_bytes(&mut self, paddr: u64, data: &[u8]) {
        let off = (paddr % PAGE_SIZE) as usize;
        debug_assert!(
            off + data.len() <= PAGE_BYTES,
            "write crosses a physical page"
        );
        self.page_mut(paddr)[off..off + data.len()].copy_from_slice(data);
    }

    /// Copy-on-write counters for this memory.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Freezes the current contents into an `Arc`-shared [`MemSnapshot`].
    ///
    /// Owned pages are converted to shared in place (no copy), so taking a
    /// snapshot is cheap and the snapshotted memory keeps working — its next
    /// write to any captured page simply pays one CoW copy.
    pub fn snapshot(&mut self) -> MemSnapshot {
        let pages = self
            .pages
            .iter_mut()
            .map(|slot| match slot.take() {
                None => None,
                Some(PageState::Shared(a)) => {
                    *slot = Some(PageState::Shared(Arc::clone(&a)));
                    Some(a)
                }
                Some(PageState::Owned(b)) => {
                    let a: Arc<Page> = Arc::from(b);
                    *slot = Some(PageState::Shared(Arc::clone(&a)));
                    Some(a)
                }
            })
            .collect();
        MemSnapshot {
            pages,
            next_frame: self.next_frame,
        }
    }

    /// Reconstructs a memory from a snapshot. Every captured page is
    /// adopted zero-copy as `Shared`; writes privatise pages on demand.
    pub fn from_snapshot(snap: &MemSnapshot) -> PhysMemory {
        let mut shared = 0u64;
        let pages = snap
            .pages
            .iter()
            .map(|p| {
                p.as_ref().map(|a| {
                    shared += 1;
                    PageState::Shared(Arc::clone(a))
                })
            })
            .collect();
        PhysMemory {
            pages,
            next_frame: snap.next_frame,
            stats: MemStats {
                pages_shared: shared,
                pages_cow: 0,
            },
        }
    }

    /// Visits every resident page in address order as `(base_paddr, bytes)`.
    /// Never-written pages are skipped; because page residency is a
    /// deterministic function of the writes executed, two equivalent
    /// executions visit identical sequences — which is what makes this
    /// usable for state digests.
    pub fn for_each_resident_page(&self, mut f: impl FnMut(u64, &[u8])) {
        for (idx, slot) in self.pages.iter().enumerate() {
            if let Some(state) = slot {
                f(idx as u64 * PAGE_SIZE, state.bytes());
            }
        }
    }
}

impl fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysMemory")
            .field("capacity", &self.capacity())
            .field("next_frame", &self.next_frame)
            .field(
                "resident_pages",
                &self.pages.iter().filter(|p| p.is_some()).count(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for PhysMemory {
    fn default() -> PhysMemory {
        PhysMemory::new(DEFAULT_PHYS_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_distinct_and_page_aligned() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        let a = m.alloc_frame().expect("frame a");
        let b = m.alloc_frame().expect("frame b");
        assert_ne!(a, b);
        assert_eq!(a % PAGE_SIZE, 0);
        assert_eq!(b % PAGE_SIZE, 0);
    }

    #[test]
    fn allocation_exhausts() {
        let mut m = PhysMemory::new(2 * PAGE_SIZE);
        assert!(m.alloc_frame().is_some());
        assert!(m.alloc_frame().is_some());
        assert!(m.alloc_frame().is_none());
    }

    #[test]
    fn u64_round_trip() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        m.write_u64(16, 0xdead_beef_0bad_cafe);
        assert_eq!(m.read_u64(16), 0xdead_beef_0bad_cafe);
        assert_eq!(m.read_u8(16), 0xfe);
    }

    #[test]
    fn capacity_rounds_up_to_page() {
        let m = PhysMemory::new(PAGE_SIZE + 1);
        assert_eq!(m.capacity(), 2 * PAGE_SIZE);
    }

    #[test]
    fn untouched_pages_read_zero_and_stay_lazy() {
        let m = PhysMemory::new(8 * PAGE_SIZE);
        assert_eq!(m.read_u8(3 * PAGE_SIZE + 7), 0);
        assert_eq!(m.read_u64(5 * PAGE_SIZE), 0);
        assert_eq!(m.read_bytes(PAGE_SIZE, 16), &[0u8; 16]);
        let mut resident = 0;
        m.for_each_resident_page(|_, _| resident += 1);
        assert_eq!(resident, 0, "reads must not materialise pages");
    }

    #[test]
    fn snapshot_restore_round_trips_contents() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        m.write_u64(8, 0x1111_2222_3333_4444);
        m.write_bytes(2 * PAGE_SIZE + 100, b"hello");
        let snap = m.snapshot();
        assert_eq!(snap.resident_pages(), 2);

        let r = PhysMemory::from_snapshot(&snap);
        assert_eq!(r.read_u64(8), 0x1111_2222_3333_4444);
        assert_eq!(r.read_bytes(2 * PAGE_SIZE + 100, 5), b"hello");
        assert_eq!(r.read_u8(3 * PAGE_SIZE), 0);
        assert_eq!(r.stats().pages_shared, 2);
        assert_eq!(r.stats().pages_cow, 0);
    }

    #[test]
    fn writes_after_restore_copy_on_write_without_disturbing_the_snapshot() {
        let mut m = PhysMemory::new(2 * PAGE_SIZE);
        m.write_u8(0, 0xAA);
        let snap = m.snapshot();

        let mut a = PhysMemory::from_snapshot(&snap);
        let mut b = PhysMemory::from_snapshot(&snap);
        a.write_u8(0, 0xBB);
        assert_eq!(a.read_u8(0), 0xBB);
        assert_eq!(b.read_u8(0), 0xAA, "sibling restore unaffected");
        assert_eq!(a.stats().pages_cow, 1);
        // Repeated writes to an already-privatised page cost nothing more.
        a.write_u8(1, 0xCC);
        assert_eq!(a.stats().pages_cow, 1);
        b.write_u8(PAGE_SIZE, 1);
        assert_eq!(b.stats().pages_cow, 0, "fresh zero page is not a CoW");
        // A third restore still sees the original byte.
        assert_eq!(PhysMemory::from_snapshot(&snap).read_u8(0), 0xAA);
    }

    #[test]
    fn snapshotted_memory_keeps_working_after_capture() {
        let mut m = PhysMemory::new(2 * PAGE_SIZE);
        m.write_u8(10, 1);
        let snap = m.snapshot();
        m.write_u8(10, 2);
        assert_eq!(m.read_u8(10), 2);
        assert_eq!(PhysMemory::from_snapshot(&snap).read_u8(10), 1);
        assert_eq!(m.stats().pages_cow, 1, "post-capture write pays one CoW");
    }

    #[test]
    fn frame_allocator_state_survives_snapshot() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        let a = m.alloc_frame().expect("frame");
        m.write_u8(a, 9);
        let snap = m.snapshot();
        let mut r = PhysMemory::from_snapshot(&snap);
        let b = r.alloc_frame().expect("next frame");
        assert_eq!(b, a + PAGE_SIZE, "bump pointer restored");
    }
}

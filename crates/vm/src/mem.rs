//! Guest physical memory and frame allocation.

use chaser_isa::PAGE_SIZE;
use std::fmt;

/// Default physical memory per node: 64 MiB, plenty for the paper's
/// mini-app workloads while keeping thousands of campaign runs cheap.
pub const DEFAULT_PHYS_BYTES: u64 = 64 << 20;

/// Why a guest memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFaultKind {
    /// No mapping for the page.
    Unmapped,
    /// Mapping exists but forbids the access (write to read-only, execute
    /// of non-executable).
    Protection,
}

/// A guest memory fault; the kernel turns this into `SIGSEGV`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting guest virtual address.
    pub vaddr: u64,
    /// The fault kind.
    pub kind: MemFaultKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            MemFaultKind::Unmapped => write!(f, "unmapped guest address {:#x}", self.vaddr),
            MemFaultKind::Protection => write!(f, "protection fault at {:#x}", self.vaddr),
        }
    }
}

impl std::error::Error for MemFault {}

/// One node's physical memory plus a bump frame allocator.
///
/// Frames are never freed: campaign runs are short-lived and each run gets
/// a fresh node, so reclamation buys nothing and would complicate the
/// deterministic replay story.
#[derive(Debug, Clone)]
pub struct PhysMemory {
    bytes: Vec<u8>,
    next_frame: u64,
}

impl PhysMemory {
    /// Allocates `size` bytes of zeroed guest RAM (rounded up to a page).
    pub fn new(size: u64) -> PhysMemory {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        PhysMemory {
            bytes: vec![0u8; size as usize],
            next_frame: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Allocates one zeroed frame, returning its physical base address, or
    /// `None` when RAM is exhausted.
    pub fn alloc_frame(&mut self) -> Option<u64> {
        let base = self.next_frame;
        if base + PAGE_SIZE > self.capacity() {
            return None;
        }
        self.next_frame += PAGE_SIZE;
        Some(base)
    }

    /// Reads one byte of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is beyond capacity — physical addresses only come
    /// from the page tables, so this indicates a VM bug, not a guest fault.
    pub fn read_u8(&self, paddr: u64) -> u8 {
        self.bytes[paddr as usize]
    }

    /// Writes one byte of physical memory.
    pub fn write_u8(&mut self, paddr: u64, v: u8) {
        self.bytes[paddr as usize] = v;
    }

    /// Reads a little-endian u64 that does not cross a page boundary check
    /// (physical memory is flat, so any in-range read is fine).
    pub fn read_u64(&self, paddr: u64) -> u64 {
        let p = paddr as usize;
        u64::from_le_bytes(self.bytes[p..p + 8].try_into().expect("8 bytes"))
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, paddr: u64, v: u64) {
        let p = paddr as usize;
        self.bytes[p..p + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Copies bytes out of physical memory.
    pub fn read_bytes(&self, paddr: u64, len: usize) -> &[u8] {
        &self.bytes[paddr as usize..paddr as usize + len]
    }

    /// Copies bytes into physical memory.
    pub fn write_bytes(&mut self, paddr: u64, data: &[u8]) {
        self.bytes[paddr as usize..paddr as usize + data.len()].copy_from_slice(data);
    }
}

impl Default for PhysMemory {
    fn default() -> PhysMemory {
        PhysMemory::new(DEFAULT_PHYS_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_distinct_and_page_aligned() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        let a = m.alloc_frame().expect("frame a");
        let b = m.alloc_frame().expect("frame b");
        assert_ne!(a, b);
        assert_eq!(a % PAGE_SIZE, 0);
        assert_eq!(b % PAGE_SIZE, 0);
    }

    #[test]
    fn allocation_exhausts() {
        let mut m = PhysMemory::new(2 * PAGE_SIZE);
        assert!(m.alloc_frame().is_some());
        assert!(m.alloc_frame().is_some());
        assert!(m.alloc_frame().is_none());
    }

    #[test]
    fn u64_round_trip() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        m.write_u64(16, 0xdead_beef_0bad_cafe);
        assert_eq!(m.read_u64(16), 0xdead_beef_0bad_cafe);
        assert_eq!(m.read_u8(16), 0xfe);
    }

    #[test]
    fn capacity_rounds_up_to_page() {
        let m = PhysMemory::new(PAGE_SIZE + 1);
        assert_eq!(m.capacity(), 2 * PAGE_SIZE);
    }
}

//! The OS-lite kernel: signals, exit statuses and kernel hypercalls.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A synchronous guest signal (the paper's "OS exceptions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Invalid memory access (unmapped or protection).
    Segv,
    /// Integer divide-by-zero.
    Fpe,
    /// Undecodable instruction — usually a corrupted control transfer.
    Ill,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Signal::Segv => "SIGSEGV",
            Signal::Fpe => "SIGFPE",
            Signal::Ill => "SIGILL",
        };
        f.write_str(s)
    }
}

/// How a process ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExitStatus {
    /// Clean `exit(code)`.
    Exited(i64),
    /// Killed by a signal (OS exception).
    Signaled(Signal),
    /// The application's own checker aborted (`SYS_ASSERT_FAIL`), e.g.
    /// CLAMR-sim's mass-conservation test — the paper's "detected" outcome.
    AssertFailed(i64),
    /// The processor executed `halt` outside the kernel — abnormal.
    Halted,
    /// Terminated by the MPI runtime after a communication error.
    MpiAborted,
}

impl ExitStatus {
    /// True for the one non-error exit: `exit(0)`.
    pub fn is_success(&self) -> bool {
        matches!(self, ExitStatus::Exited(0))
    }
}

impl fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitStatus::Exited(c) => write!(f, "exited({c})"),
            ExitStatus::Signaled(s) => write!(f, "killed by {s}"),
            ExitStatus::AssertFailed(c) => write!(f, "assertion failed ({c})"),
            ExitStatus::Halted => write!(f, "halted"),
            ExitStatus::MpiAborted => write!(f, "aborted by MPI runtime"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_exit_zero_is_success() {
        assert!(ExitStatus::Exited(0).is_success());
        assert!(!ExitStatus::Exited(1).is_success());
        assert!(!ExitStatus::Signaled(Signal::Segv).is_success());
        assert!(!ExitStatus::AssertFailed(0).is_success());
        assert!(!ExitStatus::Halted.is_success());
        assert!(!ExitStatus::MpiAborted.is_success());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            ExitStatus::Signaled(Signal::Segv).to_string(),
            "killed by SIGSEGV"
        );
        assert_eq!(Signal::Ill.to_string(), "SIGILL");
    }
}

//! Engine hook points: fault injection, taint-memory events and guest
//! function hooks.

use crate::mem::{MemFault, PhysMemory};
use crate::paging::AddressSpace;
use chaser_isa::{CpuState, FReg, Instruction, Reg};
use chaser_taint::{ProvSet, TaintMask, TaintState};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A shared, `Send`-clean fault-injection sink.
pub type SharedInjectSink = Arc<Mutex<dyn InjectSink + Send>>;
/// A shared, `Send`-clean tainted-memory event sink.
pub type SharedTaintSink = Arc<Mutex<dyn TaintEventSink + Send>>;
/// A shared, `Send`-clean VMI lifecycle sink.
pub type SharedVmiSink = Arc<Mutex<dyn crate::VmiSink + Send>>;
/// A shared, `Send`-clean guest-function-entry sink.
pub type SharedFnHookSink = Arc<Mutex<dyn FnHookSink + Send>>;
/// A shared translate hook; read-only at translation time, so `Sync`
/// suffices and no lock is paid on the translation path.
pub type SharedTranslateHook = Arc<dyn NodeTranslateHook + Send + Sync>;

/// A tainted-memory access record — the payload of the paper's
/// `DECAF_READ_TAINTMEM_CB` / `DECAF_WRITE_TAINTMEM_CB` callbacks: Chaser
/// "logs the eip, virtual memory address, physical memory address, tainted
/// value and current value in this memory location for post analysis".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintMemEvent {
    /// Node the access happened on.
    pub node: u32,
    /// Process performing the access.
    pub pid: u64,
    /// Instruction pointer of the accessing instruction.
    pub eip: u64,
    /// Guest virtual address accessed.
    pub vaddr: u64,
    /// Guest physical address accessed.
    pub paddr: u64,
    /// The taint mask of the 8 accessed bytes.
    pub taint: TaintMask,
    /// The value currently in memory (after the access for writes).
    pub value: u64,
    /// The process's retired-instruction count at the access.
    pub icount: u64,
    /// Provenance of the tainted data: which injected fault(s) it traces to.
    pub prov: ProvSet,
}

/// Receiver for tainted-memory read/write events.
///
/// Events are buffered per node during a scheduler round's compute phase
/// and delivered at the round barrier in canonical rank order (see
/// `BufferedTaintEvent`); [`TaintEventSink::on_round`] announces the round
/// each drained batch belongs to before its events arrive.
pub trait TaintEventSink {
    /// The guest read tainted memory.
    fn on_taint_read(&mut self, ev: &TaintMemEvent);
    /// The guest wrote tainted data to memory.
    fn on_taint_write(&mut self, ev: &TaintMemEvent);
    /// The scheduler is about to deliver the events of round `round`.
    /// Sinks that attribute events to rounds (the provenance recorder)
    /// track it here; the default ignores it.
    fn on_round(&mut self, _round: u64) {}
}

/// How a buffered tainted-memory access touched memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintAccessKind {
    /// A guest load of tainted memory.
    Read,
    /// A guest store of tainted data.
    Write,
}

/// One tainted-memory access captured during a compute slice, drained and
/// dispatched to the registered sinks at the next round barrier. Buffering
/// (instead of calling sinks from inside the engine) is what keeps node
/// execution free of shared mutable state, so ranks can advance on worker
/// threads while event delivery stays in canonical `(round, rank)` order.
#[derive(Debug, Clone, Copy)]
pub struct BufferedTaintEvent {
    /// Whether the access was a load or a store.
    pub kind: TaintAccessKind,
    /// The event payload.
    pub ev: TaintMemEvent,
}

/// What the injector asks the engine to do after an injection callback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectAction {
    /// Flush this node's translation cache (used by `fi_clean_cb` to detach
    /// the injector once the fault has been placed).
    pub flush_tb: bool,
}

/// The fault injector's mutable view of the guest at an injection point.
///
/// This is what Chaser's `CORRUPT_REGISTER` / `CORRUPT_MEMORY` helpers
/// operate on: architectural registers, guest memory through the process's
/// page tables, and the taint state used to mark the injected fault as a
/// taint source.
pub struct GuestCtx<'a> {
    /// Architectural CPU state.
    pub cpu: &'a mut CpuState,
    /// The process's address space (for vaddr→paddr translation).
    pub aspace: &'a AddressSpace,
    /// The node's physical memory.
    pub phys: &'a mut PhysMemory,
    /// The node's taint state.
    pub taint: &'a mut TaintState,
    /// Node id.
    pub node: u32,
    /// Process id.
    pub pid: u64,
    /// Retired-instruction count of the process.
    pub icount: u64,
    /// Address of the instruction about to execute.
    pub pc: u64,
}

impl GuestCtx<'_> {
    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.cpu.reg(r)
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.cpu.set_reg(r, v);
    }

    /// Reads an FP register's raw bits.
    pub fn freg_bits(&self, r: FReg) -> u64 {
        self.cpu.freg_bits(r)
    }

    /// Writes an FP register's raw bits.
    pub fn set_freg_bits(&mut self, r: FReg, bits: u64) {
        self.cpu.set_freg_bits(r, bits);
    }

    /// Reads a guest u64 through the page tables.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the address is unmapped.
    pub fn read_mem(&self, vaddr: u64) -> Result<u64, MemFault> {
        self.aspace.read_u64(self.phys, vaddr)
    }

    /// Writes a guest u64 through the page tables.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the address is unmapped or read-only.
    pub fn write_mem(&mut self, vaddr: u64, v: u64) -> Result<(), MemFault> {
        self.aspace.write_u64(self.phys, vaddr, v)
    }

    /// Marks a register as a taint source (the injected fault's bits).
    pub fn taint_reg(&mut self, r: Reg, mask: TaintMask) {
        self.taint.set_reg(r, mask);
    }

    /// Marks an FP register as a taint source.
    pub fn taint_freg(&mut self, r: FReg, mask: TaintMask) {
        self.taint.set_freg(r, mask);
    }

    /// Marks 8 bytes of guest memory as a taint source.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the address does not translate.
    pub fn taint_mem(&mut self, vaddr: u64, mask: TaintMask) -> Result<(), MemFault> {
        let paddr = self.aspace.translate_read(vaddr)?;
        self.taint.mem_mut().store8(paddr, mask);
        Ok(())
    }

    /// Marks a register as a taint source attributed to fault `prov`.
    pub fn taint_reg_with_prov(&mut self, r: Reg, mask: TaintMask, prov: ProvSet) {
        self.taint.set_reg_with_prov(r, mask, prov);
    }

    /// Marks an FP register as a taint source attributed to fault `prov`.
    pub fn taint_freg_with_prov(&mut self, r: FReg, mask: TaintMask, prov: ProvSet) {
        self.taint.set_freg_with_prov(r, mask, prov);
    }

    /// Marks 8 bytes of guest memory as a taint source attributed to fault
    /// `prov`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the address does not translate.
    pub fn taint_mem_with_prov(
        &mut self,
        vaddr: u64,
        mask: TaintMask,
        prov: ProvSet,
    ) -> Result<(), MemFault> {
        let paddr = self.aspace.translate_read(vaddr)?;
        self.taint.mem_mut().store8(paddr, mask);
        self.taint.prov_store8(paddr, mask, prov);
        Ok(())
    }
}

/// Fans tainted-memory events out to several sinks: a cluster holds one
/// event stream, but a traced-and-provenance-recorded run needs both the
/// tracer's sampler and the provenance recorder to observe it. Sinks are
/// invoked in registration order.
#[derive(Default, Clone)]
pub struct TaintEventFanout {
    sinks: Vec<SharedTaintSink>,
}

impl TaintEventFanout {
    /// An empty fanout.
    pub fn new() -> TaintEventFanout {
        TaintEventFanout::default()
    }

    /// Appends a sink; it will see every subsequent event.
    pub fn push(&mut self, sink: SharedTaintSink) {
        self.sinks.push(sink);
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sink is registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl std::fmt::Debug for TaintEventFanout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaintEventFanout")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TaintEventSink for TaintEventFanout {
    fn on_taint_read(&mut self, ev: &TaintMemEvent) {
        for sink in &self.sinks {
            sink.lock().on_taint_read(ev);
        }
    }

    fn on_taint_write(&mut self, ev: &TaintMemEvent) {
        for sink in &self.sinks {
            sink.lock().on_taint_write(ev);
        }
    }

    fn on_round(&mut self, round: u64) {
        for sink in &self.sinks {
            sink.lock().on_round(round);
        }
    }
}

/// The engine-side fault injector callback (the paper's
/// `DECAF_inject_fault`): invoked for every executed instrumented
/// instruction, *before* the instruction itself runs.
pub trait InjectSink {
    /// `point` is the id the translate hook assigned; `insn` is the
    /// targeted instruction.
    fn on_inject_point(
        &mut self,
        point: u64,
        insn: &Instruction,
        ctx: &mut GuestCtx<'_>,
    ) -> InjectAction;
}

/// Guest-function entry hook (how Chaser intercepts `mpi_send`/`mpi_recv`
/// inside the guest and reads their arguments from registers/stack).
pub trait FnHookSink {
    /// The guest reached the entry of a hooked function.
    fn on_fn_entry(&mut self, hook_id: u64, ctx: &mut GuestCtx<'_>);
}

/// Decides at translation time which instructions receive an injection
/// callback; node/pid-aware wrapper around `chaser_tcg::TranslateHook`.
pub trait NodeTranslateHook {
    /// Should `insn` at `pc` in process `pid` on `node` be instrumented?
    fn inject_point(&self, node: u32, pid: u64, pc: u64, insn: &Instruction) -> Option<u64>;
}

/// All hooks attached to a node. Every slot is optional; an unhooked node
/// runs at plain-translation speed (the "efficient" design goal).
///
/// Every slot is `Send`-clean (`Arc<Mutex<…>>` for mutable sinks, `Arc<dyn
/// … + Sync>` for the read-only translate hook), so a node — and with it a
/// whole rank — can move to a worker thread for the parallel compute phase
/// of a scheduler round.
#[derive(Default, Clone)]
pub struct NodeHooks {
    /// Translation-time instrumentation decision.
    pub translate: Option<SharedTranslateHook>,
    /// Fault-injection callback.
    pub inject: Option<SharedInjectSink>,
    /// When set, tainted-memory accesses are buffered into the node's
    /// [`BufferedTaintEvent`] log for barrier-time delivery. Sinks live at
    /// the cluster level, never on the node: the compute phase must not
    /// share mutable observers across ranks.
    pub taint_events: bool,
    /// VMI process lifecycle observers.
    pub vmi: Vec<SharedVmiSink>,
    /// Hooked guest function entry addresses, per pid: `(pid, vaddr) → id`.
    pub fn_hooks: HashMap<(u64, u64), u64>,
    /// Receiver of function-entry hook events.
    pub fn_hook_sink: Option<SharedFnHookSink>,
}

impl std::fmt::Debug for NodeHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeHooks")
            .field("translate", &self.translate.is_some())
            .field("inject", &self.inject.is_some())
            .field("taint_events", &self.taint_events)
            .field("vmi_sinks", &self.vmi.len())
            .field("fn_hooks", &self.fn_hooks.len())
            .finish()
    }
}

//! Engine hook points: fault injection, taint-memory events and guest
//! function hooks.

use crate::mem::{MemFault, PhysMemory};
use crate::paging::AddressSpace;
use chaser_isa::{CpuState, FReg, Instruction, Reg};
use chaser_taint::{ProvSet, TaintMask, TaintState};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A tainted-memory access record — the payload of the paper's
/// `DECAF_READ_TAINTMEM_CB` / `DECAF_WRITE_TAINTMEM_CB` callbacks: Chaser
/// "logs the eip, virtual memory address, physical memory address, tainted
/// value and current value in this memory location for post analysis".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintMemEvent {
    /// Node the access happened on.
    pub node: u32,
    /// Process performing the access.
    pub pid: u64,
    /// Instruction pointer of the accessing instruction.
    pub eip: u64,
    /// Guest virtual address accessed.
    pub vaddr: u64,
    /// Guest physical address accessed.
    pub paddr: u64,
    /// The taint mask of the 8 accessed bytes.
    pub taint: TaintMask,
    /// The value currently in memory (after the access for writes).
    pub value: u64,
    /// The process's retired-instruction count at the access.
    pub icount: u64,
    /// Provenance of the tainted data: which injected fault(s) it traces to.
    pub prov: ProvSet,
}

/// Receiver for tainted-memory read/write events.
pub trait TaintEventSink {
    /// The guest read tainted memory.
    fn on_taint_read(&mut self, ev: &TaintMemEvent);
    /// The guest wrote tainted data to memory.
    fn on_taint_write(&mut self, ev: &TaintMemEvent);
}

/// What the injector asks the engine to do after an injection callback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectAction {
    /// Flush this node's translation cache (used by `fi_clean_cb` to detach
    /// the injector once the fault has been placed).
    pub flush_tb: bool,
}

/// The fault injector's mutable view of the guest at an injection point.
///
/// This is what Chaser's `CORRUPT_REGISTER` / `CORRUPT_MEMORY` helpers
/// operate on: architectural registers, guest memory through the process's
/// page tables, and the taint state used to mark the injected fault as a
/// taint source.
pub struct GuestCtx<'a> {
    /// Architectural CPU state.
    pub cpu: &'a mut CpuState,
    /// The process's address space (for vaddr→paddr translation).
    pub aspace: &'a AddressSpace,
    /// The node's physical memory.
    pub phys: &'a mut PhysMemory,
    /// The node's taint state.
    pub taint: &'a mut TaintState,
    /// Node id.
    pub node: u32,
    /// Process id.
    pub pid: u64,
    /// Retired-instruction count of the process.
    pub icount: u64,
    /// Address of the instruction about to execute.
    pub pc: u64,
}

impl GuestCtx<'_> {
    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.cpu.reg(r)
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.cpu.set_reg(r, v);
    }

    /// Reads an FP register's raw bits.
    pub fn freg_bits(&self, r: FReg) -> u64 {
        self.cpu.freg_bits(r)
    }

    /// Writes an FP register's raw bits.
    pub fn set_freg_bits(&mut self, r: FReg, bits: u64) {
        self.cpu.set_freg_bits(r, bits);
    }

    /// Reads a guest u64 through the page tables.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the address is unmapped.
    pub fn read_mem(&self, vaddr: u64) -> Result<u64, MemFault> {
        self.aspace.read_u64(self.phys, vaddr)
    }

    /// Writes a guest u64 through the page tables.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the address is unmapped or read-only.
    pub fn write_mem(&mut self, vaddr: u64, v: u64) -> Result<(), MemFault> {
        self.aspace.write_u64(self.phys, vaddr, v)
    }

    /// Marks a register as a taint source (the injected fault's bits).
    pub fn taint_reg(&mut self, r: Reg, mask: TaintMask) {
        self.taint.set_reg(r, mask);
    }

    /// Marks an FP register as a taint source.
    pub fn taint_freg(&mut self, r: FReg, mask: TaintMask) {
        self.taint.set_freg(r, mask);
    }

    /// Marks 8 bytes of guest memory as a taint source.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the address does not translate.
    pub fn taint_mem(&mut self, vaddr: u64, mask: TaintMask) -> Result<(), MemFault> {
        let paddr = self.aspace.translate_read(vaddr)?;
        self.taint.mem_mut().store8(paddr, mask);
        Ok(())
    }

    /// Marks a register as a taint source attributed to fault `prov`.
    pub fn taint_reg_with_prov(&mut self, r: Reg, mask: TaintMask, prov: ProvSet) {
        self.taint.set_reg_with_prov(r, mask, prov);
    }

    /// Marks an FP register as a taint source attributed to fault `prov`.
    pub fn taint_freg_with_prov(&mut self, r: FReg, mask: TaintMask, prov: ProvSet) {
        self.taint.set_freg_with_prov(r, mask, prov);
    }

    /// Marks 8 bytes of guest memory as a taint source attributed to fault
    /// `prov`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the address does not translate.
    pub fn taint_mem_with_prov(
        &mut self,
        vaddr: u64,
        mask: TaintMask,
        prov: ProvSet,
    ) -> Result<(), MemFault> {
        let paddr = self.aspace.translate_read(vaddr)?;
        self.taint.mem_mut().store8(paddr, mask);
        self.taint.prov_store8(paddr, mask, prov);
        Ok(())
    }
}

/// Fans tainted-memory events out to several sinks: `NodeHooks` holds one
/// `taint_events` slot, but a traced-and-provenance-recorded run needs both
/// the tracer's sampler and the provenance recorder to observe the same
/// stream. Sinks are invoked in registration order.
#[derive(Default, Clone)]
pub struct TaintEventFanout {
    sinks: Vec<Rc<RefCell<dyn TaintEventSink>>>,
}

impl TaintEventFanout {
    /// An empty fanout.
    pub fn new() -> TaintEventFanout {
        TaintEventFanout::default()
    }

    /// Appends a sink; it will see every subsequent event.
    pub fn push(&mut self, sink: Rc<RefCell<dyn TaintEventSink>>) {
        self.sinks.push(sink);
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sink is registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl std::fmt::Debug for TaintEventFanout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaintEventFanout")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TaintEventSink for TaintEventFanout {
    fn on_taint_read(&mut self, ev: &TaintMemEvent) {
        for sink in &self.sinks {
            sink.borrow_mut().on_taint_read(ev);
        }
    }

    fn on_taint_write(&mut self, ev: &TaintMemEvent) {
        for sink in &self.sinks {
            sink.borrow_mut().on_taint_write(ev);
        }
    }
}

/// The engine-side fault injector callback (the paper's
/// `DECAF_inject_fault`): invoked for every executed instrumented
/// instruction, *before* the instruction itself runs.
pub trait InjectSink {
    /// `point` is the id the translate hook assigned; `insn` is the
    /// targeted instruction.
    fn on_inject_point(
        &mut self,
        point: u64,
        insn: &Instruction,
        ctx: &mut GuestCtx<'_>,
    ) -> InjectAction;
}

/// Guest-function entry hook (how Chaser intercepts `mpi_send`/`mpi_recv`
/// inside the guest and reads their arguments from registers/stack).
pub trait FnHookSink {
    /// The guest reached the entry of a hooked function.
    fn on_fn_entry(&mut self, hook_id: u64, ctx: &mut GuestCtx<'_>);
}

/// Decides at translation time which instructions receive an injection
/// callback; node/pid-aware wrapper around `chaser_tcg::TranslateHook`.
pub trait NodeTranslateHook {
    /// Should `insn` at `pc` in process `pid` on `node` be instrumented?
    fn inject_point(&self, node: u32, pid: u64, pc: u64, insn: &Instruction) -> Option<u64>;
}

/// All hooks attached to a node. Every slot is optional; an unhooked node
/// runs at plain-translation speed (the "efficient" design goal).
#[derive(Default, Clone)]
pub struct NodeHooks {
    /// Translation-time instrumentation decision.
    pub translate: Option<Rc<dyn NodeTranslateHook>>,
    /// Fault-injection callback.
    pub inject: Option<Rc<RefCell<dyn InjectSink>>>,
    /// Tainted-memory access observer.
    pub taint_events: Option<Rc<RefCell<dyn TaintEventSink>>>,
    /// VMI process lifecycle observers.
    pub vmi: Vec<Rc<RefCell<dyn crate::VmiSink>>>,
    /// Hooked guest function entry addresses, per pid: `(pid, vaddr) → id`.
    pub fn_hooks: HashMap<(u64, u64), u64>,
    /// Receiver of function-entry hook events.
    pub fn_hook_sink: Option<Rc<RefCell<dyn FnHookSink>>>,
}

impl std::fmt::Debug for NodeHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeHooks")
            .field("translate", &self.translate.is_some())
            .field("inject", &self.inject.is_some())
            .field("taint_events", &self.taint_events.is_some())
            .field("vmi_sinks", &self.vmi.len())
            .field("fn_hooks", &self.fn_hooks.len())
            .finish()
    }
}

//! The TCG-IR execution engine: computes values and propagates bitwise
//! taint in lock-step, firing Chaser's callbacks at the spliced points.

use crate::hooks::{GuestCtx, NodeHooks, TaintMemEvent};
use crate::kernel::{ExitStatus, Signal};
use crate::mem::{MemFault, PhysMemory};
use crate::node::SliceExit;
use crate::paging::{AddressSpace, PagePerms};
use crate::process::{MpiRequest, ProcState, Process};
use chaser_isa::{abi, Flags, Instruction, PAGE_SIZE};
use chaser_taint::{PropKind, ProvSet, TaintMask, TaintState};
use chaser_tcg::{
    translate_block, CodeFetcher, Global, TbCache, TcgOp, Temp, TranslateHook, TranslationBlock,
};
use std::sync::Arc;

/// Fetches code through a process's page tables (exec permission checked).
struct AspaceFetcher<'a> {
    aspace: &'a AddressSpace,
    phys: &'a PhysMemory,
}

impl CodeFetcher for AspaceFetcher<'_> {
    fn fetch_insn(&self, vaddr: u64) -> Option<[u8; chaser_isa::INSN_LEN as usize]> {
        let mut bytes = [0u8; chaser_isa::INSN_LEN as usize];
        for (i, b) in bytes.iter_mut().enumerate() {
            let paddr = self.aspace.translate_exec(vaddr + i as u64).ok()?;
            *b = self.phys.read_u8(paddr);
        }
        Some(bytes)
    }
}

/// Adapts the node-level translate hook to the tcg-level trait for one
/// specific (node, pid).
struct HookAdapter<'a> {
    hook: &'a dyn crate::hooks::NodeTranslateHook,
    node: u32,
    pid: u64,
}

impl TranslateHook for HookAdapter<'_> {
    fn inject_point(&self, pc: u64, insn: &Instruction) -> Option<u64> {
        self.hook.inject_point(self.node, self.pid, pc, insn)
    }
}

/// Loads a guest u64 with its taint mask and provenance; returns
/// `(value, mask, prov, paddr)`.
fn load_u64_tainted(
    aspace: &AddressSpace,
    phys: &PhysMemory,
    taint: &TaintState,
    vaddr: u64,
) -> Result<(u64, TaintMask, ProvSet, u64), MemFault> {
    let paddr = aspace.translate_read(vaddr)?;
    if vaddr % PAGE_SIZE <= PAGE_SIZE - 8 {
        Ok((
            phys.read_u64(paddr),
            taint.mem().load8(paddr),
            taint.prov_load8(paddr),
            paddr,
        ))
    } else {
        let mut val = [0u8; 8];
        let mut mask = [0u8; 8];
        let mut prov = ProvSet::EMPTY;
        for i in 0..8u64 {
            let p = aspace.translate_read(vaddr + i)?;
            val[i as usize] = phys.read_u8(p);
            mask[i as usize] = taint.mem().byte(p);
            prov = prov.union(taint.prov_byte(p));
        }
        Ok((
            u64::from_le_bytes(val),
            TaintMask::from_bytes(mask),
            prov,
            paddr,
        ))
    }
}

/// Stores a guest u64 with its taint mask and provenance; returns the first
/// byte's paddr.
fn store_u64_tainted(
    aspace: &AddressSpace,
    phys: &mut PhysMemory,
    taint: &mut TaintState,
    vaddr: u64,
    value: u64,
    mask: TaintMask,
    prov: ProvSet,
) -> Result<u64, MemFault> {
    let paddr = aspace.translate_write(vaddr)?;
    if vaddr % PAGE_SIZE <= PAGE_SIZE - 8 {
        phys.write_u64(paddr, value);
        taint.mem_mut().store8(paddr, mask);
        taint.prov_store8(paddr, mask, prov);
    } else {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            let p = aspace.translate_write(vaddr + i as u64)?;
            phys.write_u8(p, *b);
            taint.mem_mut().set_byte(p, mask.byte(i));
            let bp = if mask.byte(i) != 0 {
                prov
            } else {
                ProvSet::EMPTY
            };
            taint.set_prov_byte(p, bp);
        }
    }
    Ok(paddr)
}

/// Executes up to `quantum` guest instructions of `proc`, additionally
/// capped by the run-level `insn_budget` (`u64::MAX` = unlimited). The
/// budget is checked at the same safe resume point as the quantum; when it
/// binds first the slice reports [`SliceExit::BudgetExhausted`] so the
/// caller can stop the whole run deterministically.
// One internal call site (Node::run_slice); the flat parameter list keeps
// the hot path free of a wrapper struct build per slice.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_slice(
    node_id: u32,
    phys: &mut PhysMemory,
    cache: &mut TbCache,
    taint: &mut TaintState,
    hooks: &NodeHooks,
    proc: &mut Process,
    quantum: u64,
    insn_budget: u64,
) -> SliceExit {
    match proc.state {
        ProcState::Runnable => {}
        ProcState::BlockedMpi => return SliceExit::Blocked,
        ProcState::Exited => {
            return SliceExit::Exited(proc.exit.expect("exited process has a status"))
        }
    }

    let mut executed: u64 = 0;
    let mut locals: Vec<u64> = Vec::new();

    'outer: loop {
        let start_pc = proc.cpu.pc;
        let pid = proc.pid();
        let tb: Arc<TranslationBlock> = {
            let fetcher = AspaceFetcher {
                aspace: &proc.aspace,
                phys,
            };
            let adapter = hooks.translate.as_ref().map(|h| HookAdapter {
                hook: h.as_ref(),
                node: node_id,
                pid,
            });
            cache.get_or_translate_validated(
                pid,
                start_pc,
                // A clean block from the shared base layer is reusable only
                // if the active hook would leave every instruction in it
                // uninstrumented; otherwise it must be retranslated so the
                // injection callback gets spliced in.
                |tb| match &adapter {
                    Some(a) => tb
                        .insns()
                        .iter()
                        .all(|(pc, insn)| a.inject_point(*pc, insn).is_none()),
                    None => true,
                },
                || {
                    translate_block(
                        &fetcher,
                        start_pc,
                        adapter.as_ref().map(|a| a as &dyn TranslateHook),
                    )
                },
            )
        };

        taint.begin_block(tb.n_locals());
        locals.clear();
        locals.resize(tb.n_locals() as usize, 0u64);

        // Index into tb.insns() of the instruction currently executing.
        let mut insn_idx: usize = 0;
        let mut cur_pc = start_pc;

        macro_rules! val {
            ($t:expr) => {
                match $t {
                    Temp::Global(Global::Reg(r)) => proc.cpu.reg(r),
                    Temp::Global(Global::FReg(r)) => proc.cpu.freg_bits(r),
                    Temp::Local(i) => locals[i as usize],
                }
            };
        }
        macro_rules! setval {
            ($t:expr, $v:expr) => {
                match $t {
                    Temp::Global(Global::Reg(r)) => proc.cpu.set_reg(r, $v),
                    Temp::Global(Global::FReg(r)) => proc.cpu.set_freg_bits(r, $v),
                    Temp::Local(i) => locals[i as usize] = $v,
                }
            };
        }
        macro_rules! fault {
            ($sig:expr) => {{
                proc.terminate(ExitStatus::Signaled($sig));
                return SliceExit::Exited(ExitStatus::Signaled($sig));
            }};
        }
        macro_rules! binop {
            ($d:expr, $a:expr, $b:expr, $kindv:expr, $op:expr) => {{
                let (av, bv) = (val!($a), val!($b));
                let out: u64 = $op(av, bv);
                let (ta, tb_) = (taint.temp($a), taint.temp($b));
                let kind = $kindv(av, bv, tb_);
                let m = taint.policy().propagate(kind, ta, tb_);
                setval!($d, out);
                taint.set_temp2($d, m, $a, $b);
            }};
        }

        let policy = taint.policy();
        let taint_on = taint.is_enabled();
        for op in tb.ops() {
            match *op {
                TcgOp::InsnStart { pc } => {
                    if executed >= quantum || executed >= insn_budget {
                        // Safe resume point: the instruction has not begun.
                        proc.cpu.pc = pc;
                        // The budget binding is terminal for the run, so it
                        // wins over a simultaneous quantum expiry.
                        return if executed >= insn_budget {
                            SliceExit::BudgetExhausted
                        } else {
                            SliceExit::QuantumExpired
                        };
                    }
                    executed += 1;
                    proc.icount += 1;
                    cur_pc = pc;
                    // Advance the instruction index to match this pc.
                    while insn_idx < tb.insns().len() && tb.insns()[insn_idx].0 != pc {
                        insn_idx += 1;
                    }
                    // Guest function hooks (MPI interception).
                    if !hooks.fn_hooks.is_empty() {
                        if let Some(&hook_id) = hooks.fn_hooks.get(&(pid, pc)) {
                            if let Some(sink) = &hooks.fn_hook_sink {
                                let mut ctx = GuestCtx {
                                    cpu: &mut proc.cpu,
                                    aspace: &proc.aspace,
                                    phys,
                                    taint,
                                    node: node_id,
                                    pid,
                                    icount: proc.icount,
                                    pc,
                                };
                                sink.borrow_mut().on_fn_entry(hook_id, &mut ctx);
                            }
                        }
                    }
                }
                TcgOp::Movi { d, imm } => {
                    setval!(d, imm);
                    taint.set_temp(d, TaintMask::CLEAN);
                }
                TcgOp::Mov { d, s } => {
                    let v = val!(s);
                    let m = taint.temp(s);
                    setval!(d, v);
                    taint.set_temp1(d, m, s);
                }
                TcgOp::Add { d, a, b } => {
                    binop!(d, a, b, |_a, _b, _tb| PropKind::AddSub, |x: u64, y: u64| x
                        .wrapping_add(y))
                }
                TcgOp::Sub { d, a, b } => {
                    binop!(d, a, b, |_a, _b, _tb| PropKind::AddSub, |x: u64, y: u64| x
                        .wrapping_sub(y))
                }
                TcgOp::Mul { d, a, b } => {
                    binop!(d, a, b, |_a, _b, _tb| PropKind::Mul, |x: u64, y: u64| x
                        .wrapping_mul(y))
                }
                TcgOp::Divs { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        fault!(Signal::Fpe);
                    }
                    let out = (av as i64).wrapping_div(bv as i64) as u64;
                    let m = policy.propagate(PropKind::Div, taint.temp(a), taint.temp(b));
                    setval!(d, out);
                    taint.set_temp2(d, m, a, b);
                }
                TcgOp::Divu { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        fault!(Signal::Fpe);
                    }
                    let m = policy.propagate(PropKind::Div, taint.temp(a), taint.temp(b));
                    setval!(d, av / bv);
                    taint.set_temp2(d, m, a, b);
                }
                TcgOp::Remu { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        fault!(Signal::Fpe);
                    }
                    let m = policy.propagate(PropKind::Div, taint.temp(a), taint.temp(b));
                    setval!(d, av % bv);
                    taint.set_temp2(d, m, a, b);
                }
                TcgOp::And { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |av, bv, _tb| PropKind::And { a: av, b: bv },
                    |x: u64, y: u64| x & y
                ),
                TcgOp::Or { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |av, bv, _tb| PropKind::Or { a: av, b: bv },
                    |x: u64, y: u64| x | y
                ),
                TcgOp::Xor { d, a, b } => {
                    binop!(d, a, b, |_a, _b, _tb| PropKind::Xor, |x: u64, y: u64| x ^ y)
                }
                TcgOp::Shl { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |_av, bv: u64, tb_: TaintMask| PropKind::Shl {
                        amount: tb_.is_clean().then_some((bv & 63) as u32)
                    },
                    |x: u64, y: u64| x << (y & 63)
                ),
                TcgOp::Shr { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |_av, bv: u64, tb_: TaintMask| PropKind::Shr {
                        amount: tb_.is_clean().then_some((bv & 63) as u32)
                    },
                    |x: u64, y: u64| x >> (y & 63)
                ),
                TcgOp::Sar { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |_av, bv: u64, tb_: TaintMask| PropKind::Sar {
                        amount: tb_.is_clean().then_some((bv & 63) as u32)
                    },
                    |x: u64, y: u64| ((x as i64) >> (y & 63)) as u64
                ),
                TcgOp::Neg { d, a } => {
                    let m = policy.propagate(PropKind::Neg, taint.temp(a), TaintMask::CLEAN);
                    let v = (val!(a) as i64).wrapping_neg() as u64;
                    setval!(d, v);
                    taint.set_temp1(d, m, a);
                }
                TcgOp::Not { d, a } => {
                    let m = policy.propagate(PropKind::Not, taint.temp(a), TaintMask::CLEAN);
                    let v = !val!(a);
                    setval!(d, v);
                    taint.set_temp1(d, m, a);
                }
                TcgOp::SetFlagsInt { a, b } => {
                    proc.cpu.flags = Flags::from_int_cmp(val!(a), val!(b));
                }
                TcgOp::SetFlagsFp { a, b } => {
                    proc.cpu.flags =
                        Flags::from_fp_cmp(f64::from_bits(val!(a)), f64::from_bits(val!(b)));
                }
                TcgOp::QemuLd { d, addr } => {
                    let vaddr = val!(addr);
                    if !taint_on {
                        // Fast path with the taint machinery disabled.
                        match proc.aspace.read_u64(phys, vaddr) {
                            Ok(value) => {
                                setval!(d, value);
                            }
                            Err(_) => fault!(Signal::Segv),
                        }
                        continue;
                    }
                    match load_u64_tainted(&proc.aspace, phys, taint, vaddr) {
                        Ok((value, mask, prov, paddr)) => {
                            setval!(d, value);
                            taint.set_temp_with_prov(d, mask, prov);
                            if mask.is_tainted() {
                                if let Some(sink) = &hooks.taint_events {
                                    sink.borrow_mut().on_taint_read(&TaintMemEvent {
                                        node: node_id,
                                        pid,
                                        eip: cur_pc,
                                        vaddr,
                                        paddr,
                                        taint: mask,
                                        value,
                                        icount: proc.icount,
                                        prov,
                                    });
                                }
                            }
                        }
                        Err(_) => fault!(Signal::Segv),
                    }
                }
                TcgOp::QemuSt { s, addr } => {
                    let vaddr = val!(addr);
                    let value = val!(s);
                    if !taint_on {
                        if proc.aspace.write_u64(phys, vaddr, value).is_err() {
                            fault!(Signal::Segv);
                        }
                        continue;
                    }
                    let mask = taint.temp(s);
                    let prov = taint.temp_prov(s);
                    match store_u64_tainted(&proc.aspace, phys, taint, vaddr, value, mask, prov) {
                        Ok(paddr) => {
                            if mask.is_tainted() {
                                if let Some(sink) = &hooks.taint_events {
                                    sink.borrow_mut().on_taint_write(&TaintMemEvent {
                                        node: node_id,
                                        pid,
                                        eip: cur_pc,
                                        vaddr,
                                        paddr,
                                        taint: mask,
                                        value,
                                        icount: proc.icount,
                                        prov,
                                    });
                                }
                            }
                        }
                        Err(_) => fault!(Signal::Segv),
                    }
                }
                TcgOp::CallHelper { helper, d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    let out = helper.eval(av, bv);
                    let kind = match helper {
                        chaser_tcg::Helper::CvtIF | chaser_tcg::Helper::CvtFI => PropKind::Cvt,
                        _ => PropKind::Fp,
                    };
                    let tb_ = if helper.is_binary() {
                        taint.temp(b)
                    } else {
                        TaintMask::CLEAN
                    };
                    let m = policy.propagate(kind, taint.temp(a), tb_);
                    setval!(d, out);
                    if helper.is_binary() {
                        taint.set_temp2(d, m, a, b);
                    } else {
                        taint.set_temp1(d, m, a);
                    }
                }
                TcgOp::CallInject { point, pc } => {
                    if let Some(sink) = &hooks.inject {
                        let insn = tb
                            .insns()
                            .get(insn_idx)
                            .map(|(_, i)| *i)
                            .unwrap_or(Instruction::Nop);
                        let action = {
                            let mut ctx = GuestCtx {
                                cpu: &mut proc.cpu,
                                aspace: &proc.aspace,
                                phys,
                                taint,
                                node: node_id,
                                pid,
                                icount: proc.icount,
                                pc,
                            };
                            sink.borrow_mut().on_inject_point(point, &insn, &mut ctx)
                        };
                        if action.flush_tb {
                            cache.flush();
                        }
                    }
                }
                TcgOp::ExitTb { next } => {
                    proc.cpu.pc = next;
                    continue 'outer;
                }
                TcgOp::ExitTbCond {
                    cond,
                    taken,
                    fallthrough,
                } => {
                    proc.cpu.pc = if proc.cpu.flags.holds(cond) {
                        taken
                    } else {
                        fallthrough
                    };
                    continue 'outer;
                }
                TcgOp::ExitTbIndirect { addr } => {
                    proc.cpu.pc = val!(addr);
                    continue 'outer;
                }
                TcgOp::Hypercall { num, next } => {
                    proc.cpu.pc = next;
                    if num >= abi::MPI_BASE {
                        let args = [
                            proc.cpu.reg(chaser_isa::Reg::R1),
                            proc.cpu.reg(chaser_isa::Reg::R2),
                            proc.cpu.reg(chaser_isa::Reg::R3),
                            proc.cpu.reg(chaser_isa::Reg::R4),
                            proc.cpu.reg(chaser_isa::Reg::R5),
                            proc.cpu.reg(chaser_isa::Reg::R6),
                        ];
                        let req = MpiRequest {
                            num,
                            args,
                            resume_pc: next,
                        };
                        proc.state = ProcState::BlockedMpi;
                        proc.pending_mpi = Some(req);
                        return SliceExit::MpiCall(req);
                    }
                    match handle_kernel_call(num, phys, proc) {
                        KernelOutcome::Continue => continue 'outer,
                        KernelOutcome::Exit(status) => {
                            proc.terminate(status);
                            return SliceExit::Exited(status);
                        }
                    }
                }
                TcgOp::Halt => {
                    proc.terminate(ExitStatus::Halted);
                    return SliceExit::Exited(ExitStatus::Halted);
                }
                TcgOp::BadFetch { .. } => fault!(Signal::Segv),
                TcgOp::BadDecode { .. } => fault!(Signal::Ill),
            }
        }
        // A well-formed TB always ends in a terminator; reaching here means
        // the translator emitted a chained ExitTb which `continue`s above.
        unreachable!("translation block fell through without a terminator");
    }
}

enum KernelOutcome {
    Continue,
    Exit(ExitStatus),
}

/// Handles kernel-range hypercalls (`num < MPI_BASE`).
fn handle_kernel_call(num: u16, phys: &mut PhysMemory, proc: &mut Process) -> KernelOutcome {
    use chaser_isa::Reg;
    let a1 = proc.cpu.reg(Reg::R1);
    let a2 = proc.cpu.reg(Reg::R2);
    let a3 = proc.cpu.reg(Reg::R3);
    match num {
        abi::SYS_EXIT => return KernelOutcome::Exit(ExitStatus::Exited(a1 as i64)),
        abi::SYS_ASSERT_FAIL => return KernelOutcome::Exit(ExitStatus::AssertFailed(a1 as i64)),
        abi::SYS_WRITE => {
            let bytes = match proc.aspace.read_bytes(phys, a2, a3) {
                Ok(b) => b,
                Err(_) => return KernelOutcome::Exit(ExitStatus::Signaled(Signal::Segv)),
            };
            append_fd(proc, a1, &bytes);
            proc.cpu.set_reg(Reg::R0, a3);
        }
        abi::SYS_WRITE_I64 => {
            let text = format!("{}\n", a2 as i64);
            append_fd(proc, a1, text.as_bytes());
            proc.cpu.set_reg(Reg::R0, 0);
        }
        abi::SYS_WRITE_F64 => {
            append_fd(proc, a1, &a2.to_le_bytes());
            proc.cpu.set_reg(Reg::R0, 0);
        }
        abi::SYS_SBRK => {
            let old = proc.brk;
            let new = old.saturating_add(a1);
            let map_from = old.div_ceil(PAGE_SIZE) * PAGE_SIZE;
            let map_to = new.div_ceil(PAGE_SIZE) * PAGE_SIZE;
            if map_to > map_from {
                // Extend the heap; running out of guest RAM is fatal.
                let aligned_from = old / PAGE_SIZE * PAGE_SIZE;
                if proc
                    .aspace
                    .map_region(phys, aligned_from, map_to - aligned_from, PagePerms::RW)
                    .is_err()
                {
                    return KernelOutcome::Exit(ExitStatus::Signaled(Signal::Segv));
                }
            }
            proc.brk = new;
            proc.cpu.set_reg(Reg::R0, old);
        }
        abi::SYS_CLOCK => {
            let icount = proc.icount;
            proc.cpu.set_reg(Reg::R0, icount);
        }
        _ => return KernelOutcome::Exit(ExitStatus::Signaled(Signal::Ill)),
    }
    KernelOutcome::Continue
}

fn append_fd(proc: &mut Process, fd: u64, bytes: &[u8]) {
    match fd {
        abi::FD_STDOUT => proc.files.stdout.extend_from_slice(bytes),
        abi::FD_OUTPUT => proc.files.output.extend_from_slice(bytes),
        _ => {}
    }
}

//! The TCG-IR execution engine: computes values and propagates bitwise
//! taint in lock-step, firing Chaser's callbacks at the spliced points.

use crate::hooks::{BufferedTaintEvent, GuestCtx, NodeHooks, TaintAccessKind, TaintMemEvent};
use crate::kernel::{ExitStatus, Signal};
use crate::mem::{MemFault, PhysMemory};
use crate::node::SliceExit;
use crate::paging::{AddressSpace, PagePerms};
use crate::process::{MpiRequest, ProcState, Process};
use chaser_isa::{abi, Flags, Instruction, PAGE_SIZE};
use chaser_taint::{PropKind, ProvSet, TaintMask, TaintState};
use chaser_tcg::{
    translate_block, ChainFollow, ChainSlot, CodeFetcher, DispatchBlock, Global, TbCache, TcgOp,
    Temp, TranslateHook, TranslationBlock, SB_HOT_THRESHOLD,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hot-path execution tuning: ablation knobs for the interpreter fast
/// paths. All default to on; campaigns expose them so the optimized and
/// unoptimized regimes can be proven byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecTuning {
    /// TB chaining / direct block linking: steady-state execution jumps
    /// block-to-block through patched successor slots instead of hashing
    /// into the translation cache at every block boundary.
    pub tb_chaining: bool,
    /// Taint-idle fast path: while shadow memory holds no taint (and no
    /// provenance), guest loads and clean stores skip shadow reads/writes,
    /// provenance propagation and taint-hook dispatch.
    pub taint_fast_path: bool,
    /// Superblock formation: once a block's taken-slot chain has been
    /// followed [`chaser_tcg::SB_HOT_THRESHOLD`] times within one epoch,
    /// the chain is fused into a straight-line trace dispatched as a
    /// single block, eliminating the per-member dispatch round-trip.
    /// Requires `tb_chaining` (no chains, nothing to fuse).
    pub superblocks: bool,
}

impl Default for ExecTuning {
    fn default() -> ExecTuning {
        ExecTuning {
            tb_chaining: true,
            taint_fast_path: true,
            superblocks: true,
        }
    }
}

/// Hot-path execution counters, making the fast paths observable in run
/// reports and campaign results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Block dispatches served by following a chain link (no cache hash
    /// lookup).
    pub tb_chain_hits: u64,
    /// Stale chain links encountered and discarded (the predecessor was
    /// patched in an earlier flush epoch, or its successor was dropped).
    pub chain_severs: u64,
    /// Guest memory operations that took the taint-idle (or taint-disabled)
    /// fast path, skipping all shadow work.
    pub fast_path_insns: u64,
    /// Guest memory operations that ran the full taint/provenance slow
    /// path.
    pub slow_path_insns: u64,
    /// Hot taken-slot chains fused into straight-line superblocks.
    pub superblocks_formed: u64,
    /// Block dispatches that executed a fused superblock.
    pub superblock_execs: u64,
    /// Early exits from a fused trace: a guard side-exit at a member
    /// boundary, or the taint regime flipping mid-trace (an injection
    /// landed inside a fused member).
    pub superblock_bailouts: u64,
}

impl EngineStats {
    /// Accumulates `other` into `self` (for cross-node / cross-run
    /// aggregation).
    pub fn absorb(&mut self, other: EngineStats) {
        self.tb_chain_hits += other.tb_chain_hits;
        self.chain_severs += other.chain_severs;
        self.fast_path_insns += other.fast_path_insns;
        self.slow_path_insns += other.slow_path_insns;
        self.superblocks_formed += other.superblocks_formed;
        self.superblock_execs += other.superblock_execs;
        self.superblock_bailouts += other.superblock_bailouts;
    }
}

/// Slice-local hot counters. These are kept out of [`EngineStats`] during
/// dispatch so the fast-path increments touch plain locals — register
/// resident in the call-free fast tiers — instead of doing a
/// read-modify-write through the `&mut EngineStats` borrow on every memory
/// op. They are folded into the shared stats at every slice exit.
#[derive(Default)]
struct HotCounters {
    chain_hits: u64,
    chain_severs: u64,
    fast: u64,
    slow: u64,
    sb_execs: u64,
    sb_bails: u64,
}

impl HotCounters {
    #[inline]
    fn flush_into(&mut self, stats: &mut EngineStats) {
        stats.tb_chain_hits += self.chain_hits;
        stats.chain_severs += self.chain_severs;
        stats.fast_path_insns += self.fast;
        stats.slow_path_insns += self.slow;
        stats.superblock_execs += self.sb_execs;
        stats.superblock_bailouts += self.sb_bails;
        *self = HotCounters::default();
    }
}

/// Fetches code through a process's page tables (exec permission checked).
struct AspaceFetcher<'a> {
    aspace: &'a AddressSpace,
    phys: &'a PhysMemory,
}

impl CodeFetcher for AspaceFetcher<'_> {
    fn fetch_insn(&self, vaddr: u64) -> Option<[u8; chaser_isa::INSN_LEN as usize]> {
        let mut bytes = [0u8; chaser_isa::INSN_LEN as usize];
        for (i, b) in bytes.iter_mut().enumerate() {
            let paddr = self.aspace.translate_exec(vaddr + i as u64).ok()?;
            *b = self.phys.read_u8(paddr);
        }
        Some(bytes)
    }
}

/// Adapts the node-level translate hook to the tcg-level trait for one
/// specific (node, pid).
struct HookAdapter<'a> {
    hook: &'a dyn crate::hooks::NodeTranslateHook,
    node: u32,
    pid: u64,
}

impl TranslateHook for HookAdapter<'_> {
    fn inject_point(&self, pc: u64, insn: &Instruction) -> Option<u64> {
        self.hook.inject_point(self.node, self.pid, pc, insn)
    }
}

/// Loads a guest u64 with its taint mask and provenance; returns
/// `(value, mask, prov, paddr)`.
fn load_u64_tainted(
    aspace: &AddressSpace,
    phys: &PhysMemory,
    taint: &TaintState,
    vaddr: u64,
) -> Result<(u64, TaintMask, ProvSet, u64), MemFault> {
    let paddr = aspace.translate_read(vaddr)?;
    if vaddr % PAGE_SIZE <= PAGE_SIZE - 8 {
        Ok((
            phys.read_u64(paddr),
            taint.mem().load8(paddr),
            taint.prov_load8(paddr),
            paddr,
        ))
    } else {
        let mut val = [0u8; 8];
        let mut mask = [0u8; 8];
        let mut prov = ProvSet::EMPTY;
        for i in 0..8u64 {
            let p = aspace.translate_read(vaddr + i)?;
            val[i as usize] = phys.read_u8(p);
            mask[i as usize] = taint.mem().byte(p);
            prov = prov.union(taint.prov_byte(p));
        }
        Ok((
            u64::from_le_bytes(val),
            TaintMask::from_bytes(mask),
            prov,
            paddr,
        ))
    }
}

/// Stores a guest u64 with its taint mask and provenance; returns the first
/// byte's paddr.
fn store_u64_tainted(
    aspace: &AddressSpace,
    phys: &mut PhysMemory,
    taint: &mut TaintState,
    vaddr: u64,
    value: u64,
    mask: TaintMask,
    prov: ProvSet,
) -> Result<u64, MemFault> {
    let paddr = aspace.translate_write(vaddr)?;
    if vaddr % PAGE_SIZE <= PAGE_SIZE - 8 {
        phys.write_u64(paddr, value);
        taint.mem_mut().store8(paddr, mask);
        taint.prov_store8(paddr, mask, prov);
    } else {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            let p = aspace.translate_write(vaddr + i as u64)?;
            phys.write_u8(p, *b);
            taint.mem_mut().set_byte(p, mask.byte(i));
            let bp = if mask.byte(i) != 0 {
                prov
            } else {
                ProvSet::EMPTY
            };
            taint.set_prov_byte(p, bp);
        }
    }
    Ok(paddr)
}

/// Chain-exit slow path for a taken link that just crossed the hotness
/// threshold: returns the fused trace to dispatch instead of `head` —
/// reusing a registered superblock or forming one from the live chain —
/// and redirects `pred`'s taken link at it so steady-state follows reach
/// the trace without a lookup. `None` when the chain cannot be fused
/// (too short, non-direct terminator); the caller falls back to `head`.
#[cold]
fn hot_chain_superblock(
    cache: &mut TbCache,
    stats: &mut EngineStats,
    asid: u64,
    pred: &Arc<DispatchBlock>,
    head: &Arc<DispatchBlock>,
) -> Option<Arc<DispatchBlock>> {
    let sb = match cache.superblock(asid, head.tb().start_pc()) {
        Some(sb) => sb,
        None => {
            let sb = cache.form_superblock(asid, head)?;
            stats.superblocks_formed += 1;
            sb
        }
    };
    cache.chain(pred, ChainSlot::Taken, &sb);
    Some(sb)
}

/// Exit disposition of the fully-clean block executor.
enum CleanStep {
    /// Direct-jump terminator reached; `pc` is set, chain through `slot`.
    Chain(ChainSlot),
    /// Indirect terminator reached; `pc` is set, dispatch without chaining.
    NoChain,
    /// The quantum/budget bound hit at an instruction boundary; `pc` is set
    /// to the safe resume point.
    Limit,
    /// An MPI hypercall; `pc` is set to the resume point and the request
    /// registers are untouched, so the caller rebuilds the `MpiRequest`
    /// (keeping this enum two words wide — returned in registers, not
    /// through a stack slot).
    Mpi(u16),
    /// A kernel hypercall; `pc` is set to the resume point.
    Kernel(u16),
    Halt,
    Fault(Signal),
    /// An op this executor does not model (an injection callback); the
    /// caller resumes the general loop at op index `idx`.
    Bail(usize),
    /// A superblock guard side-exited at a fused member boundary; `pc` is
    /// set to the not-taken target. Dispatch without chaining: guards with
    /// different targets share the trace's one dispatch block, so a
    /// patched slot could be replayed for the wrong guard.
    SideExit,
}

/// Executes one translation block under the fully-clean fast regime: no
/// taint or provenance exists anywhere in the node (`fully_idle`), no guest
/// function hooks are installed and no injector is wired, so every op
/// reduces to its architectural effect. Keeping this loop entirely free of
/// taint/hook/provenance code — rather than branching around it per op —
/// shrinks the dispatch body enough to matter: the win is code locality and
/// register pressure, not the (predictable) branches themselves.
///
/// On `Bail` the caller re-enters the general loop at the offending op with
/// `executed` and the counters already flushed; every other variant is a
/// block exit with `proc` in its architectural exit state.
#[inline(never)]
fn run_tb_clean(
    tb: &TranslationBlock,
    proc: &mut Process,
    phys: &mut PhysMemory,
    locals: &mut [u64],
    executed: &mut u64,
    limit: u64,
    fast: &mut u64,
) -> CleanStep {
    let mut exec = *executed;
    let mut n_fast = 0u64;

    macro_rules! val {
        ($t:expr) => {
            match $t {
                Temp::Global(Global::Reg(r)) => proc.cpu.reg(r),
                Temp::Global(Global::FReg(r)) => proc.cpu.freg_bits(r),
                Temp::Local(i) => locals[i as usize],
            }
        };
    }
    macro_rules! setval {
        ($t:expr, $v:expr) => {
            match $t {
                Temp::Global(Global::Reg(r)) => proc.cpu.set_reg(r, $v),
                Temp::Global(Global::FReg(r)) => proc.cpu.set_freg_bits(r, $v),
                Temp::Local(i) => locals[i as usize] = $v,
            }
        };
    }

    let step = 'run: {
        for (idx, op) in tb.ops().iter().enumerate() {
            match *op {
                TcgOp::InsnStart { pc } => {
                    if exec >= limit {
                        // Safe resume point: the instruction has not begun.
                        proc.cpu.pc = pc;
                        break 'run CleanStep::Limit;
                    }
                    exec += 1;
                }
                TcgOp::Movi { d, imm } => setval!(d, imm),
                TcgOp::Mov { d, s } => {
                    let v = val!(s);
                    setval!(d, v);
                }
                TcgOp::Add { d, a, b } => {
                    let v = val!(a).wrapping_add(val!(b));
                    setval!(d, v);
                }
                TcgOp::Sub { d, a, b } => {
                    let v = val!(a).wrapping_sub(val!(b));
                    setval!(d, v);
                }
                TcgOp::Addi { d, a, imm } => {
                    let v = val!(a).wrapping_add(imm);
                    setval!(d, v);
                }
                TcgOp::Mul { d, a, b } => {
                    let v = val!(a).wrapping_mul(val!(b));
                    setval!(d, v);
                }
                TcgOp::Divs { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        break 'run CleanStep::Fault(Signal::Fpe);
                    }
                    setval!(d, (av as i64).wrapping_div(bv as i64) as u64);
                }
                TcgOp::Divu { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        break 'run CleanStep::Fault(Signal::Fpe);
                    }
                    setval!(d, av / bv);
                }
                TcgOp::Remu { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        break 'run CleanStep::Fault(Signal::Fpe);
                    }
                    setval!(d, av % bv);
                }
                TcgOp::And { d, a, b } => {
                    let v = val!(a) & val!(b);
                    setval!(d, v);
                }
                TcgOp::Or { d, a, b } => {
                    let v = val!(a) | val!(b);
                    setval!(d, v);
                }
                TcgOp::Xor { d, a, b } => {
                    let v = val!(a) ^ val!(b);
                    setval!(d, v);
                }
                TcgOp::Shl { d, a, b } => {
                    let v = val!(a) << (val!(b) & 63);
                    setval!(d, v);
                }
                TcgOp::Shr { d, a, b } => {
                    let v = val!(a) >> (val!(b) & 63);
                    setval!(d, v);
                }
                TcgOp::Sar { d, a, b } => {
                    let v = ((val!(a) as i64) >> (val!(b) & 63)) as u64;
                    setval!(d, v);
                }
                TcgOp::Neg { d, a } => {
                    let v = (val!(a) as i64).wrapping_neg() as u64;
                    setval!(d, v);
                }
                TcgOp::Not { d, a } => {
                    let v = !val!(a);
                    setval!(d, v);
                }
                TcgOp::SetFlagsInt { a, b } => {
                    proc.cpu.flags = Flags::from_int_cmp(val!(a), val!(b));
                }
                TcgOp::SetFlagsInti { a, imm } => {
                    proc.cpu.flags = Flags::from_int_cmp(val!(a), imm);
                }
                TcgOp::SetFlagsFp { a, b } => {
                    proc.cpu.flags =
                        Flags::from_fp_cmp(f64::from_bits(val!(a)), f64::from_bits(val!(b)));
                }
                TcgOp::QemuLd { d, addr, disp } => {
                    let vaddr = val!(addr).wrapping_add(disp as u64);
                    n_fast += 1;
                    match proc.aspace.read_u64(phys, vaddr) {
                        Ok(value) => setval!(d, value),
                        Err(_) => break 'run CleanStep::Fault(Signal::Segv),
                    }
                }
                TcgOp::QemuSt { s, addr, disp } => {
                    let vaddr = val!(addr).wrapping_add(disp as u64);
                    let value = val!(s);
                    n_fast += 1;
                    if proc.aspace.write_u64(phys, vaddr, value).is_err() {
                        break 'run CleanStep::Fault(Signal::Segv);
                    }
                }
                TcgOp::CallHelper { helper, d, a, b } => {
                    let out = helper.eval(val!(a), val!(b));
                    setval!(d, out);
                }
                TcgOp::CallInject { .. } => break 'run CleanStep::Bail(idx),
                TcgOp::ExitTb { next } => {
                    proc.cpu.pc = next;
                    break 'run CleanStep::Chain(ChainSlot::Taken);
                }
                TcgOp::ExitTbCond {
                    cond,
                    taken,
                    fallthrough,
                } => {
                    let slot = if proc.cpu.flags.holds(cond) {
                        proc.cpu.pc = taken;
                        ChainSlot::Taken
                    } else {
                        proc.cpu.pc = fallthrough;
                        ChainSlot::Fallthrough
                    };
                    break 'run CleanStep::Chain(slot);
                }
                TcgOp::SbGuard { cond, fallthrough } => {
                    if !proc.cpu.flags.holds(cond) {
                        proc.cpu.pc = fallthrough;
                        break 'run CleanStep::SideExit;
                    }
                }
                TcgOp::ExitTbIndirect { addr } => {
                    proc.cpu.pc = val!(addr);
                    break 'run CleanStep::NoChain;
                }
                TcgOp::Hypercall { num, next } => {
                    proc.cpu.pc = next;
                    if num >= abi::MPI_BASE {
                        break 'run CleanStep::Mpi(num);
                    }
                    break 'run CleanStep::Kernel(num);
                }
                TcgOp::Halt => break 'run CleanStep::Halt,
                TcgOp::BadFetch { .. } => break 'run CleanStep::Fault(Signal::Segv),
                TcgOp::BadDecode { .. } => break 'run CleanStep::Fault(Signal::Ill),
            }
        }
        // A well-formed TB always ends in a terminator; reaching here means
        // the translator emitted a chained ExitTb which breaks above.
        unreachable!("translation block fell through without a terminator");
    };
    *executed = exec;
    *fast += n_fast;
    step
}

/// Executes up to `quantum` guest instructions of `proc`, additionally
/// capped by the run-level `insn_budget` (`u64::MAX` = unlimited). The
/// budget is checked at the same safe resume point as the quantum; when it
/// binds first the slice reports [`SliceExit::BudgetExhausted`] so the
/// caller can stop the whole run deterministically.
// One internal call site (Node::run_slice); the flat parameter list keeps
// the hot path free of a wrapper struct build per slice.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_slice(
    node_id: u32,
    phys: &mut PhysMemory,
    cache: &mut TbCache,
    taint: &mut TaintState,
    hooks: &NodeHooks,
    proc: &mut Process,
    quantum: u64,
    insn_budget: u64,
    tuning: ExecTuning,
    stats: &mut EngineStats,
    taint_buf: &mut Vec<BufferedTaintEvent>,
) -> SliceExit {
    match proc.state {
        ProcState::Runnable => {}
        ProcState::BlockedMpi => return SliceExit::Blocked,
        ProcState::Exited => {
            return SliceExit::Exited(proc.exit.expect("exited process has a status"))
        }
    }

    let mut executed: u64 = 0;
    // `proc.icount` advances in lock-step with `executed`; instead of a
    // second read-modify-write per instruction it is materialized as
    // `icount_base + executed` at every point that observes it (hook
    // contexts, taint events, kernel calls and slice exits).
    let icount_base = proc.icount;
    let mut hot = HotCounters::default();
    let mut locals: Vec<u64> = Vec::new();

    // Per-slice hoists: the hook wiring cannot change while we hold
    // `&NodeHooks`, so presence checks and the translate-hook adapter are
    // resolved once instead of per dispatch / per instruction.
    let pid = proc.pid();
    let adapter = hooks.translate.as_ref().map(|h| HookAdapter {
        hook: h.as_ref(),
        node: node_id,
        pid,
    });
    let has_fn_hooks = !hooks.fn_hooks.is_empty();
    let track_inject = hooks.inject.is_some();
    let chaining = tuning.tb_chaining;
    let fast_path = tuning.taint_fast_path;
    // Superblocks ride on chain links: without chaining there are no
    // follows to count and no chains to fuse.
    let sb_enabled = tuning.superblocks && chaining;
    // The quantum and the run budget are checked at the same resume point;
    // fusing them into one bound leaves a single compare per instruction.
    let limit = quantum.min(insn_budget);

    // TB chaining state: a successor resolved by following a chain link
    // (dispatched without a cache lookup), and a predecessor slot awaiting
    // its first patch (filled right after the lookup that resolves it).
    let mut next_block: Option<Arc<DispatchBlock>> = None;
    let mut pending_patch: Option<(Arc<DispatchBlock>, ChainSlot)> = None;

    'outer: loop {
        let start_pc = proc.cpu.pc;
        let db: Arc<DispatchBlock> = match next_block.take() {
            Some(db) => db,
            None => {
                // A registered superblock headed at this pc wins over the
                // plain block: it is severed by exactly the events that
                // would invalidate the member chain, so while it is
                // served it is as valid as the blocks it fused.
                let sb = if sb_enabled {
                    cache.superblock(pid, start_pc)
                } else {
                    None
                };
                let db = match sb {
                    Some(sb) => sb,
                    None => {
                        let fetcher = AspaceFetcher {
                            aspace: &proc.aspace,
                            phys,
                        };
                        cache.dispatch_get_or_translate_validated(
                            pid,
                            start_pc,
                            // A clean block from the shared base layer is
                            // reusable only if the active hook would leave
                            // every instruction in it uninstrumented;
                            // otherwise it must be retranslated so the
                            // injection callback gets spliced in.
                            |tb| match &adapter {
                                Some(a) => tb
                                    .insns()
                                    .iter()
                                    .all(|(pc, insn)| a.inject_point(*pc, insn).is_none()),
                                None => true,
                            },
                            || {
                                translate_block(
                                    &fetcher,
                                    start_pc,
                                    adapter.as_ref().map(|a| a as &dyn TranslateHook),
                                )
                            },
                        )
                    }
                };
                if let Some((pred, slot)) = pending_patch.take() {
                    cache.chain(&pred, slot, &db);
                }
                db
            }
        };
        // Borrow the TB out of the dispatch block: `db` is a local `Arc`
        // that outlives the block body, so no refcount traffic is needed
        // (an `Arc::clone` here costs two atomic RMWs per block dispatch).
        let tb: &TranslationBlock = db.tb();
        let fused = tb.fused_members() > 0;
        if fused {
            hot.sb_execs += 1;
        }

        // Resolves a direct-jump exit to `slot`: dispatch through the live
        // link when one exists, otherwise fall back to the cache lookup and
        // patch the slot afterwards. Taken-slot hits additionally feed the
        // hotness counter that triggers superblock formation: exactly at
        // the threshold the chain behind the link is fused and the link
        // redirected at the trace.
        macro_rules! chain_exit {
            ($slot:expr) => {
                if chaining {
                    match cache.follow(&db, $slot) {
                        ChainFollow::Hit(succ) => {
                            hot.chain_hits += 1;
                            next_block = if sb_enabled
                                && matches!($slot, ChainSlot::Taken)
                                && cache.note_taken_follow(&db) == SB_HOT_THRESHOLD
                            {
                                hot_chain_superblock(cache, stats, pid, &db, &succ).or(Some(succ))
                            } else {
                                Some(succ)
                            };
                        }
                        ChainFollow::Severed => {
                            hot.chain_severs += 1;
                            pending_patch = Some((Arc::clone(&db), $slot));
                        }
                        ChainFollow::Unlinked => {
                            pending_patch = Some((Arc::clone(&db), $slot));
                        }
                    }
                }
            };
        }

        // Fully-clean fast regime: when *nothing* carries taint or
        // provenance (an O(1) counter check), every propagation in this
        // block is clean-in ⇒ clean-out (`TaintPolicy::propagate`
        // guarantees it), so all per-op shadow bookkeeping — including the
        // per-block local-shadow reset — is skipped. Taint only ever
        // originates from an injection callback; both in-block callback
        // sites re-check the gate and drop back to the slow path.
        let mut clean = fast_path && taint.fully_idle();
        if !clean {
            taint.begin_block(tb.n_locals());
        }
        locals.clear();
        locals.resize(tb.n_locals() as usize, 0u64);

        // Index into tb.insns() of the instruction currently executing.
        let mut insn_idx: usize = 0;
        let mut cur_pc = start_pc;

        macro_rules! val {
            ($t:expr) => {
                match $t {
                    Temp::Global(Global::Reg(r)) => proc.cpu.reg(r),
                    Temp::Global(Global::FReg(r)) => proc.cpu.freg_bits(r),
                    Temp::Local(i) => locals[i as usize],
                }
            };
        }
        macro_rules! setval {
            ($t:expr, $v:expr) => {
                match $t {
                    Temp::Global(Global::Reg(r)) => proc.cpu.set_reg(r, $v),
                    Temp::Global(Global::FReg(r)) => proc.cpu.set_freg_bits(r, $v),
                    Temp::Local(i) => locals[i as usize] = $v,
                }
            };
        }
        // Materializes everything an observer outside the dispatch loop may
        // read: `proc.icount` (kept as `icount_base + executed` while
        // dispatching) and the engine counters (kept in `hot`). Invoked at
        // every slice exit.
        macro_rules! sync_counters {
            () => {
                proc.icount = icount_base + executed;
                hot.flush_into(stats);
            };
        }
        macro_rules! fault {
            ($sig:expr) => {{
                sync_counters!();
                proc.terminate(ExitStatus::Signaled($sig));
                return SliceExit::Exited(ExitStatus::Signaled($sig));
            }};
        }
        macro_rules! binop {
            ($d:expr, $a:expr, $b:expr, $kindv:expr, $op:expr) => {{
                let (av, bv) = (val!($a), val!($b));
                let out: u64 = $op(av, bv);
                setval!($d, out);
                if !clean {
                    let (ta, tb_) = (taint.temp($a), taint.temp($b));
                    let kind = $kindv(av, bv, tb_);
                    let m = taint.policy().propagate(kind, ta, tb_);
                    taint.set_temp2($d, m, $a, $b);
                }
            }};
        }

        // Fully-clean blocks with no hooks in play dispatch through the
        // specialized executor, which carries no taint/hook/provenance code
        // at all (see `run_tb_clean`). `Bail` re-enters the general loop
        // below at the op the executor does not model; the gate guarantees
        // nothing in the block can flip the clean regime mid-block, so
        // `clean` stays true across the bail.
        let mut start_op = 0usize;
        if clean && !has_fn_hooks && !track_inject {
            match run_tb_clean(
                tb,
                proc,
                phys,
                &mut locals,
                &mut executed,
                limit,
                &mut hot.fast,
            ) {
                CleanStep::Chain(slot) => {
                    chain_exit!(slot);
                    continue 'outer;
                }
                CleanStep::NoChain => continue 'outer,
                CleanStep::Limit => {
                    sync_counters!();
                    // The budget binding is terminal for the run, so it
                    // wins over a simultaneous quantum expiry.
                    return if executed >= insn_budget {
                        SliceExit::BudgetExhausted
                    } else {
                        SliceExit::QuantumExpired
                    };
                }
                CleanStep::Mpi(num) => {
                    let args = [
                        proc.cpu.reg(chaser_isa::Reg::R1),
                        proc.cpu.reg(chaser_isa::Reg::R2),
                        proc.cpu.reg(chaser_isa::Reg::R3),
                        proc.cpu.reg(chaser_isa::Reg::R4),
                        proc.cpu.reg(chaser_isa::Reg::R5),
                        proc.cpu.reg(chaser_isa::Reg::R6),
                    ];
                    let req = MpiRequest {
                        num,
                        args,
                        resume_pc: proc.cpu.pc,
                    };
                    proc.state = ProcState::BlockedMpi;
                    proc.pending_mpi = Some(req);
                    sync_counters!();
                    return SliceExit::MpiCall(req);
                }
                CleanStep::Kernel(num) => {
                    // Kernel calls observe `icount` (SYS_CLOCK).
                    sync_counters!();
                    match handle_kernel_call(num, phys, proc) {
                        KernelOutcome::Continue => continue 'outer,
                        KernelOutcome::Exit(status) => {
                            proc.terminate(status);
                            return SliceExit::Exited(status);
                        }
                    }
                }
                CleanStep::Halt => {
                    sync_counters!();
                    proc.terminate(ExitStatus::Halted);
                    return SliceExit::Exited(ExitStatus::Halted);
                }
                CleanStep::Fault(sig) => fault!(sig),
                CleanStep::Bail(idx) => start_op = idx,
                CleanStep::SideExit => {
                    hot.sb_bails += 1;
                    continue 'outer;
                }
            }
        }

        let policy = taint.policy();
        let taint_on = taint.is_enabled();
        for op in &tb.ops()[start_op..] {
            match *op {
                TcgOp::InsnStart { pc } => {
                    if executed >= limit {
                        // Safe resume point: the instruction has not begun.
                        proc.cpu.pc = pc;
                        sync_counters!();
                        // The budget binding is terminal for the run, so it
                        // wins over a simultaneous quantum expiry.
                        return if executed >= insn_budget {
                            SliceExit::BudgetExhausted
                        } else {
                            SliceExit::QuantumExpired
                        };
                    }
                    executed += 1;
                    if !clean {
                        // Only the slow-path taint events consume `cur_pc`;
                        // the regime-flip sites below reset it from their
                        // own `pc` before the slow path can run.
                        cur_pc = pc;
                    }
                    // Advance the instruction index to match this pc; only
                    // the injection callback consumes it.
                    if track_inject {
                        while insn_idx < tb.insns().len() && tb.insns()[insn_idx].0 != pc {
                            insn_idx += 1;
                        }
                    }
                    // Guest function hooks (MPI interception).
                    if has_fn_hooks {
                        if let Some(&hook_id) = hooks.fn_hooks.get(&(pid, pc)) {
                            if let Some(sink) = &hooks.fn_hook_sink {
                                let mut ctx = GuestCtx {
                                    cpu: &mut proc.cpu,
                                    aspace: &proc.aspace,
                                    phys,
                                    taint,
                                    node: node_id,
                                    pid,
                                    icount: icount_base + executed,
                                    pc,
                                };
                                sink.lock().on_fn_entry(hook_id, &mut ctx);
                                // The hook may have tainted registers or
                                // memory: re-check the clean gate. Locals
                                // were untouched and all-clean up to this
                                // op, so materializing their shadow now is
                                // exact.
                                if clean && !taint.fully_idle() {
                                    taint.begin_block(tb.n_locals());
                                    clean = false;
                                    cur_pc = pc;
                                    if fused {
                                        // The fast regime ended mid-trace;
                                        // the rest of the fused stream runs
                                        // the slow path op-exact.
                                        hot.sb_bails += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                TcgOp::Movi { d, imm } => {
                    setval!(d, imm);
                    if !clean {
                        taint.set_temp(d, TaintMask::CLEAN);
                    }
                }
                TcgOp::Mov { d, s } => {
                    let v = val!(s);
                    setval!(d, v);
                    if !clean {
                        let m = taint.temp(s);
                        taint.set_temp1(d, m, s);
                    }
                }
                TcgOp::Add { d, a, b } => {
                    binop!(d, a, b, |_a, _b, _tb| PropKind::AddSub, |x: u64, y: u64| x
                        .wrapping_add(y))
                }
                TcgOp::Sub { d, a, b } => {
                    binop!(d, a, b, |_a, _b, _tb| PropKind::AddSub, |x: u64, y: u64| x
                        .wrapping_sub(y))
                }
                TcgOp::Addi { d, a, imm } => {
                    let out = val!(a).wrapping_add(imm);
                    setval!(d, out);
                    if !clean {
                        // The immediate operand is CLEAN with empty
                        // provenance, so this is exactly `Add` with a clean
                        // `b`: same kind, source provenance from `a` alone.
                        let m = policy.propagate(PropKind::AddSub, taint.temp(a), TaintMask::CLEAN);
                        taint.set_temp1(d, m, a);
                    }
                }
                TcgOp::Mul { d, a, b } => {
                    binop!(d, a, b, |_a, _b, _tb| PropKind::Mul, |x: u64, y: u64| x
                        .wrapping_mul(y))
                }
                TcgOp::Divs { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        fault!(Signal::Fpe);
                    }
                    let out = (av as i64).wrapping_div(bv as i64) as u64;
                    setval!(d, out);
                    if !clean {
                        let m = policy.propagate(PropKind::Div, taint.temp(a), taint.temp(b));
                        taint.set_temp2(d, m, a, b);
                    }
                }
                TcgOp::Divu { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        fault!(Signal::Fpe);
                    }
                    setval!(d, av / bv);
                    if !clean {
                        let m = policy.propagate(PropKind::Div, taint.temp(a), taint.temp(b));
                        taint.set_temp2(d, m, a, b);
                    }
                }
                TcgOp::Remu { d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    if bv == 0 {
                        fault!(Signal::Fpe);
                    }
                    setval!(d, av % bv);
                    if !clean {
                        let m = policy.propagate(PropKind::Div, taint.temp(a), taint.temp(b));
                        taint.set_temp2(d, m, a, b);
                    }
                }
                TcgOp::And { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |av, bv, _tb| PropKind::And { a: av, b: bv },
                    |x: u64, y: u64| x & y
                ),
                TcgOp::Or { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |av, bv, _tb| PropKind::Or { a: av, b: bv },
                    |x: u64, y: u64| x | y
                ),
                TcgOp::Xor { d, a, b } => {
                    binop!(d, a, b, |_a, _b, _tb| PropKind::Xor, |x: u64, y: u64| x ^ y)
                }
                TcgOp::Shl { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |_av, bv: u64, tb_: TaintMask| PropKind::Shl {
                        amount: tb_.is_clean().then_some((bv & 63) as u32)
                    },
                    |x: u64, y: u64| x << (y & 63)
                ),
                TcgOp::Shr { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |_av, bv: u64, tb_: TaintMask| PropKind::Shr {
                        amount: tb_.is_clean().then_some((bv & 63) as u32)
                    },
                    |x: u64, y: u64| x >> (y & 63)
                ),
                TcgOp::Sar { d, a, b } => binop!(
                    d,
                    a,
                    b,
                    |_av, bv: u64, tb_: TaintMask| PropKind::Sar {
                        amount: tb_.is_clean().then_some((bv & 63) as u32)
                    },
                    |x: u64, y: u64| ((x as i64) >> (y & 63)) as u64
                ),
                TcgOp::Neg { d, a } => {
                    let v = (val!(a) as i64).wrapping_neg() as u64;
                    setval!(d, v);
                    if !clean {
                        let m = policy.propagate(PropKind::Neg, taint.temp(a), TaintMask::CLEAN);
                        taint.set_temp1(d, m, a);
                    }
                }
                TcgOp::Not { d, a } => {
                    let v = !val!(a);
                    setval!(d, v);
                    if !clean {
                        let m = policy.propagate(PropKind::Not, taint.temp(a), TaintMask::CLEAN);
                        taint.set_temp1(d, m, a);
                    }
                }
                TcgOp::SetFlagsInt { a, b } => {
                    proc.cpu.flags = Flags::from_int_cmp(val!(a), val!(b));
                }
                TcgOp::SetFlagsInti { a, imm } => {
                    proc.cpu.flags = Flags::from_int_cmp(val!(a), imm);
                }
                TcgOp::SetFlagsFp { a, b } => {
                    proc.cpu.flags =
                        Flags::from_fp_cmp(f64::from_bits(val!(a)), f64::from_bits(val!(b)));
                }
                TcgOp::QemuLd { d, addr, disp } => {
                    let vaddr = val!(addr).wrapping_add(disp as u64);
                    if !taint_on || clean {
                        // Fast path: taint machinery disabled, or the
                        // fully-clean regime holds — `d`'s shadow is
                        // already clean and its provenance empty, so even
                        // the destination write is skipped.
                        hot.fast += 1;
                        match proc.aspace.read_u64(phys, vaddr) {
                            Ok(value) => {
                                setval!(d, value);
                            }
                            Err(_) => fault!(Signal::Segv),
                        }
                        continue;
                    }
                    if fast_path && taint.mem_idle() {
                        // Taint-idle fast path: the shadow holds no taint
                        // and no provenance, so the load's mask is CLEAN
                        // and its provenance EMPTY by construction — skip
                        // the shadow reads and the (never-firing, since the
                        // mask is clean) taint-read hook.
                        hot.fast += 1;
                        match proc.aspace.read_u64(phys, vaddr) {
                            Ok(value) => {
                                setval!(d, value);
                                taint.set_temp(d, TaintMask::CLEAN);
                            }
                            Err(_) => fault!(Signal::Segv),
                        }
                        continue;
                    }
                    hot.slow += 1;
                    match load_u64_tainted(&proc.aspace, phys, taint, vaddr) {
                        Ok((value, mask, prov, paddr)) => {
                            setval!(d, value);
                            taint.set_temp_with_prov(d, mask, prov);
                            if mask.is_tainted() && hooks.taint_events {
                                taint_buf.push(BufferedTaintEvent {
                                    kind: TaintAccessKind::Read,
                                    ev: TaintMemEvent {
                                        node: node_id,
                                        pid,
                                        eip: cur_pc,
                                        vaddr,
                                        paddr,
                                        taint: mask,
                                        value,
                                        icount: icount_base + executed,
                                        prov,
                                    },
                                });
                            }
                        }
                        Err(_) => fault!(Signal::Segv),
                    }
                }
                TcgOp::QemuSt { s, addr, disp } => {
                    let vaddr = val!(addr).wrapping_add(disp as u64);
                    let value = val!(s);
                    if !taint_on || clean {
                        // Fast path: taint disabled, or fully clean — the
                        // stored mask is clean over an all-clean shadow,
                        // a complete no-op on every shadow structure.
                        hot.fast += 1;
                        if proc.aspace.write_u64(phys, vaddr, value).is_err() {
                            fault!(Signal::Segv);
                        }
                        continue;
                    }
                    let mask = taint.temp(s);
                    if fast_path && mask.is_clean() && taint.mem_idle() {
                        // Taint-idle fast path: a clean store over an
                        // all-clean shadow is a shadow no-op (nothing to
                        // clear), its provenance write is empty, and the
                        // taint-write hook cannot fire — skip all three.
                        hot.fast += 1;
                        if proc.aspace.write_u64(phys, vaddr, value).is_err() {
                            fault!(Signal::Segv);
                        }
                        continue;
                    }
                    hot.slow += 1;
                    let prov = taint.temp_prov(s);
                    match store_u64_tainted(&proc.aspace, phys, taint, vaddr, value, mask, prov) {
                        Ok(paddr) => {
                            if mask.is_tainted() && hooks.taint_events {
                                taint_buf.push(BufferedTaintEvent {
                                    kind: TaintAccessKind::Write,
                                    ev: TaintMemEvent {
                                        node: node_id,
                                        pid,
                                        eip: cur_pc,
                                        vaddr,
                                        paddr,
                                        taint: mask,
                                        value,
                                        icount: icount_base + executed,
                                        prov,
                                    },
                                });
                            }
                        }
                        Err(_) => fault!(Signal::Segv),
                    }
                }
                TcgOp::CallHelper { helper, d, a, b } => {
                    let (av, bv) = (val!(a), val!(b));
                    let out = helper.eval(av, bv);
                    setval!(d, out);
                    if !clean {
                        let kind = match helper {
                            chaser_tcg::Helper::CvtIF | chaser_tcg::Helper::CvtFI => PropKind::Cvt,
                            _ => PropKind::Fp,
                        };
                        let tb_ = if helper.is_binary() {
                            taint.temp(b)
                        } else {
                            TaintMask::CLEAN
                        };
                        let m = policy.propagate(kind, taint.temp(a), tb_);
                        if helper.is_binary() {
                            taint.set_temp2(d, m, a, b);
                        } else {
                            taint.set_temp1(d, m, a);
                        }
                    }
                }
                TcgOp::CallInject { point, pc } => {
                    if let Some(sink) = &hooks.inject {
                        let insn = tb
                            .insns()
                            .get(insn_idx)
                            .map(|(_, i)| *i)
                            .unwrap_or(Instruction::Nop);
                        let action = {
                            let mut ctx = GuestCtx {
                                cpu: &mut proc.cpu,
                                aspace: &proc.aspace,
                                phys,
                                taint,
                                node: node_id,
                                pid,
                                icount: proc.icount,
                                pc,
                            };
                            sink.lock().on_inject_point(point, &insn, &mut ctx)
                        };
                        if action.flush_tb {
                            cache.flush();
                        }
                        // An injector is the only in-block taint source:
                        // if it fired, leave the clean regime for the rest
                        // of this block (locals were all-clean up to here).
                        if clean && !taint.fully_idle() {
                            taint.begin_block(tb.n_locals());
                            clean = false;
                            cur_pc = pc;
                            if fused {
                                // An injection landed inside a fused
                                // member: leave the fast regime and finish
                                // the trace op-exact on the slow path.
                                hot.sb_bails += 1;
                            }
                        }
                    }
                }
                TcgOp::ExitTb { next } => {
                    proc.cpu.pc = next;
                    chain_exit!(ChainSlot::Taken);
                    continue 'outer;
                }
                TcgOp::ExitTbCond {
                    cond,
                    taken,
                    fallthrough,
                } => {
                    let slot = if proc.cpu.flags.holds(cond) {
                        proc.cpu.pc = taken;
                        ChainSlot::Taken
                    } else {
                        proc.cpu.pc = fallthrough;
                        ChainSlot::Fallthrough
                    };
                    chain_exit!(slot);
                    continue 'outer;
                }
                TcgOp::SbGuard { cond, fallthrough } => {
                    if !proc.cpu.flags.holds(cond) {
                        // Side exit at a fused member boundary; never
                        // chained (guards share the trace's one dispatch
                        // block, see `CleanStep::SideExit`).
                        proc.cpu.pc = fallthrough;
                        hot.sb_bails += 1;
                        continue 'outer;
                    }
                }
                TcgOp::ExitTbIndirect { addr } => {
                    proc.cpu.pc = val!(addr);
                    continue 'outer;
                }
                TcgOp::Hypercall { num, next } => {
                    proc.cpu.pc = next;
                    if num >= abi::MPI_BASE {
                        let args = [
                            proc.cpu.reg(chaser_isa::Reg::R1),
                            proc.cpu.reg(chaser_isa::Reg::R2),
                            proc.cpu.reg(chaser_isa::Reg::R3),
                            proc.cpu.reg(chaser_isa::Reg::R4),
                            proc.cpu.reg(chaser_isa::Reg::R5),
                            proc.cpu.reg(chaser_isa::Reg::R6),
                        ];
                        let req = MpiRequest {
                            num,
                            args,
                            resume_pc: next,
                        };
                        proc.state = ProcState::BlockedMpi;
                        proc.pending_mpi = Some(req);
                        sync_counters!();
                        return SliceExit::MpiCall(req);
                    }
                    // Kernel calls observe `icount` (SYS_CLOCK).
                    sync_counters!();
                    match handle_kernel_call(num, phys, proc) {
                        KernelOutcome::Continue => continue 'outer,
                        KernelOutcome::Exit(status) => {
                            proc.terminate(status);
                            return SliceExit::Exited(status);
                        }
                    }
                }
                TcgOp::Halt => {
                    sync_counters!();
                    proc.terminate(ExitStatus::Halted);
                    return SliceExit::Exited(ExitStatus::Halted);
                }
                TcgOp::BadFetch { .. } => fault!(Signal::Segv),
                TcgOp::BadDecode { .. } => fault!(Signal::Ill),
            }
        }
        // A well-formed TB always ends in a terminator; reaching here means
        // the translator emitted a chained ExitTb which `continue`s above.
        unreachable!("translation block fell through without a terminator");
    }
}

enum KernelOutcome {
    Continue,
    Exit(ExitStatus),
}

/// Handles kernel-range hypercalls (`num < MPI_BASE`).
fn handle_kernel_call(num: u16, phys: &mut PhysMemory, proc: &mut Process) -> KernelOutcome {
    use chaser_isa::Reg;
    let a1 = proc.cpu.reg(Reg::R1);
    let a2 = proc.cpu.reg(Reg::R2);
    let a3 = proc.cpu.reg(Reg::R3);
    match num {
        abi::SYS_EXIT => return KernelOutcome::Exit(ExitStatus::Exited(a1 as i64)),
        abi::SYS_ASSERT_FAIL => return KernelOutcome::Exit(ExitStatus::AssertFailed(a1 as i64)),
        abi::SYS_WRITE => {
            let bytes = match proc.aspace.read_bytes(phys, a2, a3) {
                Ok(b) => b,
                Err(_) => return KernelOutcome::Exit(ExitStatus::Signaled(Signal::Segv)),
            };
            append_fd(proc, a1, &bytes);
            proc.cpu.set_reg(Reg::R0, a3);
        }
        abi::SYS_WRITE_I64 => {
            let text = format!("{}\n", a2 as i64);
            append_fd(proc, a1, text.as_bytes());
            proc.cpu.set_reg(Reg::R0, 0);
        }
        abi::SYS_WRITE_F64 => {
            append_fd(proc, a1, &a2.to_le_bytes());
            proc.cpu.set_reg(Reg::R0, 0);
        }
        abi::SYS_SBRK => {
            let old = proc.brk;
            let new = old.saturating_add(a1);
            let map_from = old.div_ceil(PAGE_SIZE) * PAGE_SIZE;
            let map_to = new.div_ceil(PAGE_SIZE) * PAGE_SIZE;
            if map_to > map_from {
                // Extend the heap; running out of guest RAM is fatal.
                let aligned_from = old / PAGE_SIZE * PAGE_SIZE;
                if proc
                    .aspace
                    .map_region(phys, aligned_from, map_to - aligned_from, PagePerms::RW)
                    .is_err()
                {
                    return KernelOutcome::Exit(ExitStatus::Signaled(Signal::Segv));
                }
            }
            proc.brk = new;
            proc.cpu.set_reg(Reg::R0, old);
        }
        abi::SYS_CLOCK => {
            let icount = proc.icount;
            proc.cpu.set_reg(Reg::R0, icount);
        }
        _ => return KernelOutcome::Exit(ExitStatus::Signaled(Signal::Ill)),
    }
    KernelOutcome::Continue
}

fn append_fd(proc: &mut Process, fd: u64, bytes: &[u8]) {
    match fd {
        abi::FD_STDOUT => proc.files.stdout.extend_from_slice(bytes),
        abi::FD_OUTPUT => proc.files.output.extend_from_slice(bytes),
        _ => {}
    }
}

//! A simulated machine: physical memory, processes, translation cache,
//! taint state and hooks.

use crate::engine::{self, EngineStats, ExecTuning};
use crate::hooks::{BufferedTaintEvent, NodeHooks};
use crate::kernel::ExitStatus;
use crate::mem::{MemFault, MemSnapshot, MemStats, PhysMemory};
use crate::paging::{AddressSpace, PagePerms};
use crate::process::{MpiRequest, ProcState, Process};
use crate::vmi::VmiAction;
use chaser_isa::{CpuState, Program, CODE_BASE, DATA_BASE, PAGE_SIZE, STACK_SIZE, STACK_TOP};
use chaser_taint::{TaintPolicy, TaintState};
use chaser_tcg::{BaseLayer, CacheStats, TbCache};
use std::fmt;
use std::sync::Arc;

/// Why [`Node::run_slice`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceExit {
    /// The quantum was used up; the process remains runnable.
    QuantumExpired,
    /// The per-run instruction budget was used up; the process remains
    /// runnable but the watchdog owner should stop the run.
    BudgetExhausted,
    /// The process finished.
    Exited(ExitStatus),
    /// The process trapped into an MPI call and is now blocked; the cluster
    /// runtime must complete the request.
    MpiCall(MpiRequest),
    /// The process was already blocked on MPI.
    Blocked,
}

/// An error creating a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnError {
    /// The node ran out of physical memory while building the address space.
    OutOfMemory(MemFault),
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpawnError::OutOfMemory(fault) => write!(f, "out of guest memory: {fault}"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// One simulated machine running guest processes under introspection.
#[derive(Debug)]
pub struct Node {
    id: u32,
    phys: PhysMemory,
    procs: Vec<Process>,
    cache: TbCache,
    taint: TaintState,
    hooks: NodeHooks,
    next_pid: u64,
    /// Remaining run-level instruction budget (`u64::MAX` = unlimited).
    /// Set by the watchdog owner (the cluster scheduler) before each slice.
    insn_budget: u64,
    /// Hot-path tuning knobs applied to every slice (default: all on).
    tuning: ExecTuning,
    /// Accumulated hot-path counters over every slice this node ran.
    engine_stats: EngineStats,
    /// Taint memory events buffered during slices (gated by
    /// `hooks.taint_events`); the owner drains them in deterministic order
    /// at its round barrier via [`Node::take_taint_events`].
    taint_buf: Vec<BufferedTaintEvent>,
}

impl Node {
    /// A node with default physical memory and the precise taint policy.
    pub fn new(id: u32) -> Node {
        Node::with_config(id, crate::mem::DEFAULT_PHYS_BYTES, TaintPolicy::Precise)
    }

    /// A node with explicit memory size and taint policy.
    pub fn with_config(id: u32, phys_bytes: u64, policy: TaintPolicy) -> Node {
        Node {
            id,
            phys: PhysMemory::new(phys_bytes),
            procs: Vec::new(),
            cache: TbCache::new(),
            taint: TaintState::new(policy),
            hooks: NodeHooks::default(),
            next_pid: 1,
            insn_budget: u64::MAX,
            tuning: ExecTuning::default(),
            engine_stats: EngineStats::default(),
            taint_buf: Vec::new(),
        }
    }

    /// Sets the hot-path tuning knobs (TB chaining, taint-idle fast path)
    /// applied to every subsequent slice.
    pub fn set_exec_tuning(&mut self, tuning: ExecTuning) {
        self.tuning = tuning;
    }

    /// The active hot-path tuning knobs.
    pub fn exec_tuning(&self) -> ExecTuning {
        self.tuning
    }

    /// Hot-path execution counters accumulated over every slice.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine_stats
    }

    /// Caps the instructions the next [`Node::run_slice`] may retire,
    /// independently of its quantum. When the budget binds before the
    /// quantum the slice returns [`SliceExit::BudgetExhausted`].
    /// `u64::MAX` (the default) disables the cap.
    pub fn set_insn_budget(&mut self, remaining: u64) {
        self.insn_budget = remaining;
    }

    /// The node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Loads `program` into a fresh process and reports it through VMI.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError::OutOfMemory`] when guest RAM is exhausted.
    pub fn spawn(&mut self, program: &Program) -> Result<u64, SpawnError> {
        let pid = self.next_pid;
        self.next_pid += 1;

        let mut aspace = AddressSpace::new(pid);
        // Text.
        aspace
            .map_region(
                &mut self.phys,
                CODE_BASE,
                program.code().len().max(1) as u64,
                PagePerms::RX,
            )
            .map_err(SpawnError::OutOfMemory)?;
        poke(&aspace, &mut self.phys, CODE_BASE, program.code());
        // Data.
        if !program.data().is_empty() {
            aspace
                .map_region(
                    &mut self.phys,
                    DATA_BASE,
                    program.data().len() as u64,
                    PagePerms::RW,
                )
                .map_err(SpawnError::OutOfMemory)?;
            poke(&aspace, &mut self.phys, DATA_BASE, program.data());
        }
        // Stack.
        aspace
            .map_region(
                &mut self.phys,
                STACK_TOP - STACK_SIZE,
                STACK_SIZE,
                PagePerms::RW,
            )
            .map_err(SpawnError::OutOfMemory)?;

        let mut cpu = CpuState::new(program.entry());
        cpu.set_sp(STACK_TOP);

        let proc = Process::new(
            pid,
            program.name().to_string(),
            cpu,
            aspace,
            program.heap_base(),
        );
        self.procs.push(proc);

        // VMI: report creation, apply requested actions.
        let mut action = VmiAction::NONE;
        let sinks = self.hooks.vmi.clone();
        for sink in sinks {
            action = action.merge(sink.lock().on_process_created(self.id, pid, program.name()));
        }
        if action.flush_tb {
            self.cache.flush();
        }
        Ok(pid)
    }

    /// Executes up to `quantum` instructions of process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not exist on this node.
    pub fn run_slice(&mut self, pid: u64, quantum: u64) -> SliceExit {
        let idx = self.index(pid).expect("unknown pid");
        let proc = &mut self.procs[idx];
        let exit = engine::run_slice(
            self.id,
            &mut self.phys,
            &mut self.cache,
            &mut self.taint,
            &self.hooks,
            proc,
            quantum,
            self.insn_budget,
            self.tuning,
            &mut self.engine_stats,
            &mut self.taint_buf,
        );
        if let SliceExit::Exited(status) = exit {
            let sinks = self.hooks.vmi.clone();
            let mut action = VmiAction::NONE;
            for sink in sinks {
                action = action.merge(sink.lock().on_process_exited(self.id, pid, status));
            }
            if action.flush_tb {
                self.cache.flush();
            }
        }
        exit
    }

    fn index(&self, pid: u64) -> Option<usize> {
        self.procs.iter().position(|p| p.pid() == pid)
    }

    /// The process with id `pid`, if any.
    pub fn process(&self, pid: u64) -> Option<&Process> {
        self.index(pid).map(|i| &self.procs[i])
    }

    /// Mutable access to a process.
    pub fn process_mut(&mut self, pid: u64) -> Option<&mut Process> {
        self.index(pid).map(move |i| &mut self.procs[i])
    }

    /// All processes on the node.
    pub fn processes(&self) -> &[Process] {
        &self.procs
    }

    /// Completes a blocked MPI call: sets the return value and makes the
    /// process runnable again at its resume pc.
    ///
    /// # Panics
    ///
    /// Panics if the process is not blocked in an MPI call.
    pub fn complete_mpi(&mut self, pid: u64, ret: u64) {
        let proc = self.process_mut(pid).expect("unknown pid");
        assert_eq!(proc.state, ProcState::BlockedMpi, "process not in MPI call");
        let req = proc
            .pending_mpi
            .take()
            .expect("blocked process has a request");
        proc.cpu.set_reg(chaser_isa::abi::RET_REG, ret);
        proc.cpu.pc = req.resume_pc;
        proc.state = ProcState::Runnable;
    }

    /// Terminates a process from outside (MPI runtime abort, node failure
    /// injection).
    pub fn abort_process(&mut self, pid: u64, status: ExitStatus) {
        if let Some(proc) = self.process_mut(pid) {
            proc.terminate(status);
        }
    }

    /// Reads guest memory of a (possibly blocked) process.
    ///
    /// # Errors
    ///
    /// Propagates the guest [`MemFault`] on bad addresses — the MPI runtime
    /// turns this into an MPI error.
    pub fn read_guest(&self, pid: u64, vaddr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        let proc = self.process(pid).expect("unknown pid");
        proc.aspace.read_bytes(&self.phys, vaddr, len)
    }

    /// Writes guest memory of a process.
    ///
    /// # Errors
    ///
    /// Propagates the guest [`MemFault`] on bad addresses.
    pub fn write_guest(&mut self, pid: u64, vaddr: u64, data: &[u8]) -> Result<(), MemFault> {
        let idx = self.index(pid).expect("unknown pid");
        let proc = &self.procs[idx];
        proc.aspace.write_bytes(&mut self.phys, vaddr, data)
    }

    /// Reads the per-byte taint shadow of a guest buffer.
    ///
    /// # Errors
    ///
    /// Propagates the guest [`MemFault`] on bad addresses.
    pub fn read_guest_taint(&self, pid: u64, vaddr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        let proc = self.process(pid).expect("unknown pid");
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let paddr = proc.aspace.translate_read(vaddr + i)?;
            out.push(self.taint.mem().byte(paddr));
        }
        Ok(out)
    }

    /// Writes the per-byte taint shadow of a guest buffer (applying an
    /// incoming message's taint on the receiver).
    ///
    /// # Errors
    ///
    /// Propagates the guest [`MemFault`] on bad addresses.
    pub fn write_guest_taint(
        &mut self,
        pid: u64,
        vaddr: u64,
        masks: &[u8],
    ) -> Result<(), MemFault> {
        let idx = self.index(pid).expect("unknown pid");
        for (i, m) in masks.iter().enumerate() {
            let paddr = self.procs[idx].aspace.translate_read(vaddr + i as u64)?;
            self.taint.mem_mut().set_byte(paddr, *m);
        }
        Ok(())
    }

    /// Reads the per-byte fault provenance of a guest buffer.
    ///
    /// # Errors
    ///
    /// Propagates the guest [`MemFault`] on bad addresses.
    pub fn read_guest_prov(
        &self,
        pid: u64,
        vaddr: u64,
        len: u64,
    ) -> Result<Vec<chaser_taint::ProvSet>, MemFault> {
        let proc = self.process(pid).expect("unknown pid");
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let paddr = proc.aspace.translate_read(vaddr + i)?;
            out.push(self.taint.prov_byte(paddr));
        }
        Ok(out)
    }

    /// Writes the per-byte fault provenance of a guest buffer (applying an
    /// incoming message's provenance on the receiver).
    ///
    /// # Errors
    ///
    /// Propagates the guest [`MemFault`] on bad addresses.
    pub fn write_guest_prov(
        &mut self,
        pid: u64,
        vaddr: u64,
        provs: &[chaser_taint::ProvSet],
    ) -> Result<(), MemFault> {
        let idx = self.index(pid).expect("unknown pid");
        for (i, p) in provs.iter().enumerate() {
            let paddr = self.procs[idx].aspace.translate_read(vaddr + i as u64)?;
            self.taint.set_prov_byte(paddr, *p);
        }
        Ok(())
    }

    /// The node's taint state.
    pub fn taint(&self) -> &TaintState {
        &self.taint
    }

    /// Mutable taint state.
    pub fn taint_mut(&mut self) -> &mut TaintState {
        &mut self.taint
    }

    /// Installed hooks.
    pub fn hooks(&self) -> &NodeHooks {
        &self.hooks
    }

    /// Mutable hooks (install injectors, tracers, VMI sinks, fn hooks).
    pub fn hooks_mut(&mut self) -> &mut NodeHooks {
        &mut self.hooks
    }

    /// Flushes the translation cache (the overlay only — a shared base
    /// layer installed via [`Node::install_base_cache`] survives).
    pub fn flush_cache(&mut self) {
        self.cache.flush();
    }

    /// Installs a shared base layer of clean translation blocks, typically
    /// sealed from a golden run of the same program set. Subsequent
    /// translation lookups serve validated clean blocks from it instead of
    /// retranslating.
    pub fn install_base_cache(&mut self, base: Arc<BaseLayer>) {
        self.cache.set_base(base);
    }

    /// Freezes this node's clean translated blocks into an immutable base
    /// layer shareable across nodes and threads.
    pub fn seal_cache(&self) -> Arc<BaseLayer> {
        self.cache.seal()
    }

    /// Translation-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drains the taint events buffered since the last drain, in execution
    /// order. Events only accumulate while `hooks.taint_events` is set.
    pub fn take_taint_events(&mut self) -> Vec<BufferedTaintEvent> {
        std::mem::take(&mut self.taint_buf)
    }

    /// Sum of retired instructions over all processes on this node.
    pub fn total_icount(&self) -> u64 {
        self.procs.iter().map(|p| p.icount).sum()
    }

    /// Copy-on-write / dirty-page counters of this node's guest RAM.
    pub fn mem_stats(&self) -> MemStats {
        self.phys.stats()
    }

    /// Visits every resident physical page in address order (for state
    /// digests; see [`PhysMemory::for_each_resident_page`]).
    pub fn for_each_resident_page(&self, f: impl FnMut(u64, &[u8])) {
        self.phys.for_each_resident_page(f)
    }

    /// Freezes this node into a [`NodeSnapshot`]: guest RAM as `Arc`-shared
    /// pages, the full process table, and the taint shadow state. Hooks and
    /// the translation cache are *not* captured — hooks are per-run wiring
    /// (and not `Send`), and translations are derived state a restored node
    /// rebuilds or adopts from the shared base layer.
    pub fn snapshot(&mut self) -> NodeSnapshot {
        NodeSnapshot {
            id: self.id,
            phys: self.phys.snapshot(),
            procs: self.procs.clone(),
            taint: self.taint.clone(),
            next_pid: self.next_pid,
        }
    }

    /// Reconstructs a node from a snapshot. Captured pages are adopted
    /// zero-copy; the node starts with a fresh translation cache, no hooks
    /// and an unlimited instruction budget — the restorer wires those the
    /// same way a cold run does.
    pub fn from_snapshot(snap: &NodeSnapshot) -> Node {
        Node {
            id: snap.id,
            phys: PhysMemory::from_snapshot(&snap.phys),
            procs: snap.procs.clone(),
            cache: TbCache::new(),
            taint: snap.taint.clone(),
            hooks: NodeHooks::default(),
            next_pid: snap.next_pid,
            insn_budget: u64::MAX,
            tuning: ExecTuning::default(),
            engine_stats: EngineStats::default(),
            taint_buf: Vec::new(),
        }
    }

    /// Re-fires `on_process_created` for process `pid`. A restored node
    /// already holds its process table, so VMI consumers wired after the
    /// restore (injectors arming on a target program name) would otherwise
    /// never see the creations they key on. The caller replays in the
    /// original creation order — for a cluster that is rank order, which
    /// interleaves across nodes.
    pub fn replay_vmi_creation(&mut self, pid: u64) {
        let Some(proc) = self.process(pid) else {
            return;
        };
        let name = proc.name().to_string();
        let sinks = self.hooks.vmi.clone();
        let mut action = VmiAction::NONE;
        for sink in &sinks {
            action = action.merge(sink.lock().on_process_created(self.id, pid, &name));
        }
        if action.flush_tb {
            self.cache.flush();
        }
    }
}

/// A frozen image of one node, cheap to clone and shareable across worker
/// threads (`Arc`-backed pages). Captures memory, processes and taint;
/// excludes hooks and the translation cache (see [`Node::snapshot`]).
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    id: u32,
    phys: MemSnapshot,
    procs: Vec<Process>,
    taint: TaintState,
    next_pid: u64,
}

impl NodeSnapshot {
    /// Number of resident guest-RAM pages captured.
    pub fn resident_pages(&self) -> u64 {
        self.phys.resident_pages()
    }
}

/// Writes bytes through read translation only — the kernel loader may write
/// into read-only/executable mappings.
fn poke(aspace: &AddressSpace, phys: &mut PhysMemory, vaddr: u64, data: &[u8]) {
    let mut cur = vaddr;
    let mut off = 0usize;
    while off < data.len() {
        let paddr = aspace
            .translate_read(cur)
            .expect("loader writes mapped pages");
        let in_page = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min(data.len() - off);
        phys.write_bytes(paddr, &data[off..off + in_page]);
        cur += in_page as u64;
        off += in_page;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_isa::{Asm, Cond, FReg, Reg};

    fn run_to_exit(node: &mut Node, pid: u64) -> ExitStatus {
        loop {
            match node.run_slice(pid, 100_000) {
                SliceExit::Exited(status) => return status,
                SliceExit::QuantumExpired => continue,
                other => panic!("unexpected slice exit: {other:?}"),
            }
        }
    }

    #[test]
    fn arithmetic_program_exits_with_result() {
        let mut a = Asm::new("sum");
        a.movi(Reg::R1, 0);
        a.movi(Reg::R2, 1);
        a.label("loop");
        a.add(Reg::R1, Reg::R2);
        a.addi(Reg::R2, 1);
        a.cmpi(Reg::R2, 10);
        a.jcc(Cond::Le, "loop");
        a.exit_with(Reg::R1);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        assert_eq!(run_to_exit(&mut node, pid), ExitStatus::Exited(55));
    }

    #[test]
    fn insn_budget_binds_before_quantum_and_resumes_cleanly() {
        let mut a = Asm::new("sum");
        a.movi(Reg::R1, 0);
        a.movi(Reg::R2, 1);
        a.label("loop");
        a.add(Reg::R1, Reg::R2);
        a.addi(Reg::R2, 1);
        a.cmpi(Reg::R2, 10);
        a.jcc(Cond::Le, "loop");
        a.exit_with(Reg::R1);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        node.set_insn_budget(5);
        assert_eq!(node.run_slice(pid, 100_000), SliceExit::BudgetExhausted);
        assert_eq!(node.process(pid).expect("alive").icount, 5);
        // Lifting the budget resumes at the interrupted pc with identical
        // semantics: the program still computes 55.
        node.set_insn_budget(u64::MAX);
        assert_eq!(run_to_exit(&mut node, pid), ExitStatus::Exited(55));
    }

    #[test]
    fn fp_program_computes_dot_product() {
        let mut a = Asm::new("dot");
        a.data_f64("x", &[1.0, 2.0, 3.0]);
        a.data_f64("y", &[4.0, 5.0, 6.0]);
        a.lea(Reg::R1, "x");
        a.lea(Reg::R2, "y");
        a.movi(Reg::R3, 0); // i
        a.fmovi(FReg::F0, 0.0); // acc
        a.label("loop");
        a.fldx(FReg::F1, Reg::R1, Reg::R3);
        a.fldx(FReg::F2, Reg::R2, Reg::R3);
        a.fmul(FReg::F1, FReg::F2);
        a.fadd(FReg::F0, FReg::F1);
        a.addi(Reg::R3, 1);
        a.cmpi(Reg::R3, 3);
        a.jcc(Cond::Lt, "loop");
        a.cvtfi(Reg::R1, FReg::F0);
        a.hypercall(chaser_isa::abi::SYS_EXIT);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        // 1*4 + 2*5 + 3*6 = 32
        assert_eq!(run_to_exit(&mut node, pid), ExitStatus::Exited(32));
    }

    #[test]
    fn call_and_ret_use_the_stack() {
        let mut a = Asm::new("callret");
        a.set_entry("main");
        a.label("double");
        a.add(Reg::R1, Reg::R1);
        a.ret();
        a.label("main");
        a.movi(Reg::R1, 21);
        a.call("double");
        a.exit_with(Reg::R1);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        assert_eq!(run_to_exit(&mut node, pid), ExitStatus::Exited(42));
    }

    #[test]
    fn unmapped_load_raises_sigsegv() {
        let mut a = Asm::new("segv");
        a.movi(Reg::R1, 0x6666_0000);
        a.ld(Reg::R2, Reg::R1, 0);
        a.exit(0);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        assert_eq!(
            run_to_exit(&mut node, pid),
            ExitStatus::Signaled(crate::Signal::Segv)
        );
    }

    #[test]
    fn divide_by_zero_raises_sigfpe() {
        let mut a = Asm::new("fpe");
        a.movi(Reg::R1, 10);
        a.movi(Reg::R2, 0);
        a.divs(Reg::R1, Reg::R2);
        a.exit(0);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        assert_eq!(
            run_to_exit(&mut node, pid),
            ExitStatus::Signaled(crate::Signal::Fpe)
        );
    }

    #[test]
    fn jumping_into_data_raises_a_signal() {
        let mut a = Asm::new("wild");
        a.data_u64("junk", &[u64::MAX; 4]);
        a.lea(Reg::R1, "junk");
        a.callr(Reg::R1);
        a.exit(0);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        // Data pages are not executable: fetch fault → SIGSEGV.
        assert_eq!(
            run_to_exit(&mut node, pid),
            ExitStatus::Signaled(crate::Signal::Segv)
        );
    }

    #[test]
    fn stdout_and_output_files_are_captured() {
        let mut a = Asm::new("writer");
        a.movi(Reg::R1, chaser_isa::abi::FD_STDOUT as i64);
        a.movi(Reg::R2, 123);
        a.hypercall(chaser_isa::abi::SYS_WRITE_I64);
        a.movi(Reg::R1, chaser_isa::abi::FD_OUTPUT as i64);
        a.fmovi(FReg::F0, 1.5);
        a.movfr(Reg::R2, FReg::F0);
        a.hypercall(chaser_isa::abi::SYS_WRITE_F64);
        a.exit(0);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        assert!(run_to_exit(&mut node, pid).is_success());
        let files = &node.process(pid).expect("proc").files;
        assert_eq!(files.stdout, b"123\n");
        assert_eq!(files.output, 1.5f64.to_bits().to_le_bytes());
    }

    #[test]
    fn sbrk_grows_the_heap() {
        let mut a = Asm::new("heap");
        a.movi(Reg::R1, 4096 * 3);
        a.hypercall(chaser_isa::abi::SYS_SBRK);
        a.mov(Reg::R3, Reg::R0); // old brk
        a.movi(Reg::R2, 777);
        a.st(Reg::R2, Reg::R3, 8192);
        a.ld(Reg::R4, Reg::R3, 8192);
        a.exit_with(Reg::R4);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        assert_eq!(run_to_exit(&mut node, pid), ExitStatus::Exited(777));
    }

    #[test]
    fn quantum_expiry_preserves_progress() {
        let mut a = Asm::new("long");
        a.movi(Reg::R1, 0);
        a.movi(Reg::R2, 0);
        a.label("loop");
        a.addi(Reg::R1, 1);
        a.addi(Reg::R2, 1);
        a.cmpi(Reg::R2, 10_000);
        a.jcc(Cond::Lt, "loop");
        a.exit_with(Reg::R1);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        let mut slices = 0;
        let status = loop {
            match node.run_slice(pid, 1000) {
                SliceExit::Exited(status) => break status,
                SliceExit::QuantumExpired => slices += 1,
                other => panic!("unexpected: {other:?}"),
            }
        };
        assert_eq!(status, ExitStatus::Exited(10_000));
        assert!(slices >= 10, "should have taken many slices, got {slices}");
    }

    #[test]
    fn mpi_hypercall_blocks_and_completes() {
        let mut a = Asm::new("mpi");
        a.hypercall(chaser_isa::abi::MPI_COMM_RANK);
        a.exit_with(Reg::R0);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        let exit = node.run_slice(pid, 1000);
        let SliceExit::MpiCall(req) = exit else {
            panic!("expected MPI call, got {exit:?}");
        };
        assert_eq!(req.num, chaser_isa::abi::MPI_COMM_RANK);
        assert_eq!(
            node.process(pid).expect("proc").state,
            ProcState::BlockedMpi
        );
        // Scheduling a blocked process reports Blocked.
        assert_eq!(node.run_slice(pid, 1000), SliceExit::Blocked);
        node.complete_mpi(pid, 3);
        assert_eq!(run_to_exit(&mut node, pid), ExitStatus::Exited(3));
    }

    #[test]
    fn guest_memory_round_trip_via_node_api() {
        let mut a = Asm::new("buf");
        a.bss("buf", 64);
        a.label("spin");
        a.hypercall(chaser_isa::abi::MPI_BARRIER); // park the process
        a.exit(0);
        let prog = a.assemble().expect("assemble");
        let buf_addr = prog.symbol("buf").expect("buf");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        assert!(matches!(node.run_slice(pid, 100), SliceExit::MpiCall(_)));
        node.write_guest(pid, buf_addr, &[1, 2, 3, 4])
            .expect("write");
        assert_eq!(
            node.read_guest(pid, buf_addr, 4).expect("read"),
            vec![1, 2, 3, 4]
        );
        node.write_guest_taint(pid, buf_addr, &[0xff, 0, 0xff, 0])
            .expect("taint");
        assert_eq!(
            node.read_guest_taint(pid, buf_addr, 4).expect("read taint"),
            vec![0xff, 0, 0xff, 0]
        );
        assert_eq!(node.taint().mem().tainted_bytes(), 2);
    }
}

#[cfg(test)]
mod more_engine_tests {
    use super::*;
    use crate::kernel::Signal;
    use chaser_isa::{abi, Asm, FReg, Reg};

    fn run(prog: &chaser_isa::Program) -> (Node, u64, ExitStatus) {
        let mut node = Node::new(0);
        let pid = node.spawn(prog).expect("spawn");
        loop {
            match node.run_slice(pid, 1_000_000) {
                SliceExit::Exited(status) => return (node, pid, status),
                SliceExit::QuantumExpired => continue,
                other => panic!("unexpected slice exit: {other:?}"),
            }
        }
    }

    #[test]
    fn push_pop_round_trip_and_stack_depth() {
        let mut a = Asm::new("stack");
        a.movi(Reg::R1, 111);
        a.movi(Reg::R2, 222);
        a.push(Reg::R1);
        a.push(Reg::R2);
        a.pop(Reg::R3); // 222
        a.pop(Reg::R4); // 111
        a.sub(Reg::R3, Reg::R4); // 111
        a.exit_with(Reg::R3);
        let (_, _, status) = run(&a.assemble().expect("assemble"));
        assert_eq!(status, ExitStatus::Exited(111));
    }

    #[test]
    fn unsigned_ops_and_remainder() {
        let mut a = Asm::new("uops");
        a.movi(Reg::R1, 17);
        a.movi(Reg::R2, 5);
        a.mov(Reg::R3, Reg::R1);
        a.divu(Reg::R3, Reg::R2); // 3
        a.mov(Reg::R4, Reg::R1);
        a.rem(Reg::R4, Reg::R2); // 2
        a.muli(Reg::R3, 10);
        a.add(Reg::R3, Reg::R4); // 32
        a.exit_with(Reg::R3);
        let (_, _, status) = run(&a.assemble().expect("assemble"));
        assert_eq!(status, ExitStatus::Exited(32));
    }

    #[test]
    fn fp_min_max_sqrt_and_cvt() {
        let mut a = Asm::new("fpops");
        a.fmovi(FReg::F0, 9.0);
        a.fsqrt(FReg::F0); // 3.0
        a.fmovi(FReg::F1, -5.0);
        a.fmax(FReg::F0, FReg::F1); // 3.0
        a.fmin(FReg::F1, FReg::F0); // -5.0
        a.fsub(FReg::F0, FReg::F1); // 8.0
        a.cvtfi(Reg::R1, FReg::F0);
        a.hypercall(abi::SYS_EXIT);
        let (_, _, status) = run(&a.assemble().expect("assemble"));
        assert_eq!(status, ExitStatus::Exited(8));
    }

    #[test]
    fn sys_clock_returns_monotonic_icount() {
        let mut a = Asm::new("clock");
        a.hypercall(abi::SYS_CLOCK);
        a.mov(Reg::R7, Reg::R0);
        a.nop();
        a.nop();
        a.hypercall(abi::SYS_CLOCK);
        a.sub(Reg::R0, Reg::R7);
        a.exit_with(Reg::R0);
        let (_, _, status) = run(&a.assemble().expect("assemble"));
        // nop, nop, hypercall, mov retired between the two reads... the
        // exact delta is the instruction distance: mov+nop+nop+hcall = 4.
        assert_eq!(status, ExitStatus::Exited(4));
    }

    #[test]
    fn unknown_kernel_call_is_sigill() {
        let mut a = Asm::new("badcall");
        a.hypercall(42); // unassigned kernel number
        a.exit(0);
        let (_, _, status) = run(&a.assemble().expect("assemble"));
        assert_eq!(status, ExitStatus::Signaled(Signal::Ill));
    }

    #[test]
    fn writes_to_unknown_fds_are_ignored() {
        let mut a = Asm::new("badfd");
        a.movi(Reg::R1, 99); // not a real fd
        a.movi(Reg::R2, 7);
        a.hypercall(abi::SYS_WRITE_I64);
        a.exit(0);
        let (node, pid, status) = run(&a.assemble().expect("assemble"));
        assert!(status.is_success());
        let files = &node.process(pid).expect("proc").files;
        assert!(files.stdout.is_empty());
        assert!(files.output.is_empty());
    }

    #[test]
    fn stack_overflow_is_sigsegv() {
        // Push in an endless loop: sp walks off the mapped stack.
        let mut a = Asm::new("overflow");
        a.label("spin");
        a.push(Reg::R1);
        a.jmp("spin");
        let (_, _, status) = run(&a.assemble().expect("assemble"));
        assert_eq!(status, ExitStatus::Signaled(Signal::Segv));
    }

    fn loop_prog(iters: i64) -> chaser_isa::Program {
        let mut a = Asm::new("hotloop");
        a.data_u64("buf", &[0; 8]);
        a.lea(Reg::R5, "buf");
        a.movi(Reg::R1, 0);
        a.label("loop");
        a.ld(Reg::R2, Reg::R5, 0);
        a.add(Reg::R2, Reg::R1);
        a.st(Reg::R2, Reg::R5, 0);
        a.addi(Reg::R1, 1);
        a.cmpi(Reg::R1, iters);
        a.jcc(chaser_isa::Cond::Lt, "loop");
        a.ld(Reg::R0, Reg::R5, 0);
        a.exit_with(Reg::R0);
        a.assemble().expect("assemble")
    }

    fn run_tuned(tuning: ExecTuning) -> (Node, ExitStatus) {
        let mut node = Node::new(0);
        node.set_exec_tuning(tuning);
        let pid = node.spawn(&loop_prog(100)).expect("spawn");
        let status = loop {
            match node.run_slice(pid, 1000) {
                SliceExit::Exited(s) => break s,
                SliceExit::QuantumExpired => continue,
                other => panic!("unexpected slice exit: {other:?}"),
            }
        };
        (node, status)
    }

    #[test]
    fn tb_chaining_hits_links_and_preserves_results() {
        // Superblocks off in both arms: fusion absorbs chain follows, and
        // this test isolates the chaining ablation itself.
        let on = ExecTuning {
            superblocks: false,
            ..ExecTuning::default()
        };
        let off = ExecTuning {
            tb_chaining: false,
            taint_fast_path: false,
            superblocks: false,
        };
        let (chained, s1) = run_tuned(on);
        let (unchained, s2) = run_tuned(off);
        assert_eq!(s1, ExitStatus::Exited(4950));
        assert_eq!(s2, s1, "ablation must not change the outcome");
        let cs = chained.engine_stats();
        let us = unchained.engine_stats();
        assert!(cs.tb_chain_hits > 50, "loop re-dispatch must follow links");
        assert_eq!(us.tb_chain_hits, 0, "knob off must never chain");
        // Chaining removes hash lookups: the chained run does strictly
        // fewer cache lookups for the same instruction stream.
        assert!(chained.cache_stats().lookups < unchained.cache_stats().lookups);
        // With no taint anywhere, every memory op takes the fast path.
        assert!(cs.fast_path_insns > 0);
        assert_eq!(cs.slow_path_insns, 0);
        // Knob off: every memory op pays the full shadow walk.
        assert_eq!(us.fast_path_insns, 0);
        assert!(us.slow_path_insns > 0);
    }

    /// Superblock formation must be observationally inert: the hot loop
    /// produces the same outcome and retires the same instruction stream
    /// with the knob on or off — only the dispatch accounting differs.
    #[test]
    fn superblocks_form_on_hot_loops_and_preserve_results() {
        let (fused, s1) = run_tuned(ExecTuning::default());
        let (plain, s2) = run_tuned(ExecTuning {
            superblocks: false,
            ..ExecTuning::default()
        });
        assert_eq!(s1, ExitStatus::Exited(4950));
        assert_eq!(s2, s1, "the knob must not change the outcome");
        let fs = fused.engine_stats();
        let ps = plain.engine_stats();
        assert!(fs.superblocks_formed >= 1, "hot self-loop must fuse");
        assert!(fs.superblock_execs > 0, "the fused trace must actually run");
        assert_eq!(ps.superblocks_formed, 0, "knob off must never fuse");
        assert_eq!(ps.superblock_execs, 0);
        // Each fused execution covers several chain follows, so the loop
        // re-dispatches strictly less often.
        assert!(fs.tb_chain_hits < ps.tb_chain_hits);
        // Identical dynamic instruction stream: the per-path retire
        // counters match exactly.
        assert_eq!(fs.fast_path_insns, ps.fast_path_insns);
        assert_eq!(fs.slow_path_insns, ps.slow_path_insns);
    }

    /// Injection flipping the taint regime *inside* a fused trace must
    /// bail out at the exact architectural position: outcome (here the
    /// final icount via SYS_CLOCK), taint reach, and retired-instruction
    /// accounting all match the superblocks-off run byte for byte.
    #[test]
    fn injection_mid_superblock_bails_and_matches_unfused_run() {
        use crate::hooks::{GuestCtx, InjectAction, InjectSink, NodeTranslateHook};
        use chaser_isa::Instruction;
        use chaser_taint::TaintMask;
        use parking_lot::Mutex;

        struct TargetStores;
        impl NodeTranslateHook for TargetStores {
            fn inject_point(&self, _n: u32, _p: u64, _pc: u64, insn: &Instruction) -> Option<u64> {
                matches!(insn, Instruction::St { .. }).then_some(1)
            }
        }
        struct TaintR2Late {
            fired: u32,
        }
        impl InjectSink for TaintR2Late {
            fn on_inject_point(
                &mut self,
                _point: u64,
                _insn: &Instruction,
                ctx: &mut GuestCtx<'_>,
            ) -> InjectAction {
                // Fire well past SB_HOT_THRESHOLD follows so the taint
                // appears while the fused trace is executing.
                if self.fired == 40 {
                    ctx.taint_reg(Reg::R2, TaintMask::bit(0));
                }
                self.fired += 1;
                InjectAction::default()
            }
        }

        let mut a = Asm::new("sbflip");
        a.bss("buf", 64);
        a.lea(Reg::R5, "buf");
        a.movi(Reg::R1, 0);
        a.label("loop");
        a.ld(Reg::R2, Reg::R5, 0);
        a.add(Reg::R2, Reg::R1);
        a.st(Reg::R2, Reg::R5, 0);
        a.addi(Reg::R1, 1);
        a.cmpi(Reg::R1, 100);
        a.jcc(chaser_isa::Cond::Lt, "loop");
        a.hypercall(abi::SYS_CLOCK);
        a.exit_with(Reg::R0);
        let prog = a.assemble().expect("assemble");

        let run_with = |tuning: ExecTuning| {
            let mut node = Node::new(0);
            node.set_exec_tuning(tuning);
            node.hooks_mut().translate = Some(Arc::new(TargetStores));
            let sink = Arc::new(Mutex::new(TaintR2Late { fired: 0 }));
            node.hooks_mut().inject = Some(sink.clone());
            let pid = node.spawn(&prog).expect("spawn");
            let status = loop {
                match node.run_slice(pid, 1000) {
                    SliceExit::Exited(s) => break s,
                    SliceExit::QuantumExpired => continue,
                    other => panic!("unexpected slice exit: {other:?}"),
                }
            };
            let fired = sink.lock().fired;
            (node, status, fired)
        };

        let (fused, s_on, fired_on) = run_with(ExecTuning::default());
        let (plain, s_off, fired_off) = run_with(ExecTuning {
            superblocks: false,
            ..ExecTuning::default()
        });
        // Exact icount: SYS_CLOCK read at exit must agree to the insn.
        assert_eq!(s_on, s_off, "fused bail-out must not perturb icount");
        assert!(matches!(s_on, ExitStatus::Exited(n) if n > 0));
        assert_eq!(fired_on, 100, "one callback per store execution");
        assert_eq!(fired_off, fired_on);
        assert_eq!(
            fused.taint().mem().tainted_bytes(),
            plain.taint().mem().tainted_bytes(),
            "injected taint must reach the same shadow bytes"
        );
        let fs = fused.engine_stats();
        let ps = plain.engine_stats();
        assert!(fs.superblocks_formed >= 1, "the hot loop must fuse");
        assert!(
            fs.superblock_bailouts >= 1,
            "the regime flip must be charged as a superblock bail-out"
        );
        assert_eq!(ps.superblocks_formed, 0);
        assert_eq!(ps.superblock_bailouts, 0);
        assert_eq!(fs.fast_path_insns, ps.fast_path_insns);
        assert_eq!(fs.slow_path_insns, ps.slow_path_insns);
    }

    #[test]
    fn taint_fast_path_flips_to_slow_when_taint_appears() {
        let mut a = Asm::new("flip");
        a.bss("buf", 64);
        a.lea(Reg::R5, "buf");
        a.ld(Reg::R2, Reg::R5, 0); // fast: shadow idle
        a.hypercall(chaser_isa::abi::MPI_BARRIER); // park for taint write
        a.ld(Reg::R3, Reg::R5, 0); // slow: taint is live now
        a.exit(0);
        let prog = a.assemble().expect("assemble");
        let buf = prog.symbol("buf").expect("buf");

        let mut node = Node::new(0);
        let pid = node.spawn(&prog).expect("spawn");
        assert!(matches!(node.run_slice(pid, 100), SliceExit::MpiCall(_)));
        let before = node.engine_stats();
        assert!(before.fast_path_insns >= 1);
        assert_eq!(before.slow_path_insns, 0);

        node.write_guest_taint(pid, buf, &[0xff]).expect("taint");
        node.complete_mpi(pid, 0);
        let status = loop {
            match node.run_slice(pid, 100) {
                SliceExit::Exited(s) => break s,
                SliceExit::QuantumExpired => continue,
                other => panic!("unexpected: {other:?}"),
            }
        };
        assert!(status.is_success());
        let after = node.engine_stats();
        assert!(
            after.slow_path_insns >= 1,
            "live taint must force the slow path"
        );
        // The tainted load must still see its mask.
        assert!(node.taint().mem().tainted_bytes() > 0);
    }

    /// An injection callback is the one in-block taint source: firing
    /// mid-block must drop the engine out of the fully-clean regime, and
    /// the injected taint must propagate through the rest of the same
    /// block — a store *after* the callback carries it into shadow memory.
    #[test]
    fn injection_mid_block_leaves_the_clean_regime() {
        use crate::hooks::{GuestCtx, InjectAction, InjectSink, NodeTranslateHook};
        use chaser_isa::Instruction;
        use chaser_taint::TaintMask;
        use parking_lot::Mutex;

        struct TargetStores;
        impl NodeTranslateHook for TargetStores {
            fn inject_point(&self, _n: u32, _p: u64, _pc: u64, insn: &Instruction) -> Option<u64> {
                matches!(insn, Instruction::St { .. }).then_some(1)
            }
        }
        struct TaintR2 {
            fired: u32,
        }
        impl InjectSink for TaintR2 {
            fn on_inject_point(
                &mut self,
                _point: u64,
                _insn: &Instruction,
                ctx: &mut GuestCtx<'_>,
            ) -> InjectAction {
                if self.fired == 0 {
                    ctx.taint_reg(Reg::R2, TaintMask::bit(0));
                }
                self.fired += 1;
                InjectAction::default()
            }
        }

        // One straight-line block: the load runs clean, the callback on
        // the store taints R2 right before it executes.
        let mut a = Asm::new("inject");
        a.bss("buf", 64);
        a.lea(Reg::R5, "buf");
        a.ld(Reg::R2, Reg::R5, 0);
        a.st(Reg::R2, Reg::R5, 8);
        a.exit(0);
        let prog = a.assemble().expect("assemble");

        let mut node = Node::new(0);
        node.hooks_mut().translate = Some(Arc::new(TargetStores));
        let sink = Arc::new(Mutex::new(TaintR2 { fired: 0 }));
        node.hooks_mut().inject = Some(sink.clone());
        let pid = node.spawn(&prog).expect("spawn");
        let status = loop {
            match node.run_slice(pid, 100_000) {
                SliceExit::Exited(s) => break s,
                SliceExit::QuantumExpired => continue,
                other => panic!("unexpected slice exit: {other:?}"),
            }
        };
        assert!(status.is_success());
        assert_eq!(sink.lock().fired, 1, "one store, one callback");
        // The injected taint reached shadow memory through the store that
        // followed the callback in the same block...
        assert!(node.taint().mem().tainted_bytes() > 0);
        // ...which is only possible off the clean regime: the tainted
        // store ran the full slow path.
        assert!(node.engine_stats().slow_path_insns >= 1);
    }

    /// The rank-parallel scheduler moves whole nodes onto worker threads;
    /// everything a node owns (memory, processes, cache, taint, hooks)
    /// must therefore be `Send`.
    #[test]
    fn nodes_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Node>();
        assert_send::<NodeSnapshot>();
    }

    #[test]
    fn cache_stats_reflect_execution() {
        let mut a = Asm::new("cachestats");
        a.movi(Reg::R1, 0);
        a.label("loop");
        a.addi(Reg::R1, 1);
        a.cmpi(Reg::R1, 100);
        a.jcc(chaser_isa::Cond::Lt, "loop");
        a.exit(0);
        let (node, _, status) = run(&a.assemble().expect("assemble"));
        assert!(status.is_success());
        let stats = node.cache_stats();
        assert!(stats.lookups > stats.misses, "the loop body must hit");
        assert!(stats.misses >= 2, "at least two distinct blocks translated");
    }
}

//! Property tests for the execution engine.
//!
//! 1. *Semantic equivalence*: running a random straight-line program through
//!    translate → IR-interpret must leave the CPU in the same state as a
//!    direct reference evaluation of the guest instructions.
//! 2. *Taint soundness*: with no injected fault the whole system stays
//!    taint-free; with an injected tainted register, the precise policy's
//!    final taint is a subset of the conservative policy's.

use chaser_isa::{Asm, CpuState, FReg, Flags, Instruction, Reg};
use chaser_taint::{TaintMask, TaintPolicy};
use chaser_vm::{ExitStatus, Node, SliceExit};
use proptest::prelude::*;

/// Registers the generator uses (avoids SP so the stack stays sane, and R1
/// because `exit_with` clobbers it).
const REGS: [Reg; 6] = [Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7];
const FREGS: [FReg; 4] = [FReg::F0, FReg::F1, FReg::F2, FReg::F3];

fn arb_reg() -> impl Strategy<Value = Reg> {
    proptest::sample::select(&REGS[..])
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    proptest::sample::select(&FREGS[..])
}

/// Straight-line, memory-free, trap-free instructions.
fn arb_insn() -> impl Strategy<Value = Instruction> {
    use Instruction as I;
    prop_oneof![
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::MovRR { dst, src }),
        (arb_reg(), -1000i64..1000).prop_map(|(dst, imm)| I::MovRI { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Add { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Sub { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Mul { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::And { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Or { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Xor { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Shl { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Shr { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Sar { dst, src }),
        (arb_reg(), 0i64..64).prop_map(|(dst, imm)| I::ShlI { dst, imm }),
        (arb_reg(), 0i64..64).prop_map(|(dst, imm)| I::ShrI { dst, imm }),
        (arb_reg(), 0i64..64).prop_map(|(dst, imm)| I::SarI { dst, imm }),
        (arb_reg(), -1000i64..1000).prop_map(|(dst, imm)| I::AddI { dst, imm }),
        (arb_reg(), -1000i64..1000).prop_map(|(dst, imm)| I::XorI { dst, imm }),
        arb_reg().prop_map(|dst| I::Neg { dst }),
        arb_reg().prop_map(|dst| I::Not { dst }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| I::Cmp { a, b }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::FMov { dst, src }),
        (arb_freg(), -100i32..100).prop_map(|(dst, v)| I::FMovI {
            dst,
            imm: v as f64 / 4.0
        }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fadd { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fsub { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fmul { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fdiv { dst, src }),
        arb_freg().prop_map(|dst| I::Fabs { dst }),
        arb_freg().prop_map(|dst| I::Fneg { dst }),
        (arb_freg(), arb_reg()).prop_map(|(dst, src)| I::CvtIF { dst, src }),
        (arb_reg(), arb_freg()).prop_map(|(dst, src)| I::MovFR { dst, src }),
        (arb_freg(), arb_reg()).prop_map(|(dst, src)| I::MovRF { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(a, b)| I::Fcmp { a, b }),
    ]
}

/// Direct reference semantics for the generated subset.
fn reference_step(cpu: &mut CpuState, insn: &Instruction) {
    use Instruction as I;
    match *insn {
        I::MovRR { dst, src } => cpu.set_reg(dst, cpu.reg(src)),
        I::MovRI { dst, imm } => cpu.set_reg(dst, imm as u64),
        I::Add { dst, src } => cpu.set_reg(dst, cpu.reg(dst).wrapping_add(cpu.reg(src))),
        I::Sub { dst, src } => cpu.set_reg(dst, cpu.reg(dst).wrapping_sub(cpu.reg(src))),
        I::Mul { dst, src } => cpu.set_reg(dst, cpu.reg(dst).wrapping_mul(cpu.reg(src))),
        I::And { dst, src } => cpu.set_reg(dst, cpu.reg(dst) & cpu.reg(src)),
        I::Or { dst, src } => cpu.set_reg(dst, cpu.reg(dst) | cpu.reg(src)),
        I::Xor { dst, src } => cpu.set_reg(dst, cpu.reg(dst) ^ cpu.reg(src)),
        I::Shl { dst, src } => cpu.set_reg(dst, cpu.reg(dst) << (cpu.reg(src) & 63)),
        I::Shr { dst, src } => cpu.set_reg(dst, cpu.reg(dst) >> (cpu.reg(src) & 63)),
        I::Sar { dst, src } => {
            cpu.set_reg(dst, ((cpu.reg(dst) as i64) >> (cpu.reg(src) & 63)) as u64)
        }
        I::ShlI { dst, imm } => cpu.set_reg(dst, cpu.reg(dst) << (imm as u64 & 63)),
        I::ShrI { dst, imm } => cpu.set_reg(dst, cpu.reg(dst) >> (imm as u64 & 63)),
        I::SarI { dst, imm } => {
            cpu.set_reg(dst, ((cpu.reg(dst) as i64) >> (imm as u64 & 63)) as u64)
        }
        I::AddI { dst, imm } => cpu.set_reg(dst, cpu.reg(dst).wrapping_add(imm as u64)),
        I::XorI { dst, imm } => cpu.set_reg(dst, cpu.reg(dst) ^ imm as u64),
        I::Neg { dst } => cpu.set_reg(dst, (cpu.reg(dst) as i64).wrapping_neg() as u64),
        I::Not { dst } => cpu.set_reg(dst, !cpu.reg(dst)),
        I::Cmp { a, b } => cpu.flags = Flags::from_int_cmp(cpu.reg(a), cpu.reg(b)),
        I::FMov { dst, src } => cpu.set_freg_bits(dst, cpu.freg_bits(src)),
        I::FMovI { dst, imm } => cpu.set_freg(dst, imm),
        I::Fadd { dst, src } => cpu.set_freg(dst, cpu.freg(dst) + cpu.freg(src)),
        I::Fsub { dst, src } => cpu.set_freg(dst, cpu.freg(dst) - cpu.freg(src)),
        I::Fmul { dst, src } => cpu.set_freg(dst, cpu.freg(dst) * cpu.freg(src)),
        I::Fdiv { dst, src } => cpu.set_freg(dst, cpu.freg(dst) / cpu.freg(src)),
        I::Fabs { dst } => cpu.set_freg(dst, cpu.freg(dst).abs()),
        I::Fneg { dst } => cpu.set_freg(dst, -cpu.freg(dst)),
        I::CvtIF { dst, src } => cpu.set_freg(dst, (cpu.reg(src) as i64) as f64),
        I::MovFR { dst, src } => cpu.set_reg(dst, cpu.freg_bits(src)),
        I::MovRF { dst, src } => cpu.set_freg_bits(dst, cpu.reg(src)),
        I::Fcmp { a, b } => cpu.flags = Flags::from_fp_cmp(cpu.freg(a), cpu.freg(b)),
        ref other => panic!("generator produced unsupported insn {other:?}"),
    }
}

fn build_program(insns: &[Instruction]) -> chaser_isa::Program {
    let mut a = Asm::new("prop");
    for insn in insns {
        a.insn(*insn);
    }
    a.exit(0);
    a.assemble().expect("assemble")
}

fn run_program(node: &mut Node, prog: &chaser_isa::Program) -> u64 {
    let pid = node.spawn(prog).expect("spawn");
    loop {
        match node.run_slice(pid, 1_000_000) {
            SliceExit::Exited(status) => {
                assert_eq!(status, ExitStatus::Exited(0));
                return pid;
            }
            SliceExit::QuantumExpired => continue,
            other => panic!("unexpected: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_reference_semantics(insns in proptest::collection::vec(arb_insn(), 1..60)) {
        let prog = build_program(&insns);
        let mut node = Node::new(0);
        let pid = run_program(&mut node, &prog);
        let engine_cpu = &node.process(pid).expect("proc").cpu;

        let mut reference = CpuState::new(prog.entry());
        for insn in &insns {
            reference_step(&mut reference, insn);
        }
        for r in REGS {
            prop_assert_eq!(engine_cpu.reg(r), reference.reg(r), "mismatch in {}", r);
        }
        for f in FREGS {
            prop_assert_eq!(
                engine_cpu.freg_bits(f),
                reference.freg_bits(f),
                "mismatch in {}", f
            );
        }
    }

    #[test]
    fn no_fault_means_no_taint(insns in proptest::collection::vec(arb_insn(), 1..60)) {
        let prog = build_program(&insns);
        let mut node = Node::new(0);
        run_program(&mut node, &prog);
        prop_assert!(node.taint().is_fully_clean());
    }

    #[test]
    fn precise_taint_is_subset_of_conservative(
        insns in proptest::collection::vec(arb_insn(), 1..60),
        seed_bit in 0u32..64,
    ) {
        let prog = build_program(&insns);
        let mut masks = Vec::new();
        for policy in [TaintPolicy::Precise, TaintPolicy::Conservative] {
            let mut node = Node::with_config(0, 16 << 20, policy);
            let pid = node.spawn(&prog).expect("spawn");
            // Seed taint: one bit of R2 is "faulty" from the start.
            node.taint_mut().set_reg(Reg::R2, TaintMask::bit(seed_bit));
            loop {
                match node.run_slice(pid, 1_000_000) {
                    SliceExit::Exited(_) => break,
                    SliceExit::QuantumExpired => continue,
                    other => panic!("unexpected: {other:?}"),
                }
            }
            let mut per_reg = Vec::new();
            for r in REGS {
                per_reg.push(node.taint().reg(r));
            }
            for f in FREGS {
                per_reg.push(node.taint().freg(f));
            }
            masks.push(per_reg);
        }
        for (p, c) in masks[0].iter().zip(&masks[1]) {
            prop_assert_eq!(p.0 & !c.0, 0, "precise {} ⊄ conservative {}", p, c);
        }
    }
}

//! Property tests for the layered translation cache.
//!
//! A node born with a warmed, `Arc`-shared base layer of clean translation
//! blocks must interpret random straight-line programs step-for-step
//! identically to a node translating everything fresh — including when a
//! VMI target match flushes the overlay at spawn, and when the overlay is
//! flushed mid-run (Chaser's disarm path). The warmed node must also serve
//! essentially every lookup from the base layer.

use chaser_isa::{Asm, FReg, Instruction, Reg};
use chaser_vm::{Node, SliceExit, VmiAction, VmiSink};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// Registers the generator uses (avoids SP so the stack stays sane, and R1
/// because `exit_with` clobbers it).
const REGS: [Reg; 6] = [Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7];
const FREGS: [FReg; 4] = [FReg::F0, FReg::F1, FReg::F2, FReg::F3];

fn arb_reg() -> impl Strategy<Value = Reg> {
    proptest::sample::select(&REGS[..])
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    proptest::sample::select(&FREGS[..])
}

/// Straight-line, memory-free, trap-free instructions (a representative
/// mix of integer, float and cross-bank moves).
fn arb_insn() -> impl Strategy<Value = Instruction> {
    use Instruction as I;
    prop_oneof![
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::MovRR { dst, src }),
        (arb_reg(), -1000i64..1000).prop_map(|(dst, imm)| I::MovRI { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Add { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Sub { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Mul { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Xor { dst, src }),
        (arb_reg(), -1000i64..1000).prop_map(|(dst, imm)| I::AddI { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| I::Cmp { a, b }),
        (arb_freg(), -100i32..100).prop_map(|(dst, v)| I::FMovI {
            dst,
            imm: v as f64 / 4.0
        }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fadd { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fmul { dst, src }),
        (arb_reg(), arb_freg()).prop_map(|(dst, src)| I::MovFR { dst, src }),
        (arb_freg(), arb_reg()).prop_map(|(dst, src)| I::MovRF { dst, src }),
    ]
}

fn build_program(insns: &[Instruction]) -> chaser_isa::Program {
    let mut a = Asm::new("prop");
    for insn in insns {
        a.insn(*insn);
    }
    a.exit(0);
    a.assemble().expect("assemble")
}

/// Runs `prog` to completion on a fresh node and returns the sealed base
/// layer its cache produced — the campaign warm-up in miniature. Warming
/// uses the same one-instruction slices as the lockstep runs below: TBs
/// are keyed by resume pc, so a warm-up only covers later runs that slice
/// on the same quantum (campaigns share one cluster quantum for exactly
/// this reason).
fn warm_base(prog: &chaser_isa::Program) -> std::sync::Arc<chaser_vm::BaseLayer> {
    let mut node = Node::new(0);
    let pid = node.spawn(prog).expect("spawn");
    while node.run_slice(pid, 1) == SliceExit::QuantumExpired {}
    node.seal_cache()
}

/// A VMI sink standing in for Chaser's target screening: any created
/// process matching the target name triggers a cache flush (which, with a
/// layered cache, clears only the overlay).
struct FlushOnTarget {
    target: &'static str,
    fired: u32,
}

impl VmiSink for FlushOnTarget {
    fn on_process_created(&mut self, _node: u32, _pid: u64, name: &str) -> VmiAction {
        if name == self.target {
            self.fired += 1;
            VmiAction::FLUSH
        } else {
            VmiAction::NONE
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fresh vs warmed-base interpretation, in lockstep one slice at a
    /// time, with a VMI target match flushing the warmed node's overlay
    /// right at spawn.
    #[test]
    fn warmed_base_matches_fresh_translation(
        insns in proptest::collection::vec(arb_insn(), 1..60),
    ) {
        let prog = build_program(&insns);
        let base = warm_base(&prog);

        let mut fresh = Node::new(0);
        let mut warmed = Node::new(0);
        warmed.install_base_cache(base);
        let sink = Arc::new(Mutex::new(FlushOnTarget { target: "prop", fired: 0 }));
        warmed.hooks_mut().vmi.push(sink.clone());

        let pf = fresh.spawn(&prog).expect("spawn fresh");
        let pw = warmed.spawn(&prog).expect("spawn warmed");
        prop_assert_eq!(sink.lock().fired, 1, "VMI did not screen the target");

        loop {
            let sf = fresh.run_slice(pf, 1);
            let sw = warmed.run_slice(pw, 1);
            prop_assert_eq!(&sf, &sw, "divergent slice exits");
            let cf = &fresh.process(pf).expect("proc").cpu;
            let cw = &warmed.process(pw).expect("proc").cpu;
            for r in REGS {
                prop_assert_eq!(cf.reg(r), cw.reg(r), "mismatch in {}", r);
            }
            for f in FREGS {
                prop_assert_eq!(cf.freg_bits(f), cw.freg_bits(f), "mismatch in {}", f);
            }
            if matches!(sf, SliceExit::Exited(_)) {
                break;
            }
        }

        // The warmed node never translated: every block came from the base
        // layer (first adoption and overlay re-hits both count as base hits).
        let stats = warmed.cache_stats();
        prop_assert_eq!(stats.misses, 0, "warmed node translated fresh blocks");
        prop_assert!(stats.base_hits > 0);
        prop_assert!(stats.base_hit_rate() > 0.9);
    }

    /// A mid-run overlay flush (Chaser disarming injection) must neither
    /// change interpretation nor force retranslation while the base holds.
    #[test]
    fn overlay_flush_mid_run_keeps_equivalence(
        insns in proptest::collection::vec(arb_insn(), 1..60),
        flush_after in 0u32..8,
    ) {
        let prog = build_program(&insns);
        let base = warm_base(&prog);

        let mut fresh = Node::new(0);
        let mut warmed = Node::new(0);
        warmed.install_base_cache(base);

        let pf = fresh.spawn(&prog).expect("spawn fresh");
        let pw = warmed.spawn(&prog).expect("spawn warmed");

        let mut step = 0u32;
        loop {
            if step == flush_after {
                warmed.flush_cache();
            }
            step += 1;
            let sf = fresh.run_slice(pf, 1);
            let sw = warmed.run_slice(pw, 1);
            prop_assert_eq!(&sf, &sw, "divergent slice exits");
            let cf = &fresh.process(pf).expect("proc").cpu;
            let cw = &warmed.process(pw).expect("proc").cpu;
            for r in REGS {
                prop_assert_eq!(cf.reg(r), cw.reg(r), "mismatch in {}", r);
            }
            for f in FREGS {
                prop_assert_eq!(cf.freg_bits(f), cw.freg_bits(f), "mismatch in {}", f);
            }
            if matches!(sf, SliceExit::Exited(_)) {
                break;
            }
        }

        let stats = warmed.cache_stats();
        prop_assert_eq!(stats.misses, 0, "base layer did not survive the flush");
        prop_assert!(stats.base_hit_rate() > 0.9);
    }
}

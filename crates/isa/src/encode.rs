//! Fixed-width binary encoding of guest instructions.
//!
//! Every instruction encodes to exactly [`INSN_LEN`] bytes:
//! `[opcode][a][b][c][imm: 8 bytes little-endian]`. A fixed width keeps
//! program-counter arithmetic trivial for the dynamic binary translator
//! while still forcing code to live in guest memory as bytes — which is what
//! lets a fault that corrupts a code pointer land in the middle of "text"
//! and die with an illegal-opcode signal, as on real hardware.

use crate::{Cond, FReg, Instruction, Reg};
use std::fmt;

/// The size in bytes of every encoded instruction.
pub const INSN_LEN: u64 = 12;

/// An error produced while decoding guest code bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than [`INSN_LEN`] bytes were available.
    Truncated,
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// A register field was out of range.
    BadRegister(u8),
    /// A condition-code field was out of range.
    BadCond(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction bytes truncated"),
            DecodeError::BadOpcode(op) => write!(f, "invalid opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "invalid register field {r}"),
            DecodeError::BadCond(c) => write!(f, "invalid condition field {c}"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const NOP: u8 = 0;
    pub const HALT: u8 = 1;
    pub const MOV_RR: u8 = 2;
    pub const MOV_RI: u8 = 3;
    pub const LD: u8 = 4;
    pub const ST: u8 = 5;
    pub const LD_IDX: u8 = 6;
    pub const ST_IDX: u8 = 7;
    pub const PUSH: u8 = 8;
    pub const POP: u8 = 9;
    pub const ADD: u8 = 10;
    pub const SUB: u8 = 11;
    pub const MUL: u8 = 12;
    pub const DIVS: u8 = 13;
    pub const DIVU: u8 = 14;
    pub const REM: u8 = 15;
    pub const AND: u8 = 16;
    pub const OR: u8 = 17;
    pub const XOR: u8 = 18;
    pub const SHL: u8 = 19;
    pub const SHR: u8 = 20;
    pub const SAR: u8 = 21;
    pub const ADD_I: u8 = 22;
    pub const SUB_I: u8 = 23;
    pub const MUL_I: u8 = 24;
    pub const AND_I: u8 = 25;
    pub const OR_I: u8 = 26;
    pub const XOR_I: u8 = 27;
    pub const SHL_I: u8 = 28;
    pub const SHR_I: u8 = 29;
    pub const SAR_I: u8 = 30;
    pub const NEG: u8 = 31;
    pub const NOT: u8 = 32;
    pub const CMP: u8 = 33;
    pub const CMP_I: u8 = 34;
    pub const JMP: u8 = 35;
    pub const JCC: u8 = 36;
    pub const CALL: u8 = 37;
    pub const CALL_R: u8 = 38;
    pub const RET: u8 = 39;
    pub const FMOV: u8 = 40;
    pub const FMOV_I: u8 = 41;
    pub const FLD: u8 = 42;
    pub const FST: u8 = 43;
    pub const FLD_IDX: u8 = 44;
    pub const FST_IDX: u8 = 45;
    pub const FADD: u8 = 46;
    pub const FSUB: u8 = 47;
    pub const FMUL: u8 = 48;
    pub const FDIV: u8 = 49;
    pub const FMIN: u8 = 50;
    pub const FMAX: u8 = 51;
    pub const FSQRT: u8 = 52;
    pub const FABS: u8 = 53;
    pub const FNEG: u8 = 54;
    pub const FCMP: u8 = 55;
    pub const CVT_IF: u8 = 56;
    pub const CVT_FI: u8 = 57;
    pub const MOV_FR: u8 = 58;
    pub const MOV_RF: u8 = 59;
    pub const HYPERCALL: u8 = 60;
}

fn words(opcode: u8, a: u8, b: u8, c: u8, imm: u64) -> [u8; INSN_LEN as usize] {
    let mut out = [0u8; INSN_LEN as usize];
    out[0] = opcode;
    out[1] = a;
    out[2] = b;
    out[3] = c;
    out[4..12].copy_from_slice(&imm.to_le_bytes());
    out
}

/// Encodes `insn` into its [`INSN_LEN`]-byte representation.
pub fn encode(insn: &Instruction) -> [u8; INSN_LEN as usize] {
    use Instruction as I;
    let r = |r: Reg| r.index() as u8;
    let f = |r: FReg| r.index() as u8;
    match *insn {
        I::Nop => words(op::NOP, 0, 0, 0, 0),
        I::Halt => words(op::HALT, 0, 0, 0, 0),
        I::MovRR { dst, src } => words(op::MOV_RR, r(dst), r(src), 0, 0),
        I::MovRI { dst, imm } => words(op::MOV_RI, r(dst), 0, 0, imm as u64),
        I::Ld { dst, base, off } => words(op::LD, r(dst), r(base), 0, off as i64 as u64),
        I::St { src, base, off } => words(op::ST, r(src), r(base), 0, off as i64 as u64),
        I::LdIdx { dst, base, idx } => words(op::LD_IDX, r(dst), r(base), r(idx), 0),
        I::StIdx { src, base, idx } => words(op::ST_IDX, r(src), r(base), r(idx), 0),
        I::Push { src } => words(op::PUSH, r(src), 0, 0, 0),
        I::Pop { dst } => words(op::POP, r(dst), 0, 0, 0),
        I::Add { dst, src } => words(op::ADD, r(dst), r(src), 0, 0),
        I::Sub { dst, src } => words(op::SUB, r(dst), r(src), 0, 0),
        I::Mul { dst, src } => words(op::MUL, r(dst), r(src), 0, 0),
        I::Divs { dst, src } => words(op::DIVS, r(dst), r(src), 0, 0),
        I::Divu { dst, src } => words(op::DIVU, r(dst), r(src), 0, 0),
        I::Rem { dst, src } => words(op::REM, r(dst), r(src), 0, 0),
        I::And { dst, src } => words(op::AND, r(dst), r(src), 0, 0),
        I::Or { dst, src } => words(op::OR, r(dst), r(src), 0, 0),
        I::Xor { dst, src } => words(op::XOR, r(dst), r(src), 0, 0),
        I::Shl { dst, src } => words(op::SHL, r(dst), r(src), 0, 0),
        I::Shr { dst, src } => words(op::SHR, r(dst), r(src), 0, 0),
        I::Sar { dst, src } => words(op::SAR, r(dst), r(src), 0, 0),
        I::AddI { dst, imm } => words(op::ADD_I, r(dst), 0, 0, imm as u64),
        I::SubI { dst, imm } => words(op::SUB_I, r(dst), 0, 0, imm as u64),
        I::MulI { dst, imm } => words(op::MUL_I, r(dst), 0, 0, imm as u64),
        I::AndI { dst, imm } => words(op::AND_I, r(dst), 0, 0, imm as u64),
        I::OrI { dst, imm } => words(op::OR_I, r(dst), 0, 0, imm as u64),
        I::XorI { dst, imm } => words(op::XOR_I, r(dst), 0, 0, imm as u64),
        I::ShlI { dst, imm } => words(op::SHL_I, r(dst), 0, 0, imm as u64),
        I::ShrI { dst, imm } => words(op::SHR_I, r(dst), 0, 0, imm as u64),
        I::SarI { dst, imm } => words(op::SAR_I, r(dst), 0, 0, imm as u64),
        I::Neg { dst } => words(op::NEG, r(dst), 0, 0, 0),
        I::Not { dst } => words(op::NOT, r(dst), 0, 0, 0),
        I::Cmp { a, b } => words(op::CMP, r(a), r(b), 0, 0),
        I::CmpI { a, imm } => words(op::CMP_I, r(a), 0, 0, imm as u64),
        I::Jmp { target } => words(op::JMP, 0, 0, 0, target),
        I::Jcc { cond, target } => words(op::JCC, cond.index() as u8, 0, 0, target),
        I::Call { target } => words(op::CALL, 0, 0, 0, target),
        I::CallR { target } => words(op::CALL_R, r(target), 0, 0, 0),
        I::Ret => words(op::RET, 0, 0, 0, 0),
        I::FMov { dst, src } => words(op::FMOV, f(dst), f(src), 0, 0),
        I::FMovI { dst, imm } => words(op::FMOV_I, f(dst), 0, 0, imm.to_bits()),
        I::FLd { dst, base, off } => words(op::FLD, f(dst), r(base), 0, off as i64 as u64),
        I::FSt { src, base, off } => words(op::FST, f(src), r(base), 0, off as i64 as u64),
        I::FLdIdx { dst, base, idx } => words(op::FLD_IDX, f(dst), r(base), r(idx), 0),
        I::FStIdx { src, base, idx } => words(op::FST_IDX, f(src), r(base), r(idx), 0),
        I::Fadd { dst, src } => words(op::FADD, f(dst), f(src), 0, 0),
        I::Fsub { dst, src } => words(op::FSUB, f(dst), f(src), 0, 0),
        I::Fmul { dst, src } => words(op::FMUL, f(dst), f(src), 0, 0),
        I::Fdiv { dst, src } => words(op::FDIV, f(dst), f(src), 0, 0),
        I::Fmin { dst, src } => words(op::FMIN, f(dst), f(src), 0, 0),
        I::Fmax { dst, src } => words(op::FMAX, f(dst), f(src), 0, 0),
        I::Fsqrt { dst } => words(op::FSQRT, f(dst), 0, 0, 0),
        I::Fabs { dst } => words(op::FABS, f(dst), 0, 0, 0),
        I::Fneg { dst } => words(op::FNEG, f(dst), 0, 0, 0),
        I::Fcmp { a, b } => words(op::FCMP, f(a), f(b), 0, 0),
        I::CvtIF { dst, src } => words(op::CVT_IF, f(dst), r(src), 0, 0),
        I::CvtFI { dst, src } => words(op::CVT_FI, r(dst), f(src), 0, 0),
        I::MovFR { dst, src } => words(op::MOV_FR, r(dst), f(src), 0, 0),
        I::MovRF { dst, src } => words(op::MOV_RF, f(dst), r(src), 0, 0),
        I::Hypercall { num } => words(op::HYPERCALL, 0, 0, 0, num as u64),
    }
}

/// Decodes one instruction from the start of `bytes`.
///
/// # Errors
///
/// Returns [`DecodeError`] if fewer than [`INSN_LEN`] bytes are available or
/// any field is malformed. The execution engine maps a decode failure to a
/// `SIGILL` guest signal — the fate of a corrupted instruction pointer.
pub fn decode(bytes: &[u8]) -> Result<Instruction, DecodeError> {
    use Instruction as I;
    if bytes.len() < INSN_LEN as usize {
        return Err(DecodeError::Truncated);
    }
    let (a, b, c) = (bytes[1], bytes[2], bytes[3]);
    let imm = u64::from_le_bytes(bytes[4..12].try_into().expect("sliced 8 bytes"));
    let reg = |x: u8| Reg::from_index(x as usize).ok_or(DecodeError::BadRegister(x));
    let freg = |x: u8| FReg::from_index(x as usize).ok_or(DecodeError::BadRegister(x));
    let off = imm as i64 as i32;
    let insn = match bytes[0] {
        op::NOP => I::Nop,
        op::HALT => I::Halt,
        op::MOV_RR => I::MovRR {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::MOV_RI => I::MovRI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::LD => I::Ld {
            dst: reg(a)?,
            base: reg(b)?,
            off,
        },
        op::ST => I::St {
            src: reg(a)?,
            base: reg(b)?,
            off,
        },
        op::LD_IDX => I::LdIdx {
            dst: reg(a)?,
            base: reg(b)?,
            idx: reg(c)?,
        },
        op::ST_IDX => I::StIdx {
            src: reg(a)?,
            base: reg(b)?,
            idx: reg(c)?,
        },
        op::PUSH => I::Push { src: reg(a)? },
        op::POP => I::Pop { dst: reg(a)? },
        op::ADD => I::Add {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::SUB => I::Sub {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::MUL => I::Mul {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::DIVS => I::Divs {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::DIVU => I::Divu {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::REM => I::Rem {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::AND => I::And {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::OR => I::Or {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::XOR => I::Xor {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::SHL => I::Shl {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::SHR => I::Shr {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::SAR => I::Sar {
            dst: reg(a)?,
            src: reg(b)?,
        },
        op::ADD_I => I::AddI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::SUB_I => I::SubI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::MUL_I => I::MulI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::AND_I => I::AndI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::OR_I => I::OrI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::XOR_I => I::XorI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::SHL_I => I::ShlI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::SHR_I => I::ShrI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::SAR_I => I::SarI {
            dst: reg(a)?,
            imm: imm as i64,
        },
        op::NEG => I::Neg { dst: reg(a)? },
        op::NOT => I::Not { dst: reg(a)? },
        op::CMP => I::Cmp {
            a: reg(a)?,
            b: reg(b)?,
        },
        op::CMP_I => I::CmpI {
            a: reg(a)?,
            imm: imm as i64,
        },
        op::JMP => I::Jmp { target: imm },
        op::JCC => I::Jcc {
            cond: Cond::from_index(a as usize).ok_or(DecodeError::BadCond(a))?,
            target: imm,
        },
        op::CALL => I::Call { target: imm },
        op::CALL_R => I::CallR { target: reg(a)? },
        op::RET => I::Ret,
        op::FMOV => I::FMov {
            dst: freg(a)?,
            src: freg(b)?,
        },
        op::FMOV_I => I::FMovI {
            dst: freg(a)?,
            imm: f64::from_bits(imm),
        },
        op::FLD => I::FLd {
            dst: freg(a)?,
            base: reg(b)?,
            off,
        },
        op::FST => I::FSt {
            src: freg(a)?,
            base: reg(b)?,
            off,
        },
        op::FLD_IDX => I::FLdIdx {
            dst: freg(a)?,
            base: reg(b)?,
            idx: reg(c)?,
        },
        op::FST_IDX => I::FStIdx {
            src: freg(a)?,
            base: reg(b)?,
            idx: reg(c)?,
        },
        op::FADD => I::Fadd {
            dst: freg(a)?,
            src: freg(b)?,
        },
        op::FSUB => I::Fsub {
            dst: freg(a)?,
            src: freg(b)?,
        },
        op::FMUL => I::Fmul {
            dst: freg(a)?,
            src: freg(b)?,
        },
        op::FDIV => I::Fdiv {
            dst: freg(a)?,
            src: freg(b)?,
        },
        op::FMIN => I::Fmin {
            dst: freg(a)?,
            src: freg(b)?,
        },
        op::FMAX => I::Fmax {
            dst: freg(a)?,
            src: freg(b)?,
        },
        op::FSQRT => I::Fsqrt { dst: freg(a)? },
        op::FABS => I::Fabs { dst: freg(a)? },
        op::FNEG => I::Fneg { dst: freg(a)? },
        op::FCMP => I::Fcmp {
            a: freg(a)?,
            b: freg(b)?,
        },
        op::CVT_IF => I::CvtIF {
            dst: freg(a)?,
            src: reg(b)?,
        },
        op::CVT_FI => I::CvtFI {
            dst: reg(a)?,
            src: freg(b)?,
        },
        op::MOV_FR => I::MovFR {
            dst: reg(a)?,
            src: freg(b)?,
        },
        op::MOV_RF => I::MovRF {
            dst: freg(a)?,
            src: reg(b)?,
        },
        op::HYPERCALL => I::Hypercall { num: imm as u16 },
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok(insn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Instruction> {
        use Instruction as I;
        vec![
            I::Nop,
            I::Halt,
            I::MovRR {
                dst: Reg::R1,
                src: Reg::R2,
            },
            I::MovRI {
                dst: Reg::R3,
                imm: -12345,
            },
            I::Ld {
                dst: Reg::R4,
                base: Reg::R5,
                off: -8,
            },
            I::St {
                src: Reg::R6,
                base: Reg::SP,
                off: 1024,
            },
            I::LdIdx {
                dst: Reg::R0,
                base: Reg::R1,
                idx: Reg::R2,
            },
            I::StIdx {
                src: Reg::R3,
                base: Reg::R4,
                idx: Reg::R5,
            },
            I::Push { src: Reg::R9 },
            I::Pop { dst: Reg::R10 },
            I::Add {
                dst: Reg::R1,
                src: Reg::R2,
            },
            I::ShlI {
                dst: Reg::R1,
                imm: 3,
            },
            I::Cmp {
                a: Reg::R1,
                b: Reg::R2,
            },
            I::CmpI {
                a: Reg::R1,
                imm: i64::MIN,
            },
            I::Jmp { target: 0x40_0000 },
            I::Jcc {
                cond: Cond::Uge,
                target: 0x40_000c,
            },
            I::Call {
                target: 0xdead_beef,
            },
            I::CallR { target: Reg::R7 },
            I::Ret,
            I::FMovI {
                dst: FReg::F2,
                imm: -0.5,
            },
            I::FLd {
                dst: FReg::F1,
                base: Reg::R2,
                off: 64,
            },
            I::FStIdx {
                src: FReg::F3,
                base: Reg::R4,
                idx: Reg::R5,
            },
            I::Fadd {
                dst: FReg::F0,
                src: FReg::F1,
            },
            I::Fsqrt { dst: FReg::F9 },
            I::Fcmp {
                a: FReg::F1,
                b: FReg::F2,
            },
            I::CvtIF {
                dst: FReg::F1,
                src: Reg::R1,
            },
            I::CvtFI {
                dst: Reg::R1,
                src: FReg::F1,
            },
            I::MovFR {
                dst: Reg::R2,
                src: FReg::F3,
            },
            I::MovRF {
                dst: FReg::F4,
                src: Reg::R5,
            },
            I::Hypercall { num: 103 },
        ]
    }

    #[test]
    fn round_trip_samples() {
        for insn in sample_instructions() {
            let bytes = encode(&insn);
            let back = decode(&bytes).expect("decode");
            assert_eq!(back, insn, "round-trip failed for {insn:?}");
        }
    }

    #[test]
    fn fmovi_nan_round_trips_by_bits() {
        let insn = Instruction::FMovI {
            dst: FReg::F0,
            imm: f64::from_bits(0x7ff8_0000_dead_beef),
        };
        let back = decode(&encode(&insn)).expect("decode");
        match back {
            Instruction::FMovI { imm, .. } => {
                assert_eq!(imm.to_bits(), 0x7ff8_0000_dead_beef);
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode(&Instruction::Nop);
        assert_eq!(decode(&bytes[..11]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_opcode_is_rejected() {
        let mut bytes = encode(&Instruction::Nop);
        bytes[0] = 0xff;
        assert_eq!(decode(&bytes), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_register_is_rejected() {
        let mut bytes = encode(&Instruction::MovRR {
            dst: Reg::R1,
            src: Reg::R2,
        });
        bytes[1] = 200;
        assert_eq!(decode(&bytes), Err(DecodeError::BadRegister(200)));
    }

    #[test]
    fn bad_cond_is_rejected() {
        let mut bytes = encode(&Instruction::Jcc {
            cond: Cond::Eq,
            target: 0,
        });
        bytes[1] = 99;
        assert_eq!(decode(&bytes), Err(DecodeError::BadCond(99)));
    }
}

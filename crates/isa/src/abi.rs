//! The guest ABI: calling convention, hypercall numbers and MPI datatypes.
//!
//! Guest programs request services with the `hypercall` instruction. Kernel
//! services (numbers `< 100`) are handled by the OS-lite kernel in
//! `chaser-vm`; MPI services (numbers `>= 100`) are surfaced to the cluster
//! runtime in `chaser-mpi`. Arguments are passed in `R1..=R6`; results come
//! back in `R0`.
//!
//! The guest-side MPI *library* (`chaser-workloads::rtlib`) wraps each MPI
//! hypercall in a function with a well-known symbol (`mpi_send`, `mpi_recv`,
//! …). Chaser hooks those function entry addresses — exactly as the paper
//! hooks MPI functions inside the guest and extracts `(buf, count, datatype,
//! tag, dest)` from stack and registers.

use crate::Reg;
use serde::{Deserialize, Serialize};

/// Registers carrying hypercall / function-call arguments, in order.
pub const ARG_REGS: [Reg; 6] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6];

/// Register carrying a hypercall / function return value.
pub const RET_REG: Reg = Reg::R0;

// ---- kernel services ----

/// Terminate the process. `R1` = exit code.
pub const SYS_EXIT: u16 = 1;
/// Write bytes. `R1` = fd, `R2` = buffer vaddr, `R3` = length in bytes.
pub const SYS_WRITE: u16 = 2;
/// Write a decimal integer plus newline. `R1` = fd, `R2` = value.
pub const SYS_WRITE_I64: u16 = 3;
/// Write the 8 raw little-endian bytes of an f64. `R1` = fd, `R2` = bits.
pub const SYS_WRITE_F64: u16 = 4;
/// Abort with an application-level assertion failure. `R1` = error code.
///
/// This is how a workload's *correctness checker* (e.g. CLAMR-sim's mass
/// conservation test) reports a detected fault.
pub const SYS_ASSERT_FAIL: u16 = 5;
/// Grow the heap by `R1` bytes; returns the old break in `R0`.
pub const SYS_SBRK: u16 = 6;
/// Returns the process's retired-instruction count in `R0`.
pub const SYS_CLOCK: u16 = 7;

/// File descriptor for standard output.
pub const FD_STDOUT: u64 = 1;
/// File descriptor for the run's result file (`output.dat`), compared
/// bitwise against the golden run to classify SDCs.
pub const FD_OUTPUT: u64 = 3;

// ---- MPI services ----

/// `MPI_Init()`.
pub const MPI_INIT: u16 = 100;
/// `MPI_Comm_rank` → rank in `R0`.
pub const MPI_COMM_RANK: u16 = 101;
/// `MPI_Comm_size` → size in `R0`.
pub const MPI_COMM_SIZE: u16 = 102;
/// `MPI_Send(buf=R1, count=R2, datatype=R3, dest=R4, tag=R5)`.
pub const MPI_SEND: u16 = 103;
/// `MPI_Recv(buf=R1, count=R2, datatype=R3, source=R4, tag=R5)`.
pub const MPI_RECV: u16 = 104;
/// `MPI_Barrier()`.
pub const MPI_BARRIER: u16 = 105;
/// `MPI_Bcast(buf=R1, count=R2, datatype=R3, root=R4)`.
pub const MPI_BCAST: u16 = 106;
/// `MPI_Reduce(sendbuf=R1, recvbuf=R2, count=R3, datatype=R4, op=R5, root=R6)`.
pub const MPI_REDUCE: u16 = 107;
/// `MPI_Allreduce(sendbuf=R1, recvbuf=R2, count=R3, datatype=R4, op=R5)`.
pub const MPI_ALLREDUCE: u16 = 108;
/// `MPI_Scatter(sendbuf=R1, recvbuf=R2, count_per_rank=R3, datatype=R4, root=R5)`.
pub const MPI_SCATTER: u16 = 109;
/// `MPI_Gather(sendbuf=R1, recvbuf=R2, count_per_rank=R3, datatype=R4, root=R5)`.
pub const MPI_GATHER: u16 = 110;
/// `MPI_Finalize()`.
pub const MPI_FINALIZE: u16 = 111;
/// Nonblocking `MPI_Isend(buf=R1, count=R2, datatype=R3, dest=R4, tag=R5)`
/// → request handle in `R0`.
pub const MPI_ISEND: u16 = 112;
/// Nonblocking `MPI_Irecv(buf=R1, count=R2, datatype=R3, source=R4,
/// tag=R5)` → request handle in `R0`. `source`/`tag` may be the wildcard
/// [`MPI_ANY`].
pub const MPI_IRECV: u16 = 113;
/// `MPI_Wait(request=R1)` — blocks until the request completes.
pub const MPI_WAIT: u16 = 114;
/// `MPI_Wtime()` → retired-instruction count in `R0` (the simulator's
/// clock).
pub const MPI_WTIME: u16 = 115;

/// Wildcard value for `source` (`MPI_ANY_SOURCE`) and `tag`
/// (`MPI_ANY_TAG`) in receive calls.
pub const MPI_ANY: u64 = u64::MAX;

/// First hypercall number that belongs to the MPI runtime rather than the
/// kernel.
pub const MPI_BASE: u16 = 100;

/// An MPI element datatype, as passed in the `datatype` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MpiDatatype {
    /// 64-bit signed integer.
    I64 = 1,
    /// IEEE-754 double.
    F64 = 2,
    /// Raw byte.
    Byte = 3,
}

impl MpiDatatype {
    /// Size of one element in bytes.
    pub fn size(self) -> u64 {
        match self {
            MpiDatatype::I64 | MpiDatatype::F64 => 8,
            MpiDatatype::Byte => 1,
        }
    }

    /// Parses the guest-supplied datatype code.
    pub fn from_code(code: u64) -> Option<MpiDatatype> {
        match code {
            1 => Some(MpiDatatype::I64),
            2 => Some(MpiDatatype::F64),
            3 => Some(MpiDatatype::Byte),
            _ => None,
        }
    }
}

/// An MPI reduction operator, as passed in the `op` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MpiOp {
    /// Elementwise sum.
    Sum = 1,
    /// Elementwise minimum.
    Min = 2,
    /// Elementwise maximum.
    Max = 3,
    /// Elementwise product.
    Prod = 4,
}

impl MpiOp {
    /// Parses the guest-supplied reduction-operator code.
    pub fn from_code(code: u64) -> Option<MpiOp> {
        match code {
            1 => Some(MpiOp::Sum),
            2 => Some(MpiOp::Min),
            3 => Some(MpiOp::Max),
            4 => Some(MpiOp::Prod),
            _ => None,
        }
    }
}

/// Guest-side MPI library symbol names hooked by Chaser.
pub mod symbols {
    /// Symbol of the guest `mpi_send` wrapper.
    pub const MPI_SEND: &str = "mpi_send";
    /// Symbol of the guest `mpi_recv` wrapper.
    pub const MPI_RECV: &str = "mpi_recv";
    /// Symbol of the guest `mpi_bcast` wrapper.
    pub const MPI_BCAST: &str = "mpi_bcast";
    /// Symbol of the guest `mpi_reduce` wrapper.
    pub const MPI_REDUCE: &str = "mpi_reduce";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_codes_round_trip() {
        for dt in [MpiDatatype::I64, MpiDatatype::F64, MpiDatatype::Byte] {
            assert_eq!(MpiDatatype::from_code(dt as u64), Some(dt));
        }
        assert_eq!(MpiDatatype::from_code(0), None);
        assert_eq!(MpiDatatype::from_code(99), None);
    }

    #[test]
    fn op_codes_round_trip() {
        for op in [MpiOp::Sum, MpiOp::Min, MpiOp::Max, MpiOp::Prod] {
            assert_eq!(MpiOp::from_code(op as u64), Some(op));
        }
        assert_eq!(MpiOp::from_code(0), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(MpiDatatype::I64.size(), 8);
        assert_eq!(MpiDatatype::F64.size(), 8);
        assert_eq!(MpiDatatype::Byte.size(), 1);
    }

    #[test]
    fn mpi_calls_sit_above_the_kernel_range() {
        for n in [
            MPI_INIT,
            MPI_COMM_RANK,
            MPI_COMM_SIZE,
            MPI_SEND,
            MPI_RECV,
            MPI_BARRIER,
            MPI_BCAST,
            MPI_REDUCE,
            MPI_ALLREDUCE,
            MPI_SCATTER,
            MPI_GATHER,
            MPI_FINALIZE,
        ] {
            assert!(n >= MPI_BASE);
        }
        for n in [
            SYS_EXIT,
            SYS_WRITE,
            SYS_WRITE_I64,
            SYS_WRITE_F64,
            SYS_ASSERT_FAIL,
            SYS_SBRK,
            SYS_CLOCK,
        ] {
            assert!(n < MPI_BASE);
        }
    }
}

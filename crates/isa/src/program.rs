//! Assembled guest program images and the process address-space layout.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Guest page size in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// Virtual base address of the code (text) section.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Virtual base address of the data section.
pub const DATA_BASE: u64 = 0x0100_0000;
/// Virtual address one past the top of the stack (the initial `sp`).
pub const STACK_TOP: u64 = 0x7fff_f000;
/// Size of the stack mapping in bytes.
pub const STACK_SIZE: u64 = 1 << 20;

/// An assembled guest program: code and data images plus a symbol table.
///
/// Produced by [`crate::Asm::assemble`]; loaded into a process address space
/// by `chaser-vm`. Symbols are absolute guest virtual addresses and include
/// both code labels and data symbols — Chaser uses them to hook the MPI
/// library functions by address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    code: Vec<u8>,
    data: Vec<u8>,
    entry: u64,
    symbols: HashMap<String, u64>,
}

impl Program {
    pub(crate) fn new(
        name: String,
        code: Vec<u8>,
        data: Vec<u8>,
        entry: u64,
        symbols: HashMap<String, u64>,
    ) -> Program {
        Program {
            name,
            code,
            data,
            entry,
            symbols,
        }
    }

    /// The program's name (the paper's "targeted application" key: VMI
    /// screens created processes against this).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The encoded text section, loaded at [`CODE_BASE`].
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// The initialised data section, loaded at [`DATA_BASE`].
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The entry point address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Looks up a symbol (code label or data symbol) as an absolute address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All symbols.
    pub fn symbols(&self) -> &HashMap<String, u64> {
        &self.symbols
    }

    /// First heap address: the end of the data section, page aligned.
    pub fn heap_base(&self) -> u64 {
        let end = DATA_BASE + self.data.len() as u64;
        end.div_ceil(PAGE_SIZE) * PAGE_SIZE
    }

    /// Number of instructions in the text section.
    pub fn insn_count(&self) -> usize {
        self.code.len() / crate::INSN_LEN as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_base_is_page_aligned_past_data() {
        let p = Program::new("t".into(), vec![], vec![0; 5000], CODE_BASE, HashMap::new());
        assert_eq!(p.heap_base() % PAGE_SIZE, 0);
        assert!(p.heap_base() >= DATA_BASE + 5000);
        assert!(p.heap_base() < DATA_BASE + 5000 + PAGE_SIZE);
    }

    #[test]
    fn layout_regions_do_not_overlap() {
        const { assert!(CODE_BASE + (1 << 22) <= DATA_BASE) }
        const { assert!(STACK_TOP - STACK_SIZE > DATA_BASE) }
    }
}

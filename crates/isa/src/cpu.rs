//! Architectural CPU state.

use crate::{FReg, Reg, NUM_FREGS, NUM_REGS};
use serde::{Deserialize, Serialize};

/// Comparison flags set by `cmp`, `cmpi` and `fcmp`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flags {
    /// Operands compared equal.
    pub zf: bool,
    /// Left operand was less than the right under *signed* order.
    pub lt_s: bool,
    /// Left operand was less than the right under *unsigned* order.
    pub lt_u: bool,
    /// The last FP compare was unordered (at least one NaN).
    pub uo: bool,
}

impl Flags {
    /// Evaluates a branch condition against these flags.
    pub fn holds(&self, cond: crate::Cond) -> bool {
        use crate::Cond as C;
        if self.uo {
            // Unordered compare: only `Ne` holds (x86 `ucomisd` convention).
            return cond == C::Ne;
        }
        match cond {
            C::Eq => self.zf,
            C::Ne => !self.zf,
            C::Lt => self.lt_s,
            C::Le => self.lt_s || self.zf,
            C::Gt => !(self.lt_s || self.zf),
            C::Ge => !self.lt_s,
            C::Ult => self.lt_u,
            C::Ule => self.lt_u || self.zf,
            C::Ugt => !(self.lt_u || self.zf),
            C::Uge => !self.lt_u,
        }
    }

    /// Flags resulting from an integer compare of `a` and `b`.
    pub fn from_int_cmp(a: u64, b: u64) -> Flags {
        Flags {
            zf: a == b,
            lt_s: (a as i64) < (b as i64),
            lt_u: a < b,
            uo: false,
        }
    }

    /// Flags resulting from a floating-point compare of `a` and `b`.
    pub fn from_fp_cmp(a: f64, b: f64) -> Flags {
        if a.is_nan() || b.is_nan() {
            Flags {
                zf: false,
                lt_s: false,
                lt_u: false,
                uo: true,
            }
        } else {
            Flags {
                zf: a == b,
                lt_s: a < b,
                lt_u: a < b,
                uo: false,
            }
        }
    }
}

/// The full architectural state of a guest hart.
///
/// Floating-point registers are stored as raw IEEE-754 bit patterns so a
/// fault injector can flip any of the 64 bits without a value round trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuState {
    regs: [u64; NUM_REGS],
    fregs: [u64; NUM_FREGS],
    /// Current comparison flags.
    pub flags: Flags,
    /// The program counter (guest virtual address of the next instruction).
    pub pc: u64,
}

impl CpuState {
    /// A zeroed CPU with `pc` at `entry`.
    pub fn new(entry: u64) -> CpuState {
        CpuState {
            regs: [0; NUM_REGS],
            fregs: [0; NUM_FREGS],
            flags: Flags::default(),
            pc: entry,
        }
    }

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Reads an FP register as a value.
    pub fn freg(&self, r: FReg) -> f64 {
        f64::from_bits(self.fregs[r.index()])
    }

    /// Reads an FP register's raw bits.
    pub fn freg_bits(&self, r: FReg) -> u64 {
        self.fregs[r.index()]
    }

    /// Writes an FP register from a value.
    pub fn set_freg(&mut self, r: FReg, v: f64) {
        self.fregs[r.index()] = v.to_bits();
    }

    /// Writes an FP register's raw bits.
    pub fn set_freg_bits(&mut self, r: FReg, bits: u64) {
        self.fregs[r.index()] = bits;
    }

    /// The stack pointer.
    pub fn sp(&self) -> u64 {
        self.reg(Reg::SP)
    }

    /// Sets the stack pointer.
    pub fn set_sp(&mut self, v: u64) {
        self.set_reg(Reg::SP, v);
    }
}

impl Default for CpuState {
    fn default() -> CpuState {
        CpuState::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cond;

    #[test]
    fn int_cmp_flag_semantics() {
        let f = Flags::from_int_cmp(3, 5);
        assert!(f.holds(Cond::Lt) && f.holds(Cond::Ult) && f.holds(Cond::Ne));
        assert!(!f.holds(Cond::Eq) && !f.holds(Cond::Ge));

        // -1 (as u64::MAX) vs 1: signed less, unsigned greater.
        let f = Flags::from_int_cmp((-1i64) as u64, 1);
        assert!(f.holds(Cond::Lt));
        assert!(f.holds(Cond::Ugt));

        let f = Flags::from_int_cmp(7, 7);
        assert!(f.holds(Cond::Eq) && f.holds(Cond::Le) && f.holds(Cond::Uge));
        assert!(!f.holds(Cond::Lt) && !f.holds(Cond::Gt));
    }

    #[test]
    fn nan_compare_is_unordered() {
        let f = Flags::from_fp_cmp(f64::NAN, 1.0);
        assert!(f.uo);
        assert!(f.holds(Cond::Ne));
        for c in [Cond::Eq, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert!(!f.holds(c), "{c} should be false when unordered");
        }
    }

    #[test]
    fn fp_registers_preserve_nan_payload_bits() {
        let mut cpu = CpuState::new(0);
        cpu.set_freg_bits(FReg::F1, 0x7ff8_1234_5678_9abc);
        assert!(cpu.freg(FReg::F1).is_nan());
        assert_eq!(cpu.freg_bits(FReg::F1), 0x7ff8_1234_5678_9abc);
    }

    #[test]
    fn sp_accessors_alias_r15() {
        let mut cpu = CpuState::new(0);
        cpu.set_sp(0x1000);
        assert_eq!(cpu.reg(Reg::R15), 0x1000);
        cpu.set_reg(Reg::R15, 0x2000);
        assert_eq!(cpu.sp(), 0x2000);
    }
}

//! Textual disassembly (`Display` for [`Instruction`]) used by trace logs
//! and injection reports.

use crate::Instruction;
use std::fmt;

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction as I;
        match self {
            I::Nop => write!(f, "nop"),
            I::Halt => write!(f, "halt"),
            I::MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            I::MovRI { dst, imm } => write!(f, "mov {dst}, {imm}"),
            I::Ld { dst, base, off } => write!(f, "ld {dst}, [{base}{off:+}]"),
            I::St { src, base, off } => write!(f, "st [{base}{off:+}], {src}"),
            I::LdIdx { dst, base, idx } => write!(f, "ld {dst}, [{base}+{idx}*8]"),
            I::StIdx { src, base, idx } => write!(f, "st [{base}+{idx}*8], {src}"),
            I::Push { src } => write!(f, "push {src}"),
            I::Pop { dst } => write!(f, "pop {dst}"),
            I::Add { dst, src } => write!(f, "add {dst}, {src}"),
            I::Sub { dst, src } => write!(f, "sub {dst}, {src}"),
            I::Mul { dst, src } => write!(f, "mul {dst}, {src}"),
            I::Divs { dst, src } => write!(f, "divs {dst}, {src}"),
            I::Divu { dst, src } => write!(f, "divu {dst}, {src}"),
            I::Rem { dst, src } => write!(f, "rem {dst}, {src}"),
            I::And { dst, src } => write!(f, "and {dst}, {src}"),
            I::Or { dst, src } => write!(f, "or {dst}, {src}"),
            I::Xor { dst, src } => write!(f, "xor {dst}, {src}"),
            I::Shl { dst, src } => write!(f, "shl {dst}, {src}"),
            I::Shr { dst, src } => write!(f, "shr {dst}, {src}"),
            I::Sar { dst, src } => write!(f, "sar {dst}, {src}"),
            I::AddI { dst, imm } => write!(f, "add {dst}, {imm}"),
            I::SubI { dst, imm } => write!(f, "sub {dst}, {imm}"),
            I::MulI { dst, imm } => write!(f, "mul {dst}, {imm}"),
            I::AndI { dst, imm } => write!(f, "and {dst}, {imm:#x}"),
            I::OrI { dst, imm } => write!(f, "or {dst}, {imm:#x}"),
            I::XorI { dst, imm } => write!(f, "xor {dst}, {imm:#x}"),
            I::ShlI { dst, imm } => write!(f, "shl {dst}, {imm}"),
            I::ShrI { dst, imm } => write!(f, "shr {dst}, {imm}"),
            I::SarI { dst, imm } => write!(f, "sar {dst}, {imm}"),
            I::Neg { dst } => write!(f, "neg {dst}"),
            I::Not { dst } => write!(f, "not {dst}"),
            I::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            I::CmpI { a, imm } => write!(f, "cmp {a}, {imm}"),
            I::Jmp { target } => write!(f, "jmp {target:#x}"),
            I::Jcc { cond, target } => write!(f, "j{cond} {target:#x}"),
            I::Call { target } => write!(f, "call {target:#x}"),
            I::CallR { target } => write!(f, "call {target}"),
            I::Ret => write!(f, "ret"),
            I::FMov { dst, src } => write!(f, "fmov {dst}, {src}"),
            I::FMovI { dst, imm } => write!(f, "fmov {dst}, {imm}"),
            I::FLd { dst, base, off } => write!(f, "fld {dst}, [{base}{off:+}]"),
            I::FSt { src, base, off } => write!(f, "fst [{base}{off:+}], {src}"),
            I::FLdIdx { dst, base, idx } => write!(f, "fld {dst}, [{base}+{idx}*8]"),
            I::FStIdx { src, base, idx } => write!(f, "fst [{base}+{idx}*8], {src}"),
            I::Fadd { dst, src } => write!(f, "fadd {dst}, {src}"),
            I::Fsub { dst, src } => write!(f, "fsub {dst}, {src}"),
            I::Fmul { dst, src } => write!(f, "fmul {dst}, {src}"),
            I::Fdiv { dst, src } => write!(f, "fdiv {dst}, {src}"),
            I::Fmin { dst, src } => write!(f, "fmin {dst}, {src}"),
            I::Fmax { dst, src } => write!(f, "fmax {dst}, {src}"),
            I::Fsqrt { dst } => write!(f, "fsqrt {dst}"),
            I::Fabs { dst } => write!(f, "fabs {dst}"),
            I::Fneg { dst } => write!(f, "fneg {dst}"),
            I::Fcmp { a, b } => write!(f, "fcmp {a}, {b}"),
            I::CvtIF { dst, src } => write!(f, "cvtif {dst}, {src}"),
            I::CvtFI { dst, src } => write!(f, "cvtfi {dst}, {src}"),
            I::MovFR { dst, src } => write!(f, "movfr {dst}, {src}"),
            I::MovRF { dst, src } => write!(f, "movrf {dst}, {src}"),
            I::Hypercall { num } => write!(f, "hcall {num}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, FReg, Reg};

    #[test]
    fn representative_formats() {
        let cases: Vec<(Instruction, &str)> = vec![
            (
                Instruction::MovRR {
                    dst: Reg::R1,
                    src: Reg::R2,
                },
                "mov r1, r2",
            ),
            (
                Instruction::Ld {
                    dst: Reg::R1,
                    base: Reg::SP,
                    off: -8,
                },
                "ld r1, [sp-8]",
            ),
            (
                Instruction::Jcc {
                    cond: Cond::Lt,
                    target: 0x400000,
                },
                "jlt 0x400000",
            ),
            (
                Instruction::Fadd {
                    dst: FReg::F0,
                    src: FReg::F1,
                },
                "fadd f0, f1",
            ),
            (Instruction::Hypercall { num: 103 }, "hcall 103"),
        ];
        for (insn, expect) in cases {
            assert_eq!(insn.to_string(), expect);
        }
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Instruction::Nop).is_empty());
        assert!(!Instruction::Nop.to_string().is_empty());
    }
}

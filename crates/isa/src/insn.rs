//! The guest instruction set.

use crate::{Cond, FReg, Reg};
use serde::{Deserialize, Serialize};

/// A decoded guest instruction.
///
/// All instructions occupy [`crate::INSN_LEN`] bytes in guest memory. Memory
/// operands are 64-bit; `*Idx` forms address `base + idx * 8` (an element
/// index, the common pattern in the numeric workloads). Branch and call
/// targets are absolute guest virtual addresses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Stop the processor; the kernel treats this as an abnormal exit.
    Halt,

    // ---- integer moves and memory ----
    /// `dst = src`.
    MovRR {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = imm`.
    MovRI {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = mem64[base + off]`.
    Ld {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// `mem64[base + off] = src`.
    St {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// `dst = mem64[base + idx * 8]`.
    LdIdx {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Element index register.
        idx: Reg,
    },
    /// `mem64[base + idx * 8] = src`.
    StIdx {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Element index register.
        idx: Reg,
    },
    /// Push `src` onto the stack (`sp -= 8; mem64[sp] = src`).
    Push {
        /// Register pushed.
        src: Reg,
    },
    /// Pop into `dst` (`dst = mem64[sp]; sp += 8`).
    Pop {
        /// Register popped into.
        dst: Reg,
    },

    // ---- integer ALU, register-register ----
    /// `dst += src`.
    Add {
        /// Destination / left operand.
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst -= src`.
    Sub {
        /// Destination / left operand.
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst *= src` (wrapping).
    Mul {
        /// Destination / left operand.
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// Signed division `dst /= src`; raises `SIGFPE` on divide-by-zero.
    Divs {
        /// Destination / dividend.
        dst: Reg,
        /// Divisor.
        src: Reg,
    },
    /// Unsigned division `dst /= src`; raises `SIGFPE` on divide-by-zero.
    Divu {
        /// Destination / dividend.
        dst: Reg,
        /// Divisor.
        src: Reg,
    },
    /// Unsigned remainder `dst %= src`; raises `SIGFPE` on divide-by-zero.
    Rem {
        /// Destination / dividend.
        dst: Reg,
        /// Divisor.
        src: Reg,
    },
    /// `dst &= src`.
    And {
        /// Destination / left operand.
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst |= src`.
    Or {
        /// Destination / left operand.
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst ^= src`.
    Xor {
        /// Destination / left operand.
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst <<= src & 63`.
    Shl {
        /// Destination / left operand.
        dst: Reg,
        /// Shift amount register.
        src: Reg,
    },
    /// Logical right shift `dst >>= src & 63`.
    Shr {
        /// Destination / left operand.
        dst: Reg,
        /// Shift amount register.
        src: Reg,
    },
    /// Arithmetic right shift.
    Sar {
        /// Destination / left operand.
        dst: Reg,
        /// Shift amount register.
        src: Reg,
    },

    // ---- integer ALU, register-immediate ----
    /// `dst += imm`.
    AddI {
        /// Destination register.
        dst: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `dst -= imm`.
    SubI {
        /// Destination register.
        dst: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `dst *= imm` (wrapping).
    MulI {
        /// Destination register.
        dst: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `dst &= imm`.
    AndI {
        /// Destination register.
        dst: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `dst |= imm`.
    OrI {
        /// Destination register.
        dst: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `dst ^= imm`.
    XorI {
        /// Destination register.
        dst: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `dst <<= imm & 63`.
    ShlI {
        /// Destination register.
        dst: Reg,
        /// Shift amount.
        imm: i64,
    },
    /// Logical `dst >>= imm & 63`.
    ShrI {
        /// Destination register.
        dst: Reg,
        /// Shift amount.
        imm: i64,
    },
    /// Arithmetic `dst >>= imm & 63`.
    SarI {
        /// Destination register.
        dst: Reg,
        /// Shift amount.
        imm: i64,
    },
    /// `dst = -dst` (two's complement).
    Neg {
        /// Register negated in place.
        dst: Reg,
    },
    /// `dst = !dst`.
    Not {
        /// Register complemented in place.
        dst: Reg,
    },

    // ---- compare and control flow ----
    /// Compare `a` with `b` and set flags.
    Cmp {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Compare `a` with an immediate and set flags.
    CmpI {
        /// Left operand.
        a: Reg,
        /// Right operand immediate.
        imm: i64,
    },
    /// Unconditional jump to an absolute address.
    Jmp {
        /// Absolute target address.
        target: u64,
    },
    /// Conditional jump.
    Jcc {
        /// Condition evaluated against the flags.
        cond: Cond,
        /// Absolute target address.
        target: u64,
    },
    /// Call: push return address, jump to `target`.
    Call {
        /// Absolute target address.
        target: u64,
    },
    /// Indirect call through a register.
    CallR {
        /// Register holding the target address.
        target: Reg,
    },
    /// Return: pop the return address and jump to it.
    Ret,

    // ---- floating point ----
    /// `dst = src` (FP registers).
    FMov {
        /// Destination register.
        dst: FReg,
        /// Source register.
        src: FReg,
    },
    /// `dst = imm`.
    FMovI {
        /// Destination register.
        dst: FReg,
        /// Immediate value.
        imm: f64,
    },
    /// `dst = memf64[base + off]`.
    FLd {
        /// Destination register.
        dst: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// `memf64[base + off] = src`.
    FSt {
        /// Source register.
        src: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// `dst = memf64[base + idx * 8]`.
    FLdIdx {
        /// Destination register.
        dst: FReg,
        /// Base address register.
        base: Reg,
        /// Element index register.
        idx: Reg,
    },
    /// `memf64[base + idx * 8] = src`.
    FStIdx {
        /// Source register.
        src: FReg,
        /// Base address register.
        base: Reg,
        /// Element index register.
        idx: Reg,
    },
    /// `dst += src`.
    Fadd {
        /// Destination / left operand.
        dst: FReg,
        /// Right operand.
        src: FReg,
    },
    /// `dst -= src`.
    Fsub {
        /// Destination / left operand.
        dst: FReg,
        /// Right operand.
        src: FReg,
    },
    /// `dst *= src`.
    Fmul {
        /// Destination / left operand.
        dst: FReg,
        /// Right operand.
        src: FReg,
    },
    /// `dst /= src` (IEEE semantics: produces inf/NaN, never traps).
    Fdiv {
        /// Destination / left operand.
        dst: FReg,
        /// Right operand.
        src: FReg,
    },
    /// `dst = min(dst, src)`.
    Fmin {
        /// Destination / left operand.
        dst: FReg,
        /// Right operand.
        src: FReg,
    },
    /// `dst = max(dst, src)`.
    Fmax {
        /// Destination / left operand.
        dst: FReg,
        /// Right operand.
        src: FReg,
    },
    /// `dst = sqrt(dst)`.
    Fsqrt {
        /// Register transformed in place.
        dst: FReg,
    },
    /// `dst = |dst|`.
    Fabs {
        /// Register transformed in place.
        dst: FReg,
    },
    /// `dst = -dst`.
    Fneg {
        /// Register transformed in place.
        dst: FReg,
    },
    /// Compare FP registers and set flags (unordered on NaN).
    Fcmp {
        /// Left operand.
        a: FReg,
        /// Right operand.
        b: FReg,
    },
    /// Convert a signed integer to `f64`.
    CvtIF {
        /// Destination FP register.
        dst: FReg,
        /// Source integer register.
        src: Reg,
    },
    /// Convert an `f64` to a signed integer (truncating; NaN becomes 0).
    CvtFI {
        /// Destination integer register.
        dst: Reg,
        /// Source FP register.
        src: FReg,
    },
    /// Move the raw bits of an FP register into an integer register.
    MovFR {
        /// Destination integer register.
        dst: Reg,
        /// Source FP register.
        src: FReg,
    },
    /// Move an integer register's bits into an FP register.
    MovRF {
        /// Destination FP register.
        dst: FReg,
        /// Source integer register.
        src: Reg,
    },

    // ---- system ----
    /// Trap into the hypervisor / OS-lite kernel (see [`crate::abi`]).
    Hypercall {
        /// The service number.
        num: u16,
    },
}

/// A coarse instruction class used to *target* injections, matching the
/// paper's vocabulary ("inject faults into the operands of the `mov` /
/// `fadd` / `fmul` / `cmp` instructions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InsnClass {
    /// Integer data movement: `mov` r/r and r/imm, loads, stores, push/pop.
    Mov,
    /// Integer arithmetic and logic.
    IntAlu,
    /// Integer compares (`cmp`).
    Cmp,
    /// Floating-point addition.
    Fadd,
    /// Floating-point subtraction.
    Fsub,
    /// Floating-point multiplication.
    Fmul,
    /// Floating-point division.
    Fdiv,
    /// Any floating-point arithmetic (`fadd`/`fsub`/`fmul`/`fdiv`/`fsqrt`/
    /// `fmin`/`fmax`/`fabs`/`fneg`).
    FpArith,
    /// Floating-point moves, loads and stores.
    FMov,
    /// Floating-point compares.
    Fcmp,
    /// Control flow (jumps, calls, returns).
    Branch,
    /// Every instruction.
    Any,
}

impl Instruction {
    /// Does this instruction belong to `class`?
    ///
    /// Classes overlap deliberately (e.g. a `fadd` is in [`InsnClass::Fadd`],
    /// [`InsnClass::FpArith`] and [`InsnClass::Any`]).
    pub fn is_in_class(&self, class: InsnClass) -> bool {
        use Instruction as I;
        match class {
            InsnClass::Any => true,
            InsnClass::Mov => matches!(
                self,
                I::MovRR { .. }
                    | I::MovRI { .. }
                    | I::Ld { .. }
                    | I::St { .. }
                    | I::LdIdx { .. }
                    | I::StIdx { .. }
                    | I::Push { .. }
                    | I::Pop { .. }
                    | I::MovFR { .. }
                    | I::MovRF { .. }
            ),
            InsnClass::IntAlu => matches!(
                self,
                I::Add { .. }
                    | I::Sub { .. }
                    | I::Mul { .. }
                    | I::Divs { .. }
                    | I::Divu { .. }
                    | I::Rem { .. }
                    | I::And { .. }
                    | I::Or { .. }
                    | I::Xor { .. }
                    | I::Shl { .. }
                    | I::Shr { .. }
                    | I::Sar { .. }
                    | I::AddI { .. }
                    | I::SubI { .. }
                    | I::MulI { .. }
                    | I::AndI { .. }
                    | I::OrI { .. }
                    | I::XorI { .. }
                    | I::ShlI { .. }
                    | I::ShrI { .. }
                    | I::SarI { .. }
                    | I::Neg { .. }
                    | I::Not { .. }
            ),
            InsnClass::Cmp => matches!(self, I::Cmp { .. } | I::CmpI { .. }),
            InsnClass::Fadd => matches!(self, I::Fadd { .. }),
            InsnClass::Fsub => matches!(self, I::Fsub { .. }),
            InsnClass::Fmul => matches!(self, I::Fmul { .. }),
            InsnClass::Fdiv => matches!(self, I::Fdiv { .. }),
            InsnClass::FpArith => matches!(
                self,
                I::Fadd { .. }
                    | I::Fsub { .. }
                    | I::Fmul { .. }
                    | I::Fdiv { .. }
                    | I::Fmin { .. }
                    | I::Fmax { .. }
                    | I::Fsqrt { .. }
                    | I::Fabs { .. }
                    | I::Fneg { .. }
            ),
            InsnClass::FMov => matches!(
                self,
                I::FMov { .. }
                    | I::FMovI { .. }
                    | I::FLd { .. }
                    | I::FSt { .. }
                    | I::FLdIdx { .. }
                    | I::FStIdx { .. }
            ),
            InsnClass::Fcmp => matches!(self, I::Fcmp { .. }),
            InsnClass::Branch => matches!(
                self,
                I::Jmp { .. } | I::Jcc { .. } | I::Call { .. } | I::CallR { .. } | I::Ret
            ),
        }
    }

    /// Is this instruction a translation-block terminator (a control-flow
    /// transfer, a trap, or a halt)?
    pub fn ends_block(&self) -> bool {
        use Instruction as I;
        matches!(
            self,
            I::Jmp { .. }
                | I::Jcc { .. }
                | I::Call { .. }
                | I::CallR { .. }
                | I::Ret
                | I::Hypercall { .. }
                | I::Halt
        )
    }

    /// Does the instruction read or write guest memory?
    pub fn touches_memory(&self) -> bool {
        use Instruction as I;
        matches!(
            self,
            I::Ld { .. }
                | I::St { .. }
                | I::LdIdx { .. }
                | I::StIdx { .. }
                | I::Push { .. }
                | I::Pop { .. }
                | I::FLd { .. }
                | I::FSt { .. }
                | I::FLdIdx { .. }
                | I::FStIdx { .. }
                | I::Call { .. }
                | I::CallR { .. }
                | I::Ret
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_overlap_as_documented() {
        let fadd = Instruction::Fadd {
            dst: FReg::F0,
            src: FReg::F1,
        };
        assert!(fadd.is_in_class(InsnClass::Fadd));
        assert!(fadd.is_in_class(InsnClass::FpArith));
        assert!(fadd.is_in_class(InsnClass::Any));
        assert!(!fadd.is_in_class(InsnClass::Fmul));
        assert!(!fadd.is_in_class(InsnClass::Mov));
    }

    #[test]
    fn mov_class_covers_loads_and_stores() {
        let ld = Instruction::Ld {
            dst: Reg::R1,
            base: Reg::R2,
            off: 16,
        };
        assert!(ld.is_in_class(InsnClass::Mov));
        assert!(ld.touches_memory());
        assert!(!ld.ends_block());
    }

    #[test]
    fn block_terminators() {
        assert!(Instruction::Ret.ends_block());
        assert!(Instruction::Hypercall { num: 1 }.ends_block());
        assert!(Instruction::Jmp { target: 0 }.ends_block());
        assert!(!Instruction::Nop.ends_block());
    }
}

//! A small structured assembler for building guest programs.
//!
//! [`Asm`] is a builder: each mnemonic method appends one instruction, labels
//! give names to code positions, and data directives populate the data
//! section. Forward references are resolved at [`Asm::assemble`] time.

use crate::program::{CODE_BASE, DATA_BASE};
use crate::{encode, Cond, FReg, Instruction, Program, Reg, INSN_LEN};
use std::collections::HashMap;
use std::fmt;

/// An error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A data symbol was defined twice (or collides with a label).
    DuplicateSymbol(String),
    /// A referenced label or symbol was never defined.
    UnknownSymbol(String),
    /// The entry label was never defined.
    UnknownEntry(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::DuplicateSymbol(s) => write!(f, "duplicate data symbol `{s}`"),
            AsmError::UnknownSymbol(s) => write!(f, "unknown label or symbol `{s}`"),
            AsmError::UnknownEntry(s) => write!(f, "unknown entry label `{s}`"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum FixupKind {
    /// Patch the control-flow target of the instruction.
    Target,
    /// Patch the immediate of a `MovRI` with the symbol's address (LEA).
    Lea,
}

#[derive(Debug, Clone)]
struct Fixup {
    insn: usize,
    symbol: String,
    kind: FixupKind,
}

/// The program assembler / builder.
///
/// See the [crate-level example](crate) for basic usage. Every mnemonic
/// method returns `&mut Self` so short sequences can be chained.
#[derive(Debug, Clone)]
pub struct Asm {
    name: String,
    insns: Vec<Instruction>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
    data: Vec<u8>,
    data_syms: HashMap<String, u64>,
    entry: Option<String>,
    errors: Vec<AsmError>,
}

impl Asm {
    /// Creates an empty program named `name`.
    pub fn new(name: impl Into<String>) -> Asm {
        Asm {
            name: name.into(),
            insns: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            data_syms: HashMap::new(),
            entry: None,
            errors: Vec::new(),
        }
    }

    /// Appends a raw instruction.
    pub fn insn(&mut self, insn: Instruction) -> &mut Asm {
        self.insns.push(insn);
        self
    }

    /// Defines a code label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Asm {
        let name = name.into();
        if self.labels.insert(name.clone(), self.insns.len()).is_some() {
            self.errors.push(AsmError::DuplicateLabel(name));
        }
        self
    }

    /// Selects the entry point; defaults to the first instruction.
    pub fn set_entry(&mut self, label: impl Into<String>) -> &mut Asm {
        self.entry = Some(label.into());
        self
    }

    // ---- data directives ----

    fn align8(&mut self) {
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
    }

    fn define_data(&mut self, name: String, offset: u64) {
        if self.data_syms.insert(name.clone(), offset).is_some() {
            self.errors.push(AsmError::DuplicateSymbol(name));
        }
    }

    /// Adds an 8-byte-aligned array of `u64` words to the data section.
    pub fn data_u64(&mut self, name: impl Into<String>, words: &[u64]) -> &mut Asm {
        self.align8();
        let off = self.data.len() as u64;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        self.define_data(name.into(), off);
        self
    }

    /// Adds an 8-byte-aligned array of `i64` words to the data section.
    pub fn data_i64(&mut self, name: impl Into<String>, words: &[i64]) -> &mut Asm {
        self.align8();
        let off = self.data.len() as u64;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        self.define_data(name.into(), off);
        self
    }

    /// Adds an 8-byte-aligned array of `f64` values to the data section.
    pub fn data_f64(&mut self, name: impl Into<String>, values: &[f64]) -> &mut Asm {
        self.align8();
        let off = self.data.len() as u64;
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.define_data(name.into(), off);
        self
    }

    /// Adds raw bytes to the data section.
    pub fn data_bytes(&mut self, name: impl Into<String>, bytes: &[u8]) -> &mut Asm {
        let off = self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        self.define_data(name.into(), off);
        self
    }

    /// Reserves `size` zeroed, 8-byte-aligned bytes.
    pub fn bss(&mut self, name: impl Into<String>, size: u64) -> &mut Asm {
        self.align8();
        let off = self.data.len() as u64;
        self.data.extend(std::iter::repeat_n(0u8, size as usize));
        self.define_data(name.into(), off);
        self
    }

    // ---- label-target instructions ----

    fn fixup(&mut self, symbol: impl Into<String>, kind: FixupKind) {
        self.fixups.push(Fixup {
            insn: self.insns.len() - 1,
            symbol: symbol.into(),
            kind,
        });
    }

    /// Unconditional jump to a label.
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Asm {
        self.insn(Instruction::Jmp { target: 0 });
        self.fixup(label, FixupKind::Target);
        self
    }

    /// Conditional jump to a label.
    pub fn jcc(&mut self, cond: Cond, label: impl Into<String>) -> &mut Asm {
        self.insn(Instruction::Jcc { cond, target: 0 });
        self.fixup(label, FixupKind::Target);
        self
    }

    /// Call a label.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Asm {
        self.insn(Instruction::Call { target: 0 });
        self.fixup(label, FixupKind::Target);
        self
    }

    /// Load the absolute address of a code label or data symbol into `dst`.
    pub fn lea(&mut self, dst: Reg, symbol: impl Into<String>) -> &mut Asm {
        self.insn(Instruction::MovRI { dst, imm: 0 });
        self.fixup(symbol, FixupKind::Lea);
        self
    }

    // ---- plain mnemonics ----

    /// `nop`.
    pub fn nop(&mut self) -> &mut Asm {
        self.insn(Instruction::Nop)
    }
    /// `halt`.
    pub fn halt(&mut self) -> &mut Asm {
        self.insn(Instruction::Halt)
    }
    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::MovRR { dst, src })
    }
    /// `dst = imm`.
    pub fn movi(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::MovRI { dst, imm })
    }
    /// `dst = mem64[base+off]`.
    pub fn ld(&mut self, dst: Reg, base: Reg, off: i32) -> &mut Asm {
        self.insn(Instruction::Ld { dst, base, off })
    }
    /// `mem64[base+off] = src`.
    pub fn st(&mut self, src: Reg, base: Reg, off: i32) -> &mut Asm {
        self.insn(Instruction::St { src, base, off })
    }
    /// `dst = mem64[base+idx*8]`.
    pub fn ldx(&mut self, dst: Reg, base: Reg, idx: Reg) -> &mut Asm {
        self.insn(Instruction::LdIdx { dst, base, idx })
    }
    /// `mem64[base+idx*8] = src`.
    pub fn stx(&mut self, src: Reg, base: Reg, idx: Reg) -> &mut Asm {
        self.insn(Instruction::StIdx { src, base, idx })
    }
    /// Push a register.
    pub fn push(&mut self, src: Reg) -> &mut Asm {
        self.insn(Instruction::Push { src })
    }
    /// Pop into a register.
    pub fn pop(&mut self, dst: Reg) -> &mut Asm {
        self.insn(Instruction::Pop { dst })
    }
    /// `dst += src`.
    pub fn add(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Add { dst, src })
    }
    /// `dst -= src`.
    pub fn sub(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Sub { dst, src })
    }
    /// `dst *= src`.
    pub fn mul(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Mul { dst, src })
    }
    /// Signed divide.
    pub fn divs(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Divs { dst, src })
    }
    /// Unsigned divide.
    pub fn divu(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Divu { dst, src })
    }
    /// Unsigned remainder.
    pub fn rem(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Rem { dst, src })
    }
    /// Bitwise and.
    pub fn and(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::And { dst, src })
    }
    /// Bitwise or.
    pub fn or(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Or { dst, src })
    }
    /// Bitwise xor.
    pub fn xor(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Xor { dst, src })
    }
    /// Shift left by register.
    pub fn shl(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Shl { dst, src })
    }
    /// Logical shift right by register.
    pub fn shr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Shr { dst, src })
    }
    /// Arithmetic shift right by register.
    pub fn sar(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.insn(Instruction::Sar { dst, src })
    }
    /// `dst += imm`.
    pub fn addi(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::AddI { dst, imm })
    }
    /// `dst -= imm`.
    pub fn subi(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::SubI { dst, imm })
    }
    /// `dst *= imm`.
    pub fn muli(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::MulI { dst, imm })
    }
    /// `dst &= imm`.
    pub fn andi(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::AndI { dst, imm })
    }
    /// `dst |= imm`.
    pub fn ori(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::OrI { dst, imm })
    }
    /// `dst ^= imm`.
    pub fn xori(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::XorI { dst, imm })
    }
    /// Shift left by an immediate.
    pub fn shli(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::ShlI { dst, imm })
    }
    /// Logical shift right by an immediate.
    pub fn shri(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::ShrI { dst, imm })
    }
    /// Arithmetic shift right by an immediate.
    pub fn sari(&mut self, dst: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::SarI { dst, imm })
    }
    /// Two's-complement negate in place.
    pub fn neg(&mut self, dst: Reg) -> &mut Asm {
        self.insn(Instruction::Neg { dst })
    }
    /// Bitwise complement in place.
    pub fn not(&mut self, dst: Reg) -> &mut Asm {
        self.insn(Instruction::Not { dst })
    }
    /// Compare registers.
    pub fn cmp(&mut self, a: Reg, b: Reg) -> &mut Asm {
        self.insn(Instruction::Cmp { a, b })
    }
    /// Compare a register to an immediate.
    pub fn cmpi(&mut self, a: Reg, imm: i64) -> &mut Asm {
        self.insn(Instruction::CmpI { a, imm })
    }
    /// Indirect call.
    pub fn callr(&mut self, target: Reg) -> &mut Asm {
        self.insn(Instruction::CallR { target })
    }
    /// Return.
    pub fn ret(&mut self) -> &mut Asm {
        self.insn(Instruction::Ret)
    }
    /// FP register move.
    pub fn fmov(&mut self, dst: FReg, src: FReg) -> &mut Asm {
        self.insn(Instruction::FMov { dst, src })
    }
    /// FP immediate load.
    pub fn fmovi(&mut self, dst: FReg, imm: f64) -> &mut Asm {
        self.insn(Instruction::FMovI { dst, imm })
    }
    /// FP load.
    pub fn fld(&mut self, dst: FReg, base: Reg, off: i32) -> &mut Asm {
        self.insn(Instruction::FLd { dst, base, off })
    }
    /// FP store.
    pub fn fst(&mut self, src: FReg, base: Reg, off: i32) -> &mut Asm {
        self.insn(Instruction::FSt { src, base, off })
    }
    /// FP indexed load.
    pub fn fldx(&mut self, dst: FReg, base: Reg, idx: Reg) -> &mut Asm {
        self.insn(Instruction::FLdIdx { dst, base, idx })
    }
    /// FP indexed store.
    pub fn fstx(&mut self, src: FReg, base: Reg, idx: Reg) -> &mut Asm {
        self.insn(Instruction::FStIdx { src, base, idx })
    }
    /// `dst += src` (FP).
    pub fn fadd(&mut self, dst: FReg, src: FReg) -> &mut Asm {
        self.insn(Instruction::Fadd { dst, src })
    }
    /// `dst -= src` (FP).
    pub fn fsub(&mut self, dst: FReg, src: FReg) -> &mut Asm {
        self.insn(Instruction::Fsub { dst, src })
    }
    /// `dst *= src` (FP).
    pub fn fmul(&mut self, dst: FReg, src: FReg) -> &mut Asm {
        self.insn(Instruction::Fmul { dst, src })
    }
    /// `dst /= src` (FP).
    pub fn fdiv(&mut self, dst: FReg, src: FReg) -> &mut Asm {
        self.insn(Instruction::Fdiv { dst, src })
    }
    /// `dst = min(dst, src)`.
    pub fn fmin(&mut self, dst: FReg, src: FReg) -> &mut Asm {
        self.insn(Instruction::Fmin { dst, src })
    }
    /// `dst = max(dst, src)`.
    pub fn fmax(&mut self, dst: FReg, src: FReg) -> &mut Asm {
        self.insn(Instruction::Fmax { dst, src })
    }
    /// Square root in place.
    pub fn fsqrt(&mut self, dst: FReg) -> &mut Asm {
        self.insn(Instruction::Fsqrt { dst })
    }
    /// Absolute value in place.
    pub fn fabs(&mut self, dst: FReg) -> &mut Asm {
        self.insn(Instruction::Fabs { dst })
    }
    /// Negate in place (FP).
    pub fn fneg(&mut self, dst: FReg) -> &mut Asm {
        self.insn(Instruction::Fneg { dst })
    }
    /// FP compare.
    pub fn fcmp(&mut self, a: FReg, b: FReg) -> &mut Asm {
        self.insn(Instruction::Fcmp { a, b })
    }
    /// Convert signed int to f64.
    pub fn cvtif(&mut self, dst: FReg, src: Reg) -> &mut Asm {
        self.insn(Instruction::CvtIF { dst, src })
    }
    /// Convert f64 to signed int.
    pub fn cvtfi(&mut self, dst: Reg, src: FReg) -> &mut Asm {
        self.insn(Instruction::CvtFI { dst, src })
    }
    /// Move FP bits to an integer register.
    pub fn movfr(&mut self, dst: Reg, src: FReg) -> &mut Asm {
        self.insn(Instruction::MovFR { dst, src })
    }
    /// Move integer bits to an FP register.
    pub fn movrf(&mut self, dst: FReg, src: Reg) -> &mut Asm {
        self.insn(Instruction::MovRF { dst, src })
    }
    /// Trap into the hypervisor.
    pub fn hypercall(&mut self, num: u16) -> &mut Asm {
        self.insn(Instruction::Hypercall { num })
    }

    // ---- convenience sequences ----

    /// `exit(code)`.
    pub fn exit(&mut self, code: i64) -> &mut Asm {
        self.movi(Reg::R1, code);
        self.hypercall(crate::abi::SYS_EXIT)
    }

    /// `exit(code_reg)`.
    pub fn exit_with(&mut self, code: Reg) -> &mut Asm {
        if code != Reg::R1 {
            self.mov(Reg::R1, code);
        }
        self.hypercall(crate::abi::SYS_EXIT)
    }

    // ---- assembly ----

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Resolves labels, patches fixups and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns the first recorded [`AsmError`]: duplicate labels/symbols,
    /// unresolved references, or a missing entry label.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if let Some(err) = self.errors.first() {
            return Err(err.clone());
        }

        let mut symbols: HashMap<String, u64> = HashMap::new();
        for (name, idx) in &self.labels {
            symbols.insert(name.clone(), CODE_BASE + *idx as u64 * INSN_LEN);
        }
        for (name, off) in &self.data_syms {
            if symbols.contains_key(name) {
                return Err(AsmError::DuplicateSymbol(name.clone()));
            }
            symbols.insert(name.clone(), DATA_BASE + off);
        }

        let mut insns = self.insns.clone();
        for fx in &self.fixups {
            let addr = *symbols
                .get(&fx.symbol)
                .ok_or_else(|| AsmError::UnknownSymbol(fx.symbol.clone()))?;
            let insn = &mut insns[fx.insn];
            match (&fx.kind, insn) {
                (FixupKind::Target, Instruction::Jmp { target }) => *target = addr,
                (FixupKind::Target, Instruction::Jcc { target, .. }) => *target = addr,
                (FixupKind::Target, Instruction::Call { target }) => *target = addr,
                (FixupKind::Lea, Instruction::MovRI { imm, .. }) => *imm = addr as i64,
                (kind, insn) => unreachable!("fixup {kind:?} on {insn:?}"),
            }
        }

        let entry = match &self.entry {
            Some(label) => *symbols
                .get(label)
                .ok_or_else(|| AsmError::UnknownEntry(label.clone()))?,
            None => CODE_BASE,
        };

        let mut code = Vec::with_capacity(insns.len() * INSN_LEN as usize);
        for insn in &insns {
            code.extend_from_slice(&encode(insn));
        }

        Ok(Program::new(
            self.name.clone(),
            code,
            self.data.clone(),
            entry,
            symbols,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn forward_and_backward_references_resolve() {
        let mut a = Asm::new("t");
        a.jmp("fwd");
        a.label("back");
        a.nop();
        a.label("fwd");
        a.jmp("back");
        let p = a.assemble().expect("assemble");
        let i0 = decode(&p.code()[0..12]).expect("decode");
        let fwd = p.symbol("fwd").expect("fwd");
        let back = p.symbol("back").expect("back");
        assert_eq!(i0, Instruction::Jmp { target: fwd });
        assert_eq!(back, CODE_BASE + INSN_LEN);
        assert_eq!(fwd, CODE_BASE + 2 * INSN_LEN);
    }

    #[test]
    fn lea_resolves_data_symbols() {
        let mut a = Asm::new("t");
        a.data_f64("vec", &[1.0, 2.0]);
        a.lea(Reg::R1, "vec");
        a.exit(0);
        let p = a.assemble().expect("assemble");
        let i0 = decode(&p.code()[0..12]).expect("decode");
        assert_eq!(
            i0,
            Instruction::MovRI {
                dst: Reg::R1,
                imm: DATA_BASE as i64,
            }
        );
        assert_eq!(p.data().len(), 16);
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Asm::new("t");
        a.label("x").nop();
        a.label("x").nop();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let mut a = Asm::new("t");
        a.jmp("nowhere");
        assert_eq!(a.assemble(), Err(AsmError::UnknownSymbol("nowhere".into())));
    }

    #[test]
    fn label_data_collision_is_an_error() {
        let mut a = Asm::new("t");
        a.label("x").nop();
        a.data_u64("x", &[0]);
        assert!(matches!(a.assemble(), Err(AsmError::DuplicateSymbol(_))));
    }

    #[test]
    fn entry_label_selects_entry() {
        let mut a = Asm::new("t");
        a.nop();
        a.label("main");
        a.exit(0);
        a.set_entry("main");
        let p = a.assemble().expect("assemble");
        assert_eq!(p.entry(), CODE_BASE + INSN_LEN);
    }

    #[test]
    fn data_is_aligned_to_8() {
        let mut a = Asm::new("t");
        a.data_bytes("b", &[1, 2, 3]);
        a.data_f64("f", &[1.5]);
        a.nop();
        let p = a.assemble().expect("assemble");
        let f = p.symbol("f").expect("f");
        assert_eq!(f % 8, 0);
        assert_eq!(f, DATA_BASE + 8);
    }

    #[test]
    fn bss_reserves_zeroed_space() {
        let mut a = Asm::new("t");
        a.bss("buf", 100);
        a.nop();
        let p = a.assemble().expect("assemble");
        assert_eq!(p.data().len(), 100);
        assert!(p.data().iter().all(|&b| b == 0));
    }
}

//! Branch conditions evaluated against the [`crate::Flags`] set by compare
//! instructions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A condition code for `jcc`.
///
/// Signed conditions (`Lt`, `Le`, `Gt`, `Ge`) read the signed-less-than flag;
/// the `U`-prefixed variants read the unsigned flag. After an *unordered*
/// floating-point compare (either operand NaN), all ordered conditions are
/// false and only [`Cond::Ne`] holds, mirroring x86 `ucomisd` semantics —
/// this matters for fault injection because corrupted floats frequently
/// become NaN and silently change control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal (also true when the last FP compare was unordered).
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Ult,
        Cond::Ule,
        Cond::Ugt,
        Cond::Uge,
    ];

    /// The condition's encoding index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a condition from its encoding index.
    pub fn from_index(idx: usize) -> Option<Cond> {
        Cond::ALL.get(idx).copied()
    }

    /// The negation of this condition (ignoring unordered subtleties; used
    /// by the assembler's structured-control helpers).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Ult => Cond::Uge,
            Cond::Ule => Cond::Ugt,
            Cond::Ugt => Cond::Ule,
            Cond::Uge => Cond::Ult,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Ult => "ult",
            Cond::Ule => "ule",
            Cond::Ugt => "ugt",
            Cond::Uge => "uge",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, c) in Cond::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Cond::from_index(i), Some(*c));
        }
        assert_eq!(Cond::from_index(Cond::ALL.len()), None);
    }

    #[test]
    fn negation_is_involutive() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
    }
}

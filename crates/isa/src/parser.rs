//! A textual assembler: parses assembly source into a [`Program`].
//!
//! The accepted syntax is exactly what the disassembler prints (so
//! `parse` ∘ `Display` round-trips every register-form instruction), plus
//! labels, data directives and the `lea` pseudo-instruction:
//!
//! ```text
//! ; matvec-ish fragment
//! .data
//! vec:  .f64 1.0, 2.0, 3.0
//! n:    .i64 3
//! buf:  .space 64
//!
//! .text
//! .entry main
//! main:
//!     lea r1, vec
//!     movi? no — mov r2, 0        ; register/immediate chosen by operand
//! loop:
//!     fld f1, [r1+0]
//!     fadd f0, f1
//!     add r1, 8
//!     add r2, 1
//!     cmp r2, 3
//!     jlt loop
//!     hcall 1
//! ```
//!
//! Comments start with `;` or `#`. Registers are `r0..r15` (`sp` = `r15`)
//! and `f0..f15`.

use crate::{Asm, Cond, FReg, Instruction, Program, Reg};
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str) -> Option<Reg> {
    if tok == "sp" {
        return Some(Reg::SP);
    }
    let idx: usize = tok.strip_prefix('r')?.parse().ok()?;
    Reg::from_index(idx)
}

fn parse_freg(tok: &str) -> Option<FReg> {
    let idx: usize = tok.strip_prefix('f')?.parse().ok()?;
    FReg::from_index(idx)
}

fn parse_int(tok: &str) -> Option<i64> {
    let tok = tok.trim();
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok().map(|v| v as i64);
    }
    if let Some(hex) = tok.strip_prefix("-0x") {
        return u64::from_str_radix(hex, 16).ok().map(|v| -(v as i64));
    }
    tok.parse().ok()
}

/// A memory operand: `[base+off]` or `[base+idx*8]`.
enum Mem {
    Off(Reg, i32),
    Idx(Reg, Reg),
}

fn parse_mem(tok: &str) -> Option<Mem> {
    let inner = tok.strip_prefix('[')?.strip_suffix(']')?;
    if let Some(star) = inner.strip_suffix("*8") {
        // base+idx*8
        let (base, idx) = star.split_once('+')?;
        return Some(Mem::Idx(parse_reg(base.trim())?, parse_reg(idx.trim())?));
    }
    // base, base+off, base-off
    if let Some(pos) = inner[1..].find(['+', '-']).map(|p| p + 1) {
        let (base, off) = inner.split_at(pos);
        let off: i64 = parse_int(off)?;
        return Some(Mem::Off(parse_reg(base.trim())?, i32::try_from(off).ok()?));
    }
    Some(Mem::Off(parse_reg(inner.trim())?, 0))
}

/// Splits an operand list on top-level commas.
fn operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

enum Section {
    Text,
    Data,
}

/// Parses assembly `source` into a program named `name`.
///
/// # Errors
///
/// Returns a [`ParseError`] (with line number) for unknown mnemonics,
/// malformed operands or bad directives, and forwards [`crate::AsmError`]s
/// (duplicate/unknown labels) from final assembly.
pub fn parse_asm(name: impl Into<String>, source: &str) -> Result<Program, ParseError> {
    let mut a = Asm::new(name);
    let mut section = Section::Text;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let (dir, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            match dir {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "entry" => {
                    a.set_entry(args.trim());
                }
                other => return Err(err(lineno, format!("unknown directive `.{other}`"))),
            }
            continue;
        }

        // Labels (possibly followed by a data directive on the same line).
        let mut body = line;
        if let Some(colon) = line.find(':') {
            let label = &line[..colon];
            if label.chars().all(|c| c.is_alphanumeric() || c == '_') && !label.is_empty() {
                body = line[colon + 1..].trim();
                match section {
                    Section::Text => {
                        a.label(label);
                        if body.is_empty() {
                            continue;
                        }
                    }
                    Section::Data => {
                        parse_data(&mut a, label, body, lineno)?;
                        continue;
                    }
                }
            }
        }
        if matches!(section, Section::Data) {
            return Err(err(lineno, "data lines must be `label: .directive ...`"));
        }

        parse_insn(&mut a, body, lineno)?;
    }

    a.assemble()
        .map_err(|e| err(0, format!("assembly failed: {e}")))
}

fn parse_data(a: &mut Asm, label: &str, body: &str, lineno: usize) -> Result<(), ParseError> {
    let Some(rest) = body.strip_prefix('.') else {
        return Err(err(lineno, "expected a data directive after the label"));
    };
    let (dir, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    match dir {
        "f64" => {
            let values: Result<Vec<f64>, _> =
                operands(args).iter().map(|t| t.parse::<f64>()).collect();
            let values = values.map_err(|_| err(lineno, "bad f64 literal"))?;
            a.data_f64(label, &values);
        }
        "i64" => {
            let values: Option<Vec<i64>> = operands(args).iter().map(|t| parse_int(t)).collect();
            let values = values.ok_or_else(|| err(lineno, "bad i64 literal"))?;
            a.data_i64(label, &values);
        }
        "u64" => {
            let values: Option<Vec<u64>> = operands(args)
                .iter()
                .map(|t| parse_int(t).map(|v| v as u64))
                .collect();
            let values = values.ok_or_else(|| err(lineno, "bad u64 literal"))?;
            a.data_u64(label, &values);
        }
        "space" => {
            let size = parse_int(args.trim())
                .filter(|&v| v >= 0)
                .ok_or_else(|| err(lineno, "bad .space size"))?;
            a.bss(label, size as u64);
        }
        other => return Err(err(lineno, format!("unknown data directive `.{other}`"))),
    }
    Ok(())
}

fn parse_insn(a: &mut Asm, body: &str, lineno: usize) -> Result<(), ParseError> {
    use Instruction as I;
    let (mnemonic, rest) = body.split_once(char::is_whitespace).unwrap_or((body, ""));
    let ops = operands(rest);
    let bad = || {
        err(
            lineno,
            format!("malformed operands for `{mnemonic}`: `{rest}`"),
        )
    };

    // Condition-code jumps: jeq/jne/jlt/...
    if let Some(cond_str) = mnemonic.strip_prefix('j') {
        if mnemonic != "jmp" {
            let cond = Cond::ALL
                .into_iter()
                .find(|c| c.to_string() == cond_str)
                .ok_or_else(|| err(lineno, format!("unknown jump `{mnemonic}`")))?;
            let [target] = ops[..] else { return Err(bad()) };
            if let Some(addr) = parse_int(target) {
                a.insn(I::Jcc {
                    cond,
                    target: addr as u64,
                });
            } else {
                a.jcc(cond, target);
            }
            return Ok(());
        }
    }

    // Two-register / register-immediate ALU helpers.
    macro_rules! rr_or_ri {
        ($rr:ident, $ri:ident) => {{
            let [d, s] = ops[..] else { return Err(bad()) };
            let dst = parse_reg(d).ok_or_else(bad)?;
            if let Some(src) = parse_reg(s) {
                a.insn(I::$rr { dst, src });
            } else {
                let imm = parse_int(s).ok_or_else(bad)?;
                a.insn(I::$ri { dst, imm });
            }
            Ok(())
        }};
    }
    macro_rules! rr_only {
        ($v:ident, $f1:ident, $f2:ident) => {{
            let [x, y] = ops[..] else { return Err(bad()) };
            a.insn(I::$v {
                $f1: parse_reg(x).ok_or_else(bad)?,
                $f2: parse_reg(y).ok_or_else(bad)?,
            });
            Ok(())
        }};
    }
    macro_rules! ff {
        ($v:ident) => {{
            let [d, s] = ops[..] else { return Err(bad()) };
            a.insn(I::$v {
                dst: parse_freg(d).ok_or_else(bad)?,
                src: parse_freg(s).ok_or_else(bad)?,
            });
            Ok(())
        }};
    }
    macro_rules! f_unary {
        ($v:ident) => {{
            let [d] = ops[..] else { return Err(bad()) };
            a.insn(I::$v {
                dst: parse_freg(d).ok_or_else(bad)?,
            });
            Ok(())
        }};
    }

    match mnemonic {
        "nop" => {
            a.nop();
            Ok(())
        }
        "halt" => {
            a.halt();
            Ok(())
        }
        "ret" => {
            a.ret();
            Ok(())
        }
        "mov" => rr_or_ri!(MovRR, MovRI),
        "add" => rr_or_ri!(Add, AddI),
        "sub" => rr_or_ri!(Sub, SubI),
        "mul" => rr_or_ri!(Mul, MulI),
        "and" => rr_or_ri!(And, AndI),
        "or" => rr_or_ri!(Or, OrI),
        "xor" => rr_or_ri!(Xor, XorI),
        "shl" => rr_or_ri!(Shl, ShlI),
        "shr" => rr_or_ri!(Shr, ShrI),
        "sar" => rr_or_ri!(Sar, SarI),
        "divs" => rr_only!(Divs, dst, src),
        "divu" => rr_only!(Divu, dst, src),
        "rem" => rr_only!(Rem, dst, src),
        "neg" => {
            let [d] = ops[..] else { return Err(bad()) };
            a.neg(parse_reg(d).ok_or_else(bad)?);
            Ok(())
        }
        "not" => {
            let [d] = ops[..] else { return Err(bad()) };
            a.not(parse_reg(d).ok_or_else(bad)?);
            Ok(())
        }
        "cmp" => {
            let [x, y] = ops[..] else { return Err(bad()) };
            let ra = parse_reg(x).ok_or_else(bad)?;
            if let Some(rb) = parse_reg(y) {
                a.cmp(ra, rb);
            } else {
                a.cmpi(ra, parse_int(y).ok_or_else(bad)?);
            }
            Ok(())
        }
        "push" => {
            let [s] = ops[..] else { return Err(bad()) };
            a.push(parse_reg(s).ok_or_else(bad)?);
            Ok(())
        }
        "pop" => {
            let [d] = ops[..] else { return Err(bad()) };
            a.pop(parse_reg(d).ok_or_else(bad)?);
            Ok(())
        }
        "ld" => {
            let [d, m] = ops[..] else { return Err(bad()) };
            let dst = parse_reg(d).ok_or_else(bad)?;
            match parse_mem(m).ok_or_else(bad)? {
                Mem::Off(base, off) => a.ld(dst, base, off),
                Mem::Idx(base, idx) => a.ldx(dst, base, idx),
            };
            Ok(())
        }
        "st" => {
            let [m, s] = ops[..] else { return Err(bad()) };
            let src = parse_reg(s).ok_or_else(bad)?;
            match parse_mem(m).ok_or_else(bad)? {
                Mem::Off(base, off) => a.st(src, base, off),
                Mem::Idx(base, idx) => a.stx(src, base, idx),
            };
            Ok(())
        }
        "fld" => {
            let [d, m] = ops[..] else { return Err(bad()) };
            let dst = parse_freg(d).ok_or_else(bad)?;
            match parse_mem(m).ok_or_else(bad)? {
                Mem::Off(base, off) => a.fld(dst, base, off),
                Mem::Idx(base, idx) => a.fldx(dst, base, idx),
            };
            Ok(())
        }
        "fst" => {
            let [m, s] = ops[..] else { return Err(bad()) };
            let src = parse_freg(s).ok_or_else(bad)?;
            match parse_mem(m).ok_or_else(bad)? {
                Mem::Off(base, off) => a.fst(src, base, off),
                Mem::Idx(base, idx) => a.fstx(src, base, idx),
            };
            Ok(())
        }
        "fmov" => {
            let [d, s] = ops[..] else { return Err(bad()) };
            let dst = parse_freg(d).ok_or_else(bad)?;
            if let Some(src) = parse_freg(s) {
                a.fmov(dst, src);
            } else {
                let imm: f64 = s.parse().map_err(|_| bad())?;
                a.fmovi(dst, imm);
            }
            Ok(())
        }
        "fadd" => ff!(Fadd),
        "fsub" => ff!(Fsub),
        "fmul" => ff!(Fmul),
        "fdiv" => ff!(Fdiv),
        "fmin" => ff!(Fmin),
        "fmax" => ff!(Fmax),
        "fsqrt" => f_unary!(Fsqrt),
        "fabs" => f_unary!(Fabs),
        "fneg" => f_unary!(Fneg),
        "fcmp" => {
            let [x, y] = ops[..] else { return Err(bad()) };
            a.fcmp(
                parse_freg(x).ok_or_else(bad)?,
                parse_freg(y).ok_or_else(bad)?,
            );
            Ok(())
        }
        "cvtif" => {
            let [d, s] = ops[..] else { return Err(bad()) };
            a.cvtif(
                parse_freg(d).ok_or_else(bad)?,
                parse_reg(s).ok_or_else(bad)?,
            );
            Ok(())
        }
        "cvtfi" => {
            let [d, s] = ops[..] else { return Err(bad()) };
            a.cvtfi(
                parse_reg(d).ok_or_else(bad)?,
                parse_freg(s).ok_or_else(bad)?,
            );
            Ok(())
        }
        "movfr" => {
            let [d, s] = ops[..] else { return Err(bad()) };
            a.movfr(
                parse_reg(d).ok_or_else(bad)?,
                parse_freg(s).ok_or_else(bad)?,
            );
            Ok(())
        }
        "movrf" => {
            let [d, s] = ops[..] else { return Err(bad()) };
            a.movrf(
                parse_freg(d).ok_or_else(bad)?,
                parse_reg(s).ok_or_else(bad)?,
            );
            Ok(())
        }
        "jmp" => {
            let [t] = ops[..] else { return Err(bad()) };
            if let Some(addr) = parse_int(t) {
                a.insn(I::Jmp {
                    target: addr as u64,
                });
            } else {
                a.jmp(t);
            }
            Ok(())
        }
        "call" => {
            let [t] = ops[..] else { return Err(bad()) };
            if let Some(reg) = parse_reg(t) {
                a.callr(reg);
            } else if let Some(addr) = parse_int(t) {
                a.insn(I::Call {
                    target: addr as u64,
                });
            } else {
                a.call(t);
            }
            Ok(())
        }
        "lea" => {
            let [d, sym] = ops[..] else { return Err(bad()) };
            a.lea(parse_reg(d).ok_or_else(bad)?, sym);
            Ok(())
        }
        "hcall" => {
            let [n] = ops[..] else { return Err(bad()) };
            let num = parse_int(n)
                .and_then(|v| u16::try_from(v).ok())
                .ok_or_else(bad)?;
            a.hypercall(num);
            Ok(())
        }
        other => Err(err(lineno, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, INSN_LEN};

    #[test]
    fn full_program_parses_and_runs_structure() {
        let src = r#"
            ; sum 1..10
            .data
            out: .space 8
            init: .i64 0, 0
            vec: .f64 1.5, -2.5

            .text
            .entry main
            main:
                mov r1, 0
                mov r2, 1
            loop:
                add r1, r2
                add r2, 1
                cmp r2, 10
                jle loop
                lea r3, out
                st [r3+0], r1
                mov r1, r1
                hcall 1
        "#;
        let p = parse_asm("sum", src).expect("parse");
        assert_eq!(p.name(), "sum");
        assert!(p.symbol("main").is_some());
        assert!(p.symbol("loop").is_some());
        assert!(p.symbol("out").is_some());
        assert_eq!(p.symbol("vec").map(|v| v % 8), Some(0));
        assert_eq!(p.entry(), p.symbol("main").expect("main"));
        assert!(p.insn_count() >= 9);
    }

    #[test]
    fn display_round_trips_through_the_parser() {
        use crate::{FReg, Reg};
        use Instruction as I;
        let cases = vec![
            I::Nop,
            I::Halt,
            I::Ret,
            I::MovRR {
                dst: Reg::R1,
                src: Reg::R2,
            },
            I::MovRI {
                dst: Reg::R3,
                imm: -77,
            },
            I::Ld {
                dst: Reg::R4,
                base: Reg::SP,
                off: -16,
            },
            I::St {
                src: Reg::R5,
                base: Reg::R6,
                off: 8,
            },
            I::LdIdx {
                dst: Reg::R1,
                base: Reg::R2,
                idx: Reg::R3,
            },
            I::StIdx {
                src: Reg::R1,
                base: Reg::R2,
                idx: Reg::R3,
            },
            I::Push { src: Reg::R9 },
            I::Pop { dst: Reg::R10 },
            I::Add {
                dst: Reg::R1,
                src: Reg::R2,
            },
            I::SubI {
                dst: Reg::R1,
                imm: 4,
            },
            I::Divs {
                dst: Reg::R1,
                src: Reg::R2,
            },
            I::Neg { dst: Reg::R1 },
            I::Cmp {
                a: Reg::R1,
                b: Reg::R2,
            },
            I::CmpI {
                a: Reg::R1,
                imm: 10,
            },
            I::Jmp { target: 0x400000 },
            I::Jcc {
                cond: Cond::Ult,
                target: 0x40000c,
            },
            I::Call { target: 0x400018 },
            I::CallR { target: Reg::R7 },
            I::FMov {
                dst: FReg::F1,
                src: FReg::F2,
            },
            I::FMovI {
                dst: FReg::F3,
                imm: -1.25,
            },
            I::FLd {
                dst: FReg::F1,
                base: Reg::R2,
                off: 24,
            },
            I::FSt {
                src: FReg::F1,
                base: Reg::R2,
                off: 0,
            },
            I::FLdIdx {
                dst: FReg::F0,
                base: Reg::R1,
                idx: Reg::R2,
            },
            I::FStIdx {
                src: FReg::F0,
                base: Reg::R1,
                idx: Reg::R2,
            },
            I::Fadd {
                dst: FReg::F0,
                src: FReg::F1,
            },
            I::Fsqrt { dst: FReg::F5 },
            I::Fcmp {
                a: FReg::F1,
                b: FReg::F2,
            },
            I::CvtIF {
                dst: FReg::F1,
                src: Reg::R1,
            },
            I::CvtFI {
                dst: Reg::R1,
                src: FReg::F1,
            },
            I::MovFR {
                dst: Reg::R1,
                src: FReg::F1,
            },
            I::MovRF {
                dst: FReg::F1,
                src: Reg::R1,
            },
            I::Hypercall { num: 103 },
        ];
        for insn in cases {
            let text = insn.to_string();
            let p = parse_asm("t", &text).unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
            let back = decode(&p.code()[..INSN_LEN as usize]).expect("decode");
            assert_eq!(back, insn, "round trip failed for `{text}`");
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_asm("t", "nop\nbogus r1\n").expect_err("must fail");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_asm("t", "mov r1\n").expect_err("must fail");
        assert_eq!(e.line, 1);

        let e = parse_asm("t", ".data\nx: .f64 notanumber\n").expect_err("must fail");
        assert_eq!(e.line, 2);

        let e = parse_asm("t", ".weird\n").expect_err("must fail");
        assert!(e.message.contains("directive"));
    }

    #[test]
    fn unknown_label_reference_is_reported() {
        let e = parse_asm("t", "jmp nowhere\n").expect_err("must fail");
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = parse_asm(
            "t",
            "; leading comment\n\n   # another\nnop ; trailing\nhalt\n",
        )
        .expect("parse");
        assert_eq!(p.insn_count(), 2);
    }

    #[test]
    fn memory_operand_forms() {
        let p = parse_asm(
            "t",
            "ld r1, [r2]\nld r1, [r2+16]\nld r1, [sp-8]\nld r1, [r2+r3*8]\n",
        )
        .expect("parse");
        let insns: Vec<Instruction> = (0..4)
            .map(|i| {
                decode(&p.code()[i * INSN_LEN as usize..(i + 1) * INSN_LEN as usize])
                    .expect("decode")
            })
            .collect();
        assert_eq!(
            insns[0],
            Instruction::Ld {
                dst: Reg::R1,
                base: Reg::R2,
                off: 0
            }
        );
        assert_eq!(
            insns[2],
            Instruction::Ld {
                dst: Reg::R1,
                base: Reg::SP,
                off: -8
            }
        );
        assert!(matches!(insns[3], Instruction::LdIdx { .. }));
    }
}

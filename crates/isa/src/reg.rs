//! General-purpose and floating-point register names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;
/// Number of floating-point registers.
pub const NUM_FREGS: usize = 16;

/// A 64-bit general-purpose register.
///
/// `R15` doubles as the stack pointer ([`Reg::SP`]); the remaining registers
/// are caller-managed. The guest calling convention (see [`crate::abi`])
/// passes arguments in `R1..=R6` and returns values in `R0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// The stack pointer alias for `R15`.
    pub const SP: Reg = Reg::R15;

    /// All general-purpose registers in index order.
    pub const ALL: [Reg; NUM_REGS] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the register's index in `0..NUM_REGS`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from an index.
    ///
    /// Returns `None` if `idx >= NUM_REGS`.
    pub fn from_index(idx: usize) -> Option<Reg> {
        Reg::ALL.get(idx).copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Reg::SP {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.index())
        }
    }
}

/// A 64-bit floating-point register holding an IEEE-754 `f64`.
///
/// Values are stored as raw bits in [`crate::CpuState`] so fault injectors
/// can flip individual bits without round-tripping through `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FReg {
    F0 = 0,
    F1 = 1,
    F2 = 2,
    F3 = 3,
    F4 = 4,
    F5 = 5,
    F6 = 6,
    F7 = 7,
    F8 = 8,
    F9 = 9,
    F10 = 10,
    F11 = 11,
    F12 = 12,
    F13 = 13,
    F14 = 14,
    F15 = 15,
}

impl FReg {
    /// All floating-point registers in index order.
    pub const ALL: [FReg; NUM_FREGS] = [
        FReg::F0,
        FReg::F1,
        FReg::F2,
        FReg::F3,
        FReg::F4,
        FReg::F5,
        FReg::F6,
        FReg::F7,
        FReg::F8,
        FReg::F9,
        FReg::F10,
        FReg::F11,
        FReg::F12,
        FReg::F13,
        FReg::F14,
        FReg::F15,
    ];

    /// Returns the register's index in `0..NUM_FREGS`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a floating-point register from an index.
    ///
    /// Returns `None` if `idx >= NUM_FREGS`.
    pub fn from_index(idx: usize) -> Option<FReg> {
        FReg::ALL.get(idx).copied()
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(NUM_REGS), None);
    }

    #[test]
    fn freg_index_round_trip() {
        for (i, r) in FReg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(FReg::from_index(i), Some(*r));
        }
        assert_eq!(FReg::from_index(NUM_FREGS), None);
    }

    #[test]
    fn sp_is_r15_and_displays_as_sp() {
        assert_eq!(Reg::SP, Reg::R15);
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::R3.to_string(), "r3");
        assert_eq!(FReg::F7.to_string(), "f7");
    }
}

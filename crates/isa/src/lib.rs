//! # chaser-isa
//!
//! The guest instruction-set architecture used by the Chaser fault-injection
//! platform.
//!
//! The Chaser paper (DSN 2020) instruments x86 guests running under
//! QEMU/DECAF. This reproduction defines a compact, x86-flavoured 64-bit
//! guest ISA that exposes the same surface the paper's mechanisms need:
//!
//! * the instruction classes the paper targets for injection
//!   (`mov`, `fadd`, `fmul`, `cmp`, …) — see [`InsnClass`];
//! * a *binary encoding* ([`encode`]) so programs live in guest memory as
//!   bytes and are dynamically translated by `chaser-tcg`, exactly as QEMU
//!   fetches and translates guest code;
//! * architectural state ([`CpuState`]) that fault injectors corrupt;
//! * an assembler ([`Asm`]) used by `chaser-workloads` to build the paper's
//!   benchmark programs (Matvec, CLAMR-sim, bfs, kmeans, lud);
//! * the guest ABI ([`abi`]) — hypercall numbers and the calling convention —
//!   shared by the OS-lite kernel and the simulated MPI runtime.
//!
//! # Example
//!
//! Assemble a tiny program that sums `0..10` and exits with the sum:
//!
//! ```
//! use chaser_isa::{Asm, Reg, Cond, abi};
//!
//! # fn main() -> Result<(), chaser_isa::AsmError> {
//! let mut a = Asm::new("sum");
//! a.movi(Reg::R1, 0); // acc
//! a.movi(Reg::R2, 0); // i
//! a.label("loop");
//! a.add(Reg::R1, Reg::R2);
//! a.addi(Reg::R2, 1);
//! a.cmpi(Reg::R2, 10);
//! a.jcc(Cond::Lt, "loop");
//! a.mov(Reg::R0, Reg::R1);
//! a.exit_with(Reg::R1);
//! let program = a.assemble()?;
//! assert_eq!(program.name(), "sum");
//! # let _ = abi::SYS_EXIT;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
mod asm;
mod cond;
mod cpu;
mod disasm;
mod encode;
mod insn;
mod parser;
mod program;
mod reg;

pub use asm::{Asm, AsmError};
pub use cond::Cond;
pub use cpu::{CpuState, Flags};
pub use encode::{decode, encode, DecodeError, INSN_LEN};
pub use insn::{InsnClass, Instruction};
pub use parser::{parse_asm, ParseError};
pub use program::{Program, CODE_BASE, DATA_BASE, PAGE_SIZE, STACK_SIZE, STACK_TOP};
pub use reg::{FReg, Reg, NUM_FREGS, NUM_REGS};

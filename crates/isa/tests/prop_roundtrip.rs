//! Property tests: encode/decode is a bijection on valid instructions, and
//! decode never panics on arbitrary bytes.

use chaser_isa::{decode, encode, Cond, FReg, Instruction, Reg, INSN_LEN};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0..chaser_isa::NUM_REGS).prop_map(|i| Reg::from_index(i).expect("in range"))
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0..chaser_isa::NUM_FREGS).prop_map(|i| FReg::from_index(i).expect("in range"))
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0..Cond::ALL.len()).prop_map(|i| Cond::from_index(i).expect("in range"))
}

fn arb_insn() -> impl Strategy<Value = Instruction> {
    use Instruction as I;
    prop_oneof![
        Just(I::Nop),
        Just(I::Halt),
        Just(I::Ret),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::MovRR { dst, src }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::MovRI { dst, imm }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, off)| I::Ld { dst, base, off }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(src, base, off)| I::St { src, base, off }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(dst, base, idx)| I::LdIdx { dst, base, idx }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(src, base, idx)| I::StIdx { src, base, idx }),
        arb_reg().prop_map(|src| I::Push { src }),
        arb_reg().prop_map(|dst| I::Pop { dst }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Add { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Sub { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Mul { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Divs { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Divu { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Rem { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::And { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Or { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Xor { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Shl { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Shr { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| I::Sar { dst, src }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::AddI { dst, imm }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::SubI { dst, imm }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::MulI { dst, imm }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::AndI { dst, imm }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::OrI { dst, imm }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::XorI { dst, imm }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::ShlI { dst, imm }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::ShrI { dst, imm }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| I::SarI { dst, imm }),
        arb_reg().prop_map(|dst| I::Neg { dst }),
        arb_reg().prop_map(|dst| I::Not { dst }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| I::Cmp { a, b }),
        (arb_reg(), any::<i64>()).prop_map(|(a, imm)| I::CmpI { a, imm }),
        any::<u64>().prop_map(|target| I::Jmp { target }),
        (arb_cond(), any::<u64>()).prop_map(|(cond, target)| I::Jcc { cond, target }),
        any::<u64>().prop_map(|target| I::Call { target }),
        arb_reg().prop_map(|target| I::CallR { target }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::FMov { dst, src }),
        (arb_freg(), any::<u64>()).prop_map(|(dst, bits)| I::FMovI {
            dst,
            imm: f64::from_bits(bits),
        }),
        (arb_freg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, off)| I::FLd {
            dst,
            base,
            off
        }),
        (arb_freg(), arb_reg(), any::<i32>()).prop_map(|(src, base, off)| I::FSt {
            src,
            base,
            off
        }),
        (arb_freg(), arb_reg(), arb_reg()).prop_map(|(dst, base, idx)| I::FLdIdx {
            dst,
            base,
            idx
        }),
        (arb_freg(), arb_reg(), arb_reg()).prop_map(|(src, base, idx)| I::FStIdx {
            src,
            base,
            idx
        }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fadd { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fsub { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fmul { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fdiv { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fmin { dst, src }),
        (arb_freg(), arb_freg()).prop_map(|(dst, src)| I::Fmax { dst, src }),
        arb_freg().prop_map(|dst| I::Fsqrt { dst }),
        arb_freg().prop_map(|dst| I::Fabs { dst }),
        arb_freg().prop_map(|dst| I::Fneg { dst }),
        (arb_freg(), arb_freg()).prop_map(|(a, b)| I::Fcmp { a, b }),
        (arb_freg(), arb_reg()).prop_map(|(dst, src)| I::CvtIF { dst, src }),
        (arb_reg(), arb_freg()).prop_map(|(dst, src)| I::CvtFI { dst, src }),
        (arb_reg(), arb_freg()).prop_map(|(dst, src)| I::MovFR { dst, src }),
        (arb_freg(), arb_reg()).prop_map(|(dst, src)| I::MovRF { dst, src }),
        any::<u16>().prop_map(|num| I::Hypercall { num }),
    ]
}

fn insn_eq(a: &Instruction, b: &Instruction) -> bool {
    // FMovI compares by bit pattern so NaN immediates round-trip.
    if let (Instruction::FMovI { dst: d1, imm: i1 }, Instruction::FMovI { dst: d2, imm: i2 }) =
        (a, b)
    {
        return d1 == d2 && i1.to_bits() == i2.to_bits();
    }
    a == b
}

proptest! {
    #[test]
    fn encode_decode_round_trips(insn in arb_insn()) {
        let bytes = encode(&insn);
        let back = decode(&bytes).expect("valid encoding must decode");
        prop_assert!(insn_eq(&insn, &back), "{insn:?} -> {back:?}");
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), INSN_LEN as usize)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn decode_is_left_inverse_even_when_reencoded(bytes in proptest::collection::vec(any::<u8>(), INSN_LEN as usize)) {
        // If arbitrary bytes decode, re-encoding the decoded instruction and
        // decoding again yields the same instruction (canonicalisation is
        // stable). Raw bytes may differ because unused fields are ignored.
        if let Ok(insn) = decode(&bytes) {
            let canon = encode(&insn);
            let again = decode(&canon).expect("canonical encoding decodes");
            prop_assert!(insn_eq(&insn, &again));
        }
    }
}

proptest! {
    /// `parse_asm` inverts `Display` for every instruction (NaN FP
    /// immediates excluded: text cannot carry NaN payload bits).
    #[test]
    fn display_parses_back(insn in arb_insn()) {
        if let Instruction::FMovI { imm, .. } = &insn {
            prop_assume!(!imm.is_nan());
        }
        let text = insn.to_string();
        let program = chaser_isa::parse_asm("t", &text)
            .unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
        let back = decode(&program.code()[..INSN_LEN as usize]).expect("decode");
        prop_assert!(insn_eq(&insn, &back), "`{text}` -> {back:?}");
    }
}

proptest! {
    /// The text assembler never panics, whatever the input.
    #[test]
    fn parser_never_panics(source in "\\PC{0,200}") {
        let _ = chaser_isa::parse_asm("fuzz", &source);
    }

    /// Multi-line fuzz with newlines and plausible tokens.
    #[test]
    fn parser_never_panics_on_token_soup(
        lines in proptest::collection::vec(
            proptest::sample::select(vec![
                "mov r1, r2", "ld r1, [r2+", "st [r", ".data", ".text",
                "x: .f64 1.0", "y:", "jmp x", "call", "hcall 99999",
                "fadd f1", "lea r1", "; comment", ".entry", "ret ret",
            ]),
            0..20,
        )
    ) {
        let source = lines.join("\n");
        let _ = chaser_isa::parse_asm("fuzz", &source);
    }
}

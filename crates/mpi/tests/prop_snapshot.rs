//! Property tests for the cluster snapshot/fork subsystem: freezing a
//! cluster at any round boundary and resuming from the copy-on-write
//! checkpoint must be observably equivalent to never having stopped —
//! identical state digest, identical run outcome — across random snapshot
//! points, workloads, rank counts and scheduling quanta.

use chaser_isa::{abi, Asm, Cond, Program, Reg};
use chaser_mpi::{Cluster, ClusterConfig, ClusterRun};
use proptest::prelude::*;

fn config(nodes: usize, quantum: u64) -> ClusterConfig {
    ClusterConfig {
        nodes,
        quantum,
        phys_bytes: 8 << 20,
        hang_rounds: 32,
        ..ClusterConfig::default()
    }
}

/// Collective workload: `iters` rounds of bcast (root increments a counter
/// first) followed by an allreduce-sum of `rank * x`; every rank exits
/// with its accumulated sum. Valid for any rank count.
fn collective_program(iters: i64) -> Program {
    let mut a = Asm::new("collloop");
    a.data_i64("x", &[0]);
    a.data_i64("mine", &[0]);
    a.data_i64("sum", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    a.movi(Reg::R12, iters);
    a.movi(Reg::R13, 0); // acc
    a.label("top");
    // root: x += 1
    a.cmpi(Reg::R7, 0);
    a.jcc(Cond::Ne, "bcast");
    a.lea(Reg::R8, "x");
    a.ld(Reg::R9, Reg::R8, 0);
    a.addi(Reg::R9, 1);
    a.st(Reg::R9, Reg::R8, 0);
    a.label("bcast");
    a.lea(Reg::R1, "x");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1); // I64
    a.movi(Reg::R4, 0); // root
    a.hypercall(abi::MPI_BCAST);
    // mine = x * rank
    a.lea(Reg::R8, "x");
    a.ld(Reg::R9, Reg::R8, 0);
    a.mul(Reg::R9, Reg::R7);
    a.lea(Reg::R8, "mine");
    a.st(Reg::R9, Reg::R8, 0);
    a.lea(Reg::R1, "mine");
    a.lea(Reg::R2, "sum");
    a.movi(Reg::R3, 1); // count
    a.movi(Reg::R4, 1); // I64
    a.movi(Reg::R5, 1); // Sum
    a.hypercall(abi::MPI_ALLREDUCE);
    a.lea(Reg::R8, "sum");
    a.ld(Reg::R9, Reg::R8, 0);
    a.add(Reg::R13, Reg::R9);
    a.subi(Reg::R12, 1);
    a.cmpi(Reg::R12, 0);
    a.jcc(Cond::Ne, "top");
    a.hypercall(abi::MPI_FINALIZE);
    a.exit_with(Reg::R13);
    a.assemble().expect("assemble")
}

/// Point-to-point workload: rank 0 ping-pongs an incrementing value with
/// rank 1 `iters` times (the other ranks just exit) — keeps envelopes in
/// flight across many round boundaries.
fn pingpong_program(iters: i64) -> Program {
    let mut a = Asm::new("pploop");
    a.data_i64("buf", &[5]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    a.movi(Reg::R12, iters);
    a.cmpi(Reg::R7, 0);
    a.jcc(Cond::Eq, "master");
    a.cmpi(Reg::R7, 1);
    a.jcc(Cond::Eq, "slave");
    a.hypercall(abi::MPI_FINALIZE);
    a.exit(0);

    a.label("master");
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1); // I64
    a.movi(Reg::R4, 1); // dest
    a.movi(Reg::R5, 7); // tag
    a.hypercall(abi::MPI_SEND);
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 1); // source
    a.movi(Reg::R5, 8);
    a.hypercall(abi::MPI_RECV);
    a.subi(Reg::R12, 1);
    a.cmpi(Reg::R12, 0);
    a.jcc(Cond::Ne, "master");
    a.lea(Reg::R8, "buf");
    a.ld(Reg::R9, Reg::R8, 0);
    a.hypercall(abi::MPI_FINALIZE);
    a.exit_with(Reg::R9);

    a.label("slave");
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 0);
    a.movi(Reg::R5, 7);
    a.hypercall(abi::MPI_RECV);
    a.lea(Reg::R8, "buf");
    a.ld(Reg::R9, Reg::R8, 0);
    a.addi(Reg::R9, 1);
    a.st(Reg::R9, Reg::R8, 0);
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 0);
    a.movi(Reg::R5, 8);
    a.hypercall(abi::MPI_SEND);
    a.subi(Reg::R12, 1);
    a.cmpi(Reg::R12, 0);
    a.jcc(Cond::Ne, "slave");
    a.hypercall(abi::MPI_FINALIZE);
    a.exit(0);
    a.assemble().expect("assemble")
}

fn launch(prog: &Program, ranks: u32, nodes: usize, quantum: u64) -> Cluster {
    let mut cluster = Cluster::new(config(nodes, quantum));
    cluster
        .launch_replicated(prog, ranks as usize)
        .expect("launch");
    cluster
}

/// Runs the equivalence check: an uninterrupted reference execution vs an
/// execution snapshotted after `snap_round` rounds, restored into a fresh
/// cluster, and resumed. Also resumes the *snapshotted original*, proving
/// capture itself does not perturb execution.
fn check_equivalence(
    prog: &Program,
    ranks: u32,
    nodes: usize,
    quantum: u64,
    snap_round: u64,
) -> Result<(), TestCaseError> {
    let mut reference = launch(prog, ranks, nodes, quantum);
    let ref_run = reference.run();
    let ref_digest = reference.state_digest();
    prop_assert!(!ref_run.hang, "workload must terminate");

    let mut original = launch(prog, ranks, nodes, quantum);
    let mut stepped = 0;
    while stepped < snap_round && !original.finished() {
        original.step_round();
        stepped += 1;
    }
    let snap = original.snapshot();
    prop_assert_eq!(
        original.state_digest(),
        snap.digest(),
        "digest must cover exactly the captured state"
    );

    // The snapshotted original resumes unperturbed (CoW leaves it intact).
    let orig_run = original.run();
    prop_assert_eq!(original.state_digest(), ref_digest);
    prop_assert_eq!(dump(&orig_run), dump(&ref_run));

    // A restored clone resumes to the same final state and outcome.
    let mut restored = Cluster::from_snapshot(config(nodes, quantum), &snap);
    prop_assert_eq!(
        restored.state_digest(),
        snap.digest(),
        "restore must reproduce the captured state exactly"
    );
    restored.replay_vmi_creations(); // no hooks wired: must be a no-op
    let res_run = restored.run();
    prop_assert_eq!(restored.state_digest(), ref_digest);
    prop_assert_eq!(dump(&res_run), dump(&ref_run));
    Ok(())
}

fn dump(run: &ClusterRun) -> String {
    format!("{run:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn collective_workload_survives_snapshot_anywhere(
        snap_round in 0u64..60,
        ranks in 2u32..5,
        nodes in 1usize..4,
        iters in 1i64..5,
        quantum in proptest::sample::select(vec![50u64, 200, 1000]),
    ) {
        let prog = collective_program(iters);
        check_equivalence(&prog, ranks, nodes, quantum, snap_round)?;
    }

    #[test]
    fn pingpong_workload_survives_snapshot_anywhere(
        snap_round in 0u64..60,
        ranks in 2u32..4,
        iters in 1i64..6,
        quantum in proptest::sample::select(vec![50u64, 300]),
    ) {
        let prog = pingpong_program(iters);
        check_equivalence(&prog, ranks, 2, quantum, snap_round)?;
    }
}

//! End-to-end cluster tests with hand-written guest MPI programs.

use chaser_isa::{abi, Asm, Cond, Program, Reg};
use chaser_mpi::{
    BudgetKind, Cluster, ClusterConfig, Faultiness, HubSyncPolicy, MpiErrorKind, PendingOp,
    RunBudget, TaintCarrier,
};
use chaser_taint::TaintMask;
use chaser_vm::{ExitStatus, Signal};

fn small_config(nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        quantum: 1000,
        phys_bytes: 8 << 20,
        hang_rounds: 32,
        ..ClusterConfig::default()
    }
}

/// Emits `hcall MPI_SEND(buf_sym, count, dtype, dest, tag)`.
fn emit_send(a: &mut Asm, buf: &str, count: i64, dtype: i64, dest: i64, tag: i64) {
    a.lea(Reg::R1, buf);
    a.movi(Reg::R2, count);
    a.movi(Reg::R3, dtype);
    a.movi(Reg::R4, dest);
    a.movi(Reg::R5, tag);
    a.hypercall(abi::MPI_SEND);
}

fn emit_recv(a: &mut Asm, buf: &str, count: i64, dtype: i64, source: i64, tag: i64) {
    a.lea(Reg::R1, buf);
    a.movi(Reg::R2, count);
    a.movi(Reg::R3, dtype);
    a.movi(Reg::R4, source);
    a.movi(Reg::R5, tag);
    a.hypercall(abi::MPI_RECV);
}

/// Rank 0 sends 42 to rank 1; rank 1 increments and returns it; rank 0
/// exits with the value.
fn ping_pong_program() -> Program {
    let mut a = Asm::new("pingpong");
    a.data_i64("buf", &[42]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    a.cmpi(Reg::R7, 0);
    a.jcc(Cond::Ne, "slave");
    // master
    emit_send(&mut a, "buf", 1, 1, 1, 7);
    emit_recv(&mut a, "buf", 1, 1, 1, 8);
    a.lea(Reg::R8, "buf");
    a.ld(Reg::R9, Reg::R8, 0);
    a.hypercall(abi::MPI_FINALIZE);
    a.exit_with(Reg::R9);
    // slave
    a.label("slave");
    emit_recv(&mut a, "buf", 1, 1, 0, 7);
    a.lea(Reg::R8, "buf");
    a.ld(Reg::R9, Reg::R8, 0);
    a.addi(Reg::R9, 1);
    a.st(Reg::R9, Reg::R8, 0);
    emit_send(&mut a, "buf", 1, 1, 0, 8);
    a.hypercall(abi::MPI_FINALIZE);
    a.exit(0);
    a.assemble().expect("assemble")
}

#[test]
fn ping_pong_round_trip() {
    let mut cluster = Cluster::new(small_config(2));
    let prog = ping_pong_program();
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert!(!run.hang, "must not hang");
    assert_eq!(run.mpi_error, None);
    assert_eq!(run.rank_exits[0], Some(ExitStatus::Exited(43)));
    assert_eq!(run.rank_exits[1], Some(ExitStatus::Exited(0)));
    assert!(cluster.net_stats().delivered >= 2);
}

/// Root broadcasts 10; every rank computes rank*10 and all-reduce-sums.
/// With 3 ranks: (0+1+2)*10 = 30; every rank exits with 30.
fn bcast_reduce_program() -> Program {
    let mut a = Asm::new("bcastreduce");
    a.data_i64("x", &[0]);
    a.data_i64("mine", &[0]);
    a.data_i64("sum", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    // root rank 0 sets x = 10
    a.cmpi(Reg::R7, 0);
    a.jcc(Cond::Ne, "after_init");
    a.lea(Reg::R8, "x");
    a.movi(Reg::R9, 10);
    a.st(Reg::R9, Reg::R8, 0);
    a.label("after_init");
    // bcast x from root 0
    a.lea(Reg::R1, "x");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1); // I64
    a.movi(Reg::R4, 0); // root
    a.hypercall(abi::MPI_BCAST);
    // mine = rank * x
    a.lea(Reg::R8, "x");
    a.ld(Reg::R9, Reg::R8, 0);
    a.mul(Reg::R9, Reg::R7);
    a.lea(Reg::R8, "mine");
    a.st(Reg::R9, Reg::R8, 0);
    // allreduce sum
    a.lea(Reg::R1, "mine");
    a.lea(Reg::R2, "sum");
    a.movi(Reg::R3, 1); // count
    a.movi(Reg::R4, 1); // I64
    a.movi(Reg::R5, 1); // Sum
    a.hypercall(abi::MPI_ALLREDUCE);
    a.lea(Reg::R8, "sum");
    a.ld(Reg::R9, Reg::R8, 0);
    a.hypercall(abi::MPI_FINALIZE);
    a.exit_with(Reg::R9);
    a.assemble().expect("assemble")
}

#[test]
fn bcast_and_allreduce() {
    let mut cluster = Cluster::new(small_config(3));
    let prog = bcast_reduce_program();
    cluster.launch_replicated(&prog, 3).expect("launch");
    let run = cluster.run();
    assert!(!run.hang);
    assert_eq!(run.mpi_error, None);
    for r in 0..3 {
        assert_eq!(run.rank_exits[r], Some(ExitStatus::Exited(30)));
    }
}

/// Scatter 4 values from root, each rank doubles its element, gather back;
/// root checks the result.
fn scatter_gather_program(nranks: i64) -> Program {
    let mut a = Asm::new("scatgath");
    a.data_i64("sendbuf", &[10, 20, 30, 40]);
    a.data_i64("elem", &[0]);
    a.data_i64("recvbuf", &[0, 0, 0, 0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    // scatter(sendbuf -> elem), 1 elem per rank, root 0
    a.lea(Reg::R1, "sendbuf");
    a.lea(Reg::R2, "elem");
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 1); // I64
    a.movi(Reg::R5, 0); // root
    a.hypercall(abi::MPI_SCATTER);
    // elem *= 2
    a.lea(Reg::R8, "elem");
    a.ld(Reg::R9, Reg::R8, 0);
    a.muli(Reg::R9, 2);
    a.st(Reg::R9, Reg::R8, 0);
    // gather(elem -> recvbuf)
    a.lea(Reg::R1, "elem");
    a.lea(Reg::R2, "recvbuf");
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 1);
    a.movi(Reg::R5, 0);
    a.hypercall(abi::MPI_GATHER);
    a.hypercall(abi::MPI_FINALIZE);
    // root sums recvbuf and exits with it; others exit 0
    a.cmpi(Reg::R7, 0);
    a.jcc(Cond::Ne, "done");
    a.lea(Reg::R8, "recvbuf");
    a.movi(Reg::R9, 0);
    a.movi(Reg::R10, 0);
    a.label("sumloop");
    a.ldx(Reg::R11, Reg::R8, Reg::R10);
    a.add(Reg::R9, Reg::R11);
    a.addi(Reg::R10, 1);
    a.cmpi(Reg::R10, nranks);
    a.jcc(Cond::Lt, "sumloop");
    a.exit_with(Reg::R9);
    a.label("done");
    a.exit(0);
    a.assemble().expect("assemble")
}

#[test]
fn scatter_then_gather() {
    let mut cluster = Cluster::new(small_config(4));
    let prog = scatter_gather_program(4);
    cluster.launch_replicated(&prog, 4).expect("launch");
    let run = cluster.run();
    assert!(!run.hang);
    assert_eq!(run.mpi_error, None);
    // (10+20+30+40)*2 = 200
    assert_eq!(run.rank_exits[0], Some(ExitStatus::Exited(200)));
}

/// A send to a nonexistent rank must abort the job with InvalidRank.
#[test]
fn corrupted_dest_rank_is_an_mpi_error() {
    let mut a = Asm::new("baddest");
    a.data_i64("buf", &[1]);
    a.hypercall(abi::MPI_INIT);
    emit_send(&mut a, "buf", 1, 1, 99, 7);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    let err = run.mpi_error.expect("MPI error");
    assert_eq!(err.kind, MpiErrorKind::InvalidRank);
    assert!(run
        .rank_exits
        .iter()
        .all(|e| *e == Some(ExitStatus::MpiAborted)));
}

/// A corrupted datatype code is caught by validation.
#[test]
fn corrupted_datatype_is_an_mpi_error() {
    let mut a = Asm::new("baddtype");
    a.data_i64("buf", &[1]);
    a.hypercall(abi::MPI_INIT);
    emit_send(&mut a, "buf", 1, 77, 0, 7);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(1));
    cluster.launch_replicated(&prog, 1).expect("launch");
    let run = cluster.run();
    assert_eq!(
        run.mpi_error.expect("err").kind,
        MpiErrorKind::InvalidDatatype
    );
}

/// An absurd count (as from a corrupted register) is caught.
#[test]
fn corrupted_count_is_an_mpi_error() {
    let mut a = Asm::new("badcount");
    a.data_i64("buf", &[1]);
    a.hypercall(abi::MPI_INIT);
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1 << 40);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 0);
    a.movi(Reg::R5, 7);
    a.hypercall(abi::MPI_SEND);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(1));
    cluster.launch_replicated(&prog, 1).expect("launch");
    let run = cluster.run();
    assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::InvalidCount);
}

/// A corrupted buffer pointer dies with SIGSEGV inside the MPI library —
/// an OS exception, not an MPI error.
#[test]
fn corrupted_buffer_pointer_is_an_os_exception() {
    let mut a = Asm::new("badbuf");
    a.hypercall(abi::MPI_INIT);
    a.movi(Reg::R1, 0x6000_0000);
    a.movi(Reg::R2, 4);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 1);
    a.movi(Reg::R5, 7);
    a.hypercall(abi::MPI_SEND);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    // Rank 1 waits on a message that never comes from the dead rank 0.
    let mut b = Asm::new("waiter");
    b.data_i64("buf", &[0]);
    b.hypercall(abi::MPI_INIT);
    emit_recv(&mut b, "buf", 1, 1, 0, 7);
    b.exit(0);
    let waiter = b.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch(&[&prog, &waiter]).expect("launch");
    let run = cluster.run();
    assert_eq!(
        run.rank_exits[0],
        Some(ExitStatus::Signaled(Signal::Segv)),
        "sender dies of SIGSEGV"
    );
    // The stranded receiver surfaces as an MPI RankDied abort.
    assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::RankDied);
    assert_eq!(run.rank_exits[1], Some(ExitStatus::MpiAborted));
}

/// Receive with nobody sending (both ranks receive) must be detected as a
/// hang.
#[test]
fn deadlocked_receives_hang() {
    let mut a = Asm::new("deadlock");
    a.data_i64("buf", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    a.movi(Reg::R6, 1);
    a.sub(Reg::R6, Reg::R7); // peer = 1 - rank
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.mov(Reg::R4, Reg::R6);
    a.movi(Reg::R5, 7);
    a.hypercall(abi::MPI_RECV);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert!(run.hang, "cross-receive deadlock must be detected");
    assert_eq!(run.rank_exits[0], None);
    assert_eq!(run.rank_exits[1], None);
}

/// Mismatched collectives (one rank in barrier, one in bcast) abort.
#[test]
fn mismatched_collectives_abort() {
    let mut a = Asm::new("mismatch");
    a.data_i64("buf", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.cmpi(Reg::R0, 0);
    a.jcc(Cond::Ne, "other");
    a.hypercall(abi::MPI_BARRIER);
    a.exit(0);
    a.label("other");
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 0);
    a.hypercall(abi::MPI_BCAST);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::TypeMismatch);
}

/// Using MPI before MPI_Init aborts.
#[test]
fn mpi_before_init_aborts() {
    let mut a = Asm::new("noinit");
    a.hypercall(abi::MPI_COMM_RANK);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(1));
    cluster.launch_replicated(&prog, 1).expect("launch");
    let run = cluster.run();
    assert_eq!(
        run.mpi_error.expect("err").kind,
        MpiErrorKind::NotInitialized
    );
}

/// Taint on the sender's buffer crosses to the receiver through the hub,
/// and does not cross when the carrier is disabled.
#[test]
fn taint_crosses_ranks_via_hub() {
    for (carrier, expect_cross) in [
        (TaintCarrier::Hub, true),
        (TaintCarrier::Header, true),
        (TaintCarrier::None, false),
    ] {
        let mut cfg = small_config(2);
        cfg.taint_carrier = carrier;
        let mut cluster = Cluster::new(cfg);
        let prog = ping_pong_program();
        cluster.launch_replicated(&prog, 2).expect("launch");

        // Taint the master's send buffer before anything runs — as if an
        // injector had corrupted it.
        let buf = prog.symbol("buf").expect("buf symbol");
        let (ni, pid) = cluster.rank_location(0);
        cluster
            .node_mut(ni)
            .write_guest_taint(pid, buf, &TaintMask::ALL.0.to_le_bytes().map(|_| 0xffu8))
            .expect("taint");

        let run = cluster.run();
        assert!(!run.hang);
        assert_eq!(run.rank_exits[0], Some(ExitStatus::Exited(43)));

        // Check the slave's buffer shadow after its receive.
        let (ni1, pid1) = cluster.rank_location(1);
        let slave_masks = cluster
            .node(ni1)
            .read_guest_taint(pid1, buf, 8)
            .expect("slave taint");
        let crossed = slave_masks.iter().any(|&m| m != 0);
        assert_eq!(
            crossed, expect_cross,
            "carrier {carrier:?}: cross-rank taint expectation"
        );
        if expect_cross {
            assert!(run.cross_rank_tainted_deliveries >= 1);
        } else {
            assert_eq!(run.cross_rank_tainted_deliveries, 0);
        }
        if carrier == TaintCarrier::Hub {
            let stats = cluster.hub().stats();
            assert!(stats.published >= 1, "hub must have been used");
            assert!(stats.hits >= 1);
        }
    }
}

/// The hub must not mis-apply a later tainted message's record to an
/// earlier clean message (seq alignment).
#[test]
fn clean_then_tainted_messages_stay_aligned() {
    // master sends buf (clean), then buf2; slave receives into rbuf1, rbuf2
    // and exits with rbuf1's taint status unknown to the guest — we check
    // shadows from outside.
    let mut a = Asm::new("aligned");
    a.data_i64("buf1", &[1]);
    a.data_i64("buf2", &[2]);
    a.data_i64("rbuf1", &[0]);
    a.data_i64("rbuf2", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.cmpi(Reg::R0, 0);
    a.jcc(Cond::Ne, "slave");
    emit_send(&mut a, "buf1", 1, 1, 1, 7);
    emit_send(&mut a, "buf2", 1, 1, 1, 7);
    a.exit(0);
    a.label("slave");
    emit_recv(&mut a, "rbuf1", 1, 1, 0, 7);
    emit_recv(&mut a, "rbuf2", 1, 1, 0, 7);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch_replicated(&prog, 2).expect("launch");

    // Taint only buf2 on the master.
    let buf2 = prog.symbol("buf2").expect("buf2");
    let (ni, pid) = cluster.rank_location(0);
    cluster
        .node_mut(ni)
        .write_guest_taint(pid, buf2, &[0xff; 8])
        .expect("taint");

    let run = cluster.run();
    assert!(!run.hang);
    assert_eq!(run.mpi_error, None);

    let (ni1, pid1) = cluster.rank_location(1);
    let rbuf1 = prog.symbol("rbuf1").expect("rbuf1");
    let rbuf2 = prog.symbol("rbuf2").expect("rbuf2");
    let m1 = cluster
        .node(ni1)
        .read_guest_taint(pid1, rbuf1, 8)
        .expect("m1");
    let m2 = cluster
        .node(ni1)
        .read_guest_taint(pid1, rbuf2, 8)
        .expect("m2");
    assert!(
        m1.iter().all(|&m| m == 0),
        "first (clean) message must stay clean"
    );
    assert!(
        m2.iter().any(|&m| m != 0),
        "second (tainted) message must carry taint"
    );
}

/// A receive with a smaller buffer than the matched message must abort
/// with a truncation error.
#[test]
fn truncated_receive_is_an_mpi_error() {
    let mut a = Asm::new("trunc");
    a.data_i64("big", &[1, 2, 3, 4]);
    a.data_i64("small", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.cmpi(Reg::R0, 0);
    a.jcc(Cond::Ne, "recv_side");
    emit_send(&mut a, "big", 4, 1, 1, 7);
    a.exit(0);
    a.label("recv_side");
    emit_recv(&mut a, "small", 1, 1, 0, 7);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::Truncation);
}

/// Sender and receiver disagreeing on the datatype must abort.
#[test]
fn datatype_mismatch_is_an_mpi_error() {
    let mut a = Asm::new("dtmismatch");
    a.data_i64("buf", &[1]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.cmpi(Reg::R0, 0);
    a.jcc(Cond::Ne, "recv_side");
    emit_send(&mut a, "buf", 1, 1, 1, 7); // sends I64
    a.exit(0);
    a.label("recv_side");
    emit_recv(&mut a, "buf", 1, 2, 0, 7); // expects F64
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::TypeMismatch);
}

/// All four reduction operators over I64 and F64.
#[test]
fn reduce_operators_compute_correctly() {
    // rank contributes (rank+1); with 3 ranks: sum=6, min=1, max=3, prod=6
    for (op, expect) in [(1i64, 6i64), (2, 1), (3, 3), (4, 6)] {
        let mut a = Asm::new("redop");
        a.data_i64("mine", &[0]);
        a.data_i64("out", &[0]);
        a.hypercall(abi::MPI_INIT);
        a.hypercall(abi::MPI_COMM_RANK);
        a.mov(Reg::R7, Reg::R0);
        a.addi(Reg::R7, 1);
        a.lea(Reg::R8, "mine");
        a.st(Reg::R7, Reg::R8, 0);
        a.lea(Reg::R1, "mine");
        a.lea(Reg::R2, "out");
        a.movi(Reg::R3, 1);
        a.movi(Reg::R4, 1); // I64
        a.movi(Reg::R5, op);
        a.hypercall(abi::MPI_ALLREDUCE);
        a.lea(Reg::R8, "out");
        a.ld(Reg::R9, Reg::R8, 0);
        a.exit_with(Reg::R9);
        let prog = a.assemble().expect("assemble");

        let mut cluster = Cluster::new(small_config(3));
        cluster.launch_replicated(&prog, 3).expect("launch");
        let run = cluster.run();
        assert_eq!(run.mpi_error, None, "op {op}");
        for r in 0..3 {
            assert_eq!(
                run.rank_exits[r],
                Some(ExitStatus::Exited(expect)),
                "op {op} rank {r}"
            );
        }
    }
}

/// A byte-typed reduce is rejected (no meaningful elementwise op).
#[test]
fn byte_reduce_is_rejected() {
    let mut a = Asm::new("bytereduce");
    a.data_i64("buf", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.lea(Reg::R1, "buf");
    a.lea(Reg::R2, "buf");
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 3); // Byte
    a.movi(Reg::R5, 1);
    a.hypercall(abi::MPI_ALLREDUCE);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(1));
    cluster.launch_replicated(&prog, 1).expect("launch");
    let run = cluster.run();
    assert_eq!(
        run.mpi_error.expect("err").kind,
        MpiErrorKind::InvalidDatatype
    );
}

/// A runaway guest loop (as a corrupted branch produces) is caught by the
/// instruction budget and declared a hang.
#[test]
fn runaway_loop_is_declared_hung() {
    let mut a = Asm::new("spin");
    a.label("forever");
    a.jmp("forever");
    let prog = a.assemble().expect("assemble");

    let mut cfg = small_config(1);
    cfg.max_total_insns = 100_000;
    let mut cluster = Cluster::new(cfg);
    cluster.launch_replicated(&prog, 1).expect("launch");
    let run = cluster.run();
    assert!(run.hang);
    assert_eq!(run.rank_exits[0], None);
    assert!(run.total_insns >= 100_000);
}

/// Collectives work with a non-zero root.
#[test]
fn bcast_from_nonzero_root() {
    let mut a = Asm::new("root2");
    a.data_i64("x", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    a.cmpi(Reg::R7, 2);
    a.jcc(Cond::Ne, "join");
    a.lea(Reg::R8, "x");
    a.movi(Reg::R9, 55);
    a.st(Reg::R9, Reg::R8, 0);
    a.label("join");
    a.lea(Reg::R1, "x");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 2); // root = 2
    a.hypercall(abi::MPI_BCAST);
    a.lea(Reg::R8, "x");
    a.ld(Reg::R9, Reg::R8, 0);
    a.hypercall(abi::MPI_FINALIZE);
    a.exit_with(Reg::R9);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(3));
    cluster.launch_replicated(&prog, 3).expect("launch");
    let run = cluster.run();
    assert_eq!(run.mpi_error, None);
    for r in 0..3 {
        assert_eq!(run.rank_exits[r], Some(ExitStatus::Exited(55)), "rank {r}");
    }
}

/// External node-failure injection: kill a slave mid-run; the job must
/// surface RankDied, and the victim's status must show the signal.
#[test]
fn external_rank_failure_strands_peers() {
    let mut cluster = Cluster::new(small_config(2));
    let prog = ping_pong_program();
    cluster.launch_replicated(&prog, 2).expect("launch");
    // Let the job start, then fail the slave.
    for _ in 0..2 {
        cluster.step_round();
    }
    cluster.fail_rank(1, Signal::Segv);
    let run = cluster.run();
    assert_eq!(run.rank_exits[1], Some(ExitStatus::Signaled(Signal::Segv)));
    // The master either already finished its exchange or observes the dead
    // peer as an MPI error.
    match run.rank_exits[0] {
        Some(ExitStatus::Exited(43)) => {}
        Some(ExitStatus::MpiAborted) => {
            assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::RankDied);
        }
        other => panic!("unexpected master status: {other:?}"),
    }
}

/// Nonblocking exchange: both ranks post an Irecv first, then Isend, then
/// Wait — the standard deadlock-free halo pattern that *blocking* cross
/// receives (see `deadlocked_receives_hang`) cannot express.
#[test]
fn nonblocking_exchange_avoids_the_deadlock() {
    let mut a = Asm::new("isendirecv");
    a.data_i64("mine", &[0]);
    a.data_i64("theirs", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    // mine = rank + 100
    a.mov(Reg::R9, Reg::R7);
    a.addi(Reg::R9, 100);
    a.lea(Reg::R8, "mine");
    a.st(Reg::R9, Reg::R8, 0);
    // peer = 1 - rank
    a.movi(Reg::R10, 1);
    a.sub(Reg::R10, Reg::R7);
    // irecv(theirs) from peer
    a.lea(Reg::R1, "theirs");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.mov(Reg::R4, Reg::R10);
    a.movi(Reg::R5, 7);
    a.hypercall(abi::MPI_IRECV);
    a.mov(Reg::R11, Reg::R0); // request handle
                              // isend(mine) to peer
    a.lea(Reg::R1, "mine");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.mov(Reg::R4, Reg::R10);
    a.movi(Reg::R5, 7);
    a.hypercall(abi::MPI_ISEND);
    // wait(recv request)
    a.mov(Reg::R1, Reg::R11);
    a.hypercall(abi::MPI_WAIT);
    a.lea(Reg::R8, "theirs");
    a.ld(Reg::R9, Reg::R8, 0);
    a.hypercall(abi::MPI_FINALIZE);
    a.exit_with(Reg::R9);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert!(!run.hang, "nonblocking exchange must not deadlock");
    assert_eq!(run.mpi_error, None);
    assert_eq!(run.rank_exits[0], Some(ExitStatus::Exited(101)));
    assert_eq!(run.rank_exits[1], Some(ExitStatus::Exited(100)));
}

/// ANY_SOURCE/ANY_TAG receives collect messages from every sender.
#[test]
fn wildcard_receive_from_any_source() {
    let mut a = Asm::new("anysrc");
    a.data_i64("mine", &[0]);
    a.data_i64("got", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    a.cmpi(Reg::R7, 0);
    a.jcc(Cond::Eq, "master");
    // workers send rank (with tag = 40 + rank)
    a.lea(Reg::R8, "mine");
    a.st(Reg::R7, Reg::R8, 0);
    a.lea(Reg::R1, "mine");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 0);
    a.mov(Reg::R5, Reg::R7);
    a.addi(Reg::R5, 40);
    a.hypercall(abi::MPI_SEND);
    a.exit(0);
    // master: three wildcard receives, sum all payloads
    a.label("master");
    a.movi(Reg::R9, 0); // sum
    a.movi(Reg::R10, 0); // i
    a.label("recv_loop");
    a.cmpi(Reg::R10, 2);
    a.jcc(Cond::Ge, "done");
    a.lea(Reg::R1, "got");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, abi::MPI_ANY as i64); // ANY_SOURCE
    a.movi(Reg::R5, abi::MPI_ANY as i64); // ANY_TAG
    a.hypercall(abi::MPI_RECV);
    a.lea(Reg::R8, "got");
    a.ld(Reg::R11, Reg::R8, 0);
    a.add(Reg::R9, Reg::R11);
    a.addi(Reg::R10, 1);
    a.jmp("recv_loop");
    a.label("done");
    a.exit_with(Reg::R9);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(3));
    cluster.launch_replicated(&prog, 3).expect("launch");
    let run = cluster.run();
    assert!(!run.hang);
    assert_eq!(run.mpi_error, None);
    assert_eq!(run.rank_exits[0], Some(ExitStatus::Exited(3)), "1 + 2");
}

/// Waiting on a bogus request handle is caught.
#[test]
fn wait_on_invalid_request_is_an_mpi_error() {
    let mut a = Asm::new("badwait");
    a.hypercall(abi::MPI_INIT);
    a.movi(Reg::R1, 42);
    a.hypercall(abi::MPI_WAIT);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(1));
    cluster.launch_replicated(&prog, 1).expect("launch");
    let run = cluster.run();
    assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::InvalidOp);
}

/// A Wait stranded by a dead sender surfaces as RankDied.
#[test]
fn wait_on_dead_sender_is_rank_died() {
    let mut a = Asm::new("deadwait");
    a.data_i64("buf", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.cmpi(Reg::R0, 0);
    a.jcc(Cond::Ne, "peer");
    // rank 0: irecv from 1, then wait — but rank 1 exits without sending.
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.movi(Reg::R4, 1);
    a.movi(Reg::R5, 7);
    a.hypercall(abi::MPI_IRECV);
    a.mov(Reg::R1, Reg::R0);
    a.hypercall(abi::MPI_WAIT);
    a.exit(0);
    a.label("peer");
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(2));
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::RankDied);
}

/// MPI_Wtime ticks forward.
#[test]
fn wtime_is_monotonic() {
    let mut a = Asm::new("wtime");
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_WTIME);
    a.mov(Reg::R7, Reg::R0);
    a.nop();
    a.nop();
    a.hypercall(abi::MPI_WTIME);
    a.cmp(Reg::R0, Reg::R7);
    a.jcc(Cond::Gt, "ok");
    a.exit(1);
    a.label("ok");
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(1));
    cluster.launch_replicated(&prog, 1).expect("launch");
    let run = cluster.run();
    assert_eq!(run.rank_exits[0], Some(ExitStatus::Exited(0)));
}

/// The per-run instruction budget stops a runaway loop at exactly the same
/// instruction on every replay, and is classified as a budget stop, not a
/// hang.
#[test]
fn insn_budget_stops_runaway_deterministically() {
    let spin = {
        let mut a = Asm::new("spin");
        a.label("forever");
        a.jmp("forever");
        a.assemble().expect("assemble")
    };
    let mut totals = Vec::new();
    for _ in 0..2 {
        let mut cfg = small_config(1);
        cfg.run_budget = RunBudget {
            max_insns: 50_000,
            max_rounds: 0,
        };
        let mut cluster = Cluster::new(cfg);
        cluster.launch_replicated(&spin, 1).expect("launch");
        let run = cluster.run();
        assert_eq!(run.budget_exhausted, Some(BudgetKind::Insns));
        assert!(!run.hang, "budget stop must not be classified as a hang");
        assert_eq!(run.rank_exits[0], None);
        assert_eq!(run.total_insns, 50_000, "budget binds exactly");
        assert_eq!(run.live_at_stop.len(), 1);
        assert_eq!(run.live_at_stop[0].pending, PendingOp::Compute);
        totals.push(run.total_insns);
    }
    assert_eq!(totals[0], totals[1], "deterministic across replays");
}

/// The round budget stops a deadlocked job before the hang heuristic gets a
/// chance to, and the report names the live ranks and their pending ops.
#[test]
fn round_budget_fires_before_the_hang_heuristic() {
    let mut a = Asm::new("deadlock");
    a.data_i64("buf", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.mov(Reg::R7, Reg::R0);
    a.movi(Reg::R6, 1);
    a.sub(Reg::R6, Reg::R7);
    a.lea(Reg::R1, "buf");
    a.movi(Reg::R2, 1);
    a.movi(Reg::R3, 1);
    a.mov(Reg::R4, Reg::R6);
    a.movi(Reg::R5, 7);
    a.hypercall(abi::MPI_RECV);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cfg = small_config(2);
    cfg.run_budget = RunBudget {
        max_insns: 0,
        max_rounds: 10,
    };
    let mut cluster = Cluster::new(cfg);
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert_eq!(run.budget_exhausted, Some(BudgetKind::Rounds));
    assert!(!run.hang);
    assert_eq!(run.rounds, 10);
    let pending: Vec<PendingOp> = run.live_at_stop.iter().map(|h| h.pending).collect();
    assert_eq!(pending, vec![PendingOp::Recv, PendingOp::Recv]);
}

/// A genuine hang report names the live ranks and what they wait on.
#[test]
fn hang_report_names_live_ranks_and_pending_ops() {
    let mut a = Asm::new("halfdeadlock");
    a.data_i64("buf", &[0]);
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.cmpi(Reg::R0, 0);
    a.jcc(Cond::Ne, "spin");
    // Rank 0 blocks in a receive rank 1 never serves, while rank 1 spins
    // in user code — live-but-stuck, so the stall is a hang, not RankDied.
    emit_recv(&mut a, "buf", 1, 1, 1, 7);
    a.exit(0);
    a.label("spin");
    a.label("forever");
    a.jmp("forever");
    let prog = a.assemble().expect("assemble");

    let mut cfg = small_config(2);
    cfg.max_total_insns = 200_000;
    let mut cluster = Cluster::new(cfg);
    cluster.launch_replicated(&prog, 2).expect("launch");
    let run = cluster.run();
    assert!(run.hang);
    assert_eq!(run.live_at_stop.len(), 2);
    assert_eq!(run.live_at_stop[0].rank, 0);
    assert_eq!(run.live_at_stop[0].pending, PendingOp::Recv);
    assert_eq!(run.live_at_stop[1].rank, 1);
    assert_eq!(run.live_at_stop[1].pending, PendingOp::Compute);
}

/// A lossy fabric with retransmission enabled must not change MPI results:
/// the ack/retransmit layer hides drops and duplicates from the runtime.
#[test]
fn lossy_interconnect_preserves_mpi_results() {
    let prog = bcast_reduce_program();
    let reliable = {
        let mut cluster = Cluster::new(small_config(3));
        cluster.launch_replicated(&prog, 3).expect("launch");
        cluster.run()
    };
    for seed in [1u64, 7, 42] {
        let mut cfg = small_config(3);
        cfg.net_faultiness = Faultiness {
            drop_prob: 0.4,
            dup_prob: 0.3,
            max_retries: 32,
            seed,
        };
        let mut cluster = Cluster::new(cfg);
        cluster.launch_replicated(&prog, 3).expect("launch");
        let run = cluster.run();
        assert!(!run.hang, "seed {seed}");
        assert_eq!(run.mpi_error, None, "seed {seed}");
        assert_eq!(run.rank_exits, reliable.rank_exits, "seed {seed}");
        assert_eq!(cluster.net_stats().lost, 0, "retransmit must recover");
    }
}

/// When every TaintHub poll fails, the delivery completes in degraded mode:
/// the data arrives, the taint is dropped, and the loss is counted.
#[test]
fn exhausted_hub_retries_degrade_to_taint_sync_lost() {
    let mut cfg = small_config(2);
    cfg.taint_carrier = TaintCarrier::Hub;
    cfg.hub_sync = HubSyncPolicy {
        drop_prob: 1.0,
        max_retries: 3,
        ..HubSyncPolicy::default()
    };
    let mut cluster = Cluster::new(cfg);
    let prog = ping_pong_program();
    cluster.launch_replicated(&prog, 2).expect("launch");

    let buf = prog.symbol("buf").expect("buf symbol");
    let (ni, pid) = cluster.rank_location(0);
    cluster
        .node_mut(ni)
        .write_guest_taint(pid, buf, &[0xff; 8])
        .expect("taint");

    let run = cluster.run();
    assert!(!run.hang);
    assert_eq!(
        run.rank_exits[0],
        Some(ExitStatus::Exited(43)),
        "data flows"
    );
    assert!(run.taint_sync_lost >= 1, "lost sync must be counted");
    assert_eq!(
        run.cross_rank_tainted_deliveries, 0,
        "degraded deliveries must not count as propagated taint"
    );
    let (ni1, pid1) = cluster.rank_location(1);
    let slave_masks = cluster
        .node(ni1)
        .read_guest_taint(pid1, buf, 8)
        .expect("slave taint");
    assert!(
        slave_masks.iter().all(|&m| m == 0),
        "taint must not cross when sync is lost"
    );
}

/// Mid-collective process death: one rank dies before joining a barrier
/// the others already entered; the job must abort with RankDied instead of
/// hanging.
#[test]
fn death_before_joining_a_collective_aborts() {
    let mut a = Asm::new("collpartial");
    a.hypercall(abi::MPI_INIT);
    a.hypercall(abi::MPI_COMM_RANK);
    a.cmpi(Reg::R0, 2);
    a.jcc(Cond::Eq, "die");
    a.hypercall(abi::MPI_BARRIER);
    a.exit(0);
    a.label("die");
    // Rank 2 dereferences a wild pointer instead of joining.
    a.movi(Reg::R1, 0x5555_0000);
    a.ld(Reg::R2, Reg::R1, 0);
    a.exit(0);
    let prog = a.assemble().expect("assemble");

    let mut cluster = Cluster::new(small_config(3));
    cluster.launch_replicated(&prog, 3).expect("launch");
    let run = cluster.run();
    assert!(!run.hang, "must be detected as an error, not a hang");
    assert_eq!(run.rank_exits[2], Some(ExitStatus::Signaled(Signal::Segv)));
    assert_eq!(run.mpi_error.expect("err").kind, MpiErrorKind::RankDied);
}

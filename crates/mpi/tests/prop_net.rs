//! Property tests for the interconnect: per-(source, dest, tag) FIFO
//! order, and conservation of messages.

use chaser_isa::abi::MpiDatatype;
use chaser_mpi::{Envelope, Interconnect};
use proptest::prelude::*;

fn env(src: u32, dest: u32, tag: u64, payload: u64) -> Envelope {
    Envelope {
        src,
        dest,
        tag,
        dtype: MpiDatatype::I64,
        count: 1,
        data: payload.to_le_bytes().to_vec(),
        taint_header: None,
        seq: 0,
    }
}

proptest! {
    /// Messages on the same (src, dest, tag) stream never overtake, no
    /// matter how sends interleave across streams.
    #[test]
    fn same_stream_fifo(
        sends in proptest::collection::vec((0u32..3, 0u32..3, 0u64..3), 1..60),
    ) {
        let mut net = Interconnect::new(3, 0);
        let mut counters = std::collections::HashMap::new();
        for &(src, dest, tag) in &sends {
            let n = counters.entry((src, dest, tag)).or_insert(0u64);
            net.send(env(src, dest, tag, *n), 0);
            *n += 1;
        }
        // Drain every stream; payloads must come out 0, 1, 2, ...
        for (&(src, dest, tag), &count) in &counters {
            for expect in 0..count {
                let got = net
                    .try_match(dest, Some(src), Some(tag), u64::MAX)
                    .expect("message present");
                let payload = u64::from_le_bytes(got.data[..8].try_into().expect("8 bytes"));
                prop_assert_eq!(payload, expect, "stream ({},{},{})", src, dest, tag);
            }
        }
        prop_assert_eq!(net.in_flight(), 0, "all messages drained");
    }

    /// Wildcard draining delivers exactly the sent multiset.
    #[test]
    fn wildcard_drain_conserves_messages(
        sends in proptest::collection::vec((0u32..3, 0u64..4, any::<u64>()), 1..40),
    ) {
        let mut net = Interconnect::new(2, 0);
        let mut expected: Vec<u64> = Vec::new();
        for &(src, tag, payload) in &sends {
            net.send(env(src, 1, tag, payload), 0);
            expected.push(payload);
        }
        let mut got = Vec::new();
        while let Some(envl) = net.try_match(1, None, None, u64::MAX) {
            got.push(u64::from_le_bytes(envl.data[..8].try_into().expect("8 bytes")));
        }
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(net.stats().sent, sends.len() as u64);
        prop_assert_eq!(net.stats().delivered, sends.len() as u64);
    }
}

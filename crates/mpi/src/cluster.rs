//! The simulated cluster: rank placement, deterministic scheduling and the
//! MPI runtime service layer.

use crate::collective::{CollKind, CollReq, CollectiveSlot};
use crate::envelope::{Envelope, MpiError, MpiErrorKind, TaintCarrier, MAX_MSG_BYTES};
use crate::net::{Faultiness, Interconnect, NetStats};
use chaser_isa::abi::{self, MpiDatatype, MpiOp};
use chaser_isa::Program;
use chaser_taint::{ProvSet, TaintPolicy};
use chaser_tainthub::{HubSnapshot, MsgId, TaintHub};
use chaser_tcg::{BaseLayer, CacheStats};
use chaser_vm::{
    BufferedTaintEvent, EngineStats, ExecTuning, ExitStatus, MpiRequest, Node, NodeSnapshot,
    ProcState, ProcessFiles, SharedTaintSink, Signal, SliceExit, TaintAccessKind,
};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-run watchdog budgets, enforced by the scheduler (rounds) and down in
/// the `chaser-vm` engine loop (instructions). `0` disables a bound.
///
/// The cluster's `hang_rounds` heuristic only catches runs that stop making
/// progress; a fault that turns a bounded loop *unbounded* keeps retiring
/// instructions forever and is caught by these budgets instead,
/// deterministically, at the same instruction on every replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunBudget {
    /// Stop the run after this many total retired guest instructions.
    pub max_insns: u64,
    /// Stop the run after this many scheduler rounds.
    pub max_rounds: u64,
}

impl RunBudget {
    /// No bounds at all (the default).
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// True when neither bound is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_insns == 0 && self.max_rounds == 0
    }

    /// The tighter of each pair of bounds (`0` = unset loses to any bound).
    pub fn merge(self, other: RunBudget) -> RunBudget {
        fn min_set(a: u64, b: u64) -> u64 {
            match (a, b) {
                (0, b) => b,
                (a, 0) => a,
                (a, b) => a.min(b),
            }
        }
        RunBudget {
            max_insns: min_set(self.max_insns, other.max_insns),
            max_rounds: min_set(self.max_rounds, other.max_rounds),
        }
    }
}

/// Which [`RunBudget`] bound stopped the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BudgetKind {
    /// `max_insns` fired (runaway computation).
    Insns,
    /// `max_rounds` fired (runaway scheduling, e.g. livelock).
    Rounds,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetKind::Insns => write!(f, "instruction budget"),
            BudgetKind::Rounds => write!(f, "round budget"),
        }
    }
}

/// Reliability policy for the receiver-side TaintHub sync path. The hub
/// lives on the head node in the paper's testbed, so its polls traverse a
/// control network that can fail independently of the MPI fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HubSyncPolicy {
    /// Probability one poll attempt fails.
    pub drop_prob: f64,
    /// Poll retries (with backoff) after the first failure before the
    /// delivery falls into degraded mode and the sync is declared lost.
    pub max_retries: u32,
    /// Scheduler rounds a published record survives before [`TaintHub::gc`]
    /// may expire it. `0` disables garbage collection.
    pub record_ttl: u64,
    /// Seed for the poll-failure stream.
    pub seed: u64,
}

impl Default for HubSyncPolicy {
    fn default() -> HubSyncPolicy {
        HubSyncPolicy {
            drop_prob: 0.0,
            max_retries: 3,
            record_ttl: 4096,
            seed: 0,
        }
    }
}

/// What a live rank was doing when the run was stopped by the watchdog
/// (hang declaration or budget exhaustion) — the debuggable part of a hang
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PendingOp {
    /// Blocked in `MPI_Recv`.
    Recv,
    /// Blocked in `MPI_Wait` on a nonblocking request.
    Wait,
    /// Waiting in a collective for peers to join.
    Collective,
    /// Blocked in the MPI runtime with no recorded wait reason.
    Mpi,
    /// Runnable user code — a runaway loop, not a communication wait.
    Compute,
}

/// One live rank in a hang/budget report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HangRank {
    /// The rank that was still live.
    pub rank: u32,
    /// What it was waiting on (or doing) when the run was stopped.
    pub pending: PendingOp,
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated machines (the paper's testbed has 4).
    pub nodes: usize,
    /// Instructions per scheduling slice.
    pub quantum: u64,
    /// Interconnect delivery latency in scheduler rounds.
    pub net_latency: u64,
    /// Interconnect bandwidth in bytes per scheduler round (`0` =
    /// infinite): large messages take proportionally longer to arrive.
    pub net_bytes_per_round: u64,
    /// Abort the run as hung past this many total guest instructions.
    pub max_total_insns: u64,
    /// Abort the run as hung after this many progress-free rounds (see the
    /// threshold note at the hang check in [`Cluster::step_round`]).
    pub hang_rounds: u64,
    /// Guest RAM per node.
    pub phys_bytes: u64,
    /// Taint propagation policy for every node.
    pub taint_policy: TaintPolicy,
    /// How taint crosses rank boundaries.
    pub taint_carrier: TaintCarrier,
    /// Per-run watchdog budgets (instructions / rounds); default unlimited.
    pub run_budget: RunBudget,
    /// Interconnect unreliability knobs; default fully reliable.
    pub net_faultiness: Faultiness,
    /// TaintHub sync-path reliability policy; default fully reliable.
    pub hub_sync: HubSyncPolicy,
    /// Hot-path execution tuning for every node (TB chaining, taint-idle
    /// fast path); default all on.
    pub exec_tuning: ExecTuning,
    /// Worker threads the compute phase of [`Cluster::step_round`] may fan
    /// nodes out over (`0` and `1` both mean serial). Observationally
    /// inert: every thread count produces byte-identical outcomes, state
    /// digests and event streams — the knob only buys wall-clock time.
    pub rank_threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            nodes: 4,
            quantum: 10_000,
            net_latency: 1,
            net_bytes_per_round: 0,
            max_total_insns: 500_000_000,
            hang_rounds: 64,
            phys_bytes: chaser_vm::DEFAULT_PHYS_BYTES,
            taint_policy: TaintPolicy::Precise,
            taint_carrier: TaintCarrier::Hub,
            run_budget: RunBudget::default(),
            net_faultiness: Faultiness::default(),
            hub_sync: HubSyncPolicy::default(),
            exec_tuning: ExecTuning::default(),
            rank_threads: 1,
        }
    }
}

/// One tainted payload crossing a rank boundary: the provenance subsystem's
/// message-edge record, emitted when a delivery (point-to-point or
/// collective fan-out) carries taint into the destination rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossRankEdge {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dest: u32,
    /// MPI message tag (collectives use their operation discriminant).
    pub tag: u64,
    /// Sender-side sequence number of the message (0 for collectives).
    pub seq: u64,
    /// Scheduler round at which the payload landed in the receiver.
    pub round: u64,
    /// Number of tainted payload bytes that crossed.
    pub tainted_bytes: usize,
    /// Union of the per-byte fault provenance that crossed (raw `ProvSet`
    /// bits; 0 when the carrier lost or never had provenance).
    pub prov_bits: u32,
}

/// Observer of cluster-level MPI traffic (Chaser's tracer hooks in here to
/// log cross-rank propagation).
pub trait MpiObserver {
    /// A point-to-point message was accepted from the sender.
    fn on_send(&mut self, env: &Envelope, tainted_bytes: usize);
    /// A point-to-point message was copied into the receiver's buffer;
    /// `tainted_bytes` is how many payload bytes carried taint across.
    fn on_delivered(&mut self, env: &Envelope, tainted_bytes: usize);
    /// A delivery carried taint across a rank boundary (fires after
    /// [`MpiObserver::on_delivered`], and also for tainted collective
    /// fan-outs, which `on_delivered` does not see).
    fn on_tainted_delivery(&mut self, _edge: &CrossRankEdge) {}
}

/// A shared, `Send`-clean MPI observer handle. Observers only ever fire in
/// the serial exchange phase, so the mutex is uncontended; it exists so the
/// same sink can also be wired as a node hook or held by the caller.
pub type SharedMpiObserver = Arc<Mutex<dyn MpiObserver + Send>>;

/// Deterministic counters describing how the phased scheduler used its
/// compute-phase workers. Integer-only by design: wall-clock barrier times
/// would differ between machines and replays, so the barrier cost is
/// captured as counts (`parallel_rounds` — one barrier wait per fanned-out
/// round) and the imbalance as instruction totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelStats {
    /// Largest worker count a compute phase was fanned out over.
    pub threads: u64,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Rounds whose compute phase ran on more than one worker; each one
    /// joined at the round barrier (a barrier wait).
    pub parallel_rounds: u64,
    /// Sum over rounds of the busiest worker's retired instructions — the
    /// critical path of all compute phases.
    pub max_worker_insns: u64,
    /// Total instructions retired in compute phases (all workers).
    pub total_worker_insns: u64,
}

impl ParallelStats {
    /// Rank imbalance: critical path relative to a perfectly balanced
    /// fan-out (`1.0` = perfectly balanced, `threads` = fully serial).
    pub fn imbalance(&self) -> f64 {
        if self.total_worker_insns == 0 || self.threads == 0 {
            return 1.0;
        }
        self.max_worker_insns as f64 / (self.total_worker_insns as f64 / self.threads as f64)
    }

    /// Folds another run's counters into this aggregate (campaign totals).
    pub fn absorb(&mut self, other: ParallelStats) {
        self.threads = self.threads.max(other.threads);
        self.rounds += other.rounds;
        self.parallel_rounds += other.parallel_rounds;
        self.max_worker_insns += other.max_worker_insns;
        self.total_worker_insns += other.total_worker_insns;
    }
}

/// Result of one scheduling round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    /// Something ran or completed this round.
    pub progress: bool,
    /// The run is over (all ranks exited, job aborted, or hang declared).
    pub finished: bool,
    /// Total retired guest instructions across all nodes.
    pub total_insns: u64,
}

/// Final state of a cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterRun {
    /// Per-rank exit status; `None` when the rank was still live at a hang.
    pub rank_exits: Vec<Option<ExitStatus>>,
    /// The first MPI runtime error, if any (aborts the whole job, like
    /// `MPI_Abort`).
    pub mpi_error: Option<MpiError>,
    /// The run was declared hung.
    pub hang: bool,
    /// The [`RunBudget`] bound that stopped the run, if one fired.
    pub budget_exhausted: Option<BudgetKind>,
    /// Total retired guest instructions.
    pub total_insns: u64,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Tainted point-to-point deliveries (cross-rank fault propagation).
    pub cross_rank_tainted_deliveries: u64,
    /// Tainted deliveries whose TaintHub sync failed after every retry
    /// (degraded mode): the taint crossed the fabric but its masks were
    /// lost, so `cross_rank_tainted_deliveries` under-counts by this much.
    pub taint_sync_lost: u64,
    /// The ranks still live when the watchdog (hang or budget) stopped the
    /// run, with what each was waiting on. Empty for completed runs.
    pub live_at_stop: Vec<HangRank>,
}

impl ClusterRun {
    /// Did every rank exit with `exit(0)`?
    pub fn all_success(&self) -> bool {
        !self.hang
            && self.budget_exhausted.is_none()
            && self.mpi_error.is_none()
            && self
                .rank_exits
                .iter()
                .all(|e| e.is_some_and(|s| s.is_success()))
    }
}

#[derive(Debug, Clone, Default)]
struct RankState {
    inited: bool,
    finalized: bool,
    pending_recv: Option<RecvArgs>,
    in_collective: bool,
    /// Nonblocking request table (handles are indices).
    requests: Vec<Request>,
    /// Request handle an `MPI_Wait` is blocked on.
    waiting_on: Option<usize>,
}

/// A nonblocking communication request.
#[derive(Debug, Clone, Copy)]
enum Request {
    /// An `MPI_Irecv` still waiting for its message.
    RecvPending(RecvArgs),
    /// Completed (eager `MPI_Isend`s are born completed).
    Done,
}

#[derive(Debug, Clone, Copy)]
struct RecvArgs {
    buf: u64,
    count: u64,
    dtype: MpiDatatype,
    /// `None` = `MPI_ANY_SOURCE`.
    source: Option<u32>,
    /// `None` = `MPI_ANY_TAG`.
    tag: Option<u64>,
}

/// Outcome of a delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deliver {
    /// No mature matching message.
    NoMatch,
    /// Delivered; the request/receive is satisfied.
    Done,
    /// The receive ended the job (MPI error) or killed the rank.
    Fatal,
}

/// A multi-node cluster running one MPI job (plus any number of standalone
/// single-rank programs).
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<Node>,
    /// rank → (node index, pid)
    ranks: Vec<(usize, u64)>,
    state: Vec<RankState>,
    net: Interconnect,
    coll: Option<CollectiveSlot>,
    hub: Arc<TaintHub>,
    observers: Vec<SharedMpiObserver>,
    /// Cluster-level taint-event sinks: per-node buffers drain into these
    /// in canonical `(round, rank)` order at every round barrier.
    taint_sinks: Vec<SharedTaintSink>,
    /// Deterministic scheduler-parallelism counters for this run.
    pstats: ParallelStats,
    round: u64,
    stuck_rounds: u64,
    mpi_error: Option<MpiError>,
    hang: bool,
    budget_exhausted: Option<BudgetKind>,
    send_seq: u64,
    cross_rank_tainted_deliveries: u64,
    taint_sync_lost: u64,
    /// Poll-failure stream for the hub sync path; only instantiated when
    /// `cfg.hub_sync.drop_prob > 0` so the reliable path is untouched.
    hub_rng: Option<SmallRng>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("ranks", &self.ranks)
            .field("round", &self.round)
            .field("mpi_error", &self.mpi_error)
            .field("hang", &self.hang)
            .finish()
    }
}

impl Cluster {
    /// An empty cluster with `cfg.nodes` machines.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let mut node = Node::with_config(i as u32, cfg.phys_bytes, cfg.taint_policy);
                node.set_exec_tuning(cfg.exec_tuning);
                node
            })
            .collect();
        Cluster {
            nodes,
            ranks: Vec::new(),
            state: Vec::new(),
            net: Interconnect::new(0, cfg.net_latency)
                .with_bandwidth(cfg.net_bytes_per_round)
                .with_faultiness(cfg.net_faultiness),
            coll: None,
            hub: Arc::new(TaintHub::new()),
            observers: Vec::new(),
            taint_sinks: Vec::new(),
            pstats: ParallelStats::default(),
            round: 0,
            stuck_rounds: 0,
            mpi_error: None,
            hang: false,
            budget_exhausted: None,
            send_seq: 0,
            cross_rank_tainted_deliveries: 0,
            taint_sync_lost: 0,
            hub_rng: (cfg.hub_sync.drop_prob > 0.0)
                .then(|| SmallRng::seed_from_u64(cfg.hub_sync.seed ^ 0x4B5D_CE11)),
            cfg,
        }
    }

    /// Launches one program per rank, placing rank `i` on node
    /// `i % nodes` (rank 0 — the master — lands on the head node).
    ///
    /// # Errors
    ///
    /// Propagates [`chaser_vm::SpawnError`] from process creation.
    pub fn launch(&mut self, programs: &[&Program]) -> Result<(), chaser_vm::SpawnError> {
        for prog in programs {
            let node_idx = self.ranks.len() % self.nodes.len();
            let pid = self.nodes[node_idx].spawn(prog)?;
            self.ranks.push((node_idx, pid));
            self.state.push(RankState::default());
        }
        self.net = Interconnect::new(self.ranks.len(), self.cfg.net_latency)
            .with_bandwidth(self.cfg.net_bytes_per_round)
            .with_faultiness(self.cfg.net_faultiness);
        if let Some(slot) = &self.coll {
            debug_assert!(slot.is_empty());
        }
        Ok(())
    }

    /// Launches `copies` ranks of the same program.
    ///
    /// # Errors
    ///
    /// Propagates [`chaser_vm::SpawnError`] from process creation.
    pub fn launch_replicated(
        &mut self,
        program: &Program,
        copies: usize,
    ) -> Result<(), chaser_vm::SpawnError> {
        let programs: Vec<&Program> = std::iter::repeat_n(program, copies).collect();
        self.launch(&programs)
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// The node hosting `rank` and the rank's pid on it.
    pub fn rank_location(&self, rank: u32) -> (usize, u64) {
        self.ranks[rank as usize]
    }

    /// Shared TaintHub instance.
    pub fn hub(&self) -> &Arc<TaintHub> {
        &self.hub
    }

    /// Immutable node access.
    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// Mutable node access (for installing Chaser hooks).
    pub fn node_mut(&mut self, idx: usize) -> &mut Node {
        &mut self.nodes[idx]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Applies `f` to every node (hook installation convenience).
    pub fn for_each_node_mut(&mut self, mut f: impl FnMut(&mut Node)) {
        for node in &mut self.nodes {
            f(node);
        }
    }

    /// Installs shared base translation caches node-index-wise: `bases[i]`
    /// becomes node `i`'s immutable clean-TB layer. Extra entries (either
    /// side) are ignored, so a base set sealed from an identically
    /// configured cluster always lines up.
    pub fn install_base_caches(&mut self, bases: &[Arc<BaseLayer>]) {
        for (node, base) in self.nodes.iter_mut().zip(bases) {
            node.install_base_cache(Arc::clone(base));
        }
    }

    /// Seals every node's translation cache into an immutable base layer
    /// (clean blocks only), for sharing with other clusters running the
    /// same guest code layout.
    pub fn seal_tb_caches(&self) -> Vec<Arc<BaseLayer>> {
        self.nodes.iter().map(Node::seal_cache).collect()
    }

    /// Aggregated translation-cache statistics across all nodes.
    pub fn tb_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for node in &self.nodes {
            total.absorb(node.cache_stats());
        }
        total
    }

    /// Aggregated hot-path execution counters across all nodes.
    pub fn engine_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for node in &self.nodes {
            total.absorb(node.engine_stats());
        }
        total
    }

    /// Registers a cluster-level MPI traffic observer. Observers fire only
    /// in the serial exchange phase, in canonical rank order, regardless of
    /// [`ClusterConfig::rank_threads`].
    pub fn add_observer(&mut self, obs: SharedMpiObserver) {
        self.observers.push(obs);
    }

    /// Registers a taint-event sink and opens the per-node event gate.
    /// Events buffered during compute slices are replayed into every sink
    /// at the round barrier, in canonical `(round, rank)` order; the
    /// current round is announced first via
    /// [`chaser_vm::TaintEventSink::on_round`].
    pub fn add_taint_sink(&mut self, sink: SharedTaintSink) {
        self.taint_sinks.push(sink);
        for node in &mut self.nodes {
            node.hooks_mut().taint_events = true;
        }
    }

    /// This run's deterministic scheduler-parallelism counters.
    pub fn parallel_stats(&self) -> ParallelStats {
        self.pstats
    }

    /// The output files of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if the rank does not exist.
    pub fn rank_files(&self, rank: u32) -> &ProcessFiles {
        let (ni, pid) = self.rank_location(rank);
        &self.nodes[ni].process(pid).expect("rank process").files
    }

    /// The exit status of `rank`, if it has exited.
    pub fn rank_exit(&self, rank: u32) -> Option<ExitStatus> {
        let (ni, pid) = self.rank_location(rank);
        self.nodes[ni]
            .process(pid)
            .expect("rank process")
            .exit_status()
    }

    /// Total retired guest instructions across all nodes.
    pub fn total_insns(&self) -> u64 {
        self.nodes.iter().map(Node::total_icount).sum()
    }

    /// Interconnect statistics.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Scheduler rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The first MPI error, if the job aborted on one.
    pub fn mpi_error(&self) -> Option<MpiError> {
        self.mpi_error
    }

    /// Kills `rank` from outside with `signal` — node/process failure
    /// injection (e.g. to study how the job reacts to a slave node dying
    /// mid-communication). Peers observe it as [`MpiErrorKind::RankDied`].
    pub fn fail_rank(&mut self, rank: u32, signal: Signal) {
        self.kill_rank(rank, signal);
    }

    /// Is the run over?
    pub fn finished(&self) -> bool {
        self.hang
            || self.budget_exhausted.is_some()
            || self.ranks.iter().all(|&(ni, pid)| {
                self.nodes[ni]
                    .process(pid)
                    .is_some_and(|p| p.state == ProcState::Exited)
            })
    }

    /// Executes one scheduling round in two phases.
    ///
    /// **Compute phase**: every rank that was `Runnable` at the round start
    /// advances by one quantum on its node, with whole nodes fanned out
    /// over up to [`ClusterConfig::rank_threads`] scoped worker threads
    /// (ranks sharing a node run sequentially in ascending rank order, and
    /// processes own disjoint address spaces, so per-node results are
    /// independent of node placement on workers). Nothing shared mutates
    /// here: MPI calls, taint events and slice exits are only *recorded*.
    ///
    /// **Exchange phase** (serial, canonical rank order): recorded MPI
    /// calls are serviced, pending receives and requests of ranks that were
    /// blocked at the round start are pumped, collectives complete, and the
    /// per-node taint-event buffers drain into the registered sinks. Every
    /// cross-rank effect — interconnect envelopes, TaintHub records,
    /// observer callbacks, taint events — commits at this barrier, which is
    /// why every `rank_threads` value replays byte-identically.
    pub fn step_round(&mut self) -> RoundReport {
        let mut progress = false;

        // ---- Compute phase ----
        // The instruction budget is checked once, at the round start: every
        // runnable rank gets the same remaining allowance as its slice cap,
        // so the (bounded) overshoot is identical for every thread count.
        let mut slice_budget = u64::MAX;
        if self.cfg.run_budget.max_insns != 0 {
            let remaining = self
                .cfg
                .run_budget
                .max_insns
                .saturating_sub(self.total_insns());
            if remaining == 0 {
                self.budget_exhausted.get_or_insert(BudgetKind::Insns);
            } else {
                slice_budget = remaining;
            }
        }

        // Rank states sampled at the round start steer the whole round:
        // completions during the exchange phase make a rank runnable next
        // round, never mid-round.
        let mut per_node: Vec<Vec<(u32, u64)>> = vec![Vec::new(); self.nodes.len()];
        let mut blocked = vec![false; self.ranks.len()];
        if !self.finished() {
            for rank in 0..self.ranks.len() as u32 {
                let (ni, pid) = self.ranks[rank as usize];
                match self.nodes[ni].process(pid).expect("rank process").state {
                    ProcState::Exited => {}
                    ProcState::BlockedMpi => blocked[rank as usize] = true,
                    ProcState::Runnable => per_node[ni].push((rank, pid)),
                }
            }
        }

        let quantum = self.cfg.quantum;
        let threads = self.cfg.rank_threads.max(1).min(self.nodes.len().max(1));
        let mut slice_exits: Vec<Option<SliceExit>> = vec![None; self.ranks.len()];
        let any_runnable = per_node.iter().any(|v| !v.is_empty());
        if any_runnable {
            let pre_icounts: Vec<u64> = self.nodes.iter().map(Node::total_icount).collect();
            let chunk = self.nodes.len().div_ceil(threads);
            let exits: Vec<(u32, SliceExit)> = if threads <= 1 {
                let mut out = Vec::new();
                for (node, ranks) in self.nodes.iter_mut().zip(&per_node) {
                    run_node_slices(node, ranks, quantum, slice_budget, &mut out);
                }
                out
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = self
                        .nodes
                        .chunks_mut(chunk)
                        .zip(per_node.chunks(chunk))
                        .map(|(nodes, ranks)| {
                            s.spawn(move || {
                                let mut out = Vec::new();
                                for (node, ranks) in nodes.iter_mut().zip(ranks) {
                                    run_node_slices(node, ranks, quantum, slice_budget, &mut out);
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("compute worker panicked"))
                        .collect()
                })
            };
            for (rank, exit) in exits {
                slice_exits[rank as usize] = Some(exit);
            }

            // Deterministic parallelism accounting: per-worker retired
            // instructions come from icount deltas, not wall clocks.
            let deltas: Vec<u64> = self
                .nodes
                .iter()
                .zip(&pre_icounts)
                .map(|(n, &pre)| n.total_icount() - pre)
                .collect();
            let workers_used = deltas.chunks(chunk).filter(|c| c.iter().any(|&d| d > 0));
            self.pstats.threads = self.pstats.threads.max(threads as u64);
            if threads > 1 && workers_used.clone().count() > 1 {
                self.pstats.parallel_rounds += 1;
            }
            self.pstats.max_worker_insns += deltas
                .chunks(chunk)
                .map(|c| c.iter().sum::<u64>())
                .max()
                .unwrap_or(0);
            self.pstats.total_worker_insns += deltas.iter().sum::<u64>();
        }
        self.pstats.rounds += 1;

        // ---- Exchange phase (serial, ascending rank order) ----
        for rank in 0..self.ranks.len() as u32 {
            // An earlier rank's exchange can abort the whole job (or
            // exhaust the budget); recorded calls of later ranks then
            // belong to dead processes and must not be serviced.
            if self.finished() || self.mpi_error.is_some() {
                break;
            }
            if blocked[rank as usize] {
                if self.state[rank as usize].pending_recv.is_some() && self.try_complete_recv(rank)
                {
                    progress = true;
                }
                if self.pump_requests(rank) {
                    progress = true;
                }
            }
            match slice_exits[rank as usize].take() {
                None | Some(SliceExit::Blocked) => {}
                Some(SliceExit::QuantumExpired) | Some(SliceExit::Exited(_)) => progress = true,
                Some(SliceExit::MpiCall(req)) => {
                    progress = true;
                    self.service(rank, req);
                }
                Some(SliceExit::BudgetExhausted) => {
                    // The slice did retire instructions, so this is
                    // progress — but the run-level watchdog fired.
                    progress = true;
                    self.budget_exhausted.get_or_insert(BudgetKind::Insns);
                }
            }
        }

        if self.check_collective() {
            progress = true;
        }
        // A rank's death can strand peers blocked in receives on it.
        for rank in 0..self.ranks.len() as u32 {
            let st = &self.state[rank as usize];
            if (st.pending_recv.is_some() || st.waiting_on.is_some())
                && self.check_dead_sender(rank)
            {
                progress = true;
            }
        }

        // Taint events commit at the barrier, before the round advances, so
        // every event is attributed to the round it executed in.
        self.drain_taint_events();

        self.round += 1;
        if self.cfg.run_budget.max_rounds != 0
            && self.round >= self.cfg.run_budget.max_rounds
            && !self.finished()
        {
            self.budget_exhausted.get_or_insert(BudgetKind::Rounds);
        }
        if self.cfg.hub_sync.record_ttl != 0 && self.round.is_multiple_of(64) {
            self.hub.gc(self.round, self.cfg.hub_sync.record_ttl);
        }
        if progress {
            self.stuck_rounds = 0;
        } else {
            self.stuck_rounds += 1;
        }
        let total_insns = self.total_insns();
        // Hang threshold: a round with zero progress anywhere is only
        // conclusive once every message that was in flight at the start of
        // the stall has had time to land. Messages mature after
        // `net_latency` rounds (plus bandwidth serialisation, which itself
        // counts as progress when a delivery completes), so we wait
        // `hang_rounds` grace rounds *plus* `net_latency` drain rounds
        // before declaring a hang. A budget stop takes precedence: a run
        // that exhausted its watchdog budget is classified as
        // BudgetExhausted, never as a hang.
        if self.budget_exhausted.is_none()
            && (self.stuck_rounds > self.cfg.hang_rounds + self.cfg.net_latency
                || total_insns > self.cfg.max_total_insns)
        {
            self.hang = true;
        }
        RoundReport {
            progress,
            finished: self.finished(),
            total_insns,
        }
    }

    /// Runs to completion.
    pub fn run(&mut self) -> ClusterRun {
        self.run_with(|_| {})
    }

    /// Runs to completion, invoking `observer` after every round (Chaser's
    /// tracer samples tainted-byte counts here).
    pub fn run_with(&mut self, mut observer: impl FnMut(&Cluster)) -> ClusterRun {
        while !self.finished() {
            self.step_round();
            observer(self);
        }
        self.result()
    }

    /// Snapshot of the final state.
    pub fn result(&self) -> ClusterRun {
        let stopped_by_watchdog = self.hang || self.budget_exhausted.is_some();
        ClusterRun {
            rank_exits: (0..self.nranks()).map(|r| self.rank_exit(r)).collect(),
            mpi_error: self.mpi_error,
            hang: self.hang,
            budget_exhausted: self.budget_exhausted,
            total_insns: self.total_insns(),
            rounds: self.round,
            cross_rank_tainted_deliveries: self.cross_rank_tainted_deliveries,
            taint_sync_lost: self.taint_sync_lost,
            live_at_stop: if stopped_by_watchdog {
                self.live_at_stop()
            } else {
                Vec::new()
            },
        }
    }

    /// The ranks still live right now, with what each is blocked on — the
    /// hang-report payload ("which ranks were alive and what were they
    /// waiting for" from the paper's hang diagnosis workflow).
    pub fn live_at_stop(&self) -> Vec<HangRank> {
        (0..self.nranks())
            .filter(|&r| self.rank_alive(r))
            .map(|rank| {
                let st = &self.state[rank as usize];
                let (ni, pid) = self.ranks[rank as usize];
                let proc_state = self.nodes[ni].process(pid).expect("live rank").state;
                let pending = if st.pending_recv.is_some() {
                    PendingOp::Recv
                } else if st.waiting_on.is_some() {
                    PendingOp::Wait
                } else if st.in_collective {
                    PendingOp::Collective
                } else if proc_state == ProcState::BlockedMpi {
                    PendingOp::Mpi
                } else {
                    PendingOp::Compute
                };
                HangRank { rank, pending }
            })
            .collect()
    }

    // ---- Snapshot / fork ----

    /// Freezes the entire cluster into a [`ClusterSnapshot`]: every node's
    /// CPU/memory/taint state (`Arc`-shared pages, zero-copy), the MPI rank
    /// table and per-rank runtime state, in-flight interconnect envelopes,
    /// queued TaintHub records, the scheduler clock and the *current
    /// positions* of every seeded RNG stream. The capture point must be a
    /// round boundary (the quantum safe point — every process is at an
    /// architectural instruction boundary or blocked), which is the only
    /// place `step_round` returns control anyway.
    ///
    /// Hooks, observers and translation caches are not captured: they are
    /// per-run wiring and derived state, re-attached after a restore the
    /// same way a cold run wires them.
    pub fn snapshot(&mut self) -> ClusterSnapshot {
        let digest = self.state_digest();
        let total_insns = self.total_insns();
        ClusterSnapshot {
            nodes: self.nodes.iter_mut().map(Node::snapshot).collect(),
            ranks: self.ranks.clone(),
            state: self.state.clone(),
            net: self.net.clone(),
            coll: self.coll.clone(),
            hub: self.hub.snapshot(),
            round: self.round,
            stuck_rounds: self.stuck_rounds,
            mpi_error: self.mpi_error,
            hang: self.hang,
            budget_exhausted: self.budget_exhausted,
            send_seq: self.send_seq,
            cross_rank_tainted_deliveries: self.cross_rank_tainted_deliveries,
            taint_sync_lost: self.taint_sync_lost,
            hub_rng: self.hub_rng.clone(),
            total_insns,
            digest,
        }
    }

    /// Reconstructs a cluster from a snapshot under `cfg`.
    ///
    /// `cfg` must describe the same cluster shape the snapshot was taken
    /// under (node count, quantum, latency, budgets...) — the snapshot
    /// carries the dynamic state, the config carries the rules, and replay
    /// equivalence holds only when the rules match the original run's. RNG
    /// streams are restored at their captured positions, never re-seeded.
    ///
    /// The restored cluster has no hooks, observers or translated blocks;
    /// wire hooks, then call [`Cluster::replay_vmi_creations`] so
    /// creation-keyed consumers (fault injectors) arm, then install base
    /// translation caches as usual.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes` disagrees with the snapshot's node count.
    pub fn from_snapshot(cfg: ClusterConfig, snap: &ClusterSnapshot) -> Cluster {
        assert_eq!(
            cfg.nodes,
            snap.nodes.len(),
            "config node count must match the snapshot"
        );
        let hub = TaintHub::new();
        hub.restore(&snap.hub);
        Cluster {
            nodes: snap
                .nodes
                .iter()
                .map(|ns| {
                    let mut node = Node::from_snapshot(ns);
                    node.set_exec_tuning(cfg.exec_tuning);
                    node
                })
                .collect(),
            ranks: snap.ranks.clone(),
            state: snap.state.clone(),
            net: snap.net.clone(),
            coll: snap.coll.clone(),
            hub: Arc::new(hub),
            observers: Vec::new(),
            taint_sinks: Vec::new(),
            pstats: ParallelStats::default(),
            round: snap.round,
            stuck_rounds: snap.stuck_rounds,
            mpi_error: snap.mpi_error,
            hang: snap.hang,
            budget_exhausted: snap.budget_exhausted,
            send_seq: snap.send_seq,
            cross_rank_tainted_deliveries: snap.cross_rank_tainted_deliveries,
            taint_sync_lost: snap.taint_sync_lost,
            hub_rng: snap.hub_rng.clone(),
            cfg,
        }
    }

    /// Re-fires VMI process-creation events in original creation order
    /// (rank order, interleaving across nodes — exactly the order
    /// [`Cluster::launch`] spawned them). Call after wiring hooks on a
    /// restored cluster so injectors that arm on the Nth creation of a
    /// program name observe the same sequence a cold run produced.
    pub fn replay_vmi_creations(&mut self) {
        for i in 0..self.ranks.len() {
            let (ni, pid) = self.ranks[i];
            self.nodes[ni].replay_vmi_creation(pid);
        }
    }

    /// A 64-bit FNV-1a digest over the cluster's complete observable state:
    /// scheduler clock, rank tables, per-process architectural state and
    /// output files, resident guest memory, tainted shadow pages, in-flight
    /// envelopes and queued hub records. Two executions that reach the same
    /// state produce the same digest regardless of how they got there
    /// (cold prefix vs snapshot restore), which is what the snapshot
    /// property tests assert.
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.round);
        h.write_u64(self.stuck_rounds);
        h.write_u64(self.send_seq);
        h.write_u64(self.cross_rank_tainted_deliveries);
        h.write_u64(self.taint_sync_lost);
        h.write_str(&format!(
            "{:?};{};{:?}",
            self.mpi_error, self.hang, self.budget_exhausted
        ));
        for (rank, &(ni, pid)) in self.ranks.iter().enumerate() {
            h.write_u64(rank as u64);
            h.write_u64(ni as u64);
            h.write_u64(pid);
            h.write_str(&format!("{:?}", self.state[rank]));
        }
        for node in &self.nodes {
            for proc in node.processes() {
                h.write_u64(proc.pid());
                h.write_str(proc.name());
                h.write_str(&format!(
                    "{:?};{:?};{:?};{:?}",
                    proc.cpu, proc.state, proc.exit, proc.pending_mpi
                ));
                h.write_u64(proc.icount);
                h.write_u64(proc.brk);
                h.write_bytes(&proc.files.stdout);
                h.write_bytes(&proc.files.output);
            }
            node.for_each_resident_page(|base, bytes| {
                h.write_u64(base);
                h.write_bytes(bytes);
            });
            node.taint().mem().for_each_tainted_page(|base, masks| {
                h.write_u64(base);
                h.write_bytes(masks);
            });
            node.taint().prov_mem().for_each(|paddr, p| {
                h.write_u64(paddr);
                h.write_u64(u64::from(p.bits()));
            });
        }
        self.net.for_each_in_flight(|dest, deliver_at, seq, env| {
            h.write_u64(u64::from(dest));
            h.write_u64(deliver_at);
            h.write_u64(seq);
            h.write_str(&format!("{env:?}"));
        });
        h.write_u64(self.net.seq_counter());
        for ((src, dst), floor) in self.net.pair_floors_sorted() {
            h.write_u64(u64::from(src));
            h.write_u64(u64::from(dst));
            h.write_u64(floor);
        }
        self.hub
            .snapshot()
            .for_each_record(|id, rec| h.write_str(&format!("{id:?};{rec:?}")));
        h.finish()
    }

    /// Aggregated copy-on-write counters over all nodes (pages adopted
    /// shared at restore, pages privatised by suffix writes).
    pub fn mem_stats(&self) -> chaser_vm::MemStats {
        let mut total = chaser_vm::MemStats::default();
        for node in &self.nodes {
            total.absorb(&node.mem_stats());
        }
        total
    }

    /// Drains every node's buffered taint events into the registered sinks
    /// in canonical `(round, rank)` order. Within one rank the events keep
    /// execution order (ranks sharing a node run sequentially, so a node's
    /// buffer is already segmented by rank).
    fn drain_taint_events(&mut self) {
        if self.taint_sinks.is_empty() {
            // No consumers: clear any buffers so a gate opened without a
            // sink cannot grow without bound.
            for node in &mut self.nodes {
                node.take_taint_events();
            }
            return;
        }
        let mut per_rank: Vec<Vec<BufferedTaintEvent>> = vec![Vec::new(); self.ranks.len() + 1];
        for node in &mut self.nodes {
            for ev in node.take_taint_events() {
                let rank = self
                    .ranks
                    .iter()
                    .position(|&(ni, pid)| ni as u32 == ev.ev.node && pid == ev.ev.pid)
                    .unwrap_or(self.ranks.len());
                per_rank[rank].push(ev);
            }
        }
        for sink in &self.taint_sinks {
            sink.lock().on_round(self.round);
        }
        for events in &per_rank {
            for be in events {
                for sink in &self.taint_sinks {
                    let mut s = sink.lock();
                    match be.kind {
                        TaintAccessKind::Read => s.on_taint_read(&be.ev),
                        TaintAccessKind::Write => s.on_taint_write(&be.ev),
                    }
                }
            }
        }
    }

    // ---- MPI service layer ----

    fn complete(&mut self, rank: u32, ret: u64) {
        let (ni, pid) = self.ranks[rank as usize];
        self.nodes[ni].complete_mpi(pid, ret);
    }

    fn kill_rank(&mut self, rank: u32, sig: Signal) {
        let (ni, pid) = self.ranks[rank as usize];
        self.nodes[ni].abort_process(pid, ExitStatus::Signaled(sig));
        self.state[rank as usize].pending_recv = None;
    }

    /// Records the first MPI error and aborts the whole job (`MPI_Abort`
    /// semantics: the paper's "MPI runtime exceptions" terminations).
    fn mpi_abort(&mut self, rank: u32, kind: MpiErrorKind) {
        if self.mpi_error.is_none() {
            self.mpi_error = Some(MpiError { rank, kind });
        }
        for r in 0..self.ranks.len() as u32 {
            let (ni, pid) = self.ranks[r as usize];
            let alive = self.nodes[ni]
                .process(pid)
                .is_some_and(|p| p.state != ProcState::Exited);
            if alive {
                self.nodes[ni].abort_process(pid, ExitStatus::MpiAborted);
            }
            self.state[r as usize].pending_recv = None;
            self.state[r as usize].waiting_on = None;
        }
        self.coll = None;
    }

    fn rank_alive(&self, rank: u32) -> bool {
        let (ni, pid) = self.ranks[rank as usize];
        self.nodes[ni]
            .process(pid)
            .is_some_and(|p| p.state != ProcState::Exited)
    }

    fn service(&mut self, rank: u32, req: MpiRequest) {
        let a = req.args;
        let n = self.nranks() as u64;
        let st = &mut self.state[rank as usize];
        match req.num {
            abi::MPI_INIT => {
                st.inited = true;
                self.complete(rank, 0);
            }
            abi::MPI_COMM_RANK => {
                if !st.inited {
                    return self.mpi_abort(rank, MpiErrorKind::NotInitialized);
                }
                self.complete(rank, rank as u64);
            }
            abi::MPI_COMM_SIZE => {
                if !st.inited {
                    return self.mpi_abort(rank, MpiErrorKind::NotInitialized);
                }
                self.complete(rank, n);
            }
            abi::MPI_SEND => self.do_send(rank, a),
            abi::MPI_RECV => {
                if !st.inited || st.finalized {
                    return self.mpi_abort(rank, MpiErrorKind::NotInitialized);
                }
                let Some(dtype) = MpiDatatype::from_code(a[2]) else {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidDatatype);
                };
                if a[1].saturating_mul(dtype.size()) > MAX_MSG_BYTES {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidCount);
                }
                let Some(args) = self.parse_recv_args(rank, a, dtype) else {
                    return; // job already aborted
                };
                self.state[rank as usize].pending_recv = Some(args);
                self.try_complete_recv(rank);
            }
            abi::MPI_ISEND => {
                let id = self.state[rank as usize].requests.len() as u64;
                // Eager buffered send: the request is born complete.
                self.state[rank as usize].requests.push(Request::Done);
                self.do_send_ret(rank, a, id);
            }
            abi::MPI_IRECV => {
                if !st.inited || st.finalized {
                    return self.mpi_abort(rank, MpiErrorKind::NotInitialized);
                }
                let Some(dtype) = MpiDatatype::from_code(a[2]) else {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidDatatype);
                };
                if a[1].saturating_mul(dtype.size()) > MAX_MSG_BYTES {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidCount);
                }
                let Some(args) = self.parse_recv_args(rank, a, dtype) else {
                    return;
                };
                let id = self.state[rank as usize].requests.len();
                self.state[rank as usize]
                    .requests
                    .push(Request::RecvPending(args));
                // Complete immediately when a matching message is mature.
                self.try_complete_request(rank, id);
                self.complete(rank, id as u64);
            }
            abi::MPI_WAIT => {
                let id = a[0] as usize;
                let st = &mut self.state[rank as usize];
                match st.requests.get(id) {
                    None => self.mpi_abort(rank, MpiErrorKind::InvalidOp),
                    Some(Request::Done) => self.complete(rank, 0),
                    Some(Request::RecvPending(_)) => {
                        st.waiting_on = Some(id);
                        // Retry now; otherwise the round loop keeps trying.
                        if self.try_complete_request(rank, id) {
                            self.finish_wait(rank);
                        }
                    }
                }
            }
            abi::MPI_WTIME => {
                let (ni, pid) = self.ranks[rank as usize];
                let icount = self.nodes[ni].process(pid).map_or(0, |p| p.icount);
                self.complete(rank, icount);
            }
            abi::MPI_BARRIER => self.join_collective(
                rank,
                CollReq {
                    kind: CollKind::Barrier,
                    sendbuf: 0,
                    recvbuf: 0,
                    count: 0,
                    dtype: None,
                    op: None,
                    root: 0,
                },
            ),
            abi::MPI_BCAST => {
                let Some(dtype) = MpiDatatype::from_code(a[2]) else {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidDatatype);
                };
                self.join_collective(
                    rank,
                    CollReq {
                        kind: CollKind::Bcast,
                        sendbuf: a[0],
                        recvbuf: a[0],
                        count: a[1],
                        dtype: Some(dtype),
                        op: None,
                        root: a[3] as u32,
                    },
                )
            }
            abi::MPI_REDUCE | abi::MPI_ALLREDUCE => {
                let Some(dtype) = MpiDatatype::from_code(a[3]) else {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidDatatype);
                };
                let Some(op) = MpiOp::from_code(a[4]) else {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidOp);
                };
                if dtype == MpiDatatype::Byte {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidDatatype);
                }
                let (kind, root) = if req.num == abi::MPI_REDUCE {
                    (CollKind::Reduce, a[5] as u32)
                } else {
                    (CollKind::Allreduce, 0)
                };
                self.join_collective(
                    rank,
                    CollReq {
                        kind,
                        sendbuf: a[0],
                        recvbuf: a[1],
                        count: a[2],
                        dtype: Some(dtype),
                        op: Some(op),
                        root,
                    },
                )
            }
            abi::MPI_SCATTER | abi::MPI_GATHER => {
                let Some(dtype) = MpiDatatype::from_code(a[3]) else {
                    return self.mpi_abort(rank, MpiErrorKind::InvalidDatatype);
                };
                let kind = if req.num == abi::MPI_SCATTER {
                    CollKind::Scatter
                } else {
                    CollKind::Gather
                };
                self.join_collective(
                    rank,
                    CollReq {
                        kind,
                        sendbuf: a[0],
                        recvbuf: a[1],
                        count: a[2],
                        dtype: Some(dtype),
                        op: None,
                        root: a[4] as u32,
                    },
                )
            }
            abi::MPI_FINALIZE => {
                st.finalized = true;
                self.complete(rank, 0);
            }
            _ => self.mpi_abort(rank, MpiErrorKind::InvalidOp),
        }
    }

    /// Validates receive arguments (wildcards allowed); `None` means the
    /// job was aborted.
    fn parse_recv_args(&mut self, rank: u32, a: [u64; 6], dtype: MpiDatatype) -> Option<RecvArgs> {
        let n = self.nranks() as u64;
        let source = if a[3] == abi::MPI_ANY {
            None
        } else {
            if a[3] >= n {
                self.mpi_abort(rank, MpiErrorKind::InvalidRank);
                return None;
            }
            Some(a[3] as u32)
        };
        let tag = if a[4] == abi::MPI_ANY {
            None
        } else {
            Some(a[4])
        };
        Some(RecvArgs {
            buf: a[0],
            count: a[1],
            dtype,
            source,
            tag,
        })
    }

    /// Completes a finished `MPI_Wait`.
    fn finish_wait(&mut self, rank: u32) {
        self.state[rank as usize].waiting_on = None;
        self.complete(rank, 0);
    }

    fn do_send(&mut self, rank: u32, a: [u64; 6]) {
        self.do_send_ret(rank, a, 0)
    }

    fn do_send_ret(&mut self, rank: u32, a: [u64; 6], ret: u64) {
        let (buf, count, dtype_code, dest, tag) = (a[0], a[1], a[2], a[3], a[4]);
        let n = self.nranks() as u64;
        {
            let st = &self.state[rank as usize];
            if !st.inited || st.finalized {
                return self.mpi_abort(rank, MpiErrorKind::NotInitialized);
            }
        }
        let Some(dtype) = MpiDatatype::from_code(dtype_code) else {
            return self.mpi_abort(rank, MpiErrorKind::InvalidDatatype);
        };
        let bytes = count.saturating_mul(dtype.size());
        if bytes > MAX_MSG_BYTES {
            return self.mpi_abort(rank, MpiErrorKind::InvalidCount);
        }
        if dest >= n {
            return self.mpi_abort(rank, MpiErrorKind::InvalidRank);
        }
        let dest = dest as u32;
        if !self.rank_alive(dest) {
            return self.mpi_abort(rank, MpiErrorKind::RankDied);
        }

        let (ni, pid) = self.ranks[rank as usize];
        // A corrupted buffer pointer faults inside the "MPI library": the
        // rank dies with an OS exception, exactly like real MPI.
        let data = match self.nodes[ni].read_guest(pid, buf, bytes) {
            Ok(d) => d,
            Err(_) => return self.kill_rank(rank, Signal::Segv),
        };
        let taint_on = self.cfg.taint_policy != TaintPolicy::Disabled;
        let masks = if taint_on {
            self.nodes[ni]
                .read_guest_taint(pid, buf, bytes)
                .unwrap_or_else(|_| vec![0; bytes as usize])
        } else {
            vec![0; bytes as usize]
        };
        let tainted = masks.iter().any(|&m| m != 0);

        let seq = self.send_seq;
        self.send_seq += 1;

        let taint_header = match self.cfg.taint_carrier {
            TaintCarrier::Header => Some(masks.clone()),
            _ => None,
        };
        if self.cfg.taint_carrier == TaintCarrier::Hub && tainted {
            // Tainted sends also carry their fault provenance, so the
            // receiver can extend the propagation graph across the rank
            // boundary. Empty when the sender tracks no provenance.
            let provs = if self.nodes[ni].taint().prov_any() {
                self.nodes[ni]
                    .read_guest_prov(pid, buf, bytes)
                    .map(|ps| ps.iter().map(|p| p.bits()).collect())
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            self.hub.publish_full(
                MsgId {
                    src: rank,
                    dest,
                    tag,
                },
                seq,
                masks.clone(),
                self.round,
                provs,
            );
        }

        let env = Envelope {
            src: rank,
            dest,
            tag,
            dtype,
            count,
            data,
            taint_header,
            seq,
        };
        let tainted_bytes = masks.iter().filter(|&&m| m != 0).count();
        for obs in &self.observers {
            obs.lock().on_send(&env, tainted_bytes);
        }
        self.net.send(env, self.round);
        self.complete(rank, ret);
    }

    /// Attempts to deliver into one pending nonblocking receive request.
    fn try_complete_request(&mut self, rank: u32, id: usize) -> bool {
        let Some(Request::RecvPending(args)) = self.state[rank as usize].requests.get(id).copied()
        else {
            return false;
        };
        match self.deliver_into(rank, &args) {
            Deliver::NoMatch => false,
            Deliver::Done | Deliver::Fatal => {
                if let Some(slot) = self.state[rank as usize].requests.get_mut(id) {
                    *slot = Request::Done;
                }
                true
            }
        }
    }

    /// Attempts every pending request and any blocked `MPI_Wait` of `rank`;
    /// returns `true` on progress.
    fn pump_requests(&mut self, rank: u32) -> bool {
        let mut progress = false;
        let ids: Vec<usize> = self.state[rank as usize]
            .requests
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Request::RecvPending(_)))
            .map(|(i, _)| i)
            .collect();
        for id in ids {
            if self.try_complete_request(rank, id) {
                progress = true;
            }
        }
        if let Some(id) = self.state[rank as usize].waiting_on {
            if matches!(
                self.state[rank as usize].requests.get(id),
                Some(Request::Done)
            ) {
                self.finish_wait(rank);
                progress = true;
            }
        }
        progress
    }

    fn try_complete_recv(&mut self, rank: u32) -> bool {
        let Some(args) = self.state[rank as usize].pending_recv else {
            return false;
        };
        match self.deliver_into(rank, &args) {
            Deliver::NoMatch => false,
            Deliver::Done => {
                self.state[rank as usize].pending_recv = None;
                self.complete(rank, 0);
                true
            }
            Deliver::Fatal => {
                self.state[rank as usize].pending_recv = None;
                true
            }
        }
    }

    /// Matches a mature message against `args` and copies it (data and
    /// taint) into the receiver.
    fn deliver_into(&mut self, rank: u32, args: &RecvArgs) -> Deliver {
        let Some(env) = self.net.try_match(rank, args.source, args.tag, self.round) else {
            return Deliver::NoMatch;
        };
        if env.dtype != args.dtype {
            self.mpi_abort(rank, MpiErrorKind::TypeMismatch);
            return Deliver::Fatal;
        }
        if env.count > args.count {
            self.mpi_abort(rank, MpiErrorKind::Truncation);
            return Deliver::Fatal;
        }
        let (ni, pid) = self.ranks[rank as usize];
        if self.nodes[ni]
            .write_guest(pid, args.buf, &env.data)
            .is_err()
        {
            self.kill_rank(rank, Signal::Segv);
            return Deliver::Fatal;
        }
        // Incoming data overwrites whatever taint the buffer carried...
        let mut masks = vec![0u8; env.data.len()];
        let mut provs = vec![ProvSet::EMPTY; env.data.len()];
        let taint_on = self.cfg.taint_policy != TaintPolicy::Disabled;
        // ...then the configured carrier re-applies the sender's taint.
        match self.cfg.taint_carrier {
            TaintCarrier::Header => {
                if let Some(header) = &env.taint_header {
                    masks.copy_from_slice(header);
                }
            }
            TaintCarrier::Hub => {
                let id = MsgId {
                    src: env.src,
                    dest: rank,
                    tag: env.tag,
                };
                // The hub is a remote service in the paper's deployment, so
                // a poll can fail. Retry a bounded number of times; if every
                // attempt fails, consume the record anyway (keeping the
                // per-id sequence stream aligned for later messages) but
                // record the lost synchronisation.
                let mut synced = true;
                if let Some(rng) = &mut self.hub_rng {
                    let p = self.cfg.hub_sync.drop_prob;
                    synced = false;
                    for _ in 0..=self.cfg.hub_sync.max_retries {
                        if !rng.gen_bool(p) {
                            synced = true;
                            break;
                        }
                    }
                }
                match self.hub.poll_matching(id, env.seq) {
                    Some(rec) if synced => {
                        masks.copy_from_slice(&rec.masks);
                        for (dst, bits) in provs.iter_mut().zip(rec.provs.iter()) {
                            *dst = ProvSet::from_bits(*bits);
                        }
                    }
                    Some(rec) if rec.is_tainted() => self.taint_sync_lost += 1,
                    _ => {}
                }
            }
            TaintCarrier::None => {}
        }
        let tainted_bytes = masks.iter().filter(|&&m| m != 0).count();
        if taint_on {
            let _ = self.nodes[ni].write_guest_taint(pid, args.buf, &masks);
            if provs.iter().any(|p| !p.is_empty()) || self.nodes[ni].taint().prov_any() {
                let _ = self.nodes[ni].write_guest_prov(pid, args.buf, &provs);
            }
        }
        if tainted_bytes > 0 {
            self.cross_rank_tainted_deliveries += 1;
        }
        for obs in &self.observers {
            obs.lock().on_delivered(&env, tainted_bytes);
        }
        if tainted_bytes > 0 {
            let edge = CrossRankEdge {
                src: env.src,
                dest: rank,
                tag: env.tag,
                seq: env.seq,
                round: self.round,
                tainted_bytes,
                prov_bits: provs
                    .iter()
                    .fold(ProvSet::EMPTY, |acc, p| acc.union(*p))
                    .bits(),
            };
            for obs in &self.observers {
                obs.lock().on_tainted_delivery(&edge);
            }
        }
        Deliver::Done
    }

    /// A receive whose source died with nothing in flight can never
    /// complete: surface it as `RankDied` (real MPI: the job dies once the
    /// failure detector fires).
    fn check_dead_sender(&mut self, rank: u32) -> bool {
        let args = match (
            self.state[rank as usize].pending_recv,
            self.state[rank as usize].waiting_on,
        ) {
            (Some(args), _) => args,
            (None, Some(id)) => match self.state[rank as usize].requests.get(id) {
                Some(Request::RecvPending(args)) => *args,
                _ => return false,
            },
            (None, None) => return false,
        };
        let senders_dead = match args.source {
            Some(src) => !self.rank_alive(src),
            // ANY_SOURCE: hopeless only when every other rank has exited.
            None => (0..self.nranks()).all(|r| r == rank || !self.rank_alive(r)),
        };
        if !senders_dead {
            return false;
        }
        if self.net.has_in_flight(rank, args.source, args.tag) {
            return false;
        }
        self.mpi_abort(rank, MpiErrorKind::RankDied);
        true
    }

    fn join_collective(&mut self, rank: u32, req: CollReq) {
        {
            let st = &self.state[rank as usize];
            if !st.inited || st.finalized {
                return self.mpi_abort(rank, MpiErrorKind::NotInitialized);
            }
        }
        if req.root as u64 >= self.nranks() as u64 {
            return self.mpi_abort(rank, MpiErrorKind::InvalidRank);
        }
        if let Some(dtype) = req.dtype {
            if req.count.saturating_mul(dtype.size()) > MAX_MSG_BYTES {
                return self.mpi_abort(rank, MpiErrorKind::InvalidCount);
            }
        }
        let n = self.ranks.len();
        let slot = self.coll.get_or_insert_with(|| CollectiveSlot::new(n));
        if !slot.join(rank, req) {
            return self.mpi_abort(rank, MpiErrorKind::TypeMismatch);
        }
        self.state[rank as usize].in_collective = true;
        self.check_collective();
    }

    /// Completes the current collective if every rank has joined; detects
    /// dead participants. Returns `true` when something completed or
    /// errored.
    fn check_collective(&mut self) -> bool {
        let Some(slot) = &self.coll else { return false };
        if slot.is_empty() {
            return false;
        }
        let n = self.ranks.len();
        let all = vec![true; n];
        let live: Vec<bool> = (0..n as u32).map(|r| self.rank_alive(r)).collect();
        if slot.complete(&all) {
            let slot = self.coll.take().expect("checked above");
            self.execute_collective(slot);
            return true;
        }
        if slot.complete(&live) {
            // Every live rank is waiting on a dead one.
            let waiter = (0..n as u32).find(|&r| live[r as usize]).unwrap_or(0);
            self.mpi_abort(waiter, MpiErrorKind::RankDied);
            return true;
        }
        false
    }

    fn execute_collective(&mut self, slot: CollectiveSlot) {
        let n = self.ranks.len() as u32;
        let shape = slot.shape();
        for r in 0..n {
            self.state[r as usize].in_collective = false;
        }
        let elem = shape.dtype.map_or(0, MpiDatatype::size);
        let bytes = shape.count * elem;
        let carrier_taint = self.cfg.taint_carrier != TaintCarrier::None
            && self.cfg.taint_policy != TaintPolicy::Disabled;

        macro_rules! read_buf {
            ($rank:expr, $addr:expr, $len:expr) => {{
                let (ni, pid) = self.ranks[$rank as usize];
                match self.nodes[ni].read_guest(pid, $addr, $len) {
                    Ok(d) => d,
                    Err(_) => {
                        self.kill_rank($rank, Signal::Segv);
                        self.mpi_abort($rank, MpiErrorKind::RankDied);
                        return;
                    }
                }
            }};
        }
        macro_rules! write_buf {
            ($rank:expr, $addr:expr, $data:expr, $masks:expr, $provs:expr) => {{
                let (ni, pid) = self.ranks[$rank as usize];
                if self.nodes[ni].write_guest(pid, $addr, $data).is_err() {
                    self.kill_rank($rank, Signal::Segv);
                    self.mpi_abort($rank, MpiErrorKind::RankDied);
                    return;
                }
                let masks: &[u8] = $masks;
                let _ = self.nodes[ni].write_guest_taint(pid, $addr, masks);
                let provs: &[ProvSet] = $provs;
                if provs.iter().any(|p| !p.is_empty()) || self.nodes[ni].taint().prov_any() {
                    let _ = self.nodes[ni].write_guest_prov(pid, $addr, provs);
                }
            }};
        }
        macro_rules! read_taint {
            ($rank:expr, $addr:expr, $len:expr) => {{
                let (ni, pid) = self.ranks[$rank as usize];
                self.nodes[ni]
                    .read_guest_taint(pid, $addr, $len)
                    .unwrap_or_else(|_| vec![0; $len as usize])
            }};
        }
        macro_rules! read_prov {
            ($rank:expr, $addr:expr, $len:expr) => {{
                let (ni, pid) = self.ranks[$rank as usize];
                if self.nodes[ni].taint().prov_any() {
                    self.nodes[ni]
                        .read_guest_prov(pid, $addr, $len)
                        .unwrap_or_else(|_| vec![ProvSet::EMPTY; $len as usize])
                } else {
                    vec![ProvSet::EMPTY; $len as usize]
                }
            }};
        }

        let tag = coll_tag(shape.kind);
        let union_bits = |ps: &[ProvSet]| ps.iter().fold(ProvSet::EMPTY, |a, p| a.union(*p)).bits();
        // Tainted cross-rank movements observed during this collective;
        // fired to observers once the data movement is complete.
        let mut edges: Vec<CrossRankEdge> = Vec::new();

        match shape.kind {
            CollKind::Barrier => {}
            CollKind::Bcast => {
                let data = read_buf!(shape.root, shape.sendbuf, bytes);
                let masks = if carrier_taint {
                    read_taint!(shape.root, shape.sendbuf, bytes)
                } else {
                    vec![0; bytes as usize]
                };
                let provs = if carrier_taint {
                    read_prov!(shape.root, shape.sendbuf, bytes)
                } else {
                    vec![ProvSet::EMPTY; bytes as usize]
                };
                let tainted = masks.iter().any(|&m| m != 0);
                let tainted_bytes = masks.iter().filter(|&&m| m != 0).count();
                let prov_bits = union_bits(&provs);
                for (r, req) in slot.requests() {
                    if r != shape.root {
                        write_buf!(r, req.sendbuf, &data, &masks, &provs);
                        if tainted {
                            self.cross_rank_tainted_deliveries += 1;
                            edges.push(CrossRankEdge {
                                src: shape.root,
                                dest: r,
                                tag,
                                seq: 0,
                                round: self.round,
                                tainted_bytes,
                                prov_bits,
                            });
                        }
                    }
                }
            }
            CollKind::Reduce | CollKind::Allreduce => {
                let dtype = shape.dtype.expect("reduce has a datatype");
                let op = shape.op.expect("reduce has an operator");
                let mut acc: Vec<u8> = Vec::new();
                let mut acc_masks = vec![0u8; bytes as usize];
                let mut acc_provs = vec![ProvSet::EMPTY; bytes as usize];
                let mut contributions: Vec<Vec<u8>> = Vec::new();
                let mut tainted_ranks: Vec<u32> = Vec::new();
                // Per contributing rank: tainted byte count + provenance
                // union, for the edge records.
                let mut taint_srcs: Vec<(u32, usize, u32)> = Vec::new();
                for (r, req) in slot.requests() {
                    let data = read_buf!(r, req.sendbuf, bytes);
                    if carrier_taint {
                        let masks = read_taint!(r, req.sendbuf, bytes);
                        let provs = read_prov!(r, req.sendbuf, bytes);
                        let tainted_bytes = masks.iter().filter(|&&m| m != 0).count();
                        if tainted_bytes > 0 {
                            tainted_ranks.push(r);
                            taint_srcs.push((r, tainted_bytes, union_bits(&provs)));
                        }
                        for (m, a) in masks.iter().zip(acc_masks.iter_mut()) {
                            *a |= m;
                        }
                        for (p, a) in provs.iter().zip(acc_provs.iter_mut()) {
                            *a = a.union(*p);
                        }
                    }
                    if acc.is_empty() {
                        acc = data;
                    } else {
                        contributions.push(data);
                    }
                }
                for data in &contributions {
                    reduce_into(&mut acc, data, dtype, op);
                }
                if shape.kind == CollKind::Reduce {
                    let root_req = slot
                        .requests()
                        .find(|(r, _)| *r == shape.root)
                        .map(|(_, req)| *req)
                        .expect("root joined");
                    write_buf!(shape.root, root_req.recvbuf, &acc, &acc_masks, &acc_provs);
                    if tainted_ranks.iter().any(|&t| t != shape.root) {
                        self.cross_rank_tainted_deliveries += 1;
                    }
                    for &(t, tainted_bytes, prov_bits) in &taint_srcs {
                        if t != shape.root {
                            edges.push(CrossRankEdge {
                                src: t,
                                dest: shape.root,
                                tag,
                                seq: 0,
                                round: self.round,
                                tainted_bytes,
                                prov_bits,
                            });
                        }
                    }
                } else {
                    for (r, req) in slot.requests() {
                        write_buf!(r, req.recvbuf, &acc, &acc_masks, &acc_provs);
                        if tainted_ranks.iter().any(|&t| t != r) {
                            self.cross_rank_tainted_deliveries += 1;
                        }
                        for &(t, tainted_bytes, prov_bits) in &taint_srcs {
                            if t != r {
                                edges.push(CrossRankEdge {
                                    src: t,
                                    dest: r,
                                    tag,
                                    seq: 0,
                                    round: self.round,
                                    tainted_bytes,
                                    prov_bits,
                                });
                            }
                        }
                    }
                }
            }
            CollKind::Scatter => {
                let total = bytes * n as u64;
                let data = read_buf!(shape.root, shape.sendbuf, total);
                let masks = if carrier_taint {
                    read_taint!(shape.root, shape.sendbuf, total)
                } else {
                    vec![0; total as usize]
                };
                let provs = if carrier_taint {
                    read_prov!(shape.root, shape.sendbuf, total)
                } else {
                    vec![ProvSet::EMPTY; total as usize]
                };
                for (r, req) in slot.requests() {
                    let off = (r as u64 * bytes) as usize;
                    let chunk_masks = &masks[off..off + bytes as usize];
                    let chunk_provs = &provs[off..off + bytes as usize];
                    let tainted = chunk_masks.iter().any(|&m| m != 0);
                    write_buf!(
                        r,
                        req.recvbuf,
                        &data[off..off + bytes as usize],
                        chunk_masks,
                        chunk_provs
                    );
                    if tainted && r != shape.root {
                        self.cross_rank_tainted_deliveries += 1;
                        edges.push(CrossRankEdge {
                            src: shape.root,
                            dest: r,
                            tag,
                            seq: 0,
                            round: self.round,
                            tainted_bytes: chunk_masks.iter().filter(|&&m| m != 0).count(),
                            prov_bits: union_bits(chunk_provs),
                        });
                    }
                }
            }
            CollKind::Gather => {
                let root_req = slot
                    .requests()
                    .find(|(r, _)| *r == shape.root)
                    .map(|(_, req)| *req)
                    .expect("root joined");
                for (r, req) in slot.requests() {
                    let data = read_buf!(r, req.sendbuf, bytes);
                    let masks = if carrier_taint {
                        read_taint!(r, req.sendbuf, bytes)
                    } else {
                        vec![0; bytes as usize]
                    };
                    let provs = if carrier_taint {
                        read_prov!(r, req.sendbuf, bytes)
                    } else {
                        vec![ProvSet::EMPTY; bytes as usize]
                    };
                    let dst = root_req.recvbuf + r as u64 * bytes;
                    let tainted = masks.iter().any(|&m| m != 0);
                    write_buf!(shape.root, dst, &data, &masks, &provs);
                    if tainted && r != shape.root {
                        self.cross_rank_tainted_deliveries += 1;
                        edges.push(CrossRankEdge {
                            src: r,
                            dest: shape.root,
                            tag,
                            seq: 0,
                            round: self.round,
                            tainted_bytes: masks.iter().filter(|&&m| m != 0).count(),
                            prov_bits: union_bits(&provs),
                        });
                    }
                }
            }
        }

        for edge in edges {
            for obs in &self.observers {
                obs.lock().on_tainted_delivery(&edge);
            }
        }

        for (r, _) in slot.requests() {
            if self.rank_alive(r) {
                self.complete(r, 0);
            }
        }
    }
}

/// Compute-phase worker body: advances every runnable rank of one node by
/// one quantum, in ascending rank order. Pure node-local work — anything
/// cross-rank is recorded in `out` (and in the node's taint buffer) for the
/// serial exchange phase.
fn run_node_slices(
    node: &mut Node,
    ranks: &[(u32, u64)],
    quantum: u64,
    slice_budget: u64,
    out: &mut Vec<(u32, SliceExit)>,
) {
    for &(rank, pid) in ranks {
        if slice_budget != u64::MAX {
            node.set_insn_budget(slice_budget);
        }
        out.push((rank, node.run_slice(pid, quantum)));
    }
}

/// The synthetic message tag [`CrossRankEdge`]s use for collective data
/// movements (collectives have no user tag; point-to-point tags are small,
/// so a high base keeps the ranges disjoint).
fn coll_tag(kind: CollKind) -> u64 {
    const COLL_TAG_BASE: u64 = 0xC0_11_EC_00;
    COLL_TAG_BASE
        + match kind {
            CollKind::Barrier => 0,
            CollKind::Bcast => 1,
            CollKind::Reduce => 2,
            CollKind::Allreduce => 3,
            CollKind::Scatter => 4,
            CollKind::Gather => 5,
        }
}

/// Elementwise reduction of `src` into `acc`.
fn reduce_into(acc: &mut [u8], src: &[u8], dtype: MpiDatatype, op: MpiOp) {
    debug_assert_eq!(acc.len(), src.len());
    let n = acc.len() / 8;
    for i in 0..n {
        let range = i * 8..(i + 1) * 8;
        let a = u64::from_le_bytes(acc[range.clone()].try_into().expect("8 bytes"));
        let b = u64::from_le_bytes(src[range.clone()].try_into().expect("8 bytes"));
        let out = match dtype {
            MpiDatatype::F64 => {
                let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                let r = match op {
                    MpiOp::Sum => fa + fb,
                    MpiOp::Min => fa.min(fb),
                    MpiOp::Max => fa.max(fb),
                    MpiOp::Prod => fa * fb,
                };
                r.to_bits()
            }
            MpiDatatype::I64 => {
                let (ia, ib) = (a as i64, b as i64);
                let r = match op {
                    MpiOp::Sum => ia.wrapping_add(ib),
                    MpiOp::Min => ia.min(ib),
                    MpiOp::Max => ia.max(ib),
                    MpiOp::Prod => ia.wrapping_mul(ib),
                };
                r as u64
            }
            MpiDatatype::Byte => unreachable!("byte reduce rejected at validation"),
        };
        acc[range].copy_from_slice(&out.to_le_bytes());
    }
}

// ---- Cluster snapshots ----

/// A deterministic, digest-stamped checkpoint of a whole simulated cluster.
///
/// Captures per-node CPU/FPU state, guest memory as `Arc`-shared
/// copy-on-write pages, taint shadow state, the VMI process tables,
/// in-flight interconnect envelopes, queued TaintHub records, instruction
/// counts and the *current positions* of every seeded RNG stream. `Send +
/// Sync` and cheap to clone, so a campaign wraps one in an `Arc` and every
/// worker restores from the same snapshot concurrently — the machine-state
/// analogue of the layered TB cache's shared base layer.
///
/// Not captured (re-attached after restore, like on a cold run): hooks,
/// MPI observers, and translated blocks.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    nodes: Vec<NodeSnapshot>,
    ranks: Vec<(usize, u64)>,
    state: Vec<RankState>,
    net: Interconnect,
    coll: Option<CollectiveSlot>,
    hub: HubSnapshot,
    round: u64,
    stuck_rounds: u64,
    mpi_error: Option<MpiError>,
    hang: bool,
    budget_exhausted: Option<BudgetKind>,
    send_seq: u64,
    cross_rank_tainted_deliveries: u64,
    taint_sync_lost: u64,
    hub_rng: Option<SmallRng>,
    total_insns: u64,
    digest: u64,
}

impl ClusterSnapshot {
    /// The [`Cluster::state_digest`] at capture time — restoring and
    /// immediately digesting must reproduce this value.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The scheduler round the snapshot was taken at.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total retired guest instructions at capture — the work a warm-started
    /// run skips.
    pub fn total_insns(&self) -> u64 {
        self.total_insns
    }

    /// Resident guest-RAM pages captured across all nodes.
    pub fn resident_pages(&self) -> u64 {
        self.nodes.iter().map(NodeSnapshot::resident_pages).sum()
    }
}

/// 64-bit FNV-1a accumulator for state digests. A local copy: the journal
/// hasher lives in `chaser-core`, which depends on this crate.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Writes a string with a terminator so adjacent fields can't alias.
    fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0xff]);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn snapshot_is_send_sync_and_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<ClusterSnapshot>();
    }
}

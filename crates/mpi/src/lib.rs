//! # chaser-mpi
//!
//! A simulated MPI runtime over a multi-node cluster of `chaser-vm` nodes,
//! replacing the real 4-node Xeon/10GbE testbed of the Chaser paper.
//!
//! Guest programs call MPI through hypercalls wrapped in guest library
//! functions (`chaser-workloads` provides the wrappers). The [`Cluster`]
//! schedules ranks round-robin in deterministic instruction-quanta, routes
//! point-to-point messages through a latency-modelled [`Interconnect`], and
//! executes collectives (barrier/bcast/reduce/allreduce/scatter/gather).
//!
//! Fault-injection-relevant behaviour is modelled deliberately:
//!
//! * a *corrupted buffer pointer* passed to send/recv faults inside the
//!   "MPI library" and kills the rank with `SIGSEGV` (an OS exception, like
//!   real MPI);
//! * a *corrupted count / datatype / destination rank* is caught by MPI
//!   argument validation and aborts the job with an
//!   [`MpiErrorKind`] — the paper's "MPI error detected" terminations;
//! * a rank that dies mid-communication surfaces as
//!   [`MpiErrorKind::RankDied`] on its peers — the "slave node failed" row
//!   of the paper's Table III;
//! * a communication pattern that can no longer make progress is detected
//!   as a hang.
//!
//! Cross-rank taint follows the configured [`TaintCarrier`]: the paper's
//! TaintHub (observers publish/poll `chaser-tainthub`), an inline
//! per-message header (the Related-Work alternative, kept for ablation), or
//! none.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod collective;
mod envelope;
mod net;

pub use cluster::{
    BudgetKind, Cluster, ClusterConfig, ClusterRun, ClusterSnapshot, CrossRankEdge, HangRank,
    HubSyncPolicy, MpiObserver, ParallelStats, PendingOp, RoundReport, RunBudget,
    SharedMpiObserver,
};
pub use collective::{CollKind, CollReq, CollectiveSlot};
pub use envelope::{Envelope, MpiError, MpiErrorKind, TaintCarrier, MAX_MSG_BYTES};
pub use net::{Faultiness, Interconnect, NetStats};

//! Collective-operation bookkeeping.

use chaser_isa::abi::{MpiDatatype, MpiOp};
use serde::{Deserialize, Serialize};

/// Which collective a rank joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollKind {
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Bcast`.
    Bcast,
    /// `MPI_Reduce`.
    Reduce,
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Scatter`.
    Scatter,
    /// `MPI_Gather`.
    Gather,
}

/// One rank's arguments to a collective call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollReq {
    /// The collective.
    pub kind: CollKind,
    /// Send-side guest buffer (or the in/out buffer for bcast).
    pub sendbuf: u64,
    /// Receive-side guest buffer (unused by barrier/bcast).
    pub recvbuf: u64,
    /// Element count (per rank for scatter/gather).
    pub count: u64,
    /// Element datatype (`None` for barrier).
    pub dtype: Option<MpiDatatype>,
    /// Reduction operator (reduce/allreduce only).
    pub op: Option<MpiOp>,
    /// Root rank (bcast/reduce/scatter/gather).
    pub root: u32,
}

impl CollReq {
    /// Do two ranks' requests describe the same collective? (Shape check —
    /// a mismatch is the `TypeMismatch` MPI error.)
    pub fn compatible(&self, other: &CollReq) -> bool {
        self.kind == other.kind
            && self.count == other.count
            && self.dtype == other.dtype
            && self.op == other.op
            && self.root == other.root
    }
}

/// Tracks the globally current collective until every live rank has joined.
#[derive(Debug, Default, Clone)]
pub struct CollectiveSlot {
    arrived: Vec<Option<CollReq>>,
}

impl CollectiveSlot {
    /// A slot for `ranks` participants.
    pub fn new(ranks: usize) -> CollectiveSlot {
        CollectiveSlot {
            arrived: vec![None; ranks],
        }
    }

    /// Records rank `rank`'s request. Returns `false` when it clashes with
    /// an earlier participant's shape.
    pub fn join(&mut self, rank: u32, req: CollReq) -> bool {
        if let Some(first) = self.arrived.iter().flatten().next() {
            if !first.compatible(&req) {
                return false;
            }
        }
        self.arrived[rank as usize] = Some(req);
        true
    }

    /// Has `rank` joined already?
    pub fn has_joined(&self, rank: u32) -> bool {
        self.arrived[rank as usize].is_some()
    }

    /// Are all of `live` (a per-rank liveness mask) present?
    pub fn complete(&self, live: &[bool]) -> bool {
        self.arrived
            .iter()
            .zip(live)
            .all(|(slot, alive)| slot.is_some() || !alive)
    }

    /// True if nobody has joined yet.
    pub fn is_empty(&self) -> bool {
        self.arrived.iter().all(Option::is_none)
    }

    /// The requests of all joined ranks.
    pub fn requests(&self) -> impl Iterator<Item = (u32, &CollReq)> {
        self.arrived
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i as u32, r)))
    }

    /// The shape every participant agreed on.
    ///
    /// # Panics
    ///
    /// Panics when the slot is empty.
    pub fn shape(&self) -> CollReq {
        *self
            .arrived
            .iter()
            .flatten()
            .next()
            .expect("shape of an empty collective")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: CollKind) -> CollReq {
        CollReq {
            kind,
            sendbuf: 0x1000,
            recvbuf: 0x2000,
            count: 4,
            dtype: Some(MpiDatatype::F64),
            op: None,
            root: 0,
        }
    }

    #[test]
    fn all_ranks_must_join() {
        let mut slot = CollectiveSlot::new(3);
        let live = [true, true, true];
        assert!(slot.join(0, req(CollKind::Barrier)));
        assert!(!slot.complete(&live));
        assert!(slot.join(2, req(CollKind::Barrier)));
        assert!(!slot.complete(&live));
        assert!(slot.join(1, req(CollKind::Barrier)));
        assert!(slot.complete(&live));
    }

    #[test]
    fn dead_ranks_are_not_awaited() {
        let mut slot = CollectiveSlot::new(3);
        let live = [true, false, true];
        slot.join(0, req(CollKind::Barrier));
        slot.join(2, req(CollKind::Barrier));
        assert!(slot.complete(&live));
    }

    #[test]
    fn mismatched_kinds_are_rejected() {
        let mut slot = CollectiveSlot::new(2);
        assert!(slot.join(0, req(CollKind::Bcast)));
        assert!(!slot.join(1, req(CollKind::Reduce)));
    }

    #[test]
    fn mismatched_counts_are_rejected() {
        let mut slot = CollectiveSlot::new(2);
        assert!(slot.join(0, req(CollKind::Bcast)));
        let mut other = req(CollKind::Bcast);
        other.count = 8;
        assert!(!slot.join(1, other));
    }

    #[test]
    fn join_state_queries() {
        let mut slot = CollectiveSlot::new(2);
        assert!(slot.is_empty());
        slot.join(1, req(CollKind::Barrier));
        assert!(!slot.is_empty());
        assert!(slot.has_joined(1));
        assert!(!slot.has_joined(0));
        assert_eq!(slot.requests().count(), 1);
        assert_eq!(slot.shape().kind, CollKind::Barrier);
    }
}

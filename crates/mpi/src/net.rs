//! The simulated interconnect.

use crate::envelope::Envelope;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interconnect counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages matched by receivers.
    pub delivered: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Transmission attempts the lossy fabric dropped.
    pub dropped: u64,
    /// Retransmissions the ack/timeout layer issued after a drop.
    pub retransmits: u64,
    /// Duplicate deliveries the fabric created (suppressed at matching).
    pub duplicates: u64,
    /// Messages lost for good: every retransmission attempt dropped.
    pub lost: u64,
}

/// Seeded unreliability knobs for the fabric: the failure mode FINJ/ZOFI
/// style campaign tools don't model, but which the TaintHub sync path
/// depends on. Defaults are fully reliable, so the knob costs nothing
/// (no RNG is even instantiated) unless a probability is raised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Faultiness {
    /// Probability a transmission attempt is dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is duplicated in flight.
    pub dup_prob: f64,
    /// Retransmission attempts after the first drop before the message is
    /// declared lost. Each retransmission adds one ack-timeout
    /// (`latency + 1` rounds) to the delivery time, so the bound also caps
    /// the worst-case extra delay below the cluster's hang threshold.
    pub max_retries: u32,
    /// Seed for the fabric's fault stream (deterministic per run).
    pub seed: u64,
}

impl Default for Faultiness {
    fn default() -> Faultiness {
        Faultiness {
            drop_prob: 0.0,
            dup_prob: 0.0,
            max_retries: 16,
            seed: 0,
        }
    }
}

impl Faultiness {
    /// True when the fabric delivers every message exactly once.
    pub fn is_reliable(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    env: Envelope,
}

/// A latency-modelled, non-overtaking point-to-point network.
///
/// Messages become visible to receivers `latency` scheduler rounds after
/// they are sent (the 10GbE switch of the paper's testbed, reduced to the
/// one property fault propagation cares about: messages arrive *later* than
/// they were sent, so taint status must be synchronised out-of-band — the
/// reason TaintHub exists).
///
/// `Clone` captures the complete fabric state — in-flight messages, the
/// global sequence counter, the per-pair ordering floors and the *current
/// position* of the fault-stream RNG (no re-seed). Cluster snapshots rely
/// on this: a restored interconnect replays exactly the drops, duplicates
/// and delays the original would have produced.
#[derive(Debug, Default, Clone)]
pub struct Interconnect {
    queues: Vec<Vec<InFlight>>,
    latency: u64,
    /// Bytes transferable per scheduler round; `0` = infinite bandwidth.
    bytes_per_round: u64,
    next_seq: u64,
    stats: NetStats,
    faultiness: Faultiness,
    /// Fault stream; only instantiated for an unreliable fabric so the
    /// reliable path stays bit-identical to the pre-faultiness network.
    rng: Option<SmallRng>,
    /// Per-`(src, dest)` floor on delivery times: retransmission delays
    /// must not let a later message overtake an earlier one on the same
    /// pair (go-back-N ARQ semantics), or MPI's non-overtaking guarantee —
    /// and the TaintHub's sequence alignment — would break.
    pair_floor: HashMap<(u32, u32), u64>,
}

impl Interconnect {
    /// A network for `ranks` endpoints with the given delivery latency (in
    /// scheduler rounds) and infinite bandwidth.
    pub fn new(ranks: usize, latency: u64) -> Interconnect {
        Interconnect {
            queues: vec![Vec::new(); ranks],
            latency,
            ..Interconnect::default()
        }
    }

    /// Adds a bandwidth model: a message of `b` bytes takes an extra
    /// `b / bytes_per_round` rounds to arrive (serialisation delay).
    pub fn with_bandwidth(mut self, bytes_per_round: u64) -> Interconnect {
        self.bytes_per_round = bytes_per_round;
        self
    }

    /// Makes the fabric unreliable: attempts drop with
    /// `faultiness.drop_prob` (each drop costs one ack-timeout of
    /// retransmission delay, up to `max_retries` before the message is
    /// lost for good) and deliveries duplicate with `dup_prob` (suppressed
    /// at matching, so receivers never see the echo). Envelope-level ARQ
    /// preserves per-pair ordering, so MPI semantics survive the loss.
    pub fn with_faultiness(mut self, faultiness: Faultiness) -> Interconnect {
        self.rng = (!faultiness.is_reliable())
            .then(|| SmallRng::seed_from_u64(faultiness.seed ^ 0x000F_AB71_CFAB));
        self.faultiness = faultiness;
        self
    }

    /// Accepts a message at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `env.dest` is out of range — the runtime validates ranks
    /// before calling.
    pub fn send(&mut self, env: Envelope, now: u64) {
        self.stats.sent += 1;
        self.stats.bytes += env.len_bytes();
        let seq = self.next_seq;
        self.next_seq += 1;
        let serialisation = match self.bytes_per_round {
            0 => 0,
            bw => env.len_bytes() / bw,
        };
        let mut deliver_at = now + self.latency + serialisation;

        // Ack/retransmit over the lossy fabric: a dropped attempt is
        // detected after one ack timeout and resent, so loss turns into
        // bounded delay instead of corruption — until the retry budget is
        // exhausted, when the message is genuinely lost (receivers then
        // see the same world as a dead sender: nothing in flight).
        let ack_timeout = self.latency + 1;
        let mut duplicate = false;
        if let Some(rng) = &mut self.rng {
            let f = self.faultiness;
            let mut retries = 0u32;
            while rng.gen_bool(f.drop_prob) {
                self.stats.dropped += 1;
                if retries >= f.max_retries {
                    self.stats.lost += 1;
                    return;
                }
                retries += 1;
                self.stats.retransmits += 1;
                deliver_at += ack_timeout;
            }
            duplicate = rng.gen_bool(f.dup_prob);

            // Go-back-N: retransmission delay must never let a later
            // message of the same pair arrive first, or MPI's
            // non-overtaking guarantee (and the TaintHub's sequence
            // alignment) would break. Reliable fabrics skip the floor to
            // stay bit-identical to the pre-faultiness network.
            let floor = self
                .pair_floor
                .entry((env.src, env.dest))
                .or_insert(deliver_at);
            deliver_at = deliver_at.max(*floor);
            *floor = deliver_at;
        }

        let dest = env.dest as usize;
        if duplicate {
            self.stats.duplicates += 1;
            self.queues[dest].push(InFlight {
                deliver_at: deliver_at + ack_timeout,
                seq,
                env: env.clone(),
            });
        }
        self.queues[dest].push(InFlight {
            deliver_at,
            seq,
            env,
        });
    }

    /// Matches and removes the oldest mature message for `(dest, source,
    /// tag)` at time `now`. `None` for `source`/`tag` is the MPI wildcard
    /// (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
    pub fn try_match(
        &mut self,
        dest: u32,
        source: Option<u32>,
        tag: Option<u64>,
        now: u64,
    ) -> Option<Envelope> {
        let q = &mut self.queues[dest as usize];
        let best = q
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                m.deliver_at <= now
                    && source.is_none_or(|s| m.env.src == s)
                    && tag.is_none_or(|t| m.env.tag == t)
            })
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)?;
        self.stats.delivered += 1;
        let hit = q.swap_remove(best);
        // Suppress any in-flight duplicates of the delivered message; the
        // payload is identical, so the receiver must never see the echo.
        q.retain(|m| m.seq != hit.seq);
        Some(hit.env)
    }

    /// Is any message (mature or not) in flight towards `dest` matching
    /// `source`/`tag` (wildcards as in [`Interconnect::try_match`])? Used
    /// to distinguish "will arrive later" from "peer is dead and nothing is
    /// coming".
    pub fn has_in_flight(&self, dest: u32, source: Option<u32>, tag: Option<u64>) -> bool {
        self.queues[dest as usize]
            .iter()
            .any(|m| source.is_none_or(|s| m.env.src == s) && tag.is_none_or(|t| m.env.tag == t))
    }

    /// Total undelivered messages.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Visits every in-flight message in deterministic (queue, insertion)
    /// order as `(dest, deliver_at, seq, envelope)` — state digests hash
    /// this to compare fabrics.
    pub fn for_each_in_flight(&self, mut f: impl FnMut(u32, u64, u64, &Envelope)) {
        for (dest, q) in self.queues.iter().enumerate() {
            for m in q {
                f(dest as u32, m.deliver_at, m.seq, &m.env);
            }
        }
    }

    /// The global send-sequence counter (monotone over the fabric's life).
    pub fn seq_counter(&self) -> u64 {
        self.next_seq
    }

    /// The per-pair delivery-time floors in sorted order (deterministic,
    /// unlike the backing map's iteration order).
    pub fn pair_floors_sorted(&self) -> Vec<((u32, u32), u64)> {
        let mut floors: Vec<_> = self.pair_floor.iter().map(|(k, v)| (*k, *v)).collect();
        floors.sort_unstable();
        floors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_isa::abi::MpiDatatype;

    fn env(src: u32, dest: u32, tag: u64, data: &[u8]) -> Envelope {
        Envelope {
            src,
            dest,
            tag,
            dtype: MpiDatatype::Byte,
            count: data.len() as u64,
            data: data.to_vec(),
            taint_header: None,
            seq: 0,
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let mut net = Interconnect::new(2, 2);
        net.send(env(0, 1, 7, b"x"), 10);
        assert!(net.try_match(1, Some(0), Some(7), 10).is_none());
        assert!(net.try_match(1, Some(0), Some(7), 11).is_none());
        assert!(net.try_match(1, Some(0), Some(7), 12).is_some());
    }

    #[test]
    fn matching_is_by_source_and_tag() {
        let mut net = Interconnect::new(3, 0);
        net.send(env(0, 2, 1, b"a"), 0);
        net.send(env(1, 2, 1, b"b"), 0);
        net.send(env(0, 2, 9, b"c"), 0);
        assert_eq!(net.try_match(2, Some(1), Some(1), 0).expect("b").data, b"b");
        assert_eq!(net.try_match(2, Some(0), Some(9), 0).expect("c").data, b"c");
        assert_eq!(net.try_match(2, Some(0), Some(1), 0).expect("a").data, b"a");
        assert!(net.try_match(2, Some(0), Some(1), 0).is_none());
    }

    #[test]
    fn same_pair_messages_do_not_overtake() {
        let mut net = Interconnect::new(2, 0);
        net.send(env(0, 1, 7, b"first"), 0);
        net.send(env(0, 1, 7, b"second"), 0);
        assert_eq!(
            net.try_match(1, Some(0), Some(7), 5).expect("1st").data,
            b"first"
        );
        assert_eq!(
            net.try_match(1, Some(0), Some(7), 5).expect("2nd").data,
            b"second"
        );
    }

    #[test]
    fn bandwidth_delays_large_messages() {
        let mut net = Interconnect::new(2, 1).with_bandwidth(8);
        net.send(env(0, 1, 7, &[0u8; 32]), 0); // 32 bytes / 8 per round = 4
        assert!(net.try_match(1, Some(0), Some(7), 4).is_none());
        assert!(net.try_match(1, Some(0), Some(7), 5).is_some());
        // A small message on the same link is fast.
        net.send(env(0, 1, 8, b"x"), 0);
        assert!(net.try_match(1, Some(0), Some(8), 1).is_some());
    }

    #[test]
    fn wildcard_matching() {
        let mut net = Interconnect::new(2, 0);
        net.send(env(0, 1, 7, b"a"), 0);
        net.send(env(0, 1, 9, b"b"), 0);
        // ANY_TAG takes the oldest regardless of tag.
        assert_eq!(net.try_match(1, Some(0), None, 0).expect("a").data, b"a");
        // ANY_SOURCE with a tag.
        assert_eq!(net.try_match(1, None, Some(9), 0).expect("b").data, b"b");
        assert!(net.try_match(1, None, None, 0).is_none());
        assert!(!net.has_in_flight(1, None, None));
    }

    #[test]
    fn lossy_fabric_retransmits_but_preserves_pair_order() {
        let f = Faultiness {
            drop_prob: 0.5,
            dup_prob: 0.3,
            max_retries: 16,
            seed: 42,
        };
        let mut net = Interconnect::new(2, 1).with_faultiness(f);
        for i in 0..50u8 {
            net.send(env(0, 1, 7, &[i]), 0);
        }
        let mut got = Vec::new();
        for now in 0..10_000u64 {
            while let Some(e) = net.try_match(1, Some(0), Some(7), now) {
                got.push(e.data[0]);
            }
            if got.len() == 50 {
                break;
            }
        }
        // Every message arrives exactly once, in send order.
        assert_eq!(got, (0..50u8).collect::<Vec<u8>>());
        let stats = net.stats();
        assert!(stats.retransmits > 0, "seeded loss must drop some attempts");
        assert!(stats.duplicates > 0, "seeded duplication must fire");
        assert_eq!(stats.lost, 0);
        assert_eq!(stats.delivered, 50);
        assert_eq!(net.in_flight(), 0, "duplicates are purged at matching");
    }

    #[test]
    fn message_is_lost_once_retries_are_exhausted() {
        let f = Faultiness {
            drop_prob: 1.0,
            dup_prob: 0.0,
            max_retries: 3,
            seed: 1,
        };
        let mut net = Interconnect::new(2, 0).with_faultiness(f);
        net.send(env(0, 1, 7, b"x"), 0);
        let stats = net.stats();
        assert_eq!(stats.lost, 1);
        assert_eq!(stats.retransmits, 3);
        assert_eq!(stats.dropped, 4, "initial attempt plus three retries");
        // Nothing is in flight: receivers see the same world as a dead
        // sender, so the cluster's hang/RankDied machinery takes over.
        assert!(!net.has_in_flight(1, Some(0), Some(7)));
        assert!(net.try_match(1, Some(0), Some(7), 1_000).is_none());
    }

    #[test]
    fn fabric_faults_are_deterministic_per_seed() {
        let f = Faultiness {
            drop_prob: 0.4,
            dup_prob: 0.2,
            max_retries: 8,
            seed: 7,
        };
        let run = || {
            let mut net = Interconnect::new(2, 1).with_faultiness(f);
            for i in 0..20u8 {
                net.send(env(0, 1, 3, &[i]), u64::from(i));
            }
            net.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn in_flight_visibility() {
        let mut net = Interconnect::new(2, 100);
        net.send(env(0, 1, 7, b"x"), 0);
        assert!(net.has_in_flight(1, Some(0), Some(7)));
        assert!(!net.has_in_flight(1, Some(0), Some(8)));
        assert_eq!(net.in_flight(), 1);
        assert_eq!(net.stats().sent, 1);
        assert_eq!(net.stats().delivered, 0);
    }
}

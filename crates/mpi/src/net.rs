//! The simulated interconnect.

use crate::envelope::Envelope;
use serde::{Deserialize, Serialize};

/// Interconnect counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages matched by receivers.
    pub delivered: u64,
    /// Payload bytes carried.
    pub bytes: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    env: Envelope,
}

/// A latency-modelled, non-overtaking point-to-point network.
///
/// Messages become visible to receivers `latency` scheduler rounds after
/// they are sent (the 10GbE switch of the paper's testbed, reduced to the
/// one property fault propagation cares about: messages arrive *later* than
/// they were sent, so taint status must be synchronised out-of-band — the
/// reason TaintHub exists).
#[derive(Debug, Default)]
pub struct Interconnect {
    queues: Vec<Vec<InFlight>>,
    latency: u64,
    /// Bytes transferable per scheduler round; `0` = infinite bandwidth.
    bytes_per_round: u64,
    next_seq: u64,
    stats: NetStats,
}

impl Interconnect {
    /// A network for `ranks` endpoints with the given delivery latency (in
    /// scheduler rounds) and infinite bandwidth.
    pub fn new(ranks: usize, latency: u64) -> Interconnect {
        Interconnect {
            queues: vec![Vec::new(); ranks],
            latency,
            bytes_per_round: 0,
            next_seq: 0,
            stats: NetStats::default(),
        }
    }

    /// Adds a bandwidth model: a message of `b` bytes takes an extra
    /// `b / bytes_per_round` rounds to arrive (serialisation delay).
    pub fn with_bandwidth(mut self, bytes_per_round: u64) -> Interconnect {
        self.bytes_per_round = bytes_per_round;
        self
    }

    /// Accepts a message at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `env.dest` is out of range — the runtime validates ranks
    /// before calling.
    pub fn send(&mut self, env: Envelope, now: u64) {
        self.stats.sent += 1;
        self.stats.bytes += env.len_bytes();
        let seq = self.next_seq;
        self.next_seq += 1;
        let serialisation = match self.bytes_per_round {
            0 => 0,
            bw => env.len_bytes() / bw,
        };
        self.queues[env.dest as usize].push(InFlight {
            deliver_at: now + self.latency + serialisation,
            seq,
            env,
        });
    }

    /// Matches and removes the oldest mature message for `(dest, source,
    /// tag)` at time `now`. `None` for `source`/`tag` is the MPI wildcard
    /// (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
    pub fn try_match(
        &mut self,
        dest: u32,
        source: Option<u32>,
        tag: Option<u64>,
        now: u64,
    ) -> Option<Envelope> {
        let q = &mut self.queues[dest as usize];
        let best = q
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                m.deliver_at <= now
                    && source.is_none_or(|s| m.env.src == s)
                    && tag.is_none_or(|t| m.env.tag == t)
            })
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)?;
        self.stats.delivered += 1;
        Some(q.swap_remove(best).env)
    }

    /// Is any message (mature or not) in flight towards `dest` matching
    /// `source`/`tag` (wildcards as in [`Interconnect::try_match`])? Used
    /// to distinguish "will arrive later" from "peer is dead and nothing is
    /// coming".
    pub fn has_in_flight(&self, dest: u32, source: Option<u32>, tag: Option<u64>) -> bool {
        self.queues[dest as usize]
            .iter()
            .any(|m| source.is_none_or(|s| m.env.src == s) && tag.is_none_or(|t| m.env.tag == t))
    }

    /// Total undelivered messages.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaser_isa::abi::MpiDatatype;

    fn env(src: u32, dest: u32, tag: u64, data: &[u8]) -> Envelope {
        Envelope {
            src,
            dest,
            tag,
            dtype: MpiDatatype::Byte,
            count: data.len() as u64,
            data: data.to_vec(),
            taint_header: None,
            seq: 0,
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let mut net = Interconnect::new(2, 2);
        net.send(env(0, 1, 7, b"x"), 10);
        assert!(net.try_match(1, Some(0), Some(7), 10).is_none());
        assert!(net.try_match(1, Some(0), Some(7), 11).is_none());
        assert!(net.try_match(1, Some(0), Some(7), 12).is_some());
    }

    #[test]
    fn matching_is_by_source_and_tag() {
        let mut net = Interconnect::new(3, 0);
        net.send(env(0, 2, 1, b"a"), 0);
        net.send(env(1, 2, 1, b"b"), 0);
        net.send(env(0, 2, 9, b"c"), 0);
        assert_eq!(net.try_match(2, Some(1), Some(1), 0).expect("b").data, b"b");
        assert_eq!(net.try_match(2, Some(0), Some(9), 0).expect("c").data, b"c");
        assert_eq!(net.try_match(2, Some(0), Some(1), 0).expect("a").data, b"a");
        assert!(net.try_match(2, Some(0), Some(1), 0).is_none());
    }

    #[test]
    fn same_pair_messages_do_not_overtake() {
        let mut net = Interconnect::new(2, 0);
        net.send(env(0, 1, 7, b"first"), 0);
        net.send(env(0, 1, 7, b"second"), 0);
        assert_eq!(
            net.try_match(1, Some(0), Some(7), 5).expect("1st").data,
            b"first"
        );
        assert_eq!(
            net.try_match(1, Some(0), Some(7), 5).expect("2nd").data,
            b"second"
        );
    }

    #[test]
    fn bandwidth_delays_large_messages() {
        let mut net = Interconnect::new(2, 1).with_bandwidth(8);
        net.send(env(0, 1, 7, &[0u8; 32]), 0); // 32 bytes / 8 per round = 4
        assert!(net.try_match(1, Some(0), Some(7), 4).is_none());
        assert!(net.try_match(1, Some(0), Some(7), 5).is_some());
        // A small message on the same link is fast.
        net.send(env(0, 1, 8, b"x"), 0);
        assert!(net.try_match(1, Some(0), Some(8), 1).is_some());
    }

    #[test]
    fn wildcard_matching() {
        let mut net = Interconnect::new(2, 0);
        net.send(env(0, 1, 7, b"a"), 0);
        net.send(env(0, 1, 9, b"b"), 0);
        // ANY_TAG takes the oldest regardless of tag.
        assert_eq!(net.try_match(1, Some(0), None, 0).expect("a").data, b"a");
        // ANY_SOURCE with a tag.
        assert_eq!(net.try_match(1, None, Some(9), 0).expect("b").data, b"b");
        assert!(net.try_match(1, None, None, 0).is_none());
        assert!(!net.has_in_flight(1, None, None));
    }

    #[test]
    fn in_flight_visibility() {
        let mut net = Interconnect::new(2, 100);
        net.send(env(0, 1, 7, b"x"), 0);
        assert!(net.has_in_flight(1, Some(0), Some(7)));
        assert!(!net.has_in_flight(1, Some(0), Some(8)));
        assert_eq!(net.in_flight(), 1);
        assert_eq!(net.stats().sent, 1);
        assert_eq!(net.stats().delivered, 0);
    }
}

//! Message envelopes and MPI error classification.

use chaser_isa::abi::MpiDatatype;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Largest accepted message payload; counts beyond this are treated as
/// corrupted arguments ([`MpiErrorKind::InvalidCount`]).
pub const MAX_MSG_BYTES: u64 = 1 << 22;

/// How taint crosses rank boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaintCarrier {
    /// Chaser's design: senders publish to the TaintHub, receivers poll it.
    Hub,
    /// The Related-Work alternative: taint rides in a per-message header
    /// that every receive must parse (kept for the ablation benchmark).
    Header,
    /// No cross-rank propagation (taint stops at the rank boundary).
    None,
}

/// A point-to-point message in flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sending rank.
    pub src: u32,
    /// Destination rank.
    pub dest: u32,
    /// Message tag.
    pub tag: u64,
    /// Element datatype.
    pub dtype: MpiDatatype,
    /// Element count.
    pub count: u64,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Inline per-byte taint header (only with [`TaintCarrier::Header`]).
    pub taint_header: Option<Vec<u8>>,
    /// Global send sequence number (aligns TaintHub records with the
    /// message stream; see `chaser_tainthub::TaintRecord::seq`).
    pub seq: u64,
}

impl Envelope {
    /// Payload length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.data.len() as u64
    }
}

/// Why the MPI runtime aborted the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MpiErrorKind {
    /// MPI used before `MPI_Init` or after `MPI_Finalize`.
    NotInitialized,
    /// Source/destination/root rank out of range (corrupted rank argument).
    InvalidRank,
    /// Unknown datatype code (corrupted datatype argument).
    InvalidDatatype,
    /// Count negative-looking or implausibly large (corrupted count).
    InvalidCount,
    /// Unknown reduction operator.
    InvalidOp,
    /// Receive buffer smaller than the matched message.
    Truncation,
    /// Sender/receiver or collective participants disagree on type/shape.
    TypeMismatch,
    /// The peer rank terminated before/while communicating.
    RankDied,
}

impl fmt::Display for MpiErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MpiErrorKind::NotInitialized => "MPI not initialized",
            MpiErrorKind::InvalidRank => "invalid rank",
            MpiErrorKind::InvalidDatatype => "invalid datatype",
            MpiErrorKind::InvalidCount => "invalid count",
            MpiErrorKind::InvalidOp => "invalid reduction op",
            MpiErrorKind::Truncation => "message truncated",
            MpiErrorKind::TypeMismatch => "type mismatch",
            MpiErrorKind::RankDied => "peer rank died",
        };
        f.write_str(s)
    }
}

/// An MPI runtime error attributed to the rank whose call triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MpiError {
    /// The rank whose call failed.
    pub rank: u32,
    /// What failed.
    pub kind: MpiErrorKind,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {}: {}", self.rank, self.kind)
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_len() {
        let env = Envelope {
            src: 0,
            dest: 1,
            tag: 5,
            dtype: MpiDatatype::F64,
            count: 2,
            data: vec![0u8; 16],
            taint_header: None,
            seq: 0,
        };
        assert_eq!(env.len_bytes(), 16);
    }

    #[test]
    fn error_display() {
        let err = MpiError {
            rank: 2,
            kind: MpiErrorKind::Truncation,
        };
        assert_eq!(err.to_string(), "rank 2: message truncated");
    }
}
